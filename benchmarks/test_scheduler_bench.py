"""Benchmarks of the sweep scheduler and the trace cache's disk tier.

Records the two wall-clock numbers the PR-2 pipeline is about: a warm
``--cache-dir`` rerun of the quick figure suite (must price zero traces)
and a cross-workload prefetch on the shared pool.  Assertions check the
*contract* (zero trace misses, deterministic results); the timings land
in BENCH_*.json for tracking.
"""

from __future__ import annotations

from repro.sim.runner import dnn_sweep
from repro.sim.scheduler import (
    dnn_spec,
    gact_profile_spec,
    gop_profile_spec,
    graph_spec,
    prefetch_artifacts,
    prefetch_sweeps,
)

_QUICK_SPECS = (
    dnn_spec("AlexNet", "Cloud"),
    dnn_spec("AlexNet", "Edge"),
    dnn_spec("AlexNet", "Cloud", training=True),
    dnn_spec("DLRM", "Cloud"),
    graph_spec("google-plus", "PR", iterations=2, scale_divisor=256),
    graph_spec("google-plus", "BFS", iterations=2, scale_divisor=256),
)

#: The quick sweeps plus the functional-pipeline artifacts (fig16/fig19).
_QUICK_ARTIFACTS = _QUICK_SPECS + (
    gact_profile_spec("chrY", "PacBio", 2),
    gact_profile_spec("chrY", "ONT1D", 2),
    gop_profile_spec("IBPB", 8, 8),
)


def test_warm_disk_cache_rerun(benchmark, disk_cache):
    """Quick-suite rerun from a warm disk cache: restores, prices nothing."""
    prefetch_sweeps(_QUICK_SPECS, jobs=1)  # cold pass fills both tiers

    def warm_rerun():
        disk_cache.clear()  # simulate a fresh process: memory tier gone
        summary = prefetch_sweeps(_QUICK_SPECS, jobs=1)
        return summary

    summary = benchmark(warm_rerun)
    assert summary["cached"] == len(_QUICK_SPECS)
    assert summary["priced"] == 0
    assert disk_cache.stats()["trace_misses"] == 0  # zero traces priced


def test_cross_workload_prefetch_cold(benchmark, disk_cache):
    """Cold cross-workload fan-out of the quick suite (shared pool when
    cores allow, inline otherwise — the recorded number tracks both)."""

    def cold_prefetch():
        disk_cache.clear()
        for pattern in ("*.json", "*.bin"):
            for spill in disk_cache.cache_dir.glob(pattern):
                spill.unlink()
        return prefetch_sweeps(_QUICK_SPECS, jobs=4)

    summary = benchmark(cold_prefetch)
    assert summary["priced"] == len(_QUICK_SPECS)


def test_warm_artifact_graph_rerun(benchmark, disk_cache):
    """Full artifact graph (sweeps + functional profiles) from a warm disk
    cache: restores everything, computes nothing."""
    prefetch_artifacts(_QUICK_ARTIFACTS, jobs=1)  # cold pass fills both tiers

    def warm_rerun():
        disk_cache.clear()  # simulate a fresh process: memory tier gone
        return prefetch_artifacts(_QUICK_ARTIFACTS, jobs=1)

    summary = benchmark(warm_rerun)
    assert summary["cached"] == len(_QUICK_ARTIFACTS)
    assert summary["priced"] == 0
    assert summary["profiles_built"] == 0
    assert disk_cache.stats()["trace_misses"] == 0
    assert disk_cache.miss_kinds.get("profile", 0) == 0


def test_prefetched_sweeps_serve_the_drivers(disk_cache):
    """After a prefetch, a driver-side sweep is a pure cache hit."""
    prefetch_sweeps(_QUICK_SPECS, jobs=1)
    before = disk_cache.stats()["misses"]
    sweep = dnn_sweep("AlexNet", "Cloud")
    assert disk_cache.stats()["misses"] == before
    assert sweep.normalized_time("MGX") < sweep.normalized_time("BP")
