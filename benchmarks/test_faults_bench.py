"""Fault-injection layer overhead pins.

The chaos layer's contract is that it costs nothing when disabled: the
``maybe_fault`` hot path is a single module-global ``None`` check, and a
drain with no plan installed must run at the same speed as one built
before the layer existed.  Both properties get a recorded number here so
the bench-trend gate catches an accidental slow path (say, an
unconditional spec parse or env lookup per call).
"""

from __future__ import annotations

from repro.sim import faults
from repro.sim.scheduler import dnn_spec, graph_spec, prefetch_sweeps

_QUICK_SPECS = (
    dnn_spec("AlexNet", "Cloud"),
    dnn_spec("AlexNet", "Edge"),
    dnn_spec("DLRM", "Cloud"),
    graph_spec("google-plus", "PR", iterations=2, scale_divisor=256),
)


def test_faults_disabled_hot_path(benchmark):
    """A million ``maybe_fault`` probes with no plan installed."""
    faults.install(None)
    assert faults.active_plan() is None

    def probe_loop():
        probe = faults.maybe_fault
        for n in range(1_000_000):
            probe("compute", "bench-job", attempt=n)

    benchmark(probe_loop)


def test_faults_disabled_warm_rerun(benchmark, disk_cache):
    """Warm quick-suite rerun with the fault layer explicitly disabled —
    directly comparable to the scheduler warm-rerun number: the layer
    being linked in must not tax the cache/queue/compute seams."""
    faults.install(None)
    prefetch_sweeps(_QUICK_SPECS, jobs=1)  # cold pass fills both tiers

    def warm_rerun():
        disk_cache.clear()  # fresh process: memory tier gone
        return prefetch_sweeps(_QUICK_SPECS, jobs=1)

    summary = benchmark(warm_rerun)
    assert summary["cached"] == len(_QUICK_SPECS)
    assert summary["priced"] == 0
