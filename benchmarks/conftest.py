"""Benchmark-suite configuration.

Each benchmark regenerates one paper figure (quick workloads inside the
timed body) and asserts the headline property of that figure afterwards,
so `pytest benchmarks/ --benchmark-only` both times the harness and
re-validates the reproduction.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.benchmark)


@pytest.fixture
def disk_cache(tmp_path):
    """TRACE_CACHE with a disk tier under a temporary directory."""
    from repro.sim.runner import TRACE_CACHE

    saved_dir = TRACE_CACHE.cache_dir
    TRACE_CACHE.clear()
    TRACE_CACHE.set_cache_dir(tmp_path / "cache")
    yield TRACE_CACHE
    TRACE_CACHE.set_cache_dir(saved_dir)
    TRACE_CACHE.clear()
