"""Benchmark-suite configuration.

Each benchmark regenerates one paper figure (quick workloads inside the
timed body) and asserts the headline property of that figure afterwards,
so `pytest benchmarks/ --benchmark-only` both times the harness and
re-validates the reproduction.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.benchmark)


@pytest.hookimpl(optionalhook=True)
def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp the pricing-engine backend into every saved benchmark.

    ``bench_trend.py`` treats a backend change as "no baseline, record
    only", so a python-engine run never silently compares against a
    native-engine baseline.  Benchmarks that force a backend (the engine
    microbenchmarks) set ``extra_info`` themselves and win over the
    session-wide default.
    """
    from repro.core.engine_backend import active_backend

    default = active_backend()
    for bench in output_json.get("benchmarks", []):
        bench.setdefault("extra_info", {}).setdefault(
            "engine_backend", default)


@pytest.fixture
def disk_cache(tmp_path):
    """TRACE_CACHE with a disk tier under a temporary directory."""
    from repro.sim.runner import TRACE_CACHE

    saved_dir = TRACE_CACHE.cache_dir
    TRACE_CACHE.clear()
    TRACE_CACHE.set_cache_dir(tmp_path / "cache")
    yield TRACE_CACHE
    TRACE_CACHE.set_cache_dir(saved_dir)
    TRACE_CACHE.clear()
