"""Benchmark-suite configuration.

Each benchmark regenerates one paper figure (quick workloads inside the
timed body) and asserts the headline property of that figure afterwards,
so `pytest benchmarks/ --benchmark-only` both times the harness and
re-validates the reproduction.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.benchmark)
