"""Benchmark: regenerate Fig. 13 (DNN normalized execution time)."""

from repro.experiments.registry import run_experiment


def test_fig13_dnn_perf(benchmark):
    result = benchmark(run_experiment, "fig13", quick=True)
    for row in result.rows:
        assert row["MGX"] <= row["MGX_VN"] <= row["MGX_MAC"] <= row["BP"]
        assert row["MGX"] < 1.08
