"""Serving front-end throughput and tail-latency pins.

Each benchmark drives the whole serving stack — attested handshakes,
sealed records, admission, coalescing, batched pricing — through the
load generator and records the wall time of a fixed request schedule.
The loadgen's own numbers (sustained req/s, p50/p95/p99 latency) ride
along in ``extra_info`` so the trend history carries them, and the
``serve_`` fullname prefix puts these entries under the bench-trend
gate next to the scheduler/engine families.
"""

from __future__ import annotations

from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.server import ServerConfig

#: Cheap, cache-friendly mix: every kind the catalog serves.
_MIX = (
    ("dnn-alexnet", "MGX"),
    ("dnn-dlrm", "NP"),
    ("pagerank", "MGX"),
    ("bfs", "MGX"),
    ("genome-align", None),
    ("video-decode", None),
)


def _attach(benchmark, report) -> None:
    benchmark.extra_info.update({
        "throughput_rps": round(report.throughput_rps, 2),
        "latency_p50_ms": round(report.latency_ms["p50"], 3),
        "latency_p95_ms": round(report.latency_ms["p95"], 3),
        "latency_p99_ms": round(report.latency_ms["p99"], 3),
        "busy": report.busy,
    })


def test_serve_closed_loop_throughput(benchmark):
    """16 tenants, one request in flight each, full catalog mix."""
    config = LoadConfig(tenants=16, requests=96, mix=_MIX, seed=42)
    report = benchmark(run_load, config)
    _attach(benchmark, report)
    assert report.lost == 0
    assert report.ok == report.sent
    assert report.payload_mismatches == 0


def test_serve_open_loop_offered_load(benchmark):
    """Fixed-rate arrivals against a bounded queue: measures the serve
    path under pressure, BUSY replies included (they are answered work,
    and answering them cheaply is part of the admission contract)."""
    config = LoadConfig(
        tenants=8, requests=64, mix=_MIX, mode="open", rate=400.0, seed=42,
        server=ServerConfig(queue_depth=16, per_tenant_inflight=2),
    )
    report = benchmark(run_load, config)
    _attach(benchmark, report)
    assert report.lost == 0
    assert report.ok + report.busy + report.errors == report.sent
    assert report.errors == 0


def test_serve_coalesced_hot_key(benchmark):
    """Every tenant hammers the same artifact: the single-flight +
    warm-cache path should dominate, with exactly one cold pricing per
    process at most."""
    config = LoadConfig(
        tenants=12, requests=72,
        mix=(("genome-align", None),), seed=42,
    )
    report = benchmark(run_load, config)
    _attach(benchmark, report)
    assert report.lost == 0
    stats = report.server_stats
    assert stats["computed"] <= 1
    assert (stats["computed"] + stats["warm_hits"]
            + stats["coalesced"]) == report.ok
