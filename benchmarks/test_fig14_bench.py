"""Benchmark: regenerate Fig. 14 (graph accelerator traffic + time)."""

from repro.experiments.registry import run_experiment


def test_fig14_graph(benchmark):
    result = benchmark(run_experiment, "fig14", quick=True)
    for row in result.rows:
        assert row["traffic_MGX"] < 1.05 < row["traffic_BP"]
        assert row["time_MGX"] < row["time_BP"]
