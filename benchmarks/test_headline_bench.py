"""Benchmark: regenerate the headline overhead table (abstract / §IX)."""

from repro.experiments.registry import run_experiment


def test_headline_overheads(benchmark):
    result = benchmark(run_experiment, "headline", quick=True)
    # MGX cuts protection overhead by >5x on both accelerator families.
    assert result.summary["DNN_BP_avg_pct"] > 5 * result.summary["DNN_MGX_avg_pct"]
    assert result.summary["Graph_BP_avg_pct"] > 5 * result.summary["Graph_MGX_avg_pct"]
