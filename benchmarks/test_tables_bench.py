"""Benchmark: warm artifact-graph rerun of the ablations/extras families.

The full-suite coverage counterpart of ``test_scheduler_bench``'s warm
figure-graph number: every ablation and extra study is a table artifact
in the job graph, so a warm ``--cache-dir`` rerun must restore all of
them (and the suite sweeps the extras assemble from) without computing
anything.  Feeds the ``bench_trend.py`` CI gate (filter term:
``tables_graph``).
"""

from __future__ import annotations

from repro.experiments.registry import suite_specs
from repro.sim.scheduler import prefetch_artifacts


def test_warm_tables_graph_rerun(benchmark, disk_cache):
    """Ablation/extra tables from a warm disk cache: zero recomputation."""
    specs = suite_specs(("ablations", "extras"), quick=True)
    prefetch_artifacts(specs, jobs=1)  # cold pass fills both tiers

    def warm_rerun():
        disk_cache.clear()  # simulate a fresh process: memory tier gone
        return prefetch_artifacts(specs, jobs=1)

    summary = benchmark(warm_rerun)
    assert summary["cached"] == summary["workloads"]
    assert summary["priced"] == 0
    assert summary["profiles_built"] == 0
    assert disk_cache.stats()["trace_misses"] == 0
    assert disk_cache.miss_kinds.get("profile", 0) == 0
