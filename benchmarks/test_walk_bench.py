"""Benchmark: whole-walk call overhead on a deep, hit-heavy tree.

The whole-walk ABI exists to shrink per-level boundary crossings: a
tree walk used to cost one engine call per level, so deep trees with
warm (hit-heavy) upper levels were dominated by call overhead rather
than cache work.  This microbenchmark isolates exactly that shape — a
six-level tree, warmed once, then thousands of small-seed walks that
mostly hit at the first level — once per available backend.  Entries
record their backend in ``extra_info`` so ``bench_trend.py`` (filter
term: ``walk_``) tracks each implementation separately and treats
backend changes as record-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine_backend import TreeGeometry, create_engine, native_available
from repro.core.lru_engine import EventSink

BACKENDS = ("python",) + (("native",) if native_available() else ())

LINE = 64
ARITY = 4
DEPTH = 6
LEAF_LINES = ARITY**DEPTH  # 4096 leaves, levels of 1024/256/64/16/4 above
CAPACITY = 8192  # roomy: upper levels stay resident between walks


def _deep_geometry() -> TreeGeometry:
    """A six-level 4:1 tree as a flat region table."""
    regions = []
    base = 0
    size = LEAF_LINES
    while size > 1:
        end = base + size * LINE
        regions.append((base, end, end, ARITY))
        base, size = end, size // ARITY
    return TreeGeometry(tuple(regions), LINE)


def _make_engine(backend):
    return create_engine(CAPACITY, geometry=_deep_geometry(), backend=backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_walk_call_overhead(benchmark, backend):
    """Thousands of small-seed walks on a warm tree: the per-call cost."""
    benchmark.extra_info["engine_backend"] = backend
    seeds = [np.array([(i * 19) % LEAF_LINES], dtype=np.int64) * LINE
             for i in range(2000)]

    def walks():
        engine = _make_engine(backend)
        warm = EventSink()
        # One cold full walk per leaf stride warms every stored level.
        engine.walk_tree(np.arange(LEAF_LINES, dtype=np.int64) * LINE, warm)
        sink = EventSink()
        for seed in seeds:
            engine.walk_tree(seed, sink)
        return sink

    sink = benchmark.pedantic(walks, rounds=3, iterations=1, warmup_rounds=1)
    # Warm tree: the overwhelming share of walk probes hit and stop at
    # the first level — the benchmark times call overhead, not misses.
    assert sink.hits > sink.miss_count


@pytest.mark.parametrize("backend", BACKENDS)
def test_walk_deep_miss_cascade(benchmark, backend):
    """Cold cascades: every walk climbs all six levels to the root."""
    benchmark.extra_info["engine_backend"] = backend
    lines = np.arange(LEAF_LINES, dtype=np.int64) * LINE

    def cascades():
        engine = create_engine(LEAF_LINES // 8, geometry=_deep_geometry(),
                               backend=backend)
        sink = EventSink()
        for _ in range(3):
            engine.walk_tree(lines, sink)
        return sink

    sink = benchmark.pedantic(cascades, rounds=3, iterations=1,
                              warmup_rounds=1)
    assert sink.miss_count > LEAF_LINES // ARITY
