"""Benchmark: cold full-suite wall time (reuse-distance engine headline).

The other figure benchmarks run warm (the trace cache carries state
between rounds); this one regenerates *every* quick-mode figure with the
cache disabled, which is exactly the ``--no-cache --jobs 1`` cold path
the reuse-distance LRU engine was built to accelerate.  It feeds the
``bench_trend.py`` CI gate (filter term: ``cold_suite``) so regressions
in the engine, the batched pricing pipeline, or the graph/genome
builders fail the build.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.sim.runner import TRACE_CACHE


def test_cold_suite_serial_sweep(benchmark):
    """Every figure, serially, from scratch: the cold wall-time gate."""

    def cold_run():
        enabled = TRACE_CACHE.enabled
        TRACE_CACHE.clear()
        TRACE_CACHE.enabled = False
        try:
            return [run_experiment(eid, quick=True, prefetch=False)
                    for eid in EXPERIMENTS]
        finally:
            TRACE_CACHE.enabled = enabled

    results = benchmark.pedantic(cold_run, rounds=3, iterations=1,
                                 warmup_rounds=1)
    assert len(results) == len(EXPERIMENTS)
    for result in results:
        assert result.rows
