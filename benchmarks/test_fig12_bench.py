"""Benchmark: regenerate Fig. 12 (DNN memory-traffic increase)."""

from repro.experiments.registry import run_experiment


def test_fig12_dnn_traffic(benchmark):
    result = benchmark(run_experiment, "fig12", quick=True)
    for row in result.rows:
        assert row["MGX"] < 1.10 < row["BP"]
