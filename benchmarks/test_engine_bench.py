"""Benchmarks: LRU-engine backends and the streaming trace path.

Three engine microbenchmarks time the stream shapes the pricing core
sees — capacity floods, dirty chain-heavy conveyors, and short
walk-style scalar runs — once per available backend, so the
``bench_trend.py`` gate (filter term: ``engine``) tracks the compiled
and reference implementations separately (each entry records its
backend in ``extra_info``).  The streaming benchmark times a chunked
trace through the session pricing path and asserts the headline memory
property: the streamed peak stays several times below what
materializing every batch costs.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.access import AccessBatch, AccessKind, DataClass, MemAccess, Phase
from repro.core.engine_backend import TreeGeometry, create_engine, native_available
from repro.core.lru_engine import EventSink
from repro.core.schemes.counter_mode import FINE_MAC_POLICY, CounterModeProtection
from repro.sim.runner import StreamingTrace, dnn_workload

BACKENDS = ("python",) + (("native",) if native_available() else ())

CAPACITY = 2048
LEAF_LINES = 4 * CAPACITY
LINE = 64


def _geometry() -> TreeGeometry:
    leaf_end = LEAF_LINES * LINE
    l1_end = leaf_end + (LEAF_LINES // 8) * LINE
    return TreeGeometry(((0, leaf_end, leaf_end, 8),
                         (leaf_end, l1_end, l1_end, 8)), LINE)


@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_flood(benchmark, backend):
    """Clean capacity floods: the bulk-replace fast path."""
    benchmark.extra_info["engine_backend"] = backend
    lines = np.arange(LEAF_LINES, dtype=np.int64) * LINE

    def flood():
        engine = create_engine(CAPACITY, geometry=_geometry(), backend=backend)
        sink = EventSink()
        for _ in range(3):
            engine.probe_lines(lines, False, sink)
        return sink

    sink = benchmark.pedantic(flood, rounds=3, iterations=1, warmup_rounds=1)
    assert sink.miss_count == 3 * LEAF_LINES  # every pass floods

@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_chain_heavy(benchmark, backend):
    """Dirty conveyor: every eviction walks a write-back parent chain."""
    benchmark.extra_info["engine_backend"] = backend
    lines = np.arange(LEAF_LINES, dtype=np.int64) * LINE

    def churn():
        engine = create_engine(CAPACITY, geometry=_geometry(), backend=backend)
        sink = EventSink()
        for _ in range(2):
            engine.probe_lines(lines, True, sink)
        return sink

    sink = benchmark.pedantic(churn, rounds=3, iterations=1, warmup_rounds=1)
    assert sink.writeback_count > LEAF_LINES


@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_walk_runs(benchmark, backend):
    """Short ascending runs, the shape of integrity-tree walk probes."""
    benchmark.extra_info["engine_backend"] = backend
    runs = []
    for i in range(2000):
        start = (i * 37) % (LEAF_LINES - 8)
        runs.append((np.arange(start, start + 8, dtype=np.int64)) * LINE)

    def walk():
        engine = create_engine(CAPACITY, geometry=_geometry(), backend=backend)
        sink = EventSink()
        for run in runs:
            engine.probe_lines(run, False, sink)
        return sink

    sink = benchmark.pedantic(walk, rounds=3, iterations=1, warmup_rounds=1)
    assert sink.miss_count > 0


def _stream_phases(n_phases: int = 96, accesses_per_phase: int = 400):
    """Deterministic generator factory for a multi-phase synthetic trace."""

    def build():
        for i in range(n_phases):
            base = (i % 8) * 32 * 1024 * 1024
            accesses = [
                MemAccess(base + j * 4096, 4096,
                          AccessKind.WRITE if j % 4 == 0 else AccessKind.READ,
                          DataClass.FEATURE, vn=i + 1)
                for j in range(accesses_per_phase)
            ]
            yield Phase(f"phase{i}", 1000.0, accesses)

    return build


def _stream_scheme() -> CounterModeProtection:
    return CounterModeProtection(
        "MGX", vn_onchip=False, mac_policy=FINE_MAC_POLICY,
        protected_bytes=256 * 1024 * 1024, cache_bytes=32 * 1024,
    )


def _traced_peak(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_streaming_trace_memory_bound(benchmark):
    """A chunked trace prices in a fraction of its materialized size."""
    trace = StreamingTrace(_stream_phases())
    model = dnn_workload("AlexNet", "Cloud", use_cache=False).performance_model()

    def materialize():
        return [(p, AccessBatch.from_phase(p)) for p in trace.iter_phases()]

    def streamed():
        return model.run(trace.iter_phases(), _stream_scheme())

    materialized_peak = _traced_peak(materialize)
    streamed_peak = _traced_peak(streamed)
    assert materialized_peak >= 4 * streamed_peak, (
        f"streamed peak {streamed_peak} vs materialized {materialized_peak}"
    )

    result = benchmark.pedantic(streamed, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert result.total_cycles > 0
