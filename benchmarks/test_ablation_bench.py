"""Benchmarks: ablation sweeps over the design choices (DESIGN.md §5).

The study functions are called directly (not through ``run_ablation``,
which serves the table from the shared artifact cache after the first
round): the benchmark must keep measuring the computation.
"""

from repro.experiments.ablations import ABLATIONS


def run_ablation(name: str, quick: bool):
    return ABLATIONS[name](quick=quick)


def test_mac_granularity_sweep(benchmark):
    result = benchmark(run_ablation, "mac-granularity", quick=True)
    # Coarser MACs monotonically reduce traffic; 512 B captures most of it.
    traffics = result.column("traffic")
    assert all(a >= b for a, b in zip(traffics, traffics[1:]))
    assert result.summary["traffic_64"] > 1.10
    assert result.summary["traffic_512"] < 1.03


def test_cache_size_sweep(benchmark):
    result = benchmark(run_ablation, "cache-size", quick=True)
    # Growing the cache barely helps on streaming DNN traffic (§VI-A).
    assert result.summary["improvement_pct"] < 25.0


def test_dram_grade_sweep(benchmark):
    result = benchmark(run_ablation, "dram-grade", quick=True)
    for row in result.rows:
        assert row["MGX_time"] < row["BP_time"]


def test_crypto_efficiency_sweep(benchmark):
    result = benchmark(run_ablation, "crypto-efficiency", quick=True)
    times = result.column("MGX_time")
    # Overhead grows as the engine is provisioned further below peak.
    assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
    assert times[0] < 1.03  # fully provisioned: metadata-only overhead
