"""Benchmark: regenerate Fig. 3 (traditional-protection traffic breakdown)."""

from repro.experiments.registry import run_experiment


def test_fig03_traffic_breakdown(benchmark):
    result = benchmark(run_experiment, "fig03", quick=True)
    # Every workload pays ≥ ~20% under BP, and VN(+tree) ≥ MAC.
    assert all(t > 20.0 for t in result.column("total_pct"))
    assert result.mean("vn_pct") > result.mean("mac_pct")
