"""Benchmarks: the beyond-the-figures studies (§V-A/B discussion points).

The study functions are called directly (not through ``run_extra``,
which serves the table from the shared artifact cache after the first
round): the benchmark must keep measuring the computation.
"""

from repro.experiments.extras import EXTRAS, batch_sweep


def run_extra(name: str, quick: bool):
    return EXTRAS[name](quick=quick)


def test_batch_study(benchmark):
    # use_cache=False: the study now rides the suite-wide dnn_sweep
    # cache, which would turn every round after the first into a lookup.
    result = benchmark(batch_sweep, quick=True, use_cache=False)
    assert abs(result.summary["BP_batch_max"] - result.summary["BP_batch1"]) < 0.05


def test_spmspv_study(benchmark):
    result = benchmark(run_extra, "spmspv", quick=True)
    assert result.summary["max_MGX"] < 1.10


def test_sssp_study(benchmark):
    result = benchmark(run_extra, "sssp", quick=True)
    for row in result.rows:
        assert row["MGX"] < row["BP"]


def test_dataflow_study(benchmark):
    result = benchmark(run_extra, "dataflow", quick=True)
    for row in result.rows:
        assert row["MGX"] < row["BP"]
