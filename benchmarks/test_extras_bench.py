"""Benchmarks: the beyond-the-figures studies (§V-A/B discussion points)."""

from repro.experiments.extras import run_extra


def test_spmspv_study(benchmark):
    result = benchmark(run_extra, "spmspv", quick=True)
    assert result.summary["max_MGX"] < 1.10


def test_sssp_study(benchmark):
    result = benchmark(run_extra, "sssp", quick=True)
    for row in result.rows:
        assert row["MGX"] < row["BP"]


def test_batch_study(benchmark):
    result = benchmark(run_extra, "batch", quick=True)
    assert abs(result.summary["BP_batch_max"] - result.summary["BP_batch1"]) < 0.05


def test_dataflow_study(benchmark):
    result = benchmark(run_extra, "dataflow", quick=True)
    for row in result.rows:
        assert row["MGX"] < row["BP"]
