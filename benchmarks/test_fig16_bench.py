"""Benchmark: regenerate Fig. 16 (GACT normalized execution time)."""

from repro.experiments.registry import run_experiment


def test_fig16_gact(benchmark):
    result = benchmark(run_experiment, "fig16", quick=True)
    assert result.summary["avg_MGX_VN"] < result.summary["avg_BP"]
    assert 1.01 < result.summary["avg_MGX_VN"] < 1.08
    assert 1.08 < result.summary["avg_BP"] < 1.20
