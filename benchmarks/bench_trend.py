"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/bench_trend.py BASELINE.json CURRENT.json \
        [--threshold 0.25] [--filter scheduler sweep]

Benchmarks are matched by ``fullname``; only names containing one of the
``--filter`` substrings are compared (all benchmarks when no filter is
given).  A benchmark regresses when its current mean exceeds the
baseline mean by more than ``--threshold`` (a fraction).  A missing
baseline file exits 0 — the first run of a branch has nothing to
compare against — and a benchmark the restored baseline doesn't know
(a new benchmark, a rename, the first run after a ``--filter`` change)
is treated the same way per name: **no baseline, record only**.  It is
printed, lands in the refreshed baseline, and never fails the build;
neither do names only the baseline has, nor baseline entries without
usable stats (an errored run must not poison the next comparison).

Every entry carries the pricing-engine backend it ran under (the
``engine_backend`` key ``benchmarks/conftest.py`` stamps into
``extra_info``).  A benchmark whose backend changed between baseline
and current — a runner gaining or losing the C toolchain, or a forced
``REPRO_ENGINE`` — is also record-only: python and native timings are
never compared against each other.

Exit status: 0 when no compared benchmark regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, tuple[float, str | None]]:
    """``fullname -> (mean, engine_backend)`` for usable benchmarks.

    Entries without a name or a mean (errored or interrupted runs spill
    partial documents) are skipped rather than crashing the gate.  The
    backend is ``None`` for documents written before it was recorded.
    """
    doc = json.loads(path.read_text())
    means: dict[str, tuple[float, str | None]] = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("fullname")
        mean = bench.get("stats", {}).get("mean")
        if name is None or not isinstance(mean, (int, float)):
            continue
        backend = bench.get("extra_info", {}).get("engine_backend")
        means[name] = (float(mean), backend)
    return means


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional mean-time increase "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--filter", nargs="*", default=[], metavar="SUBSTR",
                        help="only compare benchmarks whose fullname contains "
                             "one of these substrings")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"bench-trend: no baseline at {args.baseline}; skipping "
              "comparison (first run)")
        return 0
    baseline = load_means(args.baseline)
    current = load_means(args.current)

    def selected(name: str) -> bool:
        return not args.filter or any(term in name for term in args.filter)

    regressions = []
    print(f"bench-trend: threshold +{args.threshold:.0%}, "
          f"filter {args.filter or 'ALL'}")
    for name in sorted(set(baseline) | set(current)):
        if not selected(name):
            continue
        old_entry, new_entry = baseline.get(name), current.get(name)
        if new_entry is None:
            print(f"  [  retired] {name} (only in baseline)")
            continue
        new, new_backend = new_entry
        if old_entry is None or old_entry[0] <= 0.0:
            print(f"  [ recorded] {name}: {new * 1e3:.2f} ms "
                  "(no baseline, record only)")
            continue
        old, old_backend = old_entry
        if old_backend != new_backend:
            print(f"  [ recorded] {name}: {new * 1e3:.2f} ms "
                  f"(engine backend {old_backend} -> {new_backend}, "
                  "record only)")
            continue
        ratio = new / old
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            regressions.append((name, old, new, ratio))
        print(f"  [{verdict:>10s}] {name}: {old * 1e3:.2f} ms -> "
              f"{new * 1e3:.2f} ms ({ratio:.2f}x baseline)")

    if regressions:
        print(f"bench-trend: {len(regressions)} benchmark(s) regressed by "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for name, old, new, ratio in regressions:
            print(f"  {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print("bench-trend: no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
