"""Micro-benchmarks of the substrates (throughput sanity, not figures)."""

import numpy as np

from repro.common.units import MIB
from repro.core.access import DataClass, read, write
from repro.core.schemes import make_baseline, make_mgx
from repro.crypto.aes_batch import AesBatch
from repro.dram.model import DramConfig, DramModel, TrafficProfile


def test_batch_aes_throughput(benchmark):
    """Vectorized AES keystream generation (functional-engine hot path)."""
    cipher = AesBatch(bytes(16))
    blocks = np.random.default_rng(0).integers(0, 256, size=(4096, 16),
                                               dtype=np.uint8)
    out = benchmark(cipher.encrypt_blocks, blocks)
    assert out.shape == blocks.shape


def test_mgx_scheme_processing_rate(benchmark):
    """MGX traffic expansion is pure arithmetic per access."""
    scheme = make_mgx(1024 * MIB)
    accesses = [read(i * 4 * MIB % (512 * MIB), 4 * MIB, DataClass.FEATURE)
                for i in range(64)]

    def run():
        scheme.reset()
        total = 0
        for access in accesses:
            total += scheme.process(access).total_bytes
        return total

    total = benchmark(run)
    assert total > 64 * 4 * MIB


def test_baseline_scheme_processing_rate(benchmark):
    """BP pays per-metadata-line cache simulation (flood fast path)."""
    scheme = make_baseline(1024 * MIB)
    accesses = [write(i * 4 * MIB % (512 * MIB), 4 * MIB, DataClass.FEATURE)
                for i in range(64)]

    def run():
        scheme.reset()
        total = 0
        for access in accesses:
            total += scheme.process(access).total_bytes
        total += scheme.finish().total_bytes
        return total

    total = benchmark(run)
    assert total > 64 * 4 * MIB


def test_detailed_dram_request_rate(benchmark):
    """Detailed DDR4 model servicing a 64 K-request random stream."""
    model = DramModel(DramConfig(channels=4))
    rng = np.random.default_rng(3)
    addresses = (rng.integers(0, 1 << 30, size=8192) & ~np.int64(63)).tolist()

    def run():
        from repro.dram.controller import DramRequest

        sim = model.detailed()
        return sim.service([DramRequest(int(a)) for a in addresses])

    cycles = benchmark(run)
    fast = model.cycles_for(TrafficProfile(scattered_bytes=8192 * 64))
    assert abs(cycles / fast - 1) < 0.15
