"""Benchmarks of the columnar binary trace spill codec (disk format v3).

Times the four legs of the cache plane's trace path — encode, cold
decode, warm mmap load through the disk tier, and the fan-out load under
a 2-job pool — on a suite-shaped trace (every quick training workload
concatenated), and asserts the format's two contracts: the binary spill
is smaller than its v2 JSON form and decodes at least 5x faster.
"""

from __future__ import annotations

import timeit

import pytest

from repro.sim.runner import (
    BatchedTrace,
    _decode_trace,
    _encode_trace,
    dnn_workload,
    encode_trace_v2,
    sweep_schemes,
)

#: Minimum cold-decode advantage of the columnar layout over v2 JSON.
DECODE_SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def suite_trace() -> BatchedTrace:
    """One suite-shaped trace: the quick training workloads, concatenated."""
    phases, batches = [], []
    for name in ("ResNet", "GoogleNet", "SegNet", "MobileNet", "BERT"):
        trace = dnn_workload(name, "Cloud", training=True,
                             use_cache=False).trace
        phases += trace.phases
        batches += trace.batches
    return BatchedTrace(phases, batches)


def test_spill_encode(benchmark, suite_trace):
    """Vectorized columnar encode; the payload must undercut v2 JSON."""
    payload = benchmark(_encode_trace, suite_trace)
    assert len(payload) < len(encode_trace_v2(suite_trace))


def test_spill_decode_cold(benchmark, suite_trace):
    """Cold v3 decode, and the headline >=5x advantage over v2 JSON."""
    payload = _encode_trace(suite_trace)
    decoded = benchmark(_decode_trace, payload)
    assert decoded.total_accesses == suite_trace.total_accesses
    v2_payload = encode_trace_v2(suite_trace)
    v2_best = min(timeit.repeat(lambda: _decode_trace(v2_payload),
                                number=1, repeat=5))
    assert v2_best >= DECODE_SPEEDUP_FLOOR * benchmark.stats.stats.min


def test_spill_decode_v2_json(benchmark, suite_trace):
    """The legacy JSON decode, recorded so the trend shows the gap."""
    payload = encode_trace_v2(suite_trace)
    decoded = benchmark(_decode_trace, payload)
    assert decoded.total_accesses == suite_trace.total_accesses


def test_spill_warm_mmap_load(benchmark, disk_cache, suite_trace):
    """Warm load through the disk tier: mmap + zero-copy column views."""
    key = ("bench-trace", "spill-warm")
    disk_cache.get_or_build(key, lambda: suite_trace)

    def warm_load():
        disk_cache.clear()  # fresh-process simulation: memory tier gone
        return disk_cache.peek(key)

    loaded = benchmark(warm_load)
    assert loaded is not None
    assert not loaded.batches[0].address.flags.writeable  # mmap view
    assert loaded.total_accesses == suite_trace.total_accesses


def test_spill_fanout_load_jobs2(benchmark, disk_cache, suite_trace):
    """Scheme fan-out under --jobs 2: both workers price the same spilled
    trace (shared pool when cores allow, inline otherwise — the recorded
    number tracks both)."""
    workload = dnn_workload("ResNet", "Cloud", training=True)
    model = workload.performance_model()

    def fanout():
        return sweep_schemes(workload.label, workload.trace.phases, model,
                             workload.protected_bytes,
                             batches=workload.trace.batches, jobs=2)

    reference = sweep_schemes(workload.label, workload.trace.phases, model,
                              workload.protected_bytes,
                              batches=workload.trace.batches)
    sweep = benchmark(fanout)
    assert set(sweep.results) == set(reference.results)
    for name, result in reference.results.items():
        assert sweep.results[name].total_cycles == result.total_cycles
