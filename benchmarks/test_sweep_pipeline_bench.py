"""Benchmarks of the batched sweep pipeline (trace reuse + vectorized pricing).

Times a full five-scheme ResNet-18 sweep with and without the trace
cache, so BENCH_* tracks the pipeline speedup, and asserts that the
batched fast path measurably beats the seed per-access loop.
"""

import time
from dataclasses import astuple

import numpy as np

from repro.common.units import MIB
from repro.core.access import AccessBatch, AccessKind, DataClass, MemAccess
from repro.core.schemes import ProtectionTraffic, make_mgx
from repro.sim.runner import SCHEMES, dnn_sweep, dnn_workload, sweep_schemes

_PROTECTED = 1024 * MIB


def _large_batch(n: int = 20000, seed: int = 0) -> AccessBatch:
    """A big mixed stream/gather batch (the shape of a production trace)."""
    rng = np.random.default_rng(seed)
    accesses = []
    for i in range(n):
        size = int(rng.integers(64, 64 * 1024))
        address = int(rng.integers(0, _PROTECTED - size))
        kind = AccessKind.WRITE if i % 3 == 0 else AccessKind.READ
        if i % 2 == 0:
            accesses.append(MemAccess(address, size, kind, DataClass.FEATURE))
        else:
            accesses.append(MemAccess(address, size, kind, DataClass.EMBEDDING,
                                      sequential=False, burst_bytes=512,
                                      spread_bytes=64 * MIB))
    return AccessBatch.from_accesses(accesses)


def test_sweep_with_trace_cache(benchmark):
    """Five-scheme ResNet sweep pricing a cached, pre-batched trace."""
    workload = dnn_workload("ResNet", "Cloud")  # cache warmed outside the timer

    def run():
        return sweep_schemes(
            workload.label,
            workload.trace.phases,
            workload.performance_model(),
            workload.protected_bytes,
            batches=workload.trace.batches,
        )

    sweep = benchmark(run)
    assert set(sweep.results) == set(SCHEMES)
    assert sweep.normalized_time("MGX") < sweep.normalized_time("BP")


def test_sweep_without_trace_cache(benchmark):
    """The seed pipeline: regenerate the trace for every sweep."""
    sweep = benchmark(lambda: dnn_sweep("ResNet", "Cloud", use_cache=False))
    assert set(sweep.results) == set(SCHEMES)


def test_trace_cache_speedup():
    """Reusing the cached sweep must beat regenerating it (wall clock)."""
    dnn_sweep("ResNet", "Cloud")  # warm the cache
    t0 = time.perf_counter()
    uncached = dnn_sweep("ResNet", "Cloud", use_cache=False)
    t_uncached = time.perf_counter() - t0
    t0 = time.perf_counter()
    cached = dnn_sweep("ResNet", "Cloud")
    t_cached = time.perf_counter() - t0
    assert t_cached < t_uncached
    for name in SCHEMES:
        assert (cached.results[name].traffic.total_bytes
                == uncached.results[name].traffic.total_bytes)


def test_vectorized_pricing_beats_per_access_loop():
    """MGX batch pricing must beat the seed object-at-a-time walk."""
    batch = _large_batch()
    accesses = batch.to_accesses()
    scheme = make_mgx(_PROTECTED)

    def loop() -> ProtectionTraffic:
        scheme.reset()
        traffic = ProtectionTraffic()
        for access in accesses:
            traffic.merge(scheme.process(access))
        return traffic

    def batched() -> ProtectionTraffic:
        scheme.reset()
        return scheme.price_batch(batch)

    expected = loop()
    actual = batched()
    assert astuple(actual) == astuple(expected)
    t_loop = min(_timed(loop) for _ in range(3))
    t_batch = min(_timed(batched) for _ in range(3))
    assert t_batch < t_loop, (t_batch, t_loop)


def test_vectorized_pricing_rate(benchmark):
    """Throughput of the columnar MGX fast path on a 20 K-access batch."""
    batch = _large_batch()
    scheme = make_mgx(_PROTECTED)

    def run():
        scheme.reset()
        return scheme.price_batch(batch).total_bytes

    total = benchmark(run)
    assert total > batch.total_data_bytes


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
