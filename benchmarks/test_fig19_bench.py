"""Benchmark: regenerate Fig. 19 (H.264 access pattern + functional check)."""

from repro.experiments.registry import run_experiment


def test_fig19_h264_pattern(benchmark):
    result = benchmark(run_experiment, "fig19", quick=True)
    assert result.summary["write_once_per_frame"] == 1.0
    assert result.summary["vn_monotonic_per_buffer"] == 1.0
    assert result.summary["functional_roundtrip"] == 1.0
