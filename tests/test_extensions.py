"""Extension features: extra studies, MobileNet, SSSP traces, DRAM latency."""

import pytest

from repro.dnn.accelerator import EDGE
from repro.dnn.layers import ConvLayer
from repro.dnn.models import build_model, mobilenet_v1
from repro.dnn.tracegen import DnnTraceGenerator
from repro.experiments.extras import EXTRAS, run_extra
from repro.graph.generators import uniform_random_graph
from repro.graph.graphlily import GraphAcceleratorConfig, GraphTraceGenerator
from repro.sim.runner import dnn_sweep, graph_sweep


class TestMobileNet:
    def test_builds_with_depthwise_groups(self):
        m = mobilenet_v1()
        depthwise = [
            l for l in m.layers
            if isinstance(l, ConvLayer) and l.groups == l.in_channels and l.groups > 1
        ]
        assert len(depthwise) == 13

    def test_parameter_count(self):
        """MobileNet-v1 has ~4.2 M parameters."""
        params = mobilenet_v1().total_weight_bytes // 2
        assert 3.5e6 < params < 5.0e6

    def test_macs_far_below_vgg(self):
        assert mobilenet_v1().total_macs < build_model("VGG").total_macs / 20

    def test_registered_in_zoo(self):
        assert build_model("MobileNet").name == "MobileNet"

    def test_trace_and_sweep(self):
        trace = DnnTraceGenerator(mobilenet_v1(), EDGE).inference()
        assert trace.total_bytes > 0
        sweep = dnn_sweep("MobileNet", "Edge")
        assert sweep.normalized_time("MGX") < sweep.normalized_time("BP")


class TestSsspTrace:
    def test_sssp_trace_runs(self):
        graph = uniform_random_graph(4096, 32768, seed=3)
        gen = GraphTraceGenerator(graph, GraphAcceleratorConfig())
        trace = gen.sssp_trace(source=0, max_iterations=6)
        assert 1 <= trace.iterations <= 6
        assert trace.total_bytes > 0

    def test_sssp_sweep_matches_pr_shape(self):
        pr = graph_sweep("google-plus", "PR", iterations=3, scale_divisor=256)
        sssp = graph_sweep("google-plus", "SSSP", iterations=3, scale_divisor=256)
        assert sssp.normalized_time("BP") == pytest.approx(
            pr.normalized_time("BP"), rel=0.05
        )


class TestExtraStudies:
    def test_registry(self):
        assert set(EXTRAS) == {"spmspv", "sssp", "batch", "dataflow", "storage"}
        with pytest.raises(KeyError):
            run_extra("nope")

    def test_spmspv_overhead_stays_low(self):
        result = run_extra("spmspv", quick=True)
        assert result.summary["max_MGX"] < 1.10
        for row in result.rows:
            assert row["MGX"] < row["BP"]

    def test_sssp_study(self):
        result = run_extra("sssp", quick=True)
        for row in result.rows:
            assert row["MGX"] < row["BP"]

    def test_batch_overhead_stable(self):
        """Protection overhead is batch-stable: weights amortize but the
        feature traffic (with its higher write-side BP cost) grows in
        step, so the ratio moves only slightly."""
        result = run_extra("batch", quick=True)
        assert abs(
            result.summary["BP_batch_max"] - result.summary["BP_batch1"]
        ) < 0.05
        for row in result.rows:
            assert row["MGX"] < row["BP"]

    def test_dataflow_story_stable(self):
        result = run_extra("dataflow", quick=True)
        for row in result.rows:
            assert row["MGX"] < row["BP"]


class TestDramSingleRequestLatency:
    def test_isolated_read_latency_matches_darwin_constant(self):
        """Cross-validate the Darwin round-trip constant against the
        detailed DRAM model's isolated-read completion time."""
        from repro.dram.controller import DramRequest
        from repro.dram.model import DramModel
        from repro.genome.darwin import DarwinConfig

        model = DramModel(DarwinConfig().dram)
        sim = model.detailed()
        latency_dram_cycles = sim.service([DramRequest(0x12345 * 64)])
        t = model.config.timing
        # An isolated read to an idle bank: activate + CAS + burst.  The
        # Darwin constant adds tRP (row conflict) and controller queueing
        # on top, so it must upper-bound this.
        analytic_floor = t.rcd + t.cl + t.burst_cycles
        darwin_constant = t.rp + t.rcd + t.cl + t.burst_cycles + 20
        assert abs(latency_dram_cycles / analytic_floor - 1.0) < 0.2
        assert latency_dram_cycles < darwin_constant
