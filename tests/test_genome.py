"""Genome substrate: sequences, D-SOFT, GACT, Darwin timing."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.genome.darwin import darwin_vn_state, simulate_gact_workload
from repro.genome.dsoft import DsoftConfig, SeedIndex, dsoft_filter
from repro.genome.gact import GactConfig, GactTimingModel, align_tile
from repro.genome.sequences import (
    CHROMOSOMES,
    PACBIO,
    SEQUENCERS,
    make_reference,
    reference_length,
    simulate_reads,
)


class TestSequences:
    def test_reference_deterministic(self):
        assert np.array_equal(make_reference("chrY"), make_reference("chrY"))

    def test_reference_lengths_scaled(self):
        assert reference_length("chr1") == 248_956_422 // 1024

    def test_unknown_chromosome(self):
        with pytest.raises(ConfigError):
            make_reference("chr99")

    def test_reference_alphabet(self):
        ref = make_reference("chrY")
        assert set(ref.tolist()) <= set(b"ACGT")

    def test_reads_sample_reference(self):
        ref = make_reference("chrY")
        reads = simulate_reads(ref, PACBIO, 5, seed=1)
        assert len(reads) == 5
        for read in reads:
            assert 0 <= read.origin < len(ref)

    def test_error_rates_visible_in_length(self):
        """Insertions and deletions shift the read length distribution."""
        ref = make_reference("chrY")
        reads = simulate_reads(ref, PACBIO, 20, seed=2)
        lengths = np.array([len(r.bases) for r in reads])
        expected = PACBIO.read_length * (1 + PACBIO.insertion - PACBIO.deletion)
        assert abs(lengths.mean() - expected) < 0.05 * PACBIO.read_length

    def test_noisier_profile_diverges_more(self):
        """Alignment score against the true origin drops with error rate
        (positional identity would mislead under indels, so align)."""
        ref = make_reference("chrY")
        clean = simulate_reads(ref, PACBIO, 4, seed=3)
        noisy = simulate_reads(ref, SEQUENCERS["ONT1D"], 4, seed=3)

        def score(read):
            fragment = ref[read.origin : read.origin + 120]
            return align_tile(fragment, read.bases[:120]).score

        assert np.mean([score(r) for r in noisy]) < np.mean(
            [score(r) for r in clean]
        )

    def test_profiles_cover_three_sequencers(self):
        assert set(SEQUENCERS) == {"PacBio", "ONT2D", "ONT1D"}
        assert len(CHROMOSOMES) == 3


class TestDsoft:
    @pytest.fixture(scope="class")
    def index(self):
        ref = make_reference("chrY")[:20_000]
        return SeedIndex(ref, DsoftConfig().seed_length)

    def test_exact_fragment_found_at_origin(self, index):
        ref = index.reference
        query = ref[5_000:5_400]
        candidates = dsoft_filter(index, query)
        assert candidates
        best = candidates[0]
        assert abs(best.reference_position - 5_000) < DsoftConfig().band * 2

    def test_noisy_read_still_found(self, index):
        ref = index.reference
        reads = simulate_reads(ref, PACBIO, 3, seed=5)
        hits = 0
        for read in reads:
            candidates = dsoft_filter(index, read.bases[:400])
            if any(abs(c.reference_position - read.origin) < 256 for c in candidates):
                hits += 1
        assert hits >= 2  # noisy, but most reads anchor correctly

    def test_random_query_filtered_out(self, index):
        rng = np.random.default_rng(6)
        junk = np.frombuffer(b"ACGT", dtype=np.uint8)[rng.integers(0, 4, 400)]
        candidates = dsoft_filter(index, junk)
        assert len(candidates) <= 1  # threshold rejects noise

    def test_short_query_no_candidates(self, index):
        assert dsoft_filter(index, index.reference[:4]) == []

    def test_seed_length_validation(self):
        with pytest.raises(ConfigError):
            SeedIndex(make_reference("chrY")[:100], seed_length=2)


class TestGactAlignment:
    def test_perfect_match_all_m(self):
        seq = np.frombuffer(b"ACGTACGTACGT", dtype=np.uint8)
        result = align_tile(seq, seq)
        assert result.traceback == b"M" * len(seq)
        assert result.score == GactConfig().match * len(seq)

    def test_single_mismatch(self):
        ref = np.frombuffer(b"ACGTACGT", dtype=np.uint8)
        query = ref.copy()
        query[3] = ord("C")
        result = align_tile(ref, query)
        assert result.traceback == b"M" * 8
        assert result.score == 7 * GactConfig().match + GactConfig().mismatch

    def test_deletion_produces_d(self):
        ref = np.frombuffer(b"ACGTACGT", dtype=np.uint8)
        query = np.delete(ref, 4)
        result = align_tile(ref, query)
        assert result.traceback.count(b"D") == 1
        assert len(result.traceback) == 8

    def test_insertion_produces_i(self):
        ref = np.frombuffer(b"ACGTACGT", dtype=np.uint8)
        query = np.insert(ref, 4, ord("T"))
        result = align_tile(ref, query)
        assert result.traceback.count(b"I") == 1

    def test_empty_tile(self):
        result = align_tile(np.array([], dtype=np.uint8), np.array([], dtype=np.uint8))
        assert result.traceback == b""

    def test_traceback_consumes_both_sequences(self):
        ref = np.frombuffer(b"AACCGGTTAACC", dtype=np.uint8)
        query = np.frombuffer(b"AACGGTTTAAC", dtype=np.uint8)
        result = align_tile(ref, query)
        ops = result.traceback
        assert ops.count(b"M") + ops.count(b"D") == len(ref)
        assert ops.count(b"M") + ops.count(b"I") == len(query)


class TestGactTiming:
    def test_tile_cycles_scale_with_tile(self):
        small = GactTimingModel(config=GactConfig(tile_bases=256, overlap=32))
        large = GactTimingModel(config=GactConfig(tile_bases=512, overlap=32))
        assert large.tile_compute_cycles() > 2 * small.tile_compute_cycles()

    def test_tiles_for_read_overlap(self):
        model = GactTimingModel(config=GactConfig(tile_bases=512, overlap=128))
        assert model.tiles_for_read(1024) == 3  # step = 384

    def test_overlap_validation(self):
        with pytest.raises(ConfigError):
            GactConfig(tile_bases=128, overlap=128)


class TestDarwinSimulation:
    def test_scheme_ordering(self):
        res = simulate_gact_workload(500, "PacBio",
                                     schemes=("NP", "BP", "MGX_VN", "MGX_MAC"))
        assert res["NP"].total_cycles < res["MGX_VN"].total_cycles
        assert res["MGX_VN"].total_cycles < res["MGX_MAC"].total_cycles
        assert res["MGX_MAC"].total_cycles < res["BP"].total_cycles

    def test_paper_band_bp(self):
        """BP ≈ 1.10–1.20× (paper avg 1.14)."""
        res = simulate_gact_workload(500, "PacBio")
        ratio = res["BP"].total_cycles / res["NP"].total_cycles
        assert 1.08 < ratio < 1.20

    def test_paper_band_mgx_vn(self):
        """MGX_VN ≈ 1.02–1.07× (paper avg 1.04)."""
        res = simulate_gact_workload(500, "PacBio")
        ratio = res["MGX_VN"].total_cycles / res["NP"].total_cycles
        assert 1.01 < ratio < 1.08

    def test_traffic_bands(self):
        """Traffic: BP +34%, MGX_VN +12.5% (§VII-A)."""
        res = simulate_gact_workload(500, "ONT2D")
        bp = res["BP"].total_bytes / res["NP"].total_bytes
        vn = res["MGX_VN"].total_bytes / res["NP"].total_bytes
        assert 1.28 < bp < 1.40
        assert 1.10 < vn < 1.15

    def test_noisier_reads_write_more_traceback(self):
        """Indel-heavy profiles lengthen traceback paths per tile."""
        clean = simulate_gact_workload(500, "ONT2D")
        noisy = simulate_gact_workload(500, "ONT1D")
        assert noisy["NP"].data_bytes > clean["NP"].data_bytes

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            simulate_gact_workload(10, "PacBio", schemes=("SGX",))

    def test_reads_validation(self):
        with pytest.raises(ConfigError):
            simulate_gact_workload(0, "PacBio")

    def test_vn_state_is_16_bytes(self):
        assert darwin_vn_state().state_bytes == 16


class TestSeedIndexPinning:
    """The vectorized k-mer grouping ≡ the per-position append build."""

    def test_matches_naive_construction(self):
        reference = make_reference("chr1")[:6000]
        k = DsoftConfig().seed_length
        index = SeedIndex(reference, k)
        view = reference.tobytes()
        naive: dict[bytes, list[int]] = {}
        for position in range(len(reference) - k + 1):
            naive.setdefault(view[position:position + k], []).append(position)
        assert index._index == naive
        assert index.table_entries == len(reference) - k + 1
        assert index.table_entries == sum(len(v) for v in naive.values())

    def test_lookup_miss_and_short_reference(self):
        reference = make_reference("chrY")[:40]
        index = SeedIndex(reference, 31)
        assert index.table_entries == 10
        assert index.lookup(b"\x00" * 31) == []
        empty = SeedIndex(reference[:5], 12)
        assert empty.table_entries == 0
