"""Reuse-distance LRU engine ≡ ``MetadataCache`` per-line semantics.

The engine prices whole metadata-line streams with bulk conveyor
stretches, dirty-streak grouping and spliced parent re-touches; every
one of those fast paths must be *event- and state-identical* to the
sequential ``MetadataCache.access`` walk with write-back chains.  The
Hypothesis models here drive both models with the same randomized
streams — including tiny caches where every run evicts, dirty runs whose
chains climb a two- or three-level parent geometry, and set-associative
organizations — and require identical miss/writeback/parent-miss event
lists, identical LRU state (order and dirty bits), and identical
hit/miss/writeback counters after every probe.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.core.lru_engine import EventSink, LruEngine
from repro.core.metadata_cache import MetadataCache

LINE = 64


def _parent_two_level(address):
    """Lines below 4 KiB have parents packed 8:1 above it."""
    if address < 64 * LINE:
        return 64 * LINE + ((address // LINE) // 8) * LINE
    return None


def _parent_three_level(address):
    """A deeper geometry: 4:1 twice, so chains can cascade."""
    if address < 64 * LINE:
        return 64 * LINE + ((address // LINE) // 4) * LINE
    if address < 80 * LINE:
        return 80 * LINE + (((address - 64 * LINE) // LINE) // 4) * LINE
    return None


GEOMETRIES = {"none": None, "two": _parent_two_level, "three": _parent_three_level}


def _drive_reference(cache, start_line, n_lines, dirty, parent_of):
    """Per-line ``access`` walk with chain following (the ground truth)."""
    misses, writebacks, parent_misses = [], [], []
    for index in range(start_line, start_line + n_lines):
        outcome = cache.access(index * LINE, dirty=dirty)
        if not outcome.hit:
            misses.append(index * LINE)
        queue = ([outcome.writeback_address]
                 if outcome.writeback_address is not None else [])
        while queue:
            address = queue.pop()
            writebacks.append(address)
            parent = parent_of(address) if parent_of else None
            if parent is None:
                continue
            parent_outcome = cache.access(parent, dirty=True)
            if not parent_outcome.hit:
                parent_misses.append(parent)
            if parent_outcome.writeback_address is not None:
                queue.append(parent_outcome.writeback_address)
    return misses, writebacks, parent_misses


def _assert_state_equal(engine, cache):
    reference = [[(line, bool(dirty)) for line, dirty in lines.items()]
                 for lines in cache.contents()]
    assert engine.export_state() == reference


class TestModelEquivalence:
    """Randomized streams: engine events/state/stats ≡ sequential walk."""

    @given(
        segments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=79),
                      st.integers(min_value=1, max_value=14),
                      st.booleans()),
            min_size=1, max_size=50,
        ),
        capacity=st.sampled_from([1, 2, 3, 4, 8, 16]),
        geometry=st.sampled_from(sorted(GEOMETRIES)),
    )
    @settings(max_examples=120, deadline=None)
    def test_probe_stream_matches_access_walk(self, segments, capacity,
                                              geometry):
        parent_of = GEOMETRIES[geometry]
        cache = MetadataCache(capacity * LINE)
        engine = LruEngine(capacity, parent_of=parent_of)
        for start, n_lines, dirty in segments:
            expected = _drive_reference(cache, start, n_lines, dirty, parent_of)
            sink = EventSink()
            engine.probe_range(start * LINE, n_lines, dirty, sink)
            assert sink.drain_misses().tolist() == expected[0]
            assert sink.drain_writebacks().tolist() == expected[1]
            assert sink.drain_parent_misses().tolist() == expected[2]
            _assert_state_equal(engine, cache)

    @given(
        segments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=39),
                      st.integers(min_value=1, max_value=10),
                      st.booleans()),
            min_size=1, max_size=40,
        ),
        ways=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_associative_matches(self, segments, ways):
        cache = MetadataCache(8 * LINE, ways=ways)
        engine = LruEngine(8, ways=ways, parent_of=_parent_two_level)
        for start, n_lines, dirty in segments:
            expected = _drive_reference(cache, start, n_lines, dirty,
                                        _parent_two_level)
            sink = EventSink()
            engine.probe_range(start * LINE, n_lines, dirty, sink)
            assert sink.drain_misses().tolist() == expected[0]
            assert sink.drain_writebacks().tolist() == expected[1]
            assert sink.drain_parent_misses().tolist() == expected[2]
            _assert_state_equal(engine, cache)

    @given(
        runs=st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=63),
                         min_size=1, max_size=12, unique=True),
                st.booleans(),
            ),
            min_size=1, max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_sparse_ascending_runs_match(self, runs):
        """Walk-shaped probes: distinct ascending but not consecutive."""
        cache = MetadataCache(4 * LINE)
        engine = LruEngine(4, parent_of=_parent_two_level)
        for lines, dirty in runs:
            ordered = sorted(lines)
            expected_misses, expected_wb, expected_pm = [], [], []
            for index in ordered:
                partial = _drive_reference(cache, index, 1, dirty,
                                           _parent_two_level)
                expected_misses += partial[0]
                expected_wb += partial[1]
                expected_pm += partial[2]
            sink = EventSink()
            engine.probe_lines(np.array(ordered, dtype=np.int64) * LINE,
                               dirty, sink)
            assert sink.drain_misses().tolist() == expected_misses
            assert sink.drain_writebacks().tolist() == expected_wb
            assert sink.drain_parent_misses().tolist() == expected_pm
            _assert_state_equal(engine, cache)

    def test_stats_counters_match(self):
        """hit/miss/writeback counters track the reference exactly."""
        cache = MetadataCache(4 * LINE)
        engine = LruEngine(4, parent_of=_parent_two_level)
        sink = EventSink()
        for start, n_lines, dirty in [(0, 8, True), (2, 6, False),
                                      (60, 10, True), (0, 8, True)]:
            _drive_reference(cache, start, n_lines, dirty, _parent_two_level)
            engine.probe_range(start * LINE, n_lines, dirty, sink)
        assert sink.hits == cache.stats.get("hits")
        assert sink.miss_count == cache.stats.get("misses")
        assert sink.writeback_count == cache.stats.get("writebacks")


class TestBulkMachineryStress:
    """Force the bulk paths onto tiny runs the scalar cutoff would take."""

    @pytest.fixture(autouse=True)
    def force_bulk(self, monkeypatch):
        monkeypatch.setattr(LruEngine, "_SCALAR_RUN", 0)

    @given(
        segments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=79),
                      st.integers(min_value=1, max_value=20),
                      st.booleans()),
            min_size=1, max_size=50,
        ),
        capacity=st.sampled_from([1, 2, 4, 8]),
        geometry=st.sampled_from(sorted(GEOMETRIES)),
    )
    @settings(max_examples=100, deadline=None)
    def test_bulk_paths_match_walk(self, segments, capacity, geometry):
        parent_of = GEOMETRIES[geometry]
        cache = MetadataCache(capacity * LINE)
        engine = LruEngine(capacity, parent_of=parent_of)
        for start, n_lines, dirty in segments:
            expected = _drive_reference(cache, start, n_lines, dirty, parent_of)
            sink = EventSink()
            engine.probe_range(start * LINE, n_lines, dirty, sink)
            assert sink.drain_misses().tolist() == expected[0]
            assert sink.drain_writebacks().tolist() == expected[1]
            assert sink.drain_parent_misses().tolist() == expected[2]
            _assert_state_equal(engine, cache)

    def test_dirty_write_thrash_chains(self):
        """A write stream larger than a tiny cache: every eviction is a
        dirty self-conveyor whose chain touches the parent level."""
        capacity = 8
        cache = MetadataCache(capacity * LINE)
        engine = LruEngine(capacity, parent_of=_parent_two_level)
        sink = EventSink()
        for _ in range(4):
            for start in (0, 24, 48):
                expected = _drive_reference(cache, start, 16, True,
                                            _parent_two_level)
                engine.probe_range(start * LINE, 16, True, sink)
                assert sink.drain_writebacks().tolist() == expected[1]
                assert sink.drain_parent_misses().tolist() == expected[2]
        _assert_state_equal(engine, cache)


class TestStateAndSink:
    def test_state_round_trip(self):
        engine = LruEngine(4)
        sink = EventSink()
        engine.probe_range(0, 3, True, sink)
        state = engine.export_state()
        other = LruEngine(4)
        other.load_state([dict(pairs) for pairs in state])
        assert other.export_state() == state
        assert len(other) == 3
        assert other.contains(0) and not other.contains(5 * LINE)

    def test_flush_returns_dirty_in_recency_order(self):
        engine = LruEngine(4)
        sink = EventSink()
        engine.probe_range(0, 2, True, sink)
        engine.probe_range(2 * LINE, 1, False, sink)
        assert engine.flush().tolist() == [0, LINE]
        assert len(engine) == 0

    def test_sink_drain_batches_scalars_and_arrays(self):
        sink = EventSink()
        sink.misses.append(3)
        sink.misses.append(np.array([7, 9], dtype=np.int64))
        sink.misses.append(11)
        assert sink.drain_misses().tolist() == [3, 7, 9, 11]
        assert sink.drain_misses().tolist() == []

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigError):
            LruEngine(0)
        with pytest.raises(ConfigError):
            LruEngine(8, ways=3)
        engine = LruEngine(4)
        with pytest.raises(ConfigError):
            engine.load_state([{}, {}])  # one set expected

    def test_ring_compaction_preserves_state(self):
        """Touch far more lines than the ring slack to force compaction."""
        capacity = 4
        cache = MetadataCache(capacity * LINE)
        engine = LruEngine(capacity, parent_of=_parent_two_level)
        engine._RING_SLACK  # attribute exists; compaction path below
        sink = EventSink()
        for round_index in range(3000):
            start = (round_index * 3) % 60
            _drive_reference(cache, start, 4, bool(round_index % 2),
                             _parent_two_level)
            engine.probe_range(start * LINE, 4, bool(round_index % 2), sink)
        _assert_state_equal(engine, cache)
        assert sink.miss_count == cache.stats.get("misses")
