"""Reuse-distance LRU engine ≡ ``MetadataCache`` per-line semantics.

The engine prices whole metadata-line streams with bulk conveyor
stretches, dirty-streak grouping and spliced parent re-touches; every
one of those fast paths must be *event- and state-identical* to the
sequential ``MetadataCache.access`` walk with write-back chains.  The
Hypothesis models here drive both models with the same randomized
streams — including tiny caches where every run evicts, dirty runs whose
chains climb a two- or three-level parent geometry, and set-associative
organizations — and require identical miss/writeback/parent-miss event
lists, identical LRU state (order and dirty bits), and identical
hit/miss/writeback counters after every probe.

Every model test runs once per available *backend* (``python`` always;
``native`` whenever the compiled engine builds), so the pure-Python
reference and the C implementation are pinned to the same ground truth
— and, transitively, to each other.  The tree-parent geometry reaches
the native backend as a :class:`TreeGeometry` region table, which is
itself pinned against the callable geometries the Python engine uses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.core.engine_backend import (
    TreeGeometry,
    native_available,
    native_error,
)
from repro.core.lru_engine import EventSink, LruEngine, drain_chunks
from repro.core.metadata_cache import MetadataCache

LINE = 64


def _parent_two_level(address):
    """Lines below 4 KiB have parents packed 8:1 above it."""
    if address < 64 * LINE:
        return 64 * LINE + ((address // LINE) // 8) * LINE
    return None


def _parent_three_level(address):
    """A deeper geometry: 4:1 twice, so chains can cascade."""
    if address < 64 * LINE:
        return 64 * LINE + ((address // LINE) // 4) * LINE
    if address < 80 * LINE:
        return 80 * LINE + (((address - 64 * LINE) // LINE) // 4) * LINE
    return None


GEOMETRIES = {"none": None, "two": _parent_two_level, "three": _parent_three_level}

#: The same geometries as flat region tables — the form the native
#: backend consumes.  ``test_geometry_tables_match_callables`` pins the
#: two representations to each other.
GEOMETRY_TABLES = {
    "none": TreeGeometry((), LINE),
    "two": TreeGeometry(((0, 64 * LINE, 64 * LINE, 8),), LINE),
    "three": TreeGeometry(
        ((0, 64 * LINE, 64 * LINE, 4), (64 * LINE, 80 * LINE, 80 * LINE, 4)),
        LINE,
    ),
}

#: Engine backends under test: the Python reference always, the compiled
#: engine whenever a working C toolchain is available.
BACKENDS = ("python",) + (("native",) if native_available() else ())

needs_native = pytest.mark.skipif(
    not native_available(),
    reason=f"native engine unavailable: {native_error()}",
)


def make_engine(backend, capacity, geometry="none", ways=None):
    """One engine on the requested backend over a named test geometry."""
    if backend == "native":
        from repro.core.lru_native import NativeLruEngine

        return NativeLruEngine(capacity, line_bytes=LINE, ways=ways,
                               geometry=GEOMETRY_TABLES[geometry])
    return LruEngine(capacity, line_bytes=LINE, ways=ways,
                     parent_of=GEOMETRIES[geometry])


def test_geometry_tables_match_callables():
    for name, parent_of in GEOMETRIES.items():
        table = GEOMETRY_TABLES[name]
        for line in range(120):
            address = line * LINE
            expected = parent_of(address) if parent_of else None
            assert table.parent_of(address) == expected, (name, address)


def _drive_reference(cache, start_line, n_lines, dirty, parent_of):
    """Per-line ``access`` walk with chain following (the ground truth)."""
    misses, writebacks, parent_misses = [], [], []
    for index in range(start_line, start_line + n_lines):
        outcome = cache.access(index * LINE, dirty=dirty)
        if not outcome.hit:
            misses.append(index * LINE)
        queue = ([outcome.writeback_address]
                 if outcome.writeback_address is not None else [])
        while queue:
            address = queue.pop()
            writebacks.append(address)
            parent = parent_of(address) if parent_of else None
            if parent is None:
                continue
            parent_outcome = cache.access(parent, dirty=True)
            if not parent_outcome.hit:
                parent_misses.append(parent)
            if parent_outcome.writeback_address is not None:
                queue.append(parent_outcome.writeback_address)
    return misses, writebacks, parent_misses


def _drive_reference_runs(cache, rows, parent_of):
    """Ground truth for ``probe_run_batch``: per row, access the MAC
    range then the VN range per line, then climb the tree level by
    level from the row's missed VN lines (deduped parents, probed
    clean, chains followed) until a level fully hits."""
    misses, writebacks, parent_misses = [], [], []
    for mac_first, mac_n, vn_first, vn_n, dirty, walk in rows:
        row_misses = []
        for first, count in ((mac_first, mac_n), (vn_first, vn_n)):
            m, w, p = _drive_reference(cache, first // LINE, count, dirty,
                                       parent_of)
            row_misses += m
            misses += m
            writebacks += w
            parent_misses += p
        if not walk:
            continue
        wave = [line for line in row_misses if line >= vn_first]
        while wave:
            parents = []
            for line in wave:
                parent = parent_of(line) if parent_of else None
                if parent is not None and \
                        (not parents or parents[-1] != parent):
                    parents.append(parent)
            wave = []
            for line in parents:
                m, w, p = _drive_reference(cache, line // LINE, 1, False,
                                           parent_of)
                misses += m
                writebacks += w
                parent_misses += p
                wave += m
    return misses, writebacks, parent_misses


def _run_batch_columns(rows):
    columns = np.array(rows, dtype=np.int64).reshape(-1, 6).T
    return (columns[0], columns[1], columns[2], columns[3],
            columns[4].astype(bool), columns[5].astype(bool))


def _assert_state_equal(engine, cache):
    reference = [[(line, bool(dirty)) for line, dirty in lines.items()]
                 for lines in cache.contents()]
    assert engine.export_state() == reference


@pytest.mark.parametrize("backend", BACKENDS)
class TestModelEquivalence:
    """Randomized streams: engine events/state/stats ≡ sequential walk."""

    @given(
        segments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=79),
                      st.integers(min_value=1, max_value=14),
                      st.booleans()),
            min_size=1, max_size=50,
        ),
        capacity=st.sampled_from([1, 2, 3, 4, 8, 16]),
        geometry=st.sampled_from(sorted(GEOMETRIES)),
    )
    @settings(max_examples=120, deadline=None)
    def test_probe_stream_matches_access_walk(self, backend, segments,
                                              capacity, geometry):
        parent_of = GEOMETRIES[geometry]
        cache = MetadataCache(capacity * LINE)
        engine = make_engine(backend, capacity, geometry)
        for start, n_lines, dirty in segments:
            expected = _drive_reference(cache, start, n_lines, dirty, parent_of)
            sink = EventSink()
            engine.probe_range(start * LINE, n_lines, dirty, sink)
            assert sink.drain_misses().tolist() == expected[0]
            assert sink.drain_writebacks().tolist() == expected[1]
            assert sink.drain_parent_misses().tolist() == expected[2]
            _assert_state_equal(engine, cache)

    @given(
        segments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=39),
                      st.integers(min_value=1, max_value=10),
                      st.booleans()),
            min_size=1, max_size=40,
        ),
        ways=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_associative_matches(self, backend, segments, ways):
        cache = MetadataCache(8 * LINE, ways=ways)
        engine = make_engine(backend, 8, "two", ways=ways)
        for start, n_lines, dirty in segments:
            expected = _drive_reference(cache, start, n_lines, dirty,
                                        _parent_two_level)
            sink = EventSink()
            engine.probe_range(start * LINE, n_lines, dirty, sink)
            assert sink.drain_misses().tolist() == expected[0]
            assert sink.drain_writebacks().tolist() == expected[1]
            assert sink.drain_parent_misses().tolist() == expected[2]
            _assert_state_equal(engine, cache)

    @given(
        rows=st.lists(
            st.tuples(st.integers(min_value=0, max_value=8),
                      st.integers(min_value=0, max_value=6),
                      st.integers(min_value=16, max_value=40),
                      st.integers(min_value=1, max_value=10),
                      st.booleans(),
                      st.booleans()),
            min_size=1, max_size=25,
        ),
        capacity=st.sampled_from([2, 4, 8]),
        ways=st.sampled_from([0, 1, 2]),
        geometry=st.sampled_from(sorted(GEOMETRIES)),
    )
    @settings(max_examples=80, deadline=None)
    def test_run_batch_matches_access_walk(self, backend, rows, capacity,
                                           ways, geometry):
        """Whole batches of fused MAC/VN runs with tree walks ≡ the
        per-line walk, across geometries and set organizations."""
        parent_of = GEOMETRIES[geometry]
        ways = ways or None
        cache = MetadataCache(capacity * LINE, ways=ways)
        engine = make_engine(backend, capacity, geometry, ways=ways)
        byte_rows = [(mac_start * LINE, mac_n, vn_start * LINE, vn_n,
                      dirty, walk)
                     for mac_start, mac_n, vn_start, vn_n, dirty, walk
                     in rows]
        expected = _drive_reference_runs(cache, byte_rows, parent_of)
        sink = EventSink()
        engine.probe_run_batch(*_run_batch_columns(byte_rows), sink)
        assert sink.drain_misses().tolist() == expected[0]
        assert sink.drain_writebacks().tolist() == expected[1]
        assert sink.drain_parent_misses().tolist() == expected[2]
        assert (sink.hits, sink.miss_count, sink.writeback_count) == \
            (cache.stats.get("hits"), cache.stats.get("misses"),
             cache.stats.get("writebacks"))
        _assert_state_equal(engine, cache)

    @given(
        rows=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4),
                      st.integers(min_value=0, max_value=4),
                      st.integers(min_value=8, max_value=30),
                      st.integers(min_value=1, max_value=8),
                      st.booleans(),
                      st.booleans()),
            min_size=1, max_size=20,
        ),
        ways=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_associative_run_batches_match(self, backend, rows, ways):
        """Set-associative run batches stay native — no scalar-path
        fallback — and still track the reference walk exactly."""
        cache = MetadataCache(8 * LINE, ways=ways)
        engine = make_engine(backend, 8, "two", ways=ways)
        assert engine.backend_name == backend
        byte_rows = [(mac_start * LINE, mac_n, vn_start * LINE, vn_n,
                      dirty, walk)
                     for mac_start, mac_n, vn_start, vn_n, dirty, walk
                     in rows]
        expected = _drive_reference_runs(cache, byte_rows,
                                         _parent_two_level)
        sink = EventSink()
        engine.probe_run_batch(*_run_batch_columns(byte_rows), sink)
        assert sink.drain_misses().tolist() == expected[0]
        assert sink.drain_writebacks().tolist() == expected[1]
        assert sink.drain_parent_misses().tolist() == expected[2]
        _assert_state_equal(engine, cache)

    @given(
        runs=st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=63),
                         min_size=1, max_size=12, unique=True),
                st.booleans(),
            ),
            min_size=1, max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_sparse_ascending_runs_match(self, backend, runs):
        """Walk-shaped probes: distinct ascending but not consecutive."""
        cache = MetadataCache(4 * LINE)
        engine = make_engine(backend, 4, "two")
        for lines, dirty in runs:
            ordered = sorted(lines)
            expected_misses, expected_wb, expected_pm = [], [], []
            for index in ordered:
                partial = _drive_reference(cache, index, 1, dirty,
                                           _parent_two_level)
                expected_misses += partial[0]
                expected_wb += partial[1]
                expected_pm += partial[2]
            sink = EventSink()
            engine.probe_lines(np.array(ordered, dtype=np.int64) * LINE,
                               dirty, sink)
            assert sink.drain_misses().tolist() == expected_misses
            assert sink.drain_writebacks().tolist() == expected_wb
            assert sink.drain_parent_misses().tolist() == expected_pm
            _assert_state_equal(engine, cache)

    def test_stats_counters_match(self, backend):
        """hit/miss/writeback counters track the reference exactly."""
        cache = MetadataCache(4 * LINE)
        engine = make_engine(backend, 4, "two")
        sink = EventSink()
        for start, n_lines, dirty in [(0, 8, True), (2, 6, False),
                                      (60, 10, True), (0, 8, True)]:
            _drive_reference(cache, start, n_lines, dirty, _parent_two_level)
            engine.probe_range(start * LINE, n_lines, dirty, sink)
        assert sink.hits == cache.stats.get("hits")
        assert sink.miss_count == cache.stats.get("misses")
        assert sink.writeback_count == cache.stats.get("writebacks")

    def test_forced_flood_runs_match(self, backend):
        """Cache-sized clean runs: every line misses, residents wash out."""
        capacity = 4
        cache = MetadataCache(capacity * LINE)
        engine = make_engine(backend, capacity, "three")
        sink = EventSink()
        # Dirty warm-up, then repeated clean floods over fresh ranges.
        for start, n_lines, dirty in [(0, 6, True), (0, 16, False),
                                      (16, 16, False), (0, 32, False)]:
            expected = _drive_reference(cache, start, n_lines, dirty,
                                        _parent_three_level)
            engine.probe_range(start * LINE, n_lines, dirty, sink)
            assert sink.drain_misses().tolist() == expected[0]
            assert sink.drain_writebacks().tolist() == expected[1]
            assert sink.drain_parent_misses().tolist() == expected[2]
            _assert_state_equal(engine, cache)

    def test_forced_chain_thrash_matches(self, backend):
        """A write stream larger than a tiny cache: every eviction is a
        dirty self-conveyor whose chain touches the parent level."""
        capacity = 8
        cache = MetadataCache(capacity * LINE)
        engine = make_engine(backend, capacity, "two")
        sink = EventSink()
        for _ in range(4):
            for start in (0, 24, 48):
                expected = _drive_reference(cache, start, 16, True,
                                            _parent_two_level)
                engine.probe_range(start * LINE, 16, True, sink)
                assert sink.drain_writebacks().tolist() == expected[1]
                assert sink.drain_parent_misses().tolist() == expected[2]
        _assert_state_equal(engine, cache)


@needs_native
class TestBackendParity:
    """Python and native engines, driven side by side, never diverge."""

    @given(
        runs=st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=99),
                         min_size=1, max_size=20, unique=True),
                st.booleans(),
            ),
            min_size=1, max_size=40,
        ),
        capacity=st.sampled_from([2, 4, 8]),
        geometry=st.sampled_from(sorted(GEOMETRIES)),
    )
    @settings(max_examples=60, deadline=None)
    def test_event_and_state_parity(self, runs, capacity, geometry):
        python = make_engine("python", capacity, geometry)
        native = make_engine("native", capacity, geometry)
        for lines, dirty in runs:
            column = np.array(sorted(lines), dtype=np.int64) * LINE
            sink_py, sink_nat = EventSink(), EventSink()
            python.probe_lines(column, dirty, sink_py)
            native.probe_lines(column, dirty, sink_nat)
            assert sink_py.drain_misses().tolist() == \
                sink_nat.drain_misses().tolist()
            assert sink_py.drain_writebacks().tolist() == \
                sink_nat.drain_writebacks().tolist()
            assert sink_py.drain_parent_misses().tolist() == \
                sink_nat.drain_parent_misses().tolist()
            assert (sink_py.hits, sink_py.miss_count,
                    sink_py.writeback_count) == \
                (sink_nat.hits, sink_nat.miss_count, sink_nat.writeback_count)
            assert python.export_state() == native.export_state()

    def test_cross_backend_state_round_trip(self):
        """State exported from one backend loads into the other."""
        python = make_engine("python", 4, "two")
        native = make_engine("native", 4, "two")
        sink = EventSink()
        python.probe_range(0, 3, True, sink)
        state = python.export_state()
        native.load_state([dict(pairs) for pairs in state])
        assert native.export_state() == state
        assert len(native) == 3
        assert native.contains(0) and not native.contains(5 * LINE)
        assert native.flush().tolist() == [0, LINE, 2 * LINE]

    def test_event_buffer_pause_resume(self):
        """Runs far larger than the native event buffers stay exact."""
        capacity = 8
        python = make_engine("python", capacity, "two")
        native = make_engine("native", capacity, "two")
        native._ev_cap = 16  # force many pause/resume round trips
        lines = np.arange(0, 60, dtype=np.int64) * LINE
        for dirty in (True, True, False):
            sink_py, sink_nat = EventSink(), EventSink()
            python.probe_lines(lines, dirty, sink_py)
            native.probe_lines(lines, dirty, sink_nat)
            assert sink_py.drain_misses().tolist() == \
                sink_nat.drain_misses().tolist()
            assert sink_py.drain_writebacks().tolist() == \
                sink_nat.drain_writebacks().tolist()
            assert sink_py.drain_parent_misses().tolist() == \
                sink_nat.drain_parent_misses().tolist()
            assert python.export_state() == native.export_state()

    def test_run_batch_pause_resume(self):
        """Run batches far larger than the native event buffers pause,
        drain, and resume mid-row without losing a single event."""
        capacity = 8
        python = make_engine("python", capacity, "three")
        native = make_engine("native", capacity, "three")
        native._ev_cap = 16  # force pauses inside probes AND walks
        rows = []
        for round_index in range(6):
            mac_start = (round_index * 3) % 8
            vn_start = 16 + (round_index * 7) % 24
            rows.append((mac_start * LINE, 6, vn_start * LINE, 10,
                         round_index % 2 == 0, True))
        columns = _run_batch_columns(rows)
        sink_py, sink_nat = EventSink(), EventSink()
        python.probe_run_batch(*columns, sink_py)
        native.probe_run_batch(*columns, sink_nat)
        assert sink_py.drain_misses().tolist() == \
            sink_nat.drain_misses().tolist()
        assert sink_py.drain_writebacks().tolist() == \
            sink_nat.drain_writebacks().tolist()
        assert sink_py.drain_parent_misses().tolist() == \
            sink_nat.drain_parent_misses().tolist()
        assert (sink_py.hits, sink_py.miss_count,
                sink_py.writeback_count) == \
            (sink_nat.hits, sink_nat.miss_count, sink_nat.writeback_count)
        assert python.export_state() == native.export_state()

    def test_native_ring_compaction_preserves_state(self):
        """Drive the native ring far past its slack to force compaction."""
        capacity = 4
        cache = MetadataCache(capacity * LINE)
        engine = make_engine("native", capacity, "two")
        sink = EventSink()
        rounds = int(engine._hdr[3]) // 2 + 200  # > ring size touches
        for round_index in range(rounds):
            start = (round_index * 3) % 60
            _drive_reference(cache, start, 4, bool(round_index % 2),
                             _parent_two_level)
            engine.probe_range(start * LINE, 4, bool(round_index % 2), sink)
        _assert_state_equal(engine, cache)
        assert sink.miss_count == cache.stats.get("misses")

    def test_invalid_configurations_rejected(self):
        from repro.core.lru_native import NativeLruEngine

        with pytest.raises(ConfigError):
            NativeLruEngine(0)
        with pytest.raises(ConfigError):
            NativeLruEngine(8, ways=3)
        engine = make_engine("native", 4)
        with pytest.raises(ConfigError):
            engine.load_state([{}, {}])  # one set expected


@pytest.mark.parametrize("backend", BACKENDS)
class TestClosedFormHooks:
    """`flood_clean` / `clean_walk_ready` ≡ the probed path they replace."""

    def test_clean_walk_ready(self, backend):
        engine = make_engine(backend, 4, "two")
        sink = EventSink()
        engine.probe_range(0, 3, False, sink)
        assert engine.clean_walk_ready(64 * LINE)
        assert not engine.clean_walk_ready(2 * LINE)  # resident >= floor
        engine.probe_range(0, 1, True, sink)  # dirty resident
        assert not engine.clean_walk_ready(64 * LINE)

    def test_set_associative_never_ready(self, backend):
        engine = make_engine(backend, 4, "two", ways=2)
        assert not engine.clean_walk_ready(64 * LINE)

    def test_walk_tree_flood_matches_probed(self, backend):
        """The closed-form flood walk ≡ the probed walk it replaces."""
        capacity = 4
        flooded = make_engine(backend, capacity, "three")
        probed = make_engine(backend, capacity, "three")
        seeds = np.arange(capacity, dtype=np.int64) * LINE
        warm_f, warm_p = EventSink(), EventSink()
        flooded.probe_lines(seeds, False, warm_f)
        probed.probe_lines(seeds, False, warm_p)
        # Flood-adjacent precondition holds: the resident set is exactly
        # the clean all-miss run below the tree region.
        sink_f, sink_p = EventSink(), EventSink()
        flooded.walk_tree(seeds, sink_f, flood=True)
        probed.walk_tree(seeds, sink_p, flood=False)
        assert sink_f.drain_misses().tolist() == \
            sink_p.drain_misses().tolist()
        assert sink_f.drain_writebacks().tolist() == \
            sink_p.drain_writebacks().tolist()
        assert sink_f.miss_count == sink_p.miss_count
        assert sink_f.miss_count > 1  # the walk actually climbed levels
        assert flooded.export_state() == probed.export_state()

    @pytest.mark.parametrize("n_lines", [2, 4, 7])
    def test_flood_clean_matches_probe_lines(self, backend, n_lines):
        """Bulk replace ≡ probing the same all-miss clean stream."""
        capacity = 4
        reference = make_engine(backend, capacity, "two")
        flooded = make_engine(backend, capacity, "two")
        warm = EventSink()
        reference.probe_range(0, 3, False, warm)
        flooded.probe_range(0, 3, False, warm)
        lines = (64 + np.arange(n_lines, dtype=np.int64)) * LINE
        sink_ref, sink_flood = EventSink(), EventSink()
        miss_ref, miss_flood = [], []
        reference.probe_lines(lines, False, sink_ref, miss_ref)
        flooded.flood_clean(lines, sink_flood, miss_flood)
        assert sink_ref.drain_misses().tolist() == \
            sink_flood.drain_misses().tolist()
        assert sink_ref.drain_writebacks().tolist() == \
            sink_flood.drain_writebacks().tolist()
        assert sink_ref.miss_count == sink_flood.miss_count
        assert sink_ref.writeback_count == sink_flood.writeback_count
        assert drain_chunks(miss_ref).tolist() == \
            drain_chunks(miss_flood).tolist()
        assert reference.export_state() == flooded.export_state()


class TestBulkMachineryStress:
    """Force the bulk paths onto tiny runs the scalar cutoff would take."""

    @pytest.fixture(autouse=True)
    def force_bulk(self, monkeypatch):
        monkeypatch.setattr(LruEngine, "_SCALAR_RUN", 0)

    @given(
        segments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=79),
                      st.integers(min_value=1, max_value=20),
                      st.booleans()),
            min_size=1, max_size=50,
        ),
        capacity=st.sampled_from([1, 2, 4, 8]),
        geometry=st.sampled_from(sorted(GEOMETRIES)),
    )
    @settings(max_examples=100, deadline=None)
    def test_bulk_paths_match_walk(self, segments, capacity, geometry):
        parent_of = GEOMETRIES[geometry]
        cache = MetadataCache(capacity * LINE)
        engine = LruEngine(capacity, parent_of=parent_of)
        for start, n_lines, dirty in segments:
            expected = _drive_reference(cache, start, n_lines, dirty, parent_of)
            sink = EventSink()
            engine.probe_range(start * LINE, n_lines, dirty, sink)
            assert sink.drain_misses().tolist() == expected[0]
            assert sink.drain_writebacks().tolist() == expected[1]
            assert sink.drain_parent_misses().tolist() == expected[2]
            _assert_state_equal(engine, cache)


@pytest.mark.parametrize("backend", BACKENDS)
class TestStateAndSink:
    def test_state_round_trip(self, backend):
        engine = make_engine(backend, 4)
        sink = EventSink()
        engine.probe_range(0, 3, True, sink)
        state = engine.export_state()
        other = make_engine(backend, 4)
        other.load_state([dict(pairs) for pairs in state])
        assert other.export_state() == state
        assert len(other) == 3
        assert other.contains(0) and not other.contains(5 * LINE)

    def test_flush_returns_dirty_in_recency_order(self, backend):
        engine = make_engine(backend, 4)
        sink = EventSink()
        engine.probe_range(0, 2, True, sink)
        engine.probe_range(2 * LINE, 1, False, sink)
        assert engine.flush().tolist() == [0, LINE]
        assert len(engine) == 0


class TestSinkMachinery:
    def test_sink_drain_batches_scalars_and_arrays(self):
        sink = EventSink()
        sink.misses.push(3)
        sink.misses.append(np.array([7, 9], dtype=np.int64))
        sink.misses.push(11)
        assert len(sink.misses) == 4
        assert sink.drain_misses().tolist() == [3, 7, 9, 11]
        assert sink.drain_misses().tolist() == []

    def test_sink_scratch_buffer_grows_past_initial_size(self):
        sink = EventSink()
        for value in range(1000):
            sink.misses.push(value)
        assert sink.drain_misses().tolist() == list(range(1000))

    def test_drain_chunks_handles_mixed_plain_lists(self):
        chunks = [3, np.array([7, 9], dtype=np.int64), 11]
        assert drain_chunks(chunks).tolist() == [3, 7, 9, 11]
        assert drain_chunks([]).tolist() == []

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigError):
            LruEngine(0)
        with pytest.raises(ConfigError):
            LruEngine(8, ways=3)
        engine = LruEngine(4)
        with pytest.raises(ConfigError):
            engine.load_state([{}, {}])  # one set expected

    def test_ring_compaction_preserves_state(self):
        """Touch far more lines than the ring slack to force compaction."""
        capacity = 4
        cache = MetadataCache(capacity * LINE)
        engine = LruEngine(capacity, parent_of=_parent_two_level)
        sink = EventSink()
        for round_index in range(3000):
            start = (round_index * 3) % 60
            _drive_reference(cache, start, 4, bool(round_index % 2),
                             _parent_two_level)
            engine.probe_range(start * LINE, 4, bool(round_index % 2), sink)
        _assert_state_equal(engine, cache)
        assert sink.miss_count == cache.stats.get("misses")
