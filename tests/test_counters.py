"""Counter-block construction and VN tagging (Fig. 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError, VnOverflowError
from repro.core.access import DataClass
from repro.core.counters import (
    VN_BITS,
    VN_PAYLOAD_BITS,
    VnSpace,
    counter_block,
    counter_block_array,
    pack_fields,
    space_for,
    tag_vn,
    untag_vn,
)


class TestVnSpaces:
    def test_fig6_tag_values(self):
        assert VnSpace.FEATURE == 0b00
        assert VnSpace.WEIGHT == 0b01
        assert VnSpace.GRADIENT == 0b10

    def test_space_for_dnn_classes(self):
        assert space_for(DataClass.FEATURE) is VnSpace.FEATURE
        assert space_for(DataClass.WEIGHT) is VnSpace.WEIGHT
        assert space_for(DataClass.GRADIENT) is VnSpace.GRADIENT

    def test_other_classes_share_other(self):
        assert space_for(DataClass.ADJACENCY) is VnSpace.OTHER
        assert space_for(DataClass.FRAME) is VnSpace.OTHER


class TestTagging:
    def test_tag_untag_roundtrip(self):
        vn = tag_vn(VnSpace.GRADIENT, 12345)
        assert untag_vn(vn) == (VnSpace.GRADIENT, 12345)

    def test_spaces_disjoint(self):
        """The same payload in different spaces yields different VNs —
        features and gradients can share addresses safely."""
        assert tag_vn(VnSpace.FEATURE, 7) != tag_vn(VnSpace.GRADIENT, 7)

    def test_payload_overflow(self):
        with pytest.raises(VnOverflowError):
            tag_vn(VnSpace.FEATURE, 1 << VN_PAYLOAD_BITS)

    def test_negative_payload(self):
        with pytest.raises(ConfigError):
            tag_vn(VnSpace.FEATURE, -1)

    def test_untag_range_check(self):
        with pytest.raises(ConfigError):
            untag_vn(1 << VN_BITS)

    @given(st.sampled_from(list(VnSpace)),
           st.integers(min_value=0, max_value=(1 << VN_PAYLOAD_BITS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, space, payload):
        assert untag_vn(tag_vn(space, payload)) == (space, payload)


class TestPackFields:
    def test_concatenation(self):
        # (0b101, 3 bits) || (0b01, 2 bits) == 0b10101
        assert pack_fields((0b101, 3), (0b01, 2)) == 0b10101

    def test_darwin_style(self):
        vn = pack_fields((3, 31), (9, 31))
        assert vn == (3 << 31) | 9

    def test_field_overflow(self):
        with pytest.raises(VnOverflowError):
            pack_fields((4, 2))

    def test_total_width_check(self):
        with pytest.raises(ConfigError):
            pack_fields((1, 40), (1, 40))

    def test_bad_width(self):
        with pytest.raises(ConfigError):
            pack_fields((0, 0))


class TestCounterBlock:
    def test_layout(self):
        block = counter_block(0xDEADBEEF, 0x42)
        assert int.from_bytes(block[:8], "big") == 0xDEADBEEF
        assert int.from_bytes(block[8:], "big") == 0x42

    def test_sixteen_bytes(self):
        assert len(counter_block(0, 0)) == 16

    def test_address_uniqueness(self):
        """Same VN at different addresses → different counters (§III-D)."""
        assert counter_block(0x100, 5) != counter_block(0x200, 5)

    def test_vn_uniqueness(self):
        assert counter_block(0x100, 5) != counter_block(0x100, 6)

    def test_address_overflow(self):
        with pytest.raises(ConfigError):
            counter_block(1 << 64, 0)

    def test_vn_overflow(self):
        with pytest.raises(ConfigError):
            counter_block(0, 1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=40, deadline=None)
    def test_injective_property(self, address, vn):
        block = counter_block(address, vn)
        assert int.from_bytes(block, "big") == (address << 64) | vn


class TestCounterBlockArray:
    @given(st.integers(min_value=0, max_value=(1 << 60)),
           st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_rows_match_scalar_counter_block(self, address, vn, lanes):
        blocks = counter_block_array(address, vn, lanes)
        assert blocks.shape == (lanes, 16)
        for i in range(lanes):
            assert blocks[i].tobytes() == counter_block(address + i * 16, vn)

    def test_custom_stride(self):
        blocks = counter_block_array(0x1000, 9, 3, stride=64)
        for i in range(3):
            assert blocks[i].tobytes() == counter_block(0x1000 + i * 64, 9)

    def test_high_address_bytes(self):
        """Addresses above 2**32 must decompose correctly per byte."""
        address = 0xDEAD_BEEF_CAFE_F00D - 15 * 16
        blocks = counter_block_array(address, 1, 16)
        assert blocks[15].tobytes() == counter_block(0xDEAD_BEEF_CAFE_F00D, 1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            counter_block_array(0, 0, 0)
        with pytest.raises(ConfigError):
            counter_block_array((1 << 64) - 8, 0, 2)  # last lane overflows
        with pytest.raises(ConfigError):
            counter_block_array(0, 1 << 64, 1)
