"""Counter-block construction and VN tagging (Fig. 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError, VnOverflowError
from repro.core.access import DataClass
from repro.core.counters import (
    VN_BITS,
    VN_PAYLOAD_BITS,
    VnSpace,
    counter_block,
    pack_fields,
    space_for,
    tag_vn,
    untag_vn,
)


class TestVnSpaces:
    def test_fig6_tag_values(self):
        assert VnSpace.FEATURE == 0b00
        assert VnSpace.WEIGHT == 0b01
        assert VnSpace.GRADIENT == 0b10

    def test_space_for_dnn_classes(self):
        assert space_for(DataClass.FEATURE) is VnSpace.FEATURE
        assert space_for(DataClass.WEIGHT) is VnSpace.WEIGHT
        assert space_for(DataClass.GRADIENT) is VnSpace.GRADIENT

    def test_other_classes_share_other(self):
        assert space_for(DataClass.ADJACENCY) is VnSpace.OTHER
        assert space_for(DataClass.FRAME) is VnSpace.OTHER


class TestTagging:
    def test_tag_untag_roundtrip(self):
        vn = tag_vn(VnSpace.GRADIENT, 12345)
        assert untag_vn(vn) == (VnSpace.GRADIENT, 12345)

    def test_spaces_disjoint(self):
        """The same payload in different spaces yields different VNs —
        features and gradients can share addresses safely."""
        assert tag_vn(VnSpace.FEATURE, 7) != tag_vn(VnSpace.GRADIENT, 7)

    def test_payload_overflow(self):
        with pytest.raises(VnOverflowError):
            tag_vn(VnSpace.FEATURE, 1 << VN_PAYLOAD_BITS)

    def test_negative_payload(self):
        with pytest.raises(ConfigError):
            tag_vn(VnSpace.FEATURE, -1)

    def test_untag_range_check(self):
        with pytest.raises(ConfigError):
            untag_vn(1 << VN_BITS)

    @given(st.sampled_from(list(VnSpace)),
           st.integers(min_value=0, max_value=(1 << VN_PAYLOAD_BITS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, space, payload):
        assert untag_vn(tag_vn(space, payload)) == (space, payload)


class TestPackFields:
    def test_concatenation(self):
        # (0b101, 3 bits) || (0b01, 2 bits) == 0b10101
        assert pack_fields((0b101, 3), (0b01, 2)) == 0b10101

    def test_darwin_style(self):
        vn = pack_fields((3, 31), (9, 31))
        assert vn == (3 << 31) | 9

    def test_field_overflow(self):
        with pytest.raises(VnOverflowError):
            pack_fields((4, 2))

    def test_total_width_check(self):
        with pytest.raises(ConfigError):
            pack_fields((1, 40), (1, 40))

    def test_bad_width(self):
        with pytest.raises(ConfigError):
            pack_fields((0, 0))


class TestCounterBlock:
    def test_layout(self):
        block = counter_block(0xDEADBEEF, 0x42)
        assert int.from_bytes(block[:8], "big") == 0xDEADBEEF
        assert int.from_bytes(block[8:], "big") == 0x42

    def test_sixteen_bytes(self):
        assert len(counter_block(0, 0)) == 16

    def test_address_uniqueness(self):
        """Same VN at different addresses → different counters (§III-D)."""
        assert counter_block(0x100, 5) != counter_block(0x200, 5)

    def test_vn_uniqueness(self):
        assert counter_block(0x100, 5) != counter_block(0x100, 6)

    def test_address_overflow(self):
        with pytest.raises(ConfigError):
            counter_block(1 << 64, 0)

    def test_vn_overflow(self):
        with pytest.raises(ConfigError):
            counter_block(0, 1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=40, deadline=None)
    def test_injective_property(self, address, vn):
        block = counter_block(address, vn)
        assert int.from_bytes(block, "big") == (address << 64) | vn
