"""DNN layer shape math and the model zoo."""

import pytest

from repro.common.errors import ConfigError
from repro.dnn.layers import (
    ConvLayer,
    DenseLayer,
    DnnModel,
    EmbeddingLayer,
    GemmShape,
    MatmulLayer,
    PoolLayer,
)
from repro.dnn.models import (
    INFERENCE_MODELS,
    alexnet,
    bert_base,
    build_model,
    dlrm,
    googlenet,
    resnet50,
    vgg16,
)


class TestConvLayer:
    def _conv(self, **kw):
        defaults = dict(name="c", inputs=("input",), in_channels=3, out_channels=64,
                        kernel=7, stride=2, padding=3, in_h=224, in_w=224)
        defaults.update(kw)
        return ConvLayer(**defaults)

    def test_output_size_resnet_stem(self):
        c = self._conv()
        assert (c.out_h, c.out_w) == (112, 112)

    def test_same_padding(self):
        c = self._conv(kernel=3, stride=1, padding=1)
        assert (c.out_h, c.out_w) == (224, 224)

    def test_weight_bytes(self):
        c = self._conv(dtype_bytes=1)
        assert c.weight_bytes == 64 * 3 * 7 * 7

    def test_gemm_lowering_im2col(self):
        c = self._conv()
        (g,) = c.gemms()
        assert g == GemmShape(m=112 * 112, k=3 * 7 * 7, n=64)

    def test_gemm_macs_match_conv_macs(self):
        c = self._conv()
        expected = 112 * 112 * 64 * 3 * 7 * 7
        assert sum(g.macs for g in c.gemms()) == expected

    def test_grouped_conv(self):
        c = self._conv(in_channels=64, out_channels=64, groups=4, kernel=3,
                       stride=1, padding=1)
        gemms = c.gemms()
        assert len(gemms) == 4
        assert gemms[0].k == (64 // 4) * 9

    def test_invalid_groups(self):
        with pytest.raises(ConfigError):
            self._conv(in_channels=3, groups=2)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            self._conv(kernel=9, in_h=4, in_w=4, padding=0, stride=1)

    def test_backward_gemms_double_macs(self):
        c = self._conv()
        fwd = sum(g.macs for g in c.gemms())
        bwd = sum(g.macs for g in c.backward_gemms)
        assert bwd == 2 * fwd


class TestOtherLayers:
    def test_dense_gemm(self):
        d = DenseLayer(name="fc", inputs=("x",), in_features=4096,
                       out_features=1000, rows=1)
        assert d.gemms() == [GemmShape(m=1, k=4096, n=1000)]

    def test_matmul_heads(self):
        m = MatmulLayer(name="s", inputs=("q", "k"), m=512, k=64, n=512, batch=12)
        assert len(m.gemms()) == 12
        assert m.weight_bytes == 0

    def test_pool_shrinks(self):
        p = PoolLayer(name="p", inputs=("x",), channels=64, in_h=112, in_w=112,
                      kernel=3, stride=2)
        assert (p.out_h, p.out_w) == (55, 55)
        assert p.ofmap_bytes < p.ifmap_bytes

    def test_embedding_geometry(self):
        e = EmbeddingLayer(name="e", inputs=(), tables=26, rows=1000, dim=128,
                           lookups_per_table=2, batch=64)
        assert e.row_bytes == 512
        assert e.total_lookups == 64 * 26 * 2
        assert e.table_bytes == 1000 * 512

    def test_embedding_output_not_spilled_by_default(self):
        e = EmbeddingLayer(name="e", inputs=(), tables=2, rows=10, dim=16, batch=4)
        assert e.ofmap_bytes == 0
        spilled = EmbeddingLayer(name="e2", inputs=(), tables=2, rows=10, dim=16,
                                 batch=4, spill_output=True)
        assert spilled.ofmap_bytes > 0

    def test_gemm_validation(self):
        with pytest.raises(ConfigError):
            GemmShape(m=0, k=1, n=1)


class TestModelGraph:
    def test_duplicate_layer_rejected(self):
        m = DnnModel("t")
        m.add(DenseLayer(name="fc", inputs=("input",), in_features=8, out_features=8))
        with pytest.raises(ConfigError):
            m.add(DenseLayer(name="fc", inputs=("input",), in_features=8, out_features=8))

    def test_layer_lookup(self):
        m = alexnet()
        assert m.layer("conv1").name == "conv1"
        with pytest.raises(ConfigError):
            m.layer("ghost")

    def test_consumers(self):
        m = resnet50()
        # The stage-2 first block's add consumes both conv output and skip.
        consumers = m.consumers("s2b1_add")
        assert len(consumers) >= 2  # next block conv + skip path


class TestModelZoo:
    @pytest.mark.parametrize("name", INFERENCE_MODELS)
    def test_builds(self, name):
        model = build_model(name)
        assert model.layers

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("LeNet")

    def test_alexnet_structure(self):
        m = alexnet()
        convs = [l for l in m.layers if isinstance(l, ConvLayer)]
        dense = [l for l in m.layers if isinstance(l, DenseLayer)]
        assert len(convs) == 5
        assert len(dense) == 3

    def test_vgg16_has_13_convs(self):
        m = vgg16()
        convs = [l for l in m.layers if isinstance(l, ConvLayer)]
        assert len(convs) == 13

    def test_vgg16_parameter_count(self):
        """VGG-16 has ~138 M parameters."""
        m = vgg16()
        params = m.total_weight_bytes // 2  # dtype_bytes = 2
        assert 135e6 < params < 140e6

    def test_resnet50_parameter_count(self):
        """ResNet-50 has ~25.5 M parameters (no batch-norm params here)."""
        m = resnet50()
        params = m.total_weight_bytes // 2
        assert 23e6 < params < 27e6

    def test_bert_base_parameter_count(self):
        """BERT-base encoder stack: ~85 M parameters (no embeddings)."""
        m = bert_base()
        params = m.total_weight_bytes // 2
        assert 80e6 < params < 90e6

    def test_googlenet_inception_fanout(self):
        m = googlenet()
        branches = [l for l in m.layers if l.name.startswith("inc3a_")]
        # 1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool-proj, concat
        assert len(branches) == 7

    def test_resnet50_conv_count(self):
        m = resnet50()
        convs = [l for l in m.layers if isinstance(l, ConvLayer)]
        # 1 stem + 16 blocks × 3 + 4 projections = 53
        assert len(convs) == 53

    def test_dlrm_embedding_dominates_capacity(self):
        m = dlrm()
        emb = next(l for l in m.layers if isinstance(l, EmbeddingLayer))
        assert emb.total_table_bytes > 10 * m.total_weight_bytes

    def test_bert_macs_scale_with_layers(self):
        small = bert_base(layers=2)
        big = bert_base(layers=4)
        assert big.total_macs == pytest.approx(2 * small.total_macs, rel=0.01)
