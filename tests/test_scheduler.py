"""Sweep scheduler and disk-tier cache: determinism and round trips.

The scheduler's contract is that fan-out is *invisible* in the results:
``run_all(jobs=N)`` must render byte-identical figure tables to the
serial run, prefetched sweeps must land under the exact cache keys the
drivers use, and a sweep restored from the disk tier must compare equal
— float for float — to the one that was spilled.
"""

from __future__ import annotations

from dataclasses import astuple

from repro.sim.runner import SCHEMES, dnn_sweep, graph_sweep
from repro.sim.scheduler import (
    dnn_spec,
    effective_workers,
    graph_spec,
    prefetch_sweeps,
)


def _sweeps_equal(a, b) -> None:
    assert set(a.results) == set(b.results)
    for name in a.results:
        assert a.results[name].total_cycles == b.results[name].total_cycles, name
        assert astuple(a.results[name].traffic) == astuple(b.results[name].traffic), name


class TestSweepSpecKeys:
    def test_dnn_spec_key_matches_driver_key(self, fresh_cache):
        spec = dnn_spec("AlexNet", "Cloud")
        prefetch_sweeps([spec], jobs=1)
        sweep = dnn_sweep("AlexNet", "Cloud")
        assert fresh_cache.peek(spec.sweep_key()) is sweep

    def test_graph_spec_key_matches_driver_key(self, fresh_cache):
        spec = graph_spec("google-plus", "PR", iterations=2, scale_divisor=256)
        prefetch_sweeps([spec], jobs=1)
        sweep = graph_sweep("google-plus", "PR", iterations=2, scale_divisor=256)
        assert fresh_cache.peek(spec.sweep_key()) is sweep

    def test_equal_graph_configs_share_cache_entries(self, fresh_cache):
        """Separately-constructed equal configs hit the same entries."""
        from repro.graph.graphlily import GraphAcceleratorConfig

        first = graph_sweep("google-plus", "PR", iterations=2, scale_divisor=256,
                            config=GraphAcceleratorConfig())
        again = graph_sweep("google-plus", "PR", iterations=2, scale_divisor=256,
                            config=GraphAcceleratorConfig())
        assert again is first
        assert (GraphAcceleratorConfig().cache_key()
                == GraphAcceleratorConfig().cache_key())

    def test_specs_dedup_in_prefetch(self, fresh_cache):
        spec = dnn_spec("AlexNet", "Cloud")
        summary = prefetch_sweeps([spec, spec, spec], jobs=1)
        assert summary["workloads"] == 1
        assert summary["priced"] == 1


class TestPrefetchParallel:
    def test_pool_prefetch_matches_inline(self, fresh_cache, monkeypatch):
        """The worker-pool job graph produces bit-identical sweeps."""
        specs = [
            dnn_spec("AlexNet", "Cloud"),
            dnn_spec("AlexNet", "Cloud", training=True),
            graph_spec("google-plus", "PR", iterations=2, scale_divisor=256),
        ]
        reference = {}
        for spec in specs:
            reference[spec] = spec.run_inline()
        fresh_cache.clear()
        # Force the pool path even on single-core machines.
        monkeypatch.setattr("repro.sim.scheduler.os.cpu_count", lambda: 2)
        summary = prefetch_sweeps(specs, jobs=2)
        assert summary["priced"] == len(specs)
        for spec in specs:
            cached = fresh_cache.peek(spec.sweep_key())
            assert cached is not None
            _sweeps_equal(cached, reference[spec])

    def test_prefetch_skips_cached_sweeps(self, fresh_cache):
        spec = dnn_spec("AlexNet", "Cloud")
        prefetch_sweeps([spec], jobs=1)
        summary = prefetch_sweeps([spec], jobs=1)
        assert summary == {"workloads": 1, "cached": 1, "priced": 0,
                           "traces_built": 0, "results_built": 0,
                           "profiles_built": 0}

    def test_pool_prefetch_spills_result_artifacts(self, disk_cache,
                                                   monkeypatch):
        """The pool path drains the same graph the queue workers do, so
        per-scheme result artifacts land on disk under the same codec."""
        from repro.sim.scheduler import build_graph

        monkeypatch.setattr("repro.sim.scheduler.os.cpu_count", lambda: 2)
        spec = dnn_spec("AlexNet", "Cloud")
        summary = prefetch_sweeps([spec], jobs=2)
        assert summary["results_built"] == len(SCHEMES)
        for job in build_graph([spec]):
            assert disk_cache.has(job.key), job.kind
        on_disk = sorted(
            p.name.split("-")[0]
            for suffix in ("*.json", "*.bin")
            for p in disk_cache.cache_dir.glob(suffix)
        )
        assert on_disk == (["result"] * len(SCHEMES) + ["sweep", "trace"])
        # Traces spill in the columnar binary layout, everything else as JSON.
        assert [p.name.split("-")[0]
                for p in disk_cache.cache_dir.glob("*.bin")] == ["trace"]

    def test_effective_workers_clamps_to_cores(self):
        assert effective_workers(None) == 1
        assert effective_workers(1) == 1
        assert effective_workers(64) >= 1


class TestRunAllDeterminism:
    def test_parallel_run_all_tables_identical_to_serial(self, fresh_cache):
        """run_all(jobs=4) renders byte-identical tables to the serial run."""
        from repro.experiments.registry import run_all

        serial = {eid: result.to_text()
                  for eid, result in run_all(quick=True).items()}
        fresh_cache.clear()
        parallel = {eid: result.to_text()
                    for eid, result in run_all(quick=True, jobs=4).items()}
        assert parallel == serial


class TestDiskTier:
    def test_sweep_spill_and_restore_round_trip(self, disk_cache):
        """Spill, simulate a new process via clear(), restore: same sweep."""
        first = dnn_sweep("AlexNet", "Cloud")
        assert disk_cache.stats()["sweep_misses"] == 1
        disk_cache.clear()  # drop the memory tier; disk files persist
        restored = dnn_sweep("AlexNet", "Cloud")
        stats = disk_cache.stats()
        assert stats["disk_hits"] == 1
        assert stats["trace_misses"] == 0  # the trace was never rebuilt
        assert stats["sweep_misses"] == 0
        assert restored is not first
        _sweeps_equal(restored, first)

    def test_trace_spill_and_restore_round_trip(self, disk_cache):
        from repro.sim.runner import dnn_workload

        workload = dnn_workload("AlexNet", "Cloud")
        disk_cache.clear()
        restored = dnn_workload("AlexNet", "Cloud")
        assert disk_cache.stats()["disk_hits"] == 1
        assert restored.trace is not workload.trace
        original = [a for p in workload.trace.phases for a in p.accesses]
        roundtrip = [a for p in restored.trace.phases for a in p.accesses]
        assert roundtrip == original
        assert [p.name for p in restored.trace.phases] == [
            p.name for p in workload.trace.phases
        ]
        assert [p.compute_cycles for p in restored.trace.phases] == [
            p.compute_cycles for p in workload.trace.phases
        ]

    def test_restored_sweep_renders_identical_tables(self, disk_cache):
        """A disk-restored sweep must produce the same figure numbers."""
        from repro.experiments.registry import run_experiment

        cold = run_experiment("fig13", quick=True).to_text()
        disk_cache.clear()
        warm = run_experiment("fig13", quick=True).to_text()
        assert disk_cache.stats()["trace_misses"] == 0
        assert warm == cold

    def test_corrupt_spill_falls_back_to_rebuild(self, disk_cache):
        dnn_sweep("AlexNet", "Cloud")
        for spill in disk_cache.cache_dir.glob("*.json"):
            spill.write_text("{not json")
        for spill in disk_cache.cache_dir.glob("*.bin"):
            spill.write_bytes(b"NOTMAGIC" + spill.read_bytes()[8:])
        disk_cache.clear()
        sweep = dnn_sweep("AlexNet", "Cloud")  # rebuilt, not crashed
        assert set(sweep.results) == set(SCHEMES)
        assert disk_cache.stats()["sweep_misses"] == 1

    def test_sweep_codec_round_trip_is_exact(self, fresh_cache):
        from repro.experiments.storage import loads_sweep, dumps_sweep

        sweep = dnn_sweep("AlexNet", "Cloud")
        restored = loads_sweep(dumps_sweep(sweep))
        assert restored.workload == sweep.workload
        _sweeps_equal(restored, sweep)


class TestExternalTraceJobs:
    def test_parallel_sweep_pool_path_matches_serial(self, fresh_cache,
                                                     monkeypatch):
        """Force the shared-pool path (even on one core): bit-identical."""
        monkeypatch.setattr("repro.sim.scheduler.os.cpu_count", lambda: 2)
        serial = graph_sweep("google-plus", "PR", iterations=2,
                             scale_divisor=256, use_cache=False)
        pooled = graph_sweep("google-plus", "PR", iterations=2,
                             scale_divisor=256, use_cache=False, jobs=2)
        _sweeps_equal(pooled, serial)

    def test_single_core_jobs_degrade_to_serial(self, fresh_cache, monkeypatch):
        """With one effective worker, jobs=N must not spawn a pool."""
        monkeypatch.setattr("repro.sim.scheduler.os.cpu_count", lambda: 1)

        def boom(*args, **kwargs):
            raise AssertionError("pool used despite one effective worker")

        monkeypatch.setattr("repro.sim.scheduler.shared_pool", boom)
        sweep = dnn_sweep("AlexNet", "Cloud", use_cache=False, jobs=4)
        assert set(sweep.results) == set(SCHEMES)

    def test_tracefile_evaluate_routes_through_batched_sweep(self, fresh_cache):
        from repro.sim import tracefile

        doc = """
        {"name": "ext", "accel_freq_mhz": 800, "dram_channels": 4,
         "protected_mib": 64,
         "phases": [
           {"name": "p0", "compute_cycles": 1000,
            "accesses": [
              {"address": 0, "size": 1048576, "kind": "read"},
              {"address": 1048576, "size": 524288, "kind": "write"},
              {"address": 0, "size": 65536, "kind": "read",
               "sequential": false, "burst_bytes": 64,
               "spread_bytes": 1048576}
            ]}
         ]}
        """
        trace = tracefile.loads(doc)
        serial = tracefile.evaluate(trace)
        parallel = tracefile.evaluate(trace, jobs=2)
        _sweeps_equal(parallel, serial)
        assert set(serial.results) == set(SCHEMES)
