"""GraphLily-like accelerator trace generation (§V, Fig. 10)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KIB
from repro.core.access import DataClass
from repro.core.vngen import IterationVnState, UniquenessGuard
from repro.graph.generators import build_benchmark_graph, uniform_random_graph
from repro.graph.graphlily import GraphAcceleratorConfig, GraphTraceGenerator

_CFG = GraphAcceleratorConfig(vector_buffer_bytes=16 * KIB)


@pytest.fixture(scope="module")
def generator():
    graph = uniform_random_graph(16_384, 131_072, seed=9)
    return GraphTraceGenerator(graph, _CFG)


class TestTileAccounting:
    def test_tile_edges_sum_to_nnz(self, generator):
        assert generator._tile_edges.sum() == generator.graph.nnz

    def test_block_count(self, generator):
        assert generator.n_blocks == 4  # 16384 verts / 4096 per 16 KiB block

    def test_adjacency_region_covers_payload(self, generator):
        region = generator.address_space.region("adjacency")
        assert region.size >= generator.graph.nnz * _CFG.edge_bytes


class TestIterationPhases:
    def test_one_phase_per_destination_block(self, generator):
        phases = generator.iteration_phases(IterationVnState())
        assert len(phases) == generator.n_blocks

    def test_adjacency_read_once_per_iteration(self, generator):
        phases = generator.iteration_phases(IterationVnState())
        adjacency_bytes = sum(
            a.size for p in phases for a in p.accesses
            if a.data_class is DataClass.ADJACENCY
        )
        payload = generator.graph.nnz * _CFG.edge_bytes
        # Tiles add per-tile row-pointer slices; bounded at 35% here
        # because the scaled graph has a low average degree.
        assert payload <= adjacency_bytes < 1.35 * payload

    def test_adjacency_vn_constant(self, generator):
        vn_state = IterationVnState()
        vns = set()
        for _ in range(3):
            for p in generator.iteration_phases(vn_state):
                vns.update(
                    a.vn for a in p.accesses if a.data_class is DataClass.ADJACENCY
                )
            vn_state.advance_iteration()
        assert len(vns) == 1

    def test_vector_read_vn_is_previous_write_vn(self, generator):
        """§V-B: Iter−1 reads what Iter−1's writes produced."""
        vn_state = IterationVnState()
        first = generator.iteration_phases(vn_state)
        write_vns = {
            a.vn for p in first for a in p.accesses
            if a.data_class is DataClass.VECTOR and a.is_write
        }
        vn_state.advance_iteration()
        second = generator.iteration_phases(vn_state)
        read_vns = {
            a.vn for p in second for a in p.accesses
            if a.data_class is DataClass.VECTOR and not a.is_write
        }
        assert read_vns == write_vns

    def test_vector_regions_alternate(self, generator):
        vn_state = IterationVnState()
        first = generator.iteration_phases(vn_state)
        vn_state.advance_iteration()
        second = generator.iteration_phases(vn_state)

        def write_targets(phases):
            return {
                a.address for p in phases for a in p.accesses
                if a.data_class is DataClass.VECTOR and a.is_write
            }

        assert write_targets(first).isdisjoint(write_targets(second))

    def test_write_vns_unique_per_location(self, generator):
        guard = UniquenessGuard()
        vn_state = IterationVnState()
        for _ in range(4):
            for p in generator.iteration_phases(vn_state):
                for a in p.accesses:
                    if a.is_write:
                        guard.register_write(a.address, a.vn)
            vn_state.advance_iteration()

    def test_spmspv_vector_reads_scattered(self, generator):
        phases = generator.iteration_phases(IterationVnState(), sparse_vector=True)
        vec_reads = [
            a for p in phases for a in p.accesses
            if a.data_class is DataClass.VECTOR and not a.is_write
        ]
        assert vec_reads
        assert all(not a.sequential for a in vec_reads)
        assert all(a.burst_bytes == 64 for a in vec_reads)


class TestTraces:
    def test_pagerank_trace_iterations(self, generator):
        trace = generator.pagerank_trace(iterations=3)
        assert trace.iterations == 3
        assert len(trace.phases) == 3 * generator.n_blocks

    def test_bfs_trace_uses_functional_levels(self):
        graph = uniform_random_graph(4096, 65_536, seed=10)
        gen = GraphTraceGenerator(graph, _CFG)
        trace = gen.bfs_trace(source=0)
        assert trace.iterations >= 1

    def test_traffic_scales_with_iterations(self, generator):
        one = generator.pagerank_trace(iterations=1).total_bytes
        three = generator.pagerank_trace(iterations=3).total_bytes
        assert three == pytest.approx(3 * one, rel=0.01)

    def test_invalid_iterations(self, generator):
        with pytest.raises(ConfigError):
            generator.spmspv_trace(iterations=0)

    def test_vn_state_bytes_is_8(self, generator):
        trace = generator.pagerank_trace(iterations=1)
        assert trace.vn_state.state_bytes == 8


class TestScaleStability:
    def test_bp_mgx_ratio_stable_across_scales(self):
        """The substitution argument: traffic overhead ratios barely move
        when the graph (and the buffer) shrink by the same factor."""
        from repro.core.schemes import ProtectionTraffic, scheme_suite

        ratios = {}
        for divisor, buffer_bytes in ((64, 128 * KIB), (256, 32 * KIB)):
            cfg = GraphAcceleratorConfig(vector_buffer_bytes=buffer_bytes)
            graph = build_benchmark_graph("google-plus", scale_divisor=divisor)
            gen = GraphTraceGenerator(graph, cfg)
            trace = gen.pagerank_trace(iterations=2)
            totals = {}
            for name, scheme in scheme_suite(cfg.protected_bytes).items():
                t = ProtectionTraffic()
                for p in trace.phases:
                    for a in p.accesses:
                        t.merge(scheme.process(a))
                t.merge(scheme.finish())
                totals[name] = t.total_bytes
            ratios[divisor] = totals["BP"] / totals["NP"]
        assert ratios[64] == pytest.approx(ratios[256], rel=0.05)
