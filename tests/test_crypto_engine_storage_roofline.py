"""Crypto-engine derivation, storage overhead, and roofline analysis."""

import pytest

from repro.common.errors import ConfigError
from repro.core.access import DataClass, Phase, read
from repro.core.crypto_engine import CryptoEngineConfig, engine_for_dnn_cloud
from repro.dnn.accelerator import CLOUD, EDGE
from repro.dnn.models import build_model
from repro.dnn.tracegen import DnnTraceGenerator
from repro.dram.model import DramConfig, DramModel
from repro.experiments.storage import run as run_storage
from repro.sim.roofline import analyze
from repro.sim.runner import dnn_sweep


class TestCryptoEngine:
    def test_throughput_scales_with_pipes(self):
        one = CryptoEngineConfig(aes_pipes=1, mac_lanes=1)
        four = CryptoEngineConfig(aes_pipes=4, mac_lanes=4)
        assert four.bytes_per_second == 4 * one.bytes_per_second

    def test_bottleneck_is_slower_unit(self):
        lopsided = CryptoEngineConfig(aes_pipes=8, mac_lanes=2)
        assert lopsided.bytes_per_second == lopsided.mac_bytes_per_second

    def test_cloud_engine_matches_default_efficiency(self):
        """The derivation behind PerfConfig's crypto_efficiency=0.97."""
        engine = engine_for_dnn_cloud()
        efficiency = engine.efficiency_vs(DramConfig(channels=4))
        # 67.2 GB/s engine vs 76.8 GB/s peak ≈ 0.875 of *peak*, which is
        # ≈ 0.97 of *achievable* (stream efficiency × refresh).
        achievable = (
            DramConfig(channels=4).sequential_bytes_per_cycle
            * DramConfig(channels=4).timing.clock_hz
        )
        vs_achievable = engine.bytes_per_second / achievable
        assert 0.92 < vs_achievable < 1.02
        assert efficiency < 1.0

    def test_overprovisioned_engine_is_free(self):
        engine = CryptoEngineConfig(aes_pipes=64, mac_lanes=64, freq_hz=2e9)
        assert engine.efficiency_vs(DramConfig(channels=1)) == 1.0

    def test_verification_latency_positive(self):
        engine = CryptoEngineConfig()
        latency = engine.verification_latency_cycles(512)
        assert latency >= engine.mac_finalize_cycles

    def test_validation(self):
        with pytest.raises(ConfigError):
            CryptoEngineConfig(aes_pipes=0)
        with pytest.raises(ConfigError):
            CryptoEngineConfig().verification_latency_cycles(0)


class TestStorageOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return run_storage(quick=True)

    def test_bp_loses_over_a_quarter(self, result):
        assert 25.0 < result.summary["BP_pct"] < 29.0

    def test_mgx_under_two_percent(self, result):
        assert result.summary["MGX_pct"] < 2.0

    def test_ordering(self, result):
        assert (result.summary["MGX_pct"] < result.summary["MGX_VN_pct"]
                <= result.summary["BP_pct"])

    def test_mgx_needs_no_onchip_cache(self, result):
        rows = {r["scheme"]: r for r in result.rows}
        assert rows["MGX"]["onchip_bytes"] == 0
        assert rows["BP"]["onchip_bytes"] >= 32 * 1024


class TestRoofline:
    def _report(self, model_name, config):
        trace = DnnTraceGenerator(build_model(model_name), config).inference()
        return analyze(trace.phases, DramModel(config.dram),
                       config.array.freq_hz)

    def test_synthetic_classification(self):
        dram = DramModel(DramConfig(channels=4))
        phases = [
            Phase("mem", compute_cycles=0,
                  accesses=[read(0, 1 << 20, DataClass.FEATURE)]),
            Phase("cpu", compute_cycles=10**9,
                  accesses=[read(0, 64, DataClass.FEATURE)]),
        ]
        report = analyze(phases, dram, accel_freq_hz=800e6)
        assert report.phases[0].memory_bound
        assert not report.phases[1].memory_bound
        assert report.memory_bound_phase_count == 1

    def test_bert_edge_is_compute_bound(self):
        """Explains Fig. 13's smallest Edge overhead."""
        report = self._report("BERT", EDGE)
        assert report.memory_bound_fraction_of_time < 0.4

    def test_bert_cloud_is_memory_bound(self):
        report = self._report("BERT", CLOUD)
        assert report.memory_bound_fraction_of_time > 0.6

    def test_prediction_tracks_simulation(self):
        """The first-order roofline prediction lands near the simulated
        BP overhead (within a few points)."""
        report = self._report("ResNet", CLOUD)
        sweep = dnn_sweep("ResNet", "Cloud")
        predicted = report.predicted_overhead(sweep.traffic_increase("BP"))
        simulated = sweep.normalized_time("BP")
        assert abs(predicted - simulated) < 0.08

    def test_prediction_validates_input(self):
        report = self._report("AlexNet", CLOUD)
        with pytest.raises(ConfigError):
            report.predicted_overhead(0.9)

    def test_intensity_monotone_in_compute(self):
        dram = DramModel(DramConfig(channels=4))
        phases = [
            Phase("a", compute_cycles=100, accesses=[read(0, 4096)]),
            Phase("b", compute_cycles=10_000, accesses=[read(0, 4096)]),
        ]
        report = analyze(phases, dram, accel_freq_hz=800e6)
        assert (report.phases[1].intensity_cycles_per_byte
                > report.phases[0].intensity_cycles_per_byte)
