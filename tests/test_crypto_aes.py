"""AES cipher: FIPS-197 known answers, inverse cipher, batch equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.crypto.aes_batch import AesBatch

_PT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestSbox:
    """Spot values from the FIPS-197 table; full inverse consistency."""

    def test_sbox_zero(self):
        assert SBOX[0x00] == 0x63

    def test_sbox_one(self):
        assert SBOX[0x01] == 0x7C

    def test_sbox_53(self):
        assert SBOX[0x53] == 0xED

    def test_inverse_is_inverse(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestFipsVectors:
    """FIPS-197 Appendix C known-answer tests."""

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        assert AES(key).encrypt_block(_PT).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        assert AES(key).encrypt_block(_PT).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        assert AES(key).encrypt_block(_PT).hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_zero_key_zero_block(self):
        assert AES(bytes(16)).encrypt_block(bytes(16)).hex() == (
            "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )


class TestRoundTrip:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len):
        key = bytes(range(key_len))
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(_PT)) == _PT

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_encryption_changes_data(self):
        aes = AES(bytes(16))
        assert aes.encrypt_block(_PT) != _PT

    def test_different_keys_differ(self):
        a = AES(bytes(16)).encrypt_block(_PT)
        b = AES(bytes([1] * 16)).encrypt_block(_PT)
        assert a != b


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ConfigError):
            AES(bytes(15))

    def test_bad_block_length_encrypt(self):
        with pytest.raises(ConfigError):
            AES(bytes(16)).encrypt_block(bytes(15))

    def test_bad_block_length_decrypt(self):
        with pytest.raises(ConfigError):
            AES(bytes(16)).decrypt_block(bytes(17))


class TestBatchEquivalence:
    @pytest.mark.parametrize("key_len", [16, 32])
    def test_batch_matches_scalar(self, key_len):
        key = bytes(range(key_len))
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        batch = AesBatch(key).encrypt_blocks(blocks)
        scalar = np.array(
            [list(AES(key).encrypt_block(bytes(b))) for b in blocks], dtype=np.uint8
        )
        assert np.array_equal(batch, scalar)

    def test_batch_shape_validation(self):
        with pytest.raises(ConfigError):
            AesBatch(bytes(16)).encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))

    def test_batch_dtype_validation(self):
        with pytest.raises(ConfigError):
            AesBatch(bytes(16)).encrypt_blocks(np.zeros((4, 16), dtype=np.int32))

    def test_batch_key_validation(self):
        with pytest.raises(ConfigError):
            AesBatch(bytes(7))

    def test_empty_batch(self):
        out = AesBatch(bytes(16)).encrypt_blocks(np.zeros((0, 16), dtype=np.uint8))
        assert out.shape == (0, 16)
