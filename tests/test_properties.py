"""Property-based and stateful tests of the core invariants.

These complement the example-based tests with machine-generated
scenarios: arbitrary interleavings of writes, reads and attacks against
the functional engine, and algebraic properties of the traffic
accounting that every scheme must satisfy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.common.errors import FreshnessError, IntegrityError
from repro.common.units import MIB
from repro.core.access import DataClass, read, write
from repro.core.functional import MgxFunctionalEngine
from repro.core.schemes import make_baseline, make_mgx, make_mgx_vn
from repro.crypto.keys import SessionKeys
from repro.mem.attacker import Attacker
from repro.mem.backing import BackingStore

_GRAN = 512
_N_GRANULES = 16


class MgxEngineMachine(RuleBasedStateMachine):
    """Random walks over the functional engine's state space.

    The model tracks, per granule: the last VN written and the plaintext
    stored.  An attacker occasionally corrupts a granule.  The engine
    must (a) return exactly the modelled plaintext for clean granules,
    (b) raise IntegrityError for corrupted ones, and (c) refuse VN
    regressions — for every interleaving hypothesis invents.
    """

    def __init__(self):
        super().__init__()
        keys = SessionKeys.derive(b"stateful", b"machine")
        self.store = BackingStore(1 << 20)
        self.engine = MgxFunctionalEngine(
            keys, self.store, data_bytes=_N_GRANULES * _GRAN,
            mac_granularity=_GRAN,
        )
        self.attacker = Attacker(self.store)
        self.model_plain: dict[int, bytes] = {}
        self.model_vn: dict[int, int] = {}
        #: Active bit flips as (granule, offset, bit); flipping the same
        #: bit twice cancels (hypothesis found this case immediately).
        self.flips: set[tuple[int, int, int]] = set()
        self.rng = np.random.default_rng(0)

    @property
    def corrupted(self) -> set[int]:
        return {granule for granule, _, _ in self.flips}

    @rule(granule=st.integers(min_value=0, max_value=_N_GRANULES - 1),
          bump=st.integers(min_value=1, max_value=5))
    def write_granule(self, granule, bump):
        vn = self.model_vn.get(granule, 0) + bump
        payload = self.rng.integers(0, 256, size=_GRAN, dtype=np.uint8).tobytes()
        self.engine.write(granule * _GRAN, payload, vn)
        self.model_plain[granule] = payload
        self.model_vn[granule] = vn
        # Overwritten with fresh ciphertext + MAC: old flips are gone.
        self.flips = {f for f in self.flips if f[0] != granule}

    @precondition(lambda self: self.model_vn)
    @rule(data=st.data())
    def write_with_stale_vn_rejected(self, data):
        granule = data.draw(st.sampled_from(sorted(self.model_vn)))
        stale = data.draw(st.integers(min_value=0,
                                      max_value=self.model_vn[granule]))
        with pytest.raises(FreshnessError):
            self.engine.write(granule * _GRAN, bytes(_GRAN), stale)

    @precondition(lambda self: self.model_vn)
    @rule(data=st.data(), bit=st.integers(min_value=0, max_value=7))
    def corrupt_granule(self, data, bit):
        granule = data.draw(st.sampled_from(sorted(self.model_vn)))
        offset = data.draw(st.integers(min_value=0, max_value=_GRAN - 1))
        self.attacker.flip_bit(granule * _GRAN + offset, bit)
        self.flips ^= {(granule, offset, bit)}  # same flip twice cancels

    @precondition(lambda self: self.model_vn)
    @rule(data=st.data())
    def read_granule(self, data):
        granule = data.draw(st.sampled_from(sorted(self.model_vn)))
        address = granule * _GRAN
        if granule in self.corrupted:
            with pytest.raises(IntegrityError):
                self.engine.read(address, _GRAN, self.model_vn[granule])
        else:
            got = self.engine.read(address, _GRAN, self.model_vn[granule])
            assert got == self.model_plain[granule]

    @invariant()
    def ciphertext_never_equals_plaintext(self):
        for granule, plain in self.model_plain.items():
            if granule in self.corrupted:
                continue
            assert self.store.read(granule * _GRAN, _GRAN) != plain


MgxEngineMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestMgxEngineStateful = MgxEngineMachine.TestCase


_ACCESS_SIZES = st.integers(min_value=1, max_value=256).map(lambda k: k * 4096)


class TestSchemeAlgebra:
    @given(_ACCESS_SIZES)
    @settings(max_examples=20, deadline=None)
    def test_mgx_traffic_scales_linearly(self, size):
        scheme = make_mgx(1024 * MIB)
        one = scheme.process(read(0, size, DataClass.FEATURE)).total_bytes
        scheme.reset()
        two = scheme.process(read(0, 2 * size, DataClass.FEATURE)).total_bytes
        assert abs(two - 2 * one) <= 128  # alignment slack only

    @given(_ACCESS_SIZES)
    @settings(max_examples=20, deadline=None)
    def test_overhead_ordering_invariant(self, size):
        """MGX ≤ MGX_VN ≤ BP for any streaming read size."""
        results = {}
        for factory in (make_mgx, make_mgx_vn, make_baseline):
            scheme = factory(1024 * MIB)
            traffic = scheme.process(read(0, size, DataClass.FEATURE))
            traffic.merge(scheme.finish())
            results[scheme.name] = traffic.total_bytes
        assert results["MGX"] <= results["MGX_VN"] <= results["BP"]

    @given(_ACCESS_SIZES, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_metadata_never_negative_never_absurd(self, size, is_write):
        """Metadata stays within [0, 2×data] for every scheme and size."""
        for factory in (make_mgx, make_mgx_vn, make_baseline):
            scheme = factory(1024 * MIB)
            access = write(0, size, DataClass.FEATURE) if is_write else (
                read(0, size, DataClass.FEATURE)
            )
            traffic = scheme.process(access)
            traffic.merge(scheme.finish())
            assert 0 <= traffic.metadata_bytes <= 2 * size

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_split_access_equals_whole_for_mgx(self, chunks_a, chunks_b):
        """Processing one big aligned read equals processing its halves:
        MGX has no cross-access state."""
        scheme = make_mgx(1024 * MIB)
        size_a, size_b = chunks_a * 4096, chunks_b * 4096
        whole = scheme.process(read(0, size_a + size_b, DataClass.FEATURE))
        scheme.reset()
        parts = scheme.process(read(0, size_a, DataClass.FEATURE))
        parts.merge(scheme.process(read(size_a, size_b, DataClass.FEATURE)))
        assert whole.total_bytes == parts.total_bytes
