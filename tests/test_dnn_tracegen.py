"""DNN trace generation: VN correctness and traffic structure.

The central invariant (§III-C/§IV-C): every read access carries the VN of
the most recent write to that tensor, and write VNs never repeat for a
location.  These tests check it across inference, tiling and training.
"""

import pytest

from repro.core.access import DataClass
from repro.core.vngen import UniquenessGuard
from repro.dnn.accelerator import CLOUD, EDGE
from repro.dnn.models import alexnet, bert_base, build_model, dlrm, resnet50
from repro.dnn.tracegen import DnnTraceGenerator


def _trace(model, config=CLOUD, training=False, batch=1):
    gen = DnnTraceGenerator(model, config, batch=batch)
    return gen.training_step() if training else gen.inference()


class TestInferenceTraceStructure:
    def test_one_phase_per_layer(self):
        model = alexnet()
        trace = _trace(model)
        assert len(trace.phases) == len(model.layers)

    def test_every_access_has_vn(self):
        trace = _trace(alexnet())
        for phase in trace.phases:
            for access in phase.accesses:
                assert access.vn is not None

    def test_weights_read_once_per_layer(self):
        model = alexnet()
        trace = _trace(model)
        for phase, layer in zip(trace.phases, model.layers):
            weight_reads = [
                a for a in phase.accesses
                if a.data_class is DataClass.WEIGHT and not a.is_write
            ]
            if layer.weight_bytes:
                assert len(weight_reads) >= 1
                assert weight_reads[0].size == layer.weight_bytes
            else:
                assert not weight_reads

    def test_weight_vns_constant_within_inference(self):
        trace = _trace(resnet50())
        weight_vns = {
            a.vn
            for p in trace.phases
            for a in p.accesses
            if a.data_class is DataClass.WEIGHT
        }
        assert len(weight_vns) == 1

    def test_feature_write_vns_strictly_increase(self):
        trace = _trace(resnet50())
        write_vns = [
            a.vn
            for p in trace.phases
            for a in p.accesses
            if a.data_class is DataClass.FEATURE and a.is_write
        ]
        assert all(a < b for a, b in zip(write_vns, write_vns[1:]))

    def test_reads_match_most_recent_write(self):
        """Replay the trace through a write log: every feature read's VN
        equals the VN of the last write covering that address."""
        trace = _trace(resnet50())
        # The external input was ingested by the host before execution;
        # seed the log with its VN as the kernel's state records it.
        input_region = trace.address_space.region("feat:input")
        last_write: dict[int, int] = {
            input_region.base: trace.vn_state.read_features("input")
        }
        for phase in trace.phases:
            for access in phase.accesses:
                if access.data_class is not DataClass.FEATURE:
                    continue
                if access.is_write:
                    last_write[access.address] = access.vn
                else:
                    assert last_write.get(access.address) == access.vn, phase.name

    def test_write_vns_never_reuse_per_location(self):
        """Feed every write into the UniquenessGuard: must never raise."""
        trace = _trace(build_model("GoogleNet"))
        guard = UniquenessGuard()
        for phase in trace.phases:
            for access in phase.accesses:
                if access.is_write:
                    guard.register_write(access.address, access.vn)

    def test_total_bytes_positive_and_consistent(self):
        trace = _trace(alexnet())
        assert trace.total_bytes == sum(p.total_bytes() for p in trace.phases)
        assert trace.total_bytes > alexnet().total_weight_bytes


class TestTiledMultiPass:
    def test_multipass_reads_back_partials(self):
        """Where tiling spills partial sums, the trace must read the
        previous pass with the pre-increment VN (Fig. 7 Algorithm)."""
        trace = _trace(bert_base(layers=1), config=EDGE)
        for phase in trace.phases:
            feature_ops = [
                a for a in phase.accesses if a.data_class is DataClass.FEATURE
            ]
            writes = [a for a in feature_ops if a.is_write]
            if len(writes) <= 1:
                continue
            # Multi-pass layer: between consecutive writes there must be a
            # read of the same address with the previous write's VN.
            for earlier, later in zip(writes, writes[1:]):
                reads_between = [
                    a for a in feature_ops
                    if not a.is_write and a.address == earlier.address
                    and earlier.vn <= a.vn < later.vn
                ]
                assert reads_between, phase.name

    def test_batch_scales_feature_traffic(self):
        t1 = _trace(alexnet(), batch=1)
        t4 = _trace(alexnet(), batch=4)
        f1 = sum(a.size for p in t1.phases for a in p.accesses
                 if a.data_class is DataClass.FEATURE)
        f4 = sum(a.size for p in t4.phases for a in p.accesses
                 if a.data_class is DataClass.FEATURE)
        assert f4 == pytest.approx(4 * f1, rel=0.01)


class TestTrainingTrace:
    def test_training_extends_inference(self):
        model = alexnet()
        inf = _trace(model)
        train = _trace(alexnet(), training=True)
        assert len(train.phases) > len(inf.phases)

    def test_gradient_accesses_present(self):
        train = _trace(alexnet(), training=True)
        kinds = {a.data_class for p in train.phases for a in p.accesses}
        assert DataClass.GRADIENT in kinds

    def test_gradient_reads_match_writes(self):
        """Gradients obey the same read-follows-write VN discipline.

        Gradient tensors reuse feature addresses — the Fig. 6 space tags
        keep their counters distinct — so the log is per (class, address).
        """
        train = _trace(resnet50(), training=True)
        last_write: dict[tuple[str, int], int] = {}
        for phase in train.phases:
            for access in phase.accesses:
                if access.data_class is not DataClass.GRADIENT:
                    continue
                key = ("G", access.address)
                if access.is_write:
                    last_write[key] = access.vn
                elif key in last_write:
                    assert access.vn <= last_write[key]

    def test_no_weight_update_emitted(self):
        """§VI-A: the optimizer's in-place weight write is not emulated,
        so no WEIGHT-class writes appear."""
        train = _trace(alexnet(), training=True)
        weight_writes = [
            a for p in train.phases for a in p.accesses
            if a.data_class is DataClass.WEIGHT and a.is_write
        ]
        assert not weight_writes

    def test_training_reads_saved_features(self):
        """Backward phases re-read forward activations."""
        train = _trace(alexnet(), training=True)
        backward = [p for p in train.phases if p.name.startswith("bwd:")]
        feature_reads = [
            a for p in backward for a in p.accesses
            if a.data_class is DataClass.FEATURE and not a.is_write
        ]
        assert feature_reads


class TestDlrmTrace:
    def test_embedding_gather_is_scattered(self):
        trace = _trace(dlrm())
        gathers = [
            a for p in trace.phases for a in p.accesses
            if a.data_class is DataClass.EMBEDDING
        ]
        assert len(gathers) == 1
        g = gathers[0]
        assert not g.sequential
        assert g.burst_bytes == 512
        assert g.spread_bytes > g.size

    def test_embedding_rows_not_spilled(self):
        trace = _trace(dlrm())
        emb_phase = next(p for p in trace.phases if p.name == "fwd:emb")
        writes = [a for a in emb_phase.accesses if a.is_write]
        assert not writes

    def test_address_space_fits_tables(self):
        trace = _trace(dlrm())
        emb_region = trace.address_space.region("emb:emb")
        assert emb_region.size == dlrm().layer("emb").total_table_bytes
