"""File-lock work queue: claims, heartbeats, orphan reclaim, cooperation.

The distributed contract mirrors the scheduler's: fan-out must be
invisible in the results.  Two worker processes draining one artifact
graph over a shared cache directory must leave the drivers rendering
byte-identical tables to a serial run; killed workers' claims must be
reclaimed; stale lock files from a crashed run must never deadlock a
fresh one.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.common.errors import ConfigError
from repro.sim.queue import QUEUE_SUBDIR, WorkQueue, _drain_worker, drain_graph
from repro.sim.runner import TRACE_CACHE
from repro.sim.scheduler import (
    ablation_table_spec,
    build_graph,
    dnn_spec,
    extra_table_spec,
    gact_profile_spec,
    gop_profile_spec,
)


def _fast_queue(tmp_path, **overrides) -> WorkQueue:
    options = dict(heartbeat_seconds=0.05, stale_seconds=0.4, poll_seconds=0.02)
    options.update(overrides)
    return WorkQueue(tmp_path / "cache" / QUEUE_SUBDIR, **options)


def _small_specs():
    """A cheap mixed graph: one sweep family plus functional profiles."""
    return [
        dnn_spec("AlexNet", "Cloud"),
        gact_profile_spec("chrY", "PacBio", 2),
        gop_profile_spec("IBPB", 8, 8),
    ]


class TestClaims:
    def test_claim_is_exclusive_until_released(self, tmp_path, disk_cache):
        queue = _fast_queue(tmp_path)
        with queue.try_claim("job-1") as claim:
            assert claim is not None
            assert queue.try_claim("job-1") is None
            assert queue.is_claimed("job-1")
        assert not queue.is_claimed("job-1")
        assert queue.try_claim("job-1") is not None

    def test_heartbeat_keeps_claim_fresh(self, tmp_path, disk_cache):
        queue = _fast_queue(tmp_path, stale_seconds=0.3)
        claim = queue.try_claim("job-1")
        time.sleep(0.6)  # well past stale_seconds, but the heartbeat ticks
        assert queue.reclaim_stale() == []
        assert queue.is_claimed("job-1")
        claim.release()

    def test_dead_claim_goes_stale_and_is_reclaimed(self, tmp_path, disk_cache):
        queue = _fast_queue(tmp_path)
        claim = queue.try_claim("job-1")
        # Simulate a killed worker: the heartbeat stops, the lock stays.
        claim._stop.set()
        claim._thread.join()
        old = time.time() - 10.0
        os.utime(claim.path, (old, old))
        assert queue.reclaim_stale() == ["job-1"]
        assert queue.try_claim("job-1") is not None

    def test_release_after_reclaim_leaves_peer_lock_alone(self, tmp_path,
                                                          disk_cache):
        """A stalled owner whose claim was reclaimed and re-claimed by a
        peer must neither delete nor keep-alive the peer's lock."""
        queue = _fast_queue(tmp_path)
        stalled = queue.try_claim("job-1")
        stalled._stop.set()
        stalled._thread.join()  # owner stalls: heartbeat stops, lock stays
        old = time.time() - 10.0
        os.utime(stalled.path, (old, old))
        assert queue.reclaim_stale() == ["job-1"]
        peer_claim = queue.try_claim("job-1")  # a peer takes the job over
        assert peer_claim is not None
        stalled.release()  # the stalled owner resumes and releases
        assert queue.is_claimed("job-1")  # peer's lock survived
        peer_claim.release()
        assert not queue.is_claimed("job-1")

    def test_stale_must_exceed_heartbeat(self, tmp_path):
        with pytest.raises(ConfigError):
            WorkQueue(tmp_path / "q", heartbeat_seconds=5.0, stale_seconds=2.0)


class TestDrain:
    def test_single_process_drain_fills_cache(self, tmp_path, disk_cache):
        jobs = build_graph(_small_specs())
        summary = drain_graph(jobs, _fast_queue(tmp_path), timeout=120.0)
        assert summary["computed"] == len(jobs)
        for job in jobs:
            assert disk_cache.has(job.key)
        # A second drain finds everything present and computes nothing.
        summary = drain_graph(jobs, _fast_queue(tmp_path), timeout=120.0)
        assert summary["computed"] == 0

    def test_pool_drain_fills_cache_and_matches_serial(self, tmp_path,
                                                       disk_cache):
        """``pool_jobs``: claimed jobs compute on the shared in-process
        pool; artifacts and decoded sweeps stay byte-identical."""
        from dataclasses import astuple

        from repro.sim.runner import SCHEMES, dnn_sweep

        jobs = build_graph(_small_specs())
        summary = drain_graph(jobs, _fast_queue(tmp_path), timeout=300.0,
                              pool_jobs=2)
        assert summary["computed"] == len(jobs)
        for job in jobs:
            assert disk_cache.has(job.key)
        # The drained sweep artifact decodes to the same results a
        # serial, uncached sweep computes.
        restored = dnn_sweep("AlexNet", "Cloud")
        reference = dnn_sweep("AlexNet", "Cloud", use_cache=False)
        for name in SCHEMES:
            assert (restored.results[name].total_cycles
                    == reference.results[name].total_cycles), name
            assert astuple(restored.results[name].traffic) == astuple(
                reference.results[name].traffic
            ), name

    def test_drain_requires_cache_dir(self, tmp_path):
        saved = TRACE_CACHE.cache_dir
        TRACE_CACHE.set_cache_dir(None)
        try:
            with pytest.raises(ConfigError):
                drain_graph([], _fast_queue(tmp_path))
        finally:
            TRACE_CACHE.set_cache_dir(saved)

    def test_pre_existing_stale_locks_do_not_deadlock(self, tmp_path, disk_cache):
        """Lock litter from a crashed previous run must not block a fresh one."""
        jobs = build_graph(_small_specs())
        queue = _fast_queue(tmp_path)
        old = time.time() - 3600.0
        for job in jobs:
            path = queue.lock_path(job.job_id())
            path.write_text("crashed-worker 0\n")
            os.utime(path, (old, old))
        summary = drain_graph(jobs, queue, timeout=120.0)
        assert summary["computed"] == len(jobs)
        assert summary["reclaimed"] >= 1

    def test_orphaned_claim_from_killed_worker_is_reclaimed(
            self, tmp_path, disk_cache):
        """A worker that dies mid-job leaves a lock another worker takes over."""
        jobs = build_graph([gop_profile_spec("IBPB", 4, 4)])
        queue = _fast_queue(tmp_path)

        def claim_and_die(queue_dir):
            victim = WorkQueue(queue_dir, heartbeat_seconds=0.05,
                               stale_seconds=0.4)
            victim.try_claim(jobs[0].job_id())
            os._exit(1)  # SIGKILL-style: no release, heartbeat dies too

        ctx = multiprocessing.get_context("fork")
        worker = ctx.Process(target=claim_and_die, args=(queue.queue_dir,))
        worker.start()
        worker.join(timeout=30.0)
        assert queue.is_claimed(jobs[0].job_id())
        summary = drain_graph(jobs, queue, timeout=120.0)
        assert summary["computed"] == len(jobs)
        assert summary["reclaimed"] == 1

    def test_live_peer_holding_a_job_times_out_not_spins(
            self, tmp_path, disk_cache):
        """A healthy-but-slow peer's claim is respected until the timeout."""
        jobs = build_graph([gop_profile_spec("IBPB", 4, 4)])
        queue = _fast_queue(tmp_path)
        peer = _fast_queue(tmp_path)
        claim = peer.try_claim(jobs[0].job_id())
        try:
            with pytest.raises(RuntimeError, match="timed out"):
                drain_graph(jobs, queue, timeout=0.5)
        finally:
            claim.release()


class TestReclaimRaces:
    """Reclaim races under injected delays (the chaos-hardening pins)."""

    @pytest.fixture(autouse=True)
    def _no_leftover_faults(self):
        from repro.sim import faults

        faults.install(None)
        yield
        faults.install(None)

    def test_two_workers_racing_one_stale_lock(self, tmp_path, disk_cache):
        """Exactly one racer reclaims; the loser's unlink miss is benign,
        and the follow-up claim race also has exactly one winner."""
        import threading

        from repro.sim import faults

        queue_a = _fast_queue(tmp_path)
        queue_b = _fast_queue(tmp_path)
        dead = queue_a.try_claim("job-1")
        dead._stop.set()
        dead._thread.join()
        old = time.time() - 10.0
        os.utime(dead.path, (old, old))
        # Injected claim delays widen the race window without changing
        # the invariant.
        faults.install("claim:delay:1.0:0.01@seed=0")
        reclaims: dict[str, list] = {}
        claims: dict[str, object] = {}
        barrier = threading.Barrier(2)

        def race(name, queue):
            barrier.wait()
            reclaims[name] = queue.reclaim_stale()
            claims[name] = queue.try_claim("job-1")

        threads = [threading.Thread(target=race, args=(n, q))
                   for n, q in (("a", queue_a), ("b", queue_b))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert sorted(reclaims["a"] + reclaims["b"]) in ([], ["job-1"])
        winners = [c for c in claims.values() if c is not None]
        assert len(winners) == 1  # O_EXCL: the claim race has one winner
        winners[0].release()
        assert not queue_a.is_claimed("job-1")

    def test_late_spill_after_reclaim_does_not_corrupt_winner(
            self, tmp_path, disk_cache):
        """A reclaimed worker finishing late rewrites the winner's
        artifact with byte-identical content through an atomic rename —
        concurrent readers always decode a complete spill."""
        import threading

        from repro.sim.runner import TraceCache

        key = ("gop-profile", "race-artifact")
        value = {"rows": list(range(64)), "deterministic": True}
        cache_dir = disk_cache.cache_dir
        winner = TraceCache(cache_dir=cache_dir)
        loser = TraceCache(cache_dir=cache_dir)
        stop = threading.Event()
        bad: list[object] = []

        def reader():
            while not stop.is_set():
                probe = TraceCache(cache_dir=cache_dir)
                seen = probe.peek(key)
                if seen is not None and seen != value:
                    bad.append(seen)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(30):
                winner.put(key, value)   # the reclaiming winner spills
                loser.put(key, value)    # the stalled loser spills late
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert bad == []
        probe = TraceCache(cache_dir=cache_dir)
        assert probe.peek(key) == value


class TestTableDrain:
    def test_drain_covers_ablation_and_extra_tables(self, tmp_path,
                                                    disk_cache):
        """Family tables drain like any artifact and render identically."""
        from repro.experiments.ablations import run_ablation
        from repro.experiments.extras import run_extra

        # Serial reference with the cache detached, so nothing leaks in.
        TRACE_CACHE.set_cache_dir(None)
        reference = (run_ablation("cache-size", quick=True).to_text(),
                     run_extra("storage", quick=True).to_text())
        TRACE_CACHE.clear()
        TRACE_CACHE.set_cache_dir(tmp_path / "cache")

        jobs = build_graph([ablation_table_spec("cache-size", True),
                            extra_table_spec("storage", True)])
        assert [j.kind for j in jobs] == ["profile", "profile"]
        summary = drain_graph(jobs, _fast_queue(tmp_path), timeout=120.0)
        assert summary["computed"] == len(jobs)
        before = sum(disk_cache.miss_kinds.values())
        rendered = (run_ablation("cache-size", quick=True).to_text(),
                    run_extra("storage", quick=True).to_text())
        assert rendered == reference
        assert sum(disk_cache.miss_kinds.values()) == before


class TestTwoWorkerDeterminism:
    def test_two_processes_drain_one_graph_byte_identical(
            self, tmp_path, disk_cache):
        """Two cooperating workers ⇒ drivers render byte-identical tables."""
        from repro.experiments.registry import run_experiment, suite_specs

        experiment_ids = ("fig13", "fig16", "fig19")
        # Serial reference, computed with the cache detached so nothing
        # of it leaks into the distributed run.
        TRACE_CACHE.set_cache_dir(None)
        reference = {
            eid: run_experiment(eid, quick=True).to_text()
            for eid in experiment_ids
        }
        TRACE_CACHE.clear()
        TRACE_CACHE.set_cache_dir(tmp_path / "cache")

        jobs = build_graph(suite_specs(experiment_ids, quick=True))
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_drain_worker,
                        args=(jobs, str(tmp_path / "cache"), f"w{i}"))
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=300.0)
            assert worker.exitcode == 0
        # Every artifact must now be on disk; the parent never computed.
        for job in jobs:
            assert disk_cache.has(job.key)

        before = dict(disk_cache.miss_kinds)
        rendered = {
            eid: run_experiment(eid, quick=True).to_text()
            for eid in experiment_ids
        }
        assert rendered == reference
        assert disk_cache.miss_kinds.get("trace", 0) == before.get("trace", 0)
        assert disk_cache.miss_kinds.get("profile", 0) == before.get("profile", 0)
        assert disk_cache.miss_kinds.get("sweep", 0) == before.get("sweep", 0)
