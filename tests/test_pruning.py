"""Pruning & compression under MGX (§VII-B, Fig. 20)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.errors import ConfigError, IntegrityError
from repro.core.functional import MgxFunctionalEngine
from repro.crypto.keys import SessionKeys
from repro.dnn.pruning import (
    CscFeatures,
    CsrFeatures,
    PrunedTileWriter,
    RlcFeatures,
    dynamic_channel_gate,
    static_filter_prune,
)
from repro.mem.backing import BackingStore

_SPARSE = arrays(
    dtype=np.int16, shape=(6, 8),
    elements=st.integers(min_value=-3, max_value=3).map(lambda v: v if abs(v) > 1 else 0),
)


class TestCompressionFormats:
    def _map(self):
        rng = np.random.default_rng(0)
        dense = rng.integers(-8, 8, size=(16, 16)).astype(np.int16)
        dense[np.abs(dense) < 5] = 0
        return dense

    def test_csr_roundtrip(self):
        dense = self._map()
        assert np.array_equal(CsrFeatures.compress(dense).decompress(), dense)

    def test_csc_roundtrip(self):
        dense = self._map()
        assert np.array_equal(CscFeatures.compress(dense).decompress(), dense)

    def test_rlc_roundtrip(self):
        dense = self._map()
        assert np.array_equal(RlcFeatures.compress(dense).decompress(), dense)

    def test_rlc_long_zero_runs(self):
        dense = np.zeros((20, 40), dtype=np.int16)
        dense[19, 39] = 7
        assert np.array_equal(RlcFeatures.compress(dense).decompress(), dense)

    def test_all_zero_map(self):
        dense = np.zeros((4, 4), dtype=np.int16)
        for fmt in (CsrFeatures, CscFeatures, RlcFeatures):
            assert np.array_equal(fmt.compress(dense).decompress(), dense)

    def test_sparse_map_compresses_smaller(self):
        dense = np.zeros((32, 32), dtype=np.int16)
        dense[::7, ::5] = 9  # ~3% density
        assert CsrFeatures.compress(dense).nbytes < dense.nbytes

    def test_csr_requires_2d(self):
        with pytest.raises(ConfigError):
            CsrFeatures.compress(np.zeros(8, dtype=np.int16))

    @given(_SPARSE)
    @settings(max_examples=25, deadline=None)
    def test_csr_roundtrip_property(self, dense):
        assert np.array_equal(CsrFeatures.compress(dense).decompress(), dense)

    @given(_SPARSE)
    @settings(max_examples=25, deadline=None)
    def test_rlc_roundtrip_property(self, dense):
        assert np.array_equal(RlcFeatures.compress(dense).decompress(), dense)


class TestPruningPolicies:
    def test_static_prune_zeroes_smallest_filters(self):
        weights = np.stack([np.full((3, 3), float(i)) for i in range(1, 5)])
        pruned = static_filter_prune(weights, keep_ratio=0.5)
        assert np.all(pruned[0] == 0) and np.all(pruned[1] == 0)
        assert np.all(pruned[2] != 0) and np.all(pruned[3] != 0)

    def test_static_prune_keep_all(self):
        weights = np.ones((4, 3, 3))
        assert np.array_equal(static_filter_prune(weights, 1.0), weights)

    def test_static_prune_validation(self):
        with pytest.raises(ConfigError):
            static_filter_prune(np.ones((4, 3, 3)), 0.0)

    def test_dynamic_gate_keeps_most_salient(self):
        features = np.stack([np.full((4, 4), float(i)) for i in range(8)])
        mask = dynamic_channel_gate(features, keep_ratio=0.25)
        assert mask.sum() == 2
        assert mask[7] and mask[6]

    def test_dynamic_gate_is_input_dependent(self):
        rng = np.random.default_rng(3)
        a = dynamic_channel_gate(rng.normal(size=(8, 4, 4)), 0.5)
        b = dynamic_channel_gate(rng.normal(size=(8, 4, 4)), 0.5)
        assert not np.array_equal(a, b)

    def test_dynamic_gate_validation(self):
        with pytest.raises(ConfigError):
            dynamic_channel_gate(np.ones((4, 4)), 0.5)


class TestFig20SharedVn:
    """Dynamic pruning writes only unpruned tiles with one shared VN_F."""

    def _writer(self):
        keys = SessionKeys.derive(b"fig20", b"n")
        store = BackingStore(1 << 20)
        engine = MgxFunctionalEngine(keys, store, data_bytes=512 * 1024,
                                     mac_granularity=512)
        return PrunedTileWriter(engine, base_address=0, tile_bytes=512,
                                n_tiles=16), store

    def test_skipping_tiles_is_safe(self):
        writer, _ = self._writer()
        tiles = {i: bytes([i]) * 512 for i in (0, 2, 5, 11)}  # pruned subset
        writer.write_tiles(tiles, vn=7)
        got = writer.read_tiles([0, 5, 11], vn=7)
        assert got[5] == bytes([5]) * 512

    def test_next_layer_reuses_shared_vn(self):
        writer, _ = self._writer()
        writer.write_tiles({1: b"\x01" * 512, 3: b"\x03" * 512}, vn=9)
        # A different consumer reads a different unpruned subset.
        assert writer.read_tiles([3], vn=9)[3] == b"\x03" * 512

    def test_skipped_vns_can_be_used_later(self):
        """A skipped (tile, VN) pair was never consumed, so a later pass
        may write that tile with a *higher* VN without conflict."""
        writer, _ = self._writer()
        writer.write_tiles({0: b"\xaa" * 512}, vn=5)  # tile 1 skipped
        writer.write_tiles({1: b"\xbb" * 512}, vn=6)  # first touch of tile 1
        assert writer.read_tiles([1], vn=6)[1] == b"\xbb" * 512

    def test_pruned_tile_read_with_shared_vn_fails(self):
        """Reading a never-written (pruned) tile fails verification — a
        malicious host cannot invent pruned values."""
        writer, _ = self._writer()
        writer.write_tiles({0: b"\xaa" * 512}, vn=5)
        with pytest.raises(IntegrityError):
            writer.read_tiles([2], vn=5)

    def test_tile_size_must_match_granularity(self):
        keys = SessionKeys.derive(b"x", b"n")
        engine = MgxFunctionalEngine(keys, BackingStore(1 << 20),
                                     data_bytes=64 * 1024, mac_granularity=512)
        with pytest.raises(ConfigError):
            PrunedTileWriter(engine, 0, tile_bytes=100, n_tiles=4)

    def test_bad_tile_index(self):
        writer, _ = self._writer()
        with pytest.raises(ConfigError):
            writer.write_tiles({16: b"\x00" * 512}, vn=1)

    def test_bad_tile_payload(self):
        writer, _ = self._writer()
        with pytest.raises(ConfigError):
            writer.write_tiles({0: b"short"}, vn=1)

    def test_end_to_end_gated_layer(self):
        """Full Fig. 20 flow: gate channels, write survivors, read back."""
        rng = np.random.default_rng(1)
        features = rng.normal(size=(16, 16, 8)).astype(np.float32)  # 512 B/channel
        mask = dynamic_channel_gate(features, keep_ratio=0.5)
        writer, _ = self._writer()
        tiles = {
            c: features[c].tobytes() for c in range(16) if mask[c]
        }
        assert all(len(t) == 512 for t in tiles.values())
        writer.write_tiles(tiles, vn=3)
        surviving = sorted(tiles)
        got = writer.read_tiles(surviving, vn=3)
        for c in surviving:
            assert np.array_equal(
                np.frombuffer(got[c], dtype=np.float32).reshape(16, 8), features[c]
            )
