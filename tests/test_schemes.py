"""Protection timing engines: BP, MGX and the two ablations.

These tests pin down the arithmetic the whole evaluation rests on: how
many metadata bytes each scheme moves for a given access pattern.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MIB
from repro.core.access import DataClass, read, write
from repro.core.schemes import (
    FINE_MAC_POLICY,
    MGX_MAC_POLICY,
    CounterModeProtection,
    MacPolicy,
    NoProtection,
    ProtectionTraffic,
    make_baseline,
    make_mgx,
    make_mgx_mac,
    make_mgx_vn,
    scheme_suite,
)

_PROTECTED = 256 * MIB


def _total(scheme, *accesses):
    traffic = ProtectionTraffic()
    for access in accesses:
        traffic.merge(scheme.process(access))
    traffic.merge(scheme.finish())
    return traffic


class TestNoProtection:
    def test_data_only(self):
        t = _total(NoProtection(), read(0, 4096))
        assert t.total_bytes == 4096
        assert t.metadata_bytes == 0

    def test_scattered_classified(self):
        np_scheme = NoProtection()
        t = np_scheme.process(read(0, 4096, sequential=False))
        assert t.data_scat == 4096
        assert t.data_seq == 0


class TestMgxArithmetic:
    def test_streaming_read_overhead_is_1_56_pct(self):
        """512-B MACs: one 64-B MAC line per 4 KiB of data (§VI-A)."""
        mgx = make_mgx(_PROTECTED)
        t = _total(mgx, read(0, 16 * MIB, DataClass.FEATURE))
        assert t.mac_bytes == 16 * MIB // 4096 * 64
        assert t.vn_bytes == 0
        assert t.tree_bytes == 0
        overhead = t.total_bytes / (16 * MIB) - 1
        assert overhead == pytest.approx(0.015625)

    def test_write_same_cost_as_read(self):
        """MGX regenerates MACs on-chip: writes stream them out once."""
        mgx = make_mgx(_PROTECTED)
        r = _total(make_mgx(_PROTECTED), read(0, 1 * MIB, DataClass.FEATURE))
        w = _total(mgx, write(0, 1 * MIB, DataClass.FEATURE))
        assert w.mac_bytes == r.mac_bytes

    def test_partial_granule_read_amplifies(self):
        """Reading 256 B under a 512-B MAC verifies the whole granule."""
        mgx = make_mgx(_PROTECTED)
        t = mgx.process(read(0, 256, DataClass.FEATURE))
        assert t.data_bytes == 512

    def test_aligned_read_no_amplification(self):
        mgx = make_mgx(_PROTECTED)
        t = mgx.process(read(0, 512, DataClass.FEATURE))
        assert t.data_bytes == 512

    def test_embedding_override_keeps_64b_macs(self):
        """DLRM gathers keep fine-grained MACs (§VI-A)."""
        mgx = make_mgx(_PROTECTED)
        t = mgx.process(
            read(0, 512 * 100, DataClass.EMBEDDING, sequential=False,
                 burst_bytes=512, spread_bytes=64 * MIB)
        )
        # One MAC line per 512-B row (8 MACs of its 8 blocks).
        assert t.mac_bytes == 100 * 64

    def test_adjacency_one_mac_per_tile(self):
        """Graph adjacency: a single MAC covers the whole tile (§V-B)."""
        mgx = make_mgx(_PROTECTED)
        t = mgx.process(read(0, 3 * MIB + 192, DataClass.ADJACENCY))
        assert t.mac_bytes == 64
        assert t.data_bytes == 3 * MIB + 192  # no amplification

    def test_no_onchip_metadata_state(self):
        assert make_mgx(_PROTECTED).onchip_state_bytes == 0

    def test_metadata_storage_is_macs_only(self):
        mgx = make_mgx(_PROTECTED)
        bp = make_baseline(_PROTECTED)
        assert mgx.metadata_storage_bytes < bp.metadata_storage_bytes


class TestMgxVnArithmetic:
    def test_streaming_read_overhead_is_12_5_pct(self):
        """64-B MACs without stored VNs: exactly 1/8 extra traffic."""
        s = make_mgx_vn(_PROTECTED)
        t = _total(s, read(0, 8 * MIB, DataClass.FEATURE))
        assert t.total_bytes / (8 * MIB) == pytest.approx(1.125)
        assert t.vn_bytes == 0


class TestBaselineArithmetic:
    def test_streaming_read_components(self):
        """BP read: 12.5% MAC + 12.5% VN + ~1.8% tree."""
        bp = make_baseline(_PROTECTED)
        size = 16 * MIB
        t = _total(bp, read(0, size, DataClass.FEATURE))
        assert t.mac_bytes == size // 8
        assert t.vn_bytes == size // 8
        assert 0.01 < t.tree_bytes / size < 0.03

    def test_streaming_write_costs_more_than_read(self):
        """Write VN/MAC lines are read-modify-write + written back."""
        r = _total(make_baseline(_PROTECTED), read(0, 4 * MIB, DataClass.FEATURE))
        w = _total(make_baseline(_PROTECTED), write(0, 4 * MIB, DataClass.FEATURE))
        assert w.total_bytes > r.total_bytes

    def test_vn_exceeds_mac_overhead(self):
        """Fig. 3's observation: VN+tree traffic > MAC traffic."""
        bp = make_baseline(_PROTECTED)
        t = _total(bp, read(0, 16 * MIB, DataClass.FEATURE))
        assert t.vn_bytes + t.tree_bytes > t.mac_bytes

    def test_cache_captures_temporal_reuse(self):
        """Re-reading a small buffer hits the metadata cache."""
        bp = make_baseline(_PROTECTED)
        first = bp.process(read(0, 8192, DataClass.FEATURE))
        second = bp.process(read(0, 8192, DataClass.FEATURE))
        assert second.metadata_bytes < first.metadata_bytes

    def test_scattered_gather_walks_tree_deep(self):
        """Random gathers over a big spread miss several tree levels
        (the DLRM effect)."""
        bp = make_baseline(16 * 1024 * MIB)
        t = bp.process(
            read(0, 512 * 1000, DataClass.EMBEDDING, sequential=False,
                 burst_bytes=512, spread_bytes=4 * 1024 * MIB)
        )
        assert t.tree_bytes > t.vn_bytes  # multiple nodes per VN line

    def test_small_spread_gather_stays_cached(self):
        """Hot embedding rows re-read within a cache-resident spread only
        pay cold misses (first touches), not one miss per lookup."""
        bp = make_baseline(_PROTECTED)
        t = bp.process(
            read(0, 512 * 1000, DataClass.EMBEDDING, sequential=False,
                 burst_bytes=512, spread_bytes=64 * 1024)
        )
        # 64 KiB spread = 128 VN lines: at most 128 cold misses.
        assert t.vn_bytes <= 128 * 64

    def test_requires_cache(self):
        with pytest.raises(ConfigError):
            CounterModeProtection("X", vn_onchip=False, mac_policy=FINE_MAC_POLICY,
                                  protected_bytes=_PROTECTED, cache_bytes=0)

    def test_out_of_range_access_rejected(self):
        bp = make_baseline(1 * MIB)
        with pytest.raises(ConfigError):
            bp.process(read(1 * MIB - 64, 128))

    def test_onchip_state_is_cache_plus_root(self):
        assert make_baseline(_PROTECTED).onchip_state_bytes == 32 * 1024 + 32


class TestFloodPathConsistency:
    """The closed-form flood shortcut must agree with the exact LRU loop."""

    def _measure(self, cache_bytes, size, kind):
        scheme = CounterModeProtection(
            "t", vn_onchip=False, mac_policy=FINE_MAC_POLICY,
            protected_bytes=_PROTECTED, cache_bytes=cache_bytes,
        )
        access = read(0, size) if kind == "read" else write(0, size)
        t = scheme.process(access)
        t.merge(scheme.finish())
        return t

    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_flood_matches_exact_within_tolerance(self, kind):
        size = 4 * MIB
        # Small cache → flood path; big cache → exact per-line path.
        flood = self._measure(2 * 1024, size, kind)
        exact = self._measure(64 * 1024 * 1024, size, kind)
        # VN fetch volume identical; total within 15% (the flood path
        # writes back dirty lines immediately rather than at finish()).
        assert flood.vn_bytes >= exact.vn_bytes * 0.9
        assert abs(flood.total_bytes / exact.total_bytes - 1) < 0.15


class TestVariantOrdering:
    def test_traffic_ordering_matches_paper(self):
        """NP < MGX < MGX_VN < MGX_MAC < BP for streaming writes+reads."""
        totals = {}
        for name, scheme in scheme_suite(_PROTECTED).items():
            t = _total(scheme, read(0, 4 * MIB, DataClass.FEATURE),
                       write(8 * MIB, 4 * MIB, DataClass.FEATURE))
            totals[name] = t.total_bytes
        assert totals["NP"] < totals["MGX"] < totals["MGX_VN"]
        assert totals["MGX_VN"] < totals["MGX_MAC"] < totals["BP"]

    def test_mgx_mac_between(self):
        """Coarse MACs + stored VNs: VN cost dominates its total."""
        s = make_mgx_mac(_PROTECTED)
        t = _total(s, read(0, 8 * MIB, DataClass.FEATURE))
        assert t.vn_bytes > t.mac_bytes


class TestTnpuComparison:
    def test_tnpu_like_equals_mgx_vn_point(self):
        """§VIII: TNPU is tree-free with fine MACs — the MGX_VN point."""
        from repro.core.schemes import make_tnpu_like

        tnpu = make_tnpu_like(_PROTECTED)
        mgx_vn = make_mgx_vn(_PROTECTED)
        access = read(0, 4 * MIB, DataClass.FEATURE)
        assert tnpu.process(access).total_bytes == mgx_vn.process(access).total_bytes
        assert tnpu.name == "TNPU-like"

    def test_mgx_beats_tnpu_via_coarse_macs(self):
        """The paper's delta over TNPU comes from coarse-grained MACs."""
        from repro.core.schemes import make_tnpu_like

        access = read(0, 4 * MIB, DataClass.FEATURE)
        tnpu = make_tnpu_like(_PROTECTED).process(access).total_bytes
        mgx = make_mgx(_PROTECTED).process(access).total_bytes
        assert mgx < tnpu


class TestMacPolicy:
    def test_defaults(self):
        assert MGX_MAC_POLICY.granularity_for(read(0, 4096, DataClass.FEATURE)) == 512
        assert MGX_MAC_POLICY.granularity_for(read(0, 4096, DataClass.EMBEDDING)) == 64
        assert FINE_MAC_POLICY.granularity_for(read(0, 4096, DataClass.FEATURE)) == 64

    def test_invalid_granularity(self):
        policy = MacPolicy(default=100)
        with pytest.raises(ConfigError):
            policy.granularity_for(read(0, 64))

    def test_reset_clears_cache_and_stats(self):
        bp = make_baseline(_PROTECTED)
        bp.process(read(0, 1 * MIB))
        bp.reset()
        assert bp.stats.get("accesses") == 0
        t = bp.process(read(0, 1 * MIB))
        assert t.vn_bytes > 0  # cold again


class TestTrafficStructure:
    def test_to_profile_split(self):
        t = ProtectionTraffic(data_seq=100, data_scat=50, mac_seq=10, tree_scat=5)
        profile = t.to_profile()
        assert profile.sequential_bytes == 110
        assert profile.scattered_bytes == 55

    def test_merge(self):
        a = ProtectionTraffic(data_seq=1, vn_seq=2)
        a.merge(ProtectionTraffic(data_seq=3, vn_scat=4))
        assert a.data_bytes == 4
        assert a.vn_bytes == 6

    def test_finish_idempotent(self):
        bp = make_baseline(_PROTECTED)
        bp.process(write(0, 1 * MIB, DataClass.FEATURE))
        first = bp.finish().total_bytes
        second = bp.finish().total_bytes
        assert second == 0 or second <= first
