"""End-to-end integration: accelerator traces drive the functional engine.

The trace generators attach VNs exactly as the control-processor kernel
would; here those same VNs drive *real* encryption of scaled tensors
through the MGX functional engine, proving the timing-side VN discipline
is also cryptographically sound (writes never reuse counters, reads
always decrypt).
"""

import numpy as np
import pytest

from repro.common.errors import FreshnessError, IntegrityError
from repro.core.access import DataClass
from repro.core.functional import MgxFunctionalEngine
from repro.core.vngen import IterationVnState
from repro.crypto.keys import SessionKeys
from repro.dnn.accelerator import CLOUD
from repro.dnn.models import alexnet
from repro.dnn.tracegen import DnnTraceGenerator
from repro.mem.attacker import Attacker
from repro.mem.backing import BackingStore

_GRAN = 512


def _engine(data_bytes=2 << 20):
    keys = SessionKeys.derive(b"integration", b"nonce")
    store = BackingStore(4 << 20)
    return MgxFunctionalEngine(keys, store, data_bytes=data_bytes,
                               mac_granularity=_GRAN), store


def _scaled(address: int, size: int, budget: int) -> tuple[int, int]:
    """Map a full-size trace access into the small functional arena."""
    scaled_addr = (address // _GRAN) % (budget // _GRAN // 2) * _GRAN
    scaled_size = min(max(_GRAN, (size // _GRAN) * _GRAN), 4 * _GRAN)
    return scaled_addr, scaled_size


class TestDnnTraceDrivesFunctionalEngine:
    def test_inference_trace_vns_are_cryptographically_sound(self):
        """Replay AlexNet's feature accesses through real crypto.

        Every write must be accepted by the freshness guard; every read
        must verify and decrypt to exactly what the matching write stored.
        """
        engine, _ = _engine()
        trace = DnnTraceGenerator(alexnet(), CLOUD).inference()
        rng = np.random.default_rng(0)
        contents: dict[tuple[int, int], bytes] = {}
        for phase in trace.phases:
            for access in phase.accesses:
                if access.data_class is not DataClass.FEATURE:
                    continue
                addr, size = _scaled(access.address, access.size, engine.data_bytes)
                if access.is_write:
                    payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
                    engine.write(addr, payload, access.vn)
                    contents[(addr, access.vn)] = payload
                elif (addr, access.vn) in contents:
                    got = engine.read(addr, size, access.vn)
                    assert got == contents[(addr, access.vn)]

    def test_replaying_the_same_trace_twice_is_rejected(self):
        """A second identical run must not reuse VNs on the same arena —
        the kernel state (and its VNs) must move forward instead."""
        engine, _ = _engine()
        trace = DnnTraceGenerator(alexnet(), CLOUD).inference()
        first_write = next(
            a for p in trace.phases for a in p.accesses
            if a.is_write and a.data_class is DataClass.FEATURE
        )
        addr, size = _scaled(first_write.address, first_write.size, engine.data_bytes)
        engine.write(addr, bytes(size), first_write.vn)
        with pytest.raises(FreshnessError):
            engine.write(addr, bytes(size), first_write.vn)


class TestGraphIterationsDriveFunctionalEngine:
    def test_rank_vector_swaps_with_iteration_vns(self):
        """Two vector buffers alternate across PageRank iterations using
        only the Iter counter for VNs — decryptable every round."""
        engine, _ = _engine()
        vn_state = IterationVnState()
        vector_bytes = 4 * _GRAN
        buffers = [0, vector_bytes]  # two regions
        rng = np.random.default_rng(1)

        current = rng.integers(0, 256, size=vector_bytes, dtype=np.uint8).tobytes()
        # Iteration i writes buffer i % 2; the initial vector is written
        # by iteration 1 into buffer 1.
        engine.write(buffers[vn_state.iteration % 2], current,
                     vn_state.write_vector_vn())
        for _ in range(5):
            vn_state.advance_iteration()
            read_buf = buffers[(vn_state.iteration - 1) % 2]
            write_buf = buffers[vn_state.iteration % 2]
            got = engine.read(read_buf, vector_bytes, vn_state.read_vector_vn())
            assert got == current
            current = bytes(reversed(got))
            engine.write(write_buf, current, vn_state.write_vector_vn())

    def test_tampered_rank_vector_detected_mid_run(self):
        engine, store = _engine()
        vn_state = IterationVnState()
        payload = b"\x42" * _GRAN
        engine.write(0, payload, vn_state.write_vector_vn())
        vn_state.advance_iteration()
        Attacker(store).flip_bit(100, 1)
        with pytest.raises(IntegrityError):
            engine.read(0, _GRAN, vn_state.read_vector_vn())


class TestSessionLifecycle:
    def test_key_rotation_after_overflow_recovers(self):
        """§IV-C: on VN overflow the region is re-encrypted under fresh
        keys; after rotation the same VNs are safe again."""
        keys = SessionKeys.derive(b"life", b"cycle")
        store = BackingStore(4 << 20)
        engine = MgxFunctionalEngine(keys, store, data_bytes=1 << 20)
        engine.write(0, b"\x01" * 512, vn=7)
        # New session: fresh keys, fresh engine state, same store is fine
        # because everything is re-encrypted.
        rotated = keys.rotate()
        engine2 = MgxFunctionalEngine(rotated, store, data_bytes=1 << 20)
        engine2.write(0, b"\x02" * 512, vn=7)  # same VN, new key: allowed
        assert engine2.read(0, 512, vn=7) == b"\x02" * 512

    def test_old_key_cannot_read_new_session(self):
        keys = SessionKeys.derive(b"life", b"cycle2")
        store = BackingStore(4 << 20)
        engine2 = MgxFunctionalEngine(keys.rotate(), store, data_bytes=1 << 20)
        engine2.write(0, b"\x03" * 512, vn=1)
        engine1 = MgxFunctionalEngine(keys, store, data_bytes=1 << 20)
        with pytest.raises(IntegrityError):
            engine1.read(0, 512, vn=1)
