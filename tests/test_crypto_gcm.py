"""AES-GCM AEAD against the NIST / McGrew-Viega test vectors."""

import pytest

from repro.common.errors import ConfigError, IntegrityError
from repro.crypto.gcm import AesGcm

_KEY3 = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
_IV3 = bytes.fromhex("cafebabefacedbaddecaf888")
_PT3 = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
)
_AAD4 = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


class TestNistVectors:
    def test_case_1_empty(self):
        __, tag = AesGcm(bytes(16)).encrypt(bytes(12), b"")
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_2_single_zero_block(self):
        ct, tag = AesGcm(bytes(16)).encrypt(bytes(12), bytes(16))
        assert ct.hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_3_four_blocks(self):
        ct, tag = AesGcm(_KEY3).encrypt(_IV3, _PT3)
        assert ct.hex().startswith("42831ec2217774244b7221b784d0d49c")
        assert tag.hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad(self):
        ct, tag = AesGcm(_KEY3).encrypt(_IV3, _PT3[:-4], _AAD4)
        assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"


class TestAeadProperties:
    def test_roundtrip(self):
        gcm = AesGcm(_KEY3)
        ct, tag = gcm.encrypt(_IV3, b"hello accelerator", b"header")
        assert gcm.decrypt(_IV3, ct, tag, b"header") == b"hello accelerator"

    def test_tampered_ciphertext_rejected(self):
        gcm = AesGcm(_KEY3)
        ct, tag = gcm.encrypt(_IV3, b"payload bytes here")
        bad = bytes([ct[0] ^ 1]) + ct[1:]
        with pytest.raises(IntegrityError):
            gcm.decrypt(_IV3, bad, tag)

    def test_tampered_tag_rejected(self):
        gcm = AesGcm(_KEY3)
        ct, tag = gcm.encrypt(_IV3, b"payload")
        with pytest.raises(IntegrityError):
            gcm.decrypt(_IV3, ct, bytes(16))

    def test_wrong_aad_rejected(self):
        gcm = AesGcm(_KEY3)
        ct, tag = gcm.encrypt(_IV3, b"payload", b"aad-one")
        with pytest.raises(IntegrityError):
            gcm.decrypt(_IV3, ct, tag, b"aad-two")

    def test_distinct_ivs_distinct_ciphertexts(self):
        gcm = AesGcm(_KEY3)
        a, _ = gcm.encrypt(bytes(12), b"same message")
        b, _ = gcm.encrypt(b"\x01" + bytes(11), b"same message")
        assert a != b

    def test_iv_length_enforced(self):
        with pytest.raises(ConfigError):
            AesGcm(_KEY3).encrypt(bytes(16), b"x")
