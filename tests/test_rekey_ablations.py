"""Session re-keying (§IV-C overflow remedy) and the ablation sweeps."""

import pytest

from repro.common.errors import FreshnessError, IntegrityError
from repro.core.functional import MgxFunctionalEngine
from repro.crypto.keys import SessionKeys
from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.mem.backing import BackingStore


class TestRekey:
    def _engine(self):
        keys = SessionKeys.derive(b"rekey", b"n0")
        return MgxFunctionalEngine(keys, BackingStore(1 << 20),
                                   data_bytes=256 * 1024), keys

    def test_rekey_preserves_plaintext(self):
        engine, keys = self._engine()
        engine.write(0, b"\x11" * 512, vn=100)
        engine.write(1024, b"\x22" * 512, vn=101)
        fresh = engine.rekey(keys.rotate(), new_vn=1)
        assert fresh.read(0, 512, vn=1) == b"\x11" * 512
        assert fresh.read(1024, 512, vn=1) == b"\x22" * 512

    def test_rekey_changes_ciphertext(self):
        engine, keys = self._engine()
        engine.write(0, b"\x33" * 512, vn=100)
        before = engine.store.read(0, 512)
        engine.rekey(keys.rotate(), new_vn=1)
        assert engine.store.read(0, 512) != before

    def test_rekey_resets_vn_headroom(self):
        """The whole point: after rotation, small VNs are usable again."""
        engine, keys = self._engine()
        big_vn = (1 << 40) - 1
        engine.write(0, b"\x44" * 512, vn=big_vn)
        with pytest.raises(FreshnessError):
            engine.write(0, b"\x55" * 512, vn=5)  # would regress pre-rekey
        fresh = engine.rekey(keys.rotate(), new_vn=1)
        fresh.write(0, b"\x55" * 512, vn=5)  # fine after rotation
        assert fresh.read(0, 512, vn=5) == b"\x55" * 512

    def test_old_keys_dead_after_rekey(self):
        engine, keys = self._engine()
        engine.write(0, b"\x66" * 512, vn=100)
        engine.rekey(keys.rotate(), new_vn=1)
        with pytest.raises(IntegrityError):
            engine.read(0, 512, vn=100)  # old engine, new ciphertext


class TestAblations:
    def test_registry(self):
        assert set(ABLATIONS) == {
            "mac-granularity", "cache-size", "dram-grade", "crypto-efficiency"
        }
        with pytest.raises(KeyError):
            run_ablation("nonexistent")

    def test_mac_granularity_monotone(self):
        result = run_ablation("mac-granularity", quick=True)
        traffics = result.column("traffic")
        assert all(a >= b for a, b in zip(traffics, traffics[1:]))
        # 64 B ≈ +12.5%; 512 B ≈ +1.6%.
        assert traffics[0] > 1.10
        assert result.summary["traffic_512"] < 1.03

    def test_cache_growth_barely_helps(self):
        """§VI-A's premise: streaming defeats the metadata cache."""
        result = run_ablation("cache-size", quick=True)
        assert result.summary["improvement_pct"] < 25.0

    def test_dram_grade_story_stable(self):
        result = run_ablation("dram-grade", quick=True)
        for row in result.rows:
            assert row["MGX_time"] < row["BP_time"]

    def test_crypto_efficiency_monotone(self):
        result = run_ablation("crypto-efficiency", quick=True)
        times = result.column("MGX_time")
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
