"""Cache lifecycle: mark-and-sweep GC, policies, verification, CLI.

The GC's contract: artifacts reachable from a live suite graph are
never deleted under any policy; deletion plans are deterministic
(oldest-first with a stable name tiebreak); a concurrent worker's fresh
queue lock is respected while orphaned locks are swept; and ``cache
verify`` flags deliberately-corrupted artifacts via their content
digests.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as cli_main
from repro.sim import gc as cache_gc
from repro.sim.queue import QUEUE_SUBDIR
from repro.sim.runner import attach_digest, spill_filename, split_spill
from repro.sim.scheduler import build_graph, dnn_spec, gop_profile_spec


def _fake_artifact(cache_dir: Path, kind: str, tag: str, size: int = 64,
                   age: float = 0.0) -> Path:
    """A synthetic spill file with a controlled size and age."""
    digest = f"{abs(hash((kind, tag))):032x}"[:32]
    path = cache_dir / f"{kind}-{digest}.json"
    path.write_text(attach_digest("x" * size))
    if age:
        old = time.time() - age
        os.utime(path, (old, old))
    return path


class TestMarkAndSweep:
    def test_reachable_artifacts_survive_every_policy(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        live = _fake_artifact(cache, "sweep", "live", age=9e6)
        dead = _fake_artifact(cache, "sweep", "dead", age=9e6)
        plan = cache_gc.plan_gc(cache, live={live.name}, max_age=0.0,
                                max_bytes=0)
        assert [f.path for f in plan.keep] == [live]
        assert [f.path for f in plan.delete] == [dead]
        cache_gc.run_gc(plan)
        assert live.exists()
        assert not dead.exists()

    def test_live_graph_keys_map_to_spill_names(self, disk_cache):
        """An actually-computed graph is fully reachable: gc is a no-op."""
        from repro.sim.scheduler import compute_job

        from repro.sim.runner import spill_filename

        jobs = build_graph([dnn_spec("AlexNet", "Cloud"),
                            gop_profile_spec("IBPB", 8, 8)])
        for job in jobs:
            compute_job(job)
        live = cache_gc.live_file_names(jobs)
        on_disk = {p.name for p in disk_cache.cache_dir.glob("*.json")}
        on_disk |= {p.name for p in disk_cache.cache_dir.glob("*.bin")}
        # Fresh computation writes exactly the current-format names; the
        # mark set additionally contains binary kinds' legacy .json
        # aliases, so reachability is a superset of what's on disk.
        assert on_disk == {spill_filename(job.key) for job in jobs}
        assert on_disk < live
        plan = cache_gc.plan_gc(disk_cache.cache_dir, live=live, max_age=0.0)
        assert plan.delete == []
        assert {f.path.name for f in plan.keep} == on_disk

    def test_dry_run_deletes_nothing(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        dead = _fake_artifact(cache, "trace", "dead")
        plan = cache_gc.plan_gc(cache, live=set())
        summary = cache_gc.run_gc(plan, dry_run=True)
        assert summary["deleted"] == 1
        assert dead.exists()

    def test_age_grace_spares_recent_unreachable(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        old = _fake_artifact(cache, "result", "old", age=3600.0)
        recent = _fake_artifact(cache, "result", "recent", age=10.0)
        plan = cache_gc.plan_gc(cache, live=set(), max_age=600.0)
        assert [f.path for f in plan.delete] == [old]
        assert [f.path for f in plan.spared] == [recent]


class TestSizeBudget:
    def test_oldest_first_with_stable_name_tiebreak(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        now = time.time()
        files = {}
        # Three equal-mtime artifacts + one older: the older goes first,
        # then ascending file-name order among the tied ones.
        for tag, age in (("c", 50.0), ("a", 50.0), ("b", 50.0), ("z", 500.0)):
            path = _fake_artifact(cache, "sweep", tag, size=100)
            old = now - age
            os.utime(path, (old, old))
            files[tag] = path
        total = sum(p.stat().st_size for p in files.values())
        budget = total - 2 * files["z"].stat().st_size  # must evict two
        plan = cache_gc.plan_gc(cache, live=set(), max_age=1e9,
                                max_bytes=budget, now=now)
        expected = [files["z"],
                    min((files["a"], files["b"], files["c"]),
                        key=lambda p: p.name)]
        assert [f.path for f in plan.delete] == expected

    def test_two_plans_over_same_state_are_identical(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        for tag in "abcdef":
            _fake_artifact(cache, "profile", tag, size=200, age=100.0)
        kwargs = dict(live=set(), max_age=1e9, max_bytes=500, now=time.time())
        first = cache_gc.plan_gc(cache, **kwargs)
        again = cache_gc.plan_gc(cache, **kwargs)
        assert [f.path for f in first.delete] == [f.path for f in again.delete]
        assert [f.path for f in first.spared] == [f.path for f in again.spared]

    def test_budget_never_evicts_reachable(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        live = _fake_artifact(cache, "trace", "live", size=10_000, age=9e6)
        dead = _fake_artifact(cache, "trace", "dead", size=10, age=9e6)
        plan = cache_gc.plan_gc(cache, live={live.name}, max_age=1e9,
                                max_bytes=1)  # unreachable budget
        assert [f.path for f in plan.delete] == [dead]
        assert [f.path for f in plan.keep] == [live]


class TestQueueHygiene:
    def test_fresh_lock_of_live_worker_is_respected(self, tmp_path):
        cache = tmp_path / "cache"
        queue_dir = cache / QUEUE_SUBDIR
        queue_dir.mkdir(parents=True)
        fresh = queue_dir / "result-abc.lock"
        fresh.write_text("worker 1 now\n")
        stale = queue_dir / "result-def.lock"
        stale.write_text("worker 2 long-gone\n")
        old = time.time() - 2 * cache_gc.LOCK_STALE_SECONDS
        os.utime(stale, (old, old))
        plan = cache_gc.plan_gc(cache, live=set())
        assert plan.stale_locks == [stale]
        summary = cache_gc.run_gc(plan)
        assert summary["locks_removed"] == 1
        assert fresh.exists()
        assert not stale.exists()

    def test_abandoned_tmp_spills_are_swept(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        torn = cache / "sweep-deadbeef.tmp.12345"
        torn.write_text("{half a spi")
        old = time.time() - 2 * cache_gc.TMP_STALE_SECONDS
        os.utime(torn, (old, old))
        live_tmp = cache / "sweep-cafef00d.tmp.99999"
        live_tmp.write_text("{being writ")
        plan = cache_gc.plan_gc(cache, live=set())
        assert plan.stale_tmp == [torn]
        cache_gc.run_gc(plan)
        assert not torn.exists()
        assert live_tmp.exists()

    def test_abandoned_tmp_of_every_kind_is_swept(self, tmp_path):
        """The stale-tmp sweep covers all four artifact kinds (and both
        spill formats): tmp names keep the `<kind>-<digest>` stem."""
        cache = tmp_path / "cache"
        cache.mkdir()
        orphans = []
        for kind, ext in (("trace", "bin"), ("result", "json"),
                          ("sweep", "json"), ("profile", "json")):
            torn = cache / f"{kind}-{kind[0] * 8}.tmp.4242"
            torn.write_bytes(b"torn " + ext.encode())
            orphans.append(torn)
        old = time.time() - 10.0
        for torn in orphans:
            os.utime(torn, (old, old))
        plan = cache_gc.plan_gc(cache, live=set(), tmp_stale_seconds=1.0)
        assert sorted(plan.stale_tmp) == sorted(orphans)
        summary = cache_gc.run_gc(plan)
        assert summary["tmp_removed"] == len(orphans)
        assert not any(p.exists() for p in orphans)

    def test_sigkill_mid_spill_leaves_tmp_the_gc_reclaims(self, tmp_path,
                                                          disk_cache):
        """A worker SIGKILLed mid-write leaves only a tmp orphan — the
        real artifact name never appears — and `cache gc` removes it."""
        import multiprocessing
        import signal

        cache_dir = disk_cache.cache_dir

        def spill_forever(cache_dir, started):
            # Open the tmp file exactly the way _disk_store names it,
            # write a partial payload, then hang until SIGKILLed.
            tmp = Path(cache_dir) / f"profile-12345678deadbeef.tmp.{os.getpid()}"
            tmp.write_text('{"half": "a spill"')
            started.set()
            time.sleep(300.0)

        ctx = multiprocessing.get_context("fork")
        started = ctx.Event()
        worker = ctx.Process(target=spill_forever,
                             args=(str(cache_dir), started))
        worker.start()
        assert started.wait(timeout=30.0)
        os.kill(worker.pid, signal.SIGKILL)
        worker.join(timeout=30.0)
        orphans = list(Path(cache_dir).glob("*.tmp.*"))
        assert len(orphans) == 1  # the torn write survived the SIGKILL
        time.sleep(0.05)
        plan = cache_gc.plan_gc(cache_dir, live=set(),
                                tmp_stale_seconds=0.01)
        assert plan.stale_tmp == orphans
        summary = cache_gc.run_gc(plan)
        assert summary["tmp_removed"] == 1
        assert list(Path(cache_dir).glob("*.tmp.*")) == []

    def test_resolved_and_aged_attempt_records_are_swept(self, tmp_path):
        """Attempt records whose job's artifact now exists (or that have
        aged out) are GC'd; fresh records of unresolved failures stay."""
        cache = tmp_path / "cache"
        queue_dir = cache / QUEUE_SUBDIR
        queue_dir.mkdir(parents=True)
        resolved = queue_dir / "profile-abc.attempts"
        resolved.write_text("w1\t0.0\tRuntimeError: transient\n")
        (cache / "profile-abc.json").write_text("{}\n")  # artifact landed
        aged = queue_dir / "trace-old.attempts"
        aged.write_text("w1\t0.0\tOSError: io\n")
        old = time.time() - 10.0
        os.utime(aged, (old, old))
        fresh = queue_dir / "result-live.attempts"
        fresh.write_text("w2\t0.0\tRuntimeError: still failing\n")
        plan = cache_gc.plan_gc(cache, live=set(), tmp_stale_seconds=5.0)
        assert sorted(plan.stale_attempts) == sorted([resolved, aged])
        summary = cache_gc.run_gc(plan)
        assert summary["attempts_removed"] == 2
        assert fresh.exists()
        assert not resolved.exists() and not aged.exists()


class TestVerify:
    def test_pristine_cache_verifies_clean(self, disk_cache):
        from repro.sim.runner import dnn_sweep

        dnn_sweep("AlexNet", "Cloud")
        ok, issues = cache_gc.verify_artifacts(disk_cache.cache_dir)
        assert ok >= 2  # the trace and the sweep at least
        assert issues == []

    def test_corrupted_artifact_is_flagged_and_not_served(self, disk_cache):
        from repro.sim.runner import dnn_sweep

        first = dnn_sweep("AlexNet", "Cloud")
        spill = next(iter(disk_cache.cache_dir.glob("sweep-*.json")))
        text = spill.read_text()
        payload, digest = split_spill(text)
        assert digest is not None
        # Corrupt one byte *inside* valid JSON: still decodes, but the
        # content no longer matches the recorded digest.
        corrupted = payload.replace('"workload"', '"workLoad"', 1)
        assert corrupted != payload
        spill.write_text(corrupted + "\n#sha256:" + digest + "\n")
        ok, issues = cache_gc.verify_artifacts(disk_cache.cache_dir)
        assert any(i.status == "corrupt" and i.path == spill for i in issues)
        # The loader refuses the corrupt spill and rebuilds transparently.
        disk_cache.clear()
        rebuilt = dnn_sweep("AlexNet", "Cloud")
        assert disk_cache.stats()["sweep_misses"] == 1
        assert rebuilt.workload == first.workload

    def test_stale_codec_is_stale_not_corrupt(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        path = cache / f"sweep-{'0' * 32}.json"
        path.write_text(attach_digest('{"version": -1}'))
        ok, issues = cache_gc.verify_artifacts(cache)
        assert ok == 0
        assert [i.status for i in issues] == ["stale"]

    def test_legacy_spill_without_trailer_is_unverifiable(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / f"profile-{'1' * 32}.json").write_text('{"version": 2}')
        ok, issues = cache_gc.verify_artifacts(cache)
        assert [i.status for i in issues] == ["unverifiable"]


class TestSpillNames:
    def test_every_graph_key_has_a_spill_name(self):
        from repro.experiments.registry import FULL_SUITE, suite_graph

        for quick in (False, True):
            for job in suite_graph(FULL_SUITE, quick):
                name = spill_filename(job.key)
                assert name is not None, job.kind
                assert name.split("-", 1)[0] == (
                    job.kind if job.kind != "trace" else "trace"
                )

    def test_memory_only_keys_have_no_spill_name(self):
        assert spill_filename(("graph-csr", "google-plus", 64)) is None


class TestParsers:
    def test_durations(self):
        assert cache_gc.parse_duration("0s") == 0.0
        assert cache_gc.parse_duration("90") == 90.0
        assert cache_gc.parse_duration("30m") == 1800.0
        assert cache_gc.parse_duration("7d") == 7 * 86400.0

    def test_sizes(self):
        assert cache_gc.parse_size("1024") == 1024
        assert cache_gc.parse_size("512M") == 512 << 20
        assert cache_gc.parse_size("2g") == 2 << 30

    def test_rejects_garbage(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            cache_gc.parse_duration("soon")
        with pytest.raises(ConfigError):
            cache_gc.parse_size("plenty")


class TestCli:
    def test_cache_stats_gc_verify_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        cache.mkdir()
        live = _fake_artifact(cache, "sweep", "live", age=9e6)
        _fake_artifact(cache, "trace", "dead", age=9e6)

        # The default mark set is the real suite graph, which our fake
        # names are not part of — pin the live set through the module
        # seam instead of recomputing the whole registry here.
        import repro.sim.gc as gc_mod

        original = gc_mod.default_live_names
        gc_mod.default_live_names = lambda: {live.name}
        try:
            argv = ["cache", "stats", "--cache-dir", str(cache)]
            assert cli_main(argv) == 0
            out = capsys.readouterr().out
            assert "1 reachable, 1 unreachable" in out

            argv = ["cache", "gc", "--max-age", "0s", "--dry-run",
                    "--cache-dir", str(cache)]
            assert cli_main(argv) == 0
            out = capsys.readouterr().out
            assert "would delete 1 artifacts" in out
            assert live.exists()

            argv = ["cache", "gc", "--max-age", "0s", "--cache-dir", str(cache)]
            assert cli_main(argv) == 0
            out = capsys.readouterr().out
            assert "deleted 1 artifacts" in out
            assert live.exists()
            assert list(cache.glob("trace-*.json")) == []
        finally:
            gc_mod.default_live_names = original

        # verify: the stale fake payload ("xxx…" decodes under no codec)
        # is reported stale, not corrupt, and the exit code stays 0.
        assert cli_main(["cache", "verify", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "0 corrupt" in out

    def test_verify_exit_code_flags_corruption(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        cache.mkdir()
        path = _fake_artifact(cache, "profile", "x")
        payload, digest = split_spill(path.read_text())
        path.write_text("y" + payload[1:] + "\n#sha256:" + digest + "\n")
        assert cli_main(["cache", "verify", "--cache-dir", str(cache)]) == 1
        assert "1 corrupt" in capsys.readouterr().out

    def test_missing_cache_dir_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            cli_main(["cache", "stats"])

    def test_cache_stats_reports_quarantine_census(self, tmp_path):
        from repro.sim.gc import cache_stats
        from repro.sim.queue import QUARANTINE_AFTER

        cache = tmp_path / "cache"
        queue_dir = cache / QUEUE_SUBDIR
        queue_dir.mkdir(parents=True)
        poisoned = queue_dir / "trace-bad.attempts"
        poisoned.write_text(
            "w1\t0.0\tRuntimeError: boom\n" * QUARANTINE_AFTER)
        flaky = queue_dir / "result-flaky.attempts"
        flaky.write_text("w2\t0.0\tOSError: io\n")
        stats = cache_stats(cache)
        assert stats["attempt_records"] == 2
        assert stats["failed_attempts"] == QUARANTINE_AFTER + 1
        assert stats["quarantined_jobs"] == ["trace-bad"]

    def test_cache_stats_json_is_machine_readable(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        cache.mkdir()
        _fake_artifact(cache, "sweep", "live")
        assert cli_main(["cache", "stats", "--json",
                         "--cache-dir", str(cache)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["total_files"] == 1
        assert stats["engine_backend"] in ("python", "native")
        assert stats["quarantined_jobs"] == []
        assert stats["attempt_records"] == 0

    def test_cache_verify_json_lists_issues(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        cache.mkdir()
        _fake_artifact(cache, "sweep", "ok")
        bad = _fake_artifact(cache, "profile", "bad")
        payload, digest = split_spill(bad.read_text())
        bad.write_text("y" + payload[1:] + "\n#sha256:" + digest + "\n")
        assert cli_main(["cache", "verify", "--json",
                         "--cache-dir", str(cache)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt"] == 1
        assert report["ok"] >= 0
        files = [issue["file"] for issue in report["issues"]
                 if issue["status"] == "corrupt"]
        assert files == [bad.name]
