"""Batched pricing contract: ``price_batch`` ≡ per-access ``process``.

The sweep pipeline rests on one invariant: pricing an
:class:`~repro.core.access.AccessBatch` must equal — byte for byte, per
traffic category — processing the same accesses in order.  These tests
pin that down with a randomized-seed property sweep over all five
schemes plus real DNN and graph traces, and cover the trace/sweep cache
and the parallel sweep path the runner builds on top.
"""

from __future__ import annotations

import random
from dataclasses import astuple

import pytest

from repro.common.units import MIB
from repro.core.access import AccessBatch, AccessKind, DataClass, MemAccess, Phase
from repro.core.schemes import ProtectionTraffic, scheme_suite
from repro.sim.runner import (
    SCHEMES,
    TRACE_CACHE,
    BatchedTrace,
    TraceCache,
    dnn_sweep,
    dnn_workload,
    graph_sweep,
    graph_workload,
)

_PROTECTED = 256 * MIB


def _random_accesses(seed: int, n: int = 120) -> list[MemAccess]:
    """A mixed bag of streams and gathers over every data class."""
    rng = random.Random(seed)
    accesses = []
    for _ in range(n):
        data_class = rng.choice(list(DataClass))
        kind = rng.choice([AccessKind.READ, AccessKind.WRITE])
        size = rng.randint(1, MIB)
        address = rng.randint(0, _PROTECTED - size)
        if rng.random() < 0.5:
            accesses.append(MemAccess(
                address, size, kind, data_class, sequential=True,
                vn=rng.choice([None, rng.getrandbits(64)]),
            ))
        else:
            burst = rng.choice([64, 128, 256, 512, 4096])
            accesses.append(MemAccess(
                address, size, kind, data_class, sequential=False,
                burst_bytes=burst,
                spread_bytes=rng.randint(burst, 64 * MIB),
            ))
    return accesses


def _price_per_access(scheme, accesses) -> ProtectionTraffic:
    traffic = ProtectionTraffic()
    for access in accesses:
        traffic.merge(scheme.process(access))
    traffic.merge(scheme.finish())
    return traffic


def _price_batched(scheme, batch) -> ProtectionTraffic:
    traffic = scheme.price_batch(batch)
    traffic.merge(scheme.finish())
    return traffic


class TestAccessBatchRoundTrip:
    def test_reconstruction_is_lossless(self):
        accesses = _random_accesses(seed=7)
        batch = AccessBatch.from_accesses(accesses)
        assert batch.to_accesses(reconstruct=True) == accesses

    def test_source_objects_returned_without_reconstruction(self):
        accesses = _random_accesses(seed=8, n=10)
        batch = AccessBatch.from_accesses(accesses)
        assert batch.to_accesses() is not accesses  # defensive copy of the list
        assert all(a is b for a, b in zip(batch.to_accesses(), accesses))

    def test_from_phase(self):
        accesses = _random_accesses(seed=9, n=5)
        batch = AccessBatch.from_phase(Phase("p", 0.0, accesses))
        assert len(batch) == 5
        assert batch.total_data_bytes == sum(a.size for a in accesses)

    def test_empty_batch(self):
        batch = AccessBatch.from_accesses([])
        assert len(batch) == 0
        assert batch.total_data_bytes == 0
        assert batch.to_accesses(reconstruct=True) == []

    def test_tagged_64bit_vns_survive(self):
        """Graph/video VNs use all 64 bits (class tag in the top bits)."""
        access = MemAccess(0, 64, AccessKind.WRITE, DataClass.VECTOR,
                           vn=(3 << 62) | 12345)
        batch = AccessBatch.from_accesses([access])
        assert batch.to_accesses(reconstruct=True)[0].vn == (3 << 62) | 12345


class TestBatchPricingEquivalence:
    """price_batch == per-access pricing, for every scheme, any trace."""

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_traces_all_schemes(self, seed):
        accesses = _random_accesses(seed)
        batch = AccessBatch.from_accesses(accesses)
        reference_suite = scheme_suite(_PROTECTED)
        batched_suite = scheme_suite(_PROTECTED)
        for name in SCHEMES:
            expected = _price_per_access(reference_suite[name], accesses)
            actual = _price_batched(batched_suite[name], batch)
            assert astuple(actual) == astuple(expected), name

    @pytest.mark.parametrize("seed", range(4))
    def test_stats_match_too(self, seed):
        accesses = _random_accesses(seed, n=60)
        batch = AccessBatch.from_accesses(accesses)
        reference_suite = scheme_suite(_PROTECTED)
        batched_suite = scheme_suite(_PROTECTED)
        for name in SCHEMES:
            _price_per_access(reference_suite[name], accesses)
            _price_batched(batched_suite[name], batch)
            assert (reference_suite[name].stats.as_dict()
                    == batched_suite[name].stats.as_dict()), name

    def _assert_equivalent_on(self, workload):
        accesses = [a for phase in workload.trace.phases for a in phase.accesses]
        reference_suite = scheme_suite(workload.protected_bytes)
        batched_suite = scheme_suite(workload.protected_bytes)
        whole = AccessBatch.from_accesses(accesses)
        for name in SCHEMES:
            expected = _price_per_access(reference_suite[name], accesses)
            actual = _price_batched(batched_suite[name], whole)
            assert astuple(actual) == astuple(expected), name

    def test_dnn_trace_all_schemes(self):
        self._assert_equivalent_on(dnn_workload("AlexNet", "Cloud"))

    def test_dnn_training_trace_all_schemes(self):
        self._assert_equivalent_on(dnn_workload("AlexNet", "Cloud", training=True))

    def test_graph_trace_all_schemes(self):
        self._assert_equivalent_on(
            graph_workload("google-plus", "PR", iterations=2, scale_divisor=256)
        )

    def test_vectorized_path_is_exercised(self):
        """The stateless schemes really do take the columnar fast path."""
        from repro.core.schemes import make_mgx

        scheme = make_mgx(_PROTECTED)
        accesses = _random_accesses(seed=3, n=50)
        batch = AccessBatch.from_accesses(accesses)
        vectorized = scheme._price_batch_stateless(batch)
        scheme.reset()
        expected = _price_per_access(scheme, accesses)
        assert astuple(vectorized) == astuple(expected)

    @pytest.mark.parametrize("name", ["BP", "MGX_MAC"])
    def test_cached_schemes_never_fall_back_to_process(self, name, monkeypatch):
        """BP/MGX_MAC batch pricing takes the segment path, not the walk."""
        scheme = scheme_suite(_PROTECTED)[name]
        batch = AccessBatch.from_accesses(_random_accesses(seed=11, n=40))

        def boom(access):
            raise AssertionError("price_batch fell back to process()")

        monkeypatch.setattr(scheme, "process", boom)
        traffic = scheme.price_batch(batch)
        assert traffic.total_bytes > 0

    def test_all_schemes_vectorize(self):
        """Every suite scheme advertises a batched fast path, so sweeps
        convert each trace to columns exactly once."""
        for name, scheme in scheme_suite(_PROTECTED).items():
            assert scheme.vectorizes, name

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("cache_bytes", [1024, 4096])
    def test_tiny_caches_stress_evictions_and_chains(self, seed, cache_bytes):
        """Adversarial configs: caches small enough that every segment
        evicts, floods trigger, and writeback chains climb the tree —
        the segment-vectorized path must still match byte for byte."""
        from repro.core.schemes.counter_mode import (
            FINE_MAC_POLICY,
            CounterModeProtection,
        )

        def make():
            return CounterModeProtection(
                name="tiny",
                vn_onchip=False,
                mac_policy=FINE_MAC_POLICY,
                protected_bytes=_PROTECTED,
                cache_bytes=cache_bytes,
            )

        accesses = _random_accesses(seed, n=80)
        expected = _price_per_access(make(), accesses)
        actual = _price_batched(make(), AccessBatch.from_accesses(accesses))
        assert astuple(actual) == astuple(expected)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("ways", [2, 4])
    def test_set_associative_caches_price_on_the_engine(self, seed, ways):
        """Set-associative configs ride the engine (native when built —
        no scalar fallback) and still match per-access pricing."""
        from repro.core.engine_backend import active_backend
        from repro.core.schemes.counter_mode import (
            FINE_MAC_POLICY,
            CounterModeProtection,
        )

        def make():
            return CounterModeProtection(
                name="assoc",
                vn_onchip=False,
                mac_policy=FINE_MAC_POLICY,
                protected_bytes=_PROTECTED,
                cache_bytes=32 * 1024,
                cache_ways=ways,
            )

        accesses = _random_accesses(seed, n=80)
        batched = make()
        expected = _price_per_access(make(), accesses)
        actual = _price_batched(batched, AccessBatch.from_accesses(accesses))
        assert astuple(actual) == astuple(expected)
        assert batched.cache.ways == ways
        # Whatever backend is active prices the set-associative config:
        # native when the compiled engine is available, never a scalar
        # per-access fallback.
        assert batched.engine_backend == active_backend()

    @pytest.mark.parametrize("name", ["BP", "MGX_MAC"])
    def test_cached_schemes_on_dnn_trace(self, name):
        """Per-acceptance: BP and MGX_MAC pinned on a real DNN trace."""
        workload = dnn_workload("AlexNet", "Cloud", training=True)
        accesses = [a for p in workload.trace.phases for a in p.accesses]
        expected = _price_per_access(
            scheme_suite(workload.protected_bytes)[name], accesses
        )
        actual = _price_batched(
            scheme_suite(workload.protected_bytes)[name],
            AccessBatch.from_accesses(accesses),
        )
        assert astuple(actual) == astuple(expected)

    @pytest.mark.parametrize("name", ["BP", "MGX_MAC"])
    def test_cached_schemes_on_graph_trace(self, name):
        """Per-acceptance: BP and MGX_MAC pinned on a real graph trace."""
        workload = graph_workload("ogbl-ppa", "BFS", iterations=2,
                                  scale_divisor=256)
        accesses = [a for p in workload.trace.phases for a in p.accesses]
        expected = _price_per_access(
            scheme_suite(workload.protected_bytes)[name], accesses
        )
        actual = _price_batched(
            scheme_suite(workload.protected_bytes)[name],
            AccessBatch.from_accesses(accesses),
        )
        assert astuple(actual) == astuple(expected)

    @pytest.mark.parametrize("name", ["BP", "MGX_MAC"])
    def test_price_trace_matches_per_batch_pricing(self, name):
        """Whole-trace engine pricing ≡ per-batch pricing, per phase —
        traffic, scheme stats, cache stats and final LRU state alike."""
        workload = dnn_workload("AlexNet", "Cloud", training=True)
        batches = list(workload.trace.batches)
        per_batch_scheme = scheme_suite(workload.protected_bytes)[name]
        trace_scheme = scheme_suite(workload.protected_bytes)[name]
        per_batch = [per_batch_scheme.price_batch(batch) for batch in batches]
        whole = trace_scheme.price_trace(batches)
        assert [astuple(t) for t in whole] == [astuple(t) for t in per_batch]
        assert astuple(trace_scheme.finish()) == astuple(per_batch_scheme.finish())
        assert trace_scheme.stats.as_dict() == per_batch_scheme.stats.as_dict()
        assert (trace_scheme.cache.stats.as_dict()
                == per_batch_scheme.cache.stats.as_dict())
        assert trace_scheme.cache.contents() == per_batch_scheme.cache.contents()

    def test_out_of_range_batch_rejected(self):
        from repro.common.errors import ConfigError
        from repro.core.schemes import make_mgx

        scheme = make_mgx(1 * MIB)
        batch = AccessBatch.from_accesses(
            [MemAccess(1 * MIB - 64, 128, AccessKind.READ)]
        )
        with pytest.raises(ConfigError):
            scheme.price_batch(batch)


class TestTraceCache:
    def test_hit_and_miss_accounting(self):
        cache = TraceCache(max_entries=2)
        built = []
        cache.get_or_build("a", lambda: built.append("a") or 1)
        cache.get_or_build("a", lambda: built.append("a") or 1)
        assert built == ["a"]
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)
        assert stats["disk_hits"] == 0

    def test_lru_eviction(self):
        cache = TraceCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get_or_build(key, lambda k=key: k)
        assert len(cache) == 2
        calls = []
        cache.get_or_build("a", lambda: calls.append(1) or "a")  # evicted: rebuilt
        assert calls == [1]

    def test_disabled_cache_always_builds(self):
        cache = TraceCache()
        cache.enabled = False
        built = []
        cache.get_or_build("k", lambda: built.append(1))
        cache.get_or_build("k", lambda: built.append(1))
        assert len(built) == 2 and len(cache) == 0

    def test_sweep_reuse_across_calls(self):
        first = dnn_sweep("AlexNet", "Cloud")
        again = dnn_sweep("AlexNet", "Cloud")
        assert again is first  # served from the sweep cache

    def test_cached_and_uncached_sweeps_agree(self):
        cached = dnn_sweep("AlexNet", "Cloud")
        fresh = dnn_sweep("AlexNet", "Cloud", use_cache=False)
        assert fresh is not cached
        for name in SCHEMES:
            assert fresh.results[name].total_cycles == pytest.approx(
                cached.results[name].total_cycles
            )
            assert (fresh.results[name].traffic.total_bytes
                    == cached.results[name].traffic.total_bytes)

    def test_workload_trace_shared_between_sweep_and_workload(self):
        workload = dnn_workload("AlexNet", "Cloud")
        again = dnn_workload("AlexNet", "Cloud")
        assert again.trace is workload.trace

    def test_batched_trace_total_accesses(self):
        workload = dnn_workload("AlexNet", "Cloud")
        assert workload.trace.total_accesses == sum(
            len(p.accesses) for p in workload.trace.phases
        )
        rebuilt = BatchedTrace.from_phases(workload.trace.phases)
        assert rebuilt.total_accesses == workload.trace.total_accesses

    def test_global_cache_is_enabled_by_default(self):
        assert TRACE_CACHE.enabled


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        serial = graph_sweep("google-plus", "PR", iterations=2, scale_divisor=256,
                             use_cache=False)
        parallel = graph_sweep("google-plus", "PR", iterations=2, scale_divisor=256,
                               use_cache=False, jobs=2)
        assert set(parallel.results) == set(serial.results)
        for name in SCHEMES:
            assert (parallel.results[name].total_cycles
                    == serial.results[name].total_cycles), name
            assert astuple(parallel.results[name].traffic) == astuple(
                serial.results[name].traffic
            ), name
