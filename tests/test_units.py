"""Unit conversions and integer helpers (repro.common.units)."""

import pytest
from hypothesis import given, strategies as st

from repro.common import units


class TestCeilDiv:
    def test_exact(self):
        assert units.ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert units.ceil_div(9, 4) == 3

    def test_one(self):
        assert units.ceil_div(1, 64) == 1

    def test_zero_numerator(self):
        assert units.ceil_div(0, 64) == 0

    def test_zero_divisor_rejected(self):
        with pytest.raises(ValueError):
            units.ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_float_ceiling(self, a, b):
        assert units.ceil_div(a, b) == -(-a // b)
        assert units.ceil_div(a, b) * b >= a


class TestRounding:
    def test_round_up_multiple(self):
        assert units.round_up(64, 64) == 64

    def test_round_up_partial(self):
        assert units.round_up(65, 64) == 128

    def test_round_down(self):
        assert units.round_down(127, 64) == 64

    def test_round_down_rejects_zero(self):
        with pytest.raises(ValueError):
            units.round_down(10, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=4096))
    def test_round_up_down_bracket(self, value, multiple):
        down = units.round_down(value, multiple)
        up = units.round_up(value, multiple)
        assert down <= value <= up
        assert up - down in (0, multiple)


class TestPow2:
    @pytest.mark.parametrize("value", [1, 2, 64, 4096, 1 << 40])
    def test_is_pow2_true(self, value):
        assert units.is_pow2(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100])
    def test_is_pow2_false(self, value):
        assert not units.is_pow2(value)

    def test_log2_int(self):
        assert units.log2_int(64) == 6

    def test_log2_int_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            units.log2_int(48)


class TestTimeConversions:
    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(1e9, 1e9) == pytest.approx(1.0)

    def test_seconds_roundtrip(self):
        cycles = units.seconds_to_cycles(0.5, 700 * units.MHZ)
        assert units.cycles_to_seconds(cycles, 700 * units.MHZ) == pytest.approx(0.5)

    def test_rescale_cycles(self):
        # 700 MHz accelerator cycles expressed at a 1.2 GHz memory clock.
        assert units.rescale_cycles(700, 700 * units.MHZ, 1200 * units.MHZ) == (
            pytest.approx(1200)
        )

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1, 0)


class TestFormatting:
    def test_bytes(self):
        assert units.fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert units.fmt_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert units.fmt_bytes(24 * units.MIB) == "24.0 MiB"

    def test_constants_consistent(self):
        assert units.GIB == 1024 * units.MIB == 1024 * 1024 * units.KIB
        assert units.CACHE_BLOCK == 64
        assert units.AES_BLOCK == 16
