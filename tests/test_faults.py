"""Deterministic fault injection and the hardening it exercises.

Covers the :mod:`repro.sim.faults` layer itself (spec grammar, seeded
decision determinism, bounded retry/backoff) and the substrate behavior
under injected chaos: poison-job quarantine with transitive dependent
skipping, per-job deadlines converting hangs into stale locks,
corrupt-spill discard-and-rebuild for every artifact kind, native-engine
demotion to the python backend, and the capstone soak — a drain with
faults at every injection point that still converges to byte-identical
artifacts with a deterministic quarantine set.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.sim import faults
from repro.sim.queue import QUEUE_SUBDIR, WorkQueue, drain_graph
from repro.sim.runner import TRACE_CACHE
from repro.sim.scheduler import (
    build_graph,
    dnn_spec,
    gact_profile_spec,
    gop_profile_spec,
)


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Every test starts and ends with injection disabled — and without
    a sticky native-backend demotion leaking into later tests."""
    from repro.core import engine_backend

    faults.install(None)
    engine_backend.clear_demotion()
    yield
    faults.install(None)
    engine_backend.clear_demotion()


def _fast_queue(tmp_path, **overrides) -> WorkQueue:
    options = dict(heartbeat_seconds=0.05, stale_seconds=0.4,
                   poll_seconds=0.02)
    options.update(overrides)
    return WorkQueue(tmp_path / "cache" / QUEUE_SUBDIR, **options)


class TestSpecGrammar:
    def test_full_spec_parses(self):
        plan = faults.parse_spec(
            "spill_read:io:0.05,claim:delay:0.1:0.005,"
            "native_call:crash:0.01@seed=7"
        )
        assert plan.seed == 7
        assert len(plan.rules) == 3
        (claim_rule,) = plan.rules_for("claim")
        assert claim_rule.mode == "delay"
        assert claim_rule.param == 0.005
        assert plan.rules_for("compute") == ()

    def test_empty_disables(self):
        assert faults.parse_spec(None) is None
        assert faults.parse_spec("") is None
        assert faults.parse_spec("   ") is None
        assert faults.parse_spec(" , ") is None

    @pytest.mark.parametrize("bad", [
        "bogus:io:0.5",          # unknown point
        "claim:melt:0.5",        # unknown mode
        "claim:io:lots",         # non-float rate
        "claim:io:1.5",          # rate out of range
        "claim:io:-0.1",         # rate out of range
        "claim:delay:0.5:-1",    # negative param
        "claim:io",              # too few fields
        "claim:io:0.5@sneed=1",  # unknown option
        "claim:io:0.5@seed=x",   # non-integer seed
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            faults.parse_spec(bad)

    def test_install_roundtrip_and_env_pickling(self):
        spec = "compute:crash:0.5@seed=3"
        plan = faults.install(spec)
        assert faults.active_plan() is plan
        assert faults.active_spec() == spec  # picklable for pool workers
        faults.install(None)
        assert faults.active_plan() is None
        assert faults.active_spec() is None


class TestDeterminism:
    def test_decisions_are_pure_functions_of_seed_context_attempt(self):
        a = faults._roll(7, "compute#0", "job-x", 0)
        assert a == faults._roll(7, "compute#0", "job-x", 0)
        assert a != faults._roll(7, "compute#0", "job-x", 1)
        assert a != faults._roll(8, "compute#0", "job-x", 0)
        assert a != faults._roll(7, "compute#0", "job-y", 0)
        assert 0.0 <= a < 1.0

    def test_attempt_pinned_decisions_repeat_across_installs(self):
        """The same (seed, job, attempt) faults identically no matter
        which process/order evaluates it — the quarantine invariant."""
        outcomes = []
        for _ in range(2):
            faults.install("compute:crash:0.5@seed=11")
            row = []
            for attempt in range(6):
                try:
                    faults.maybe_fault("compute", "result-abc", attempt=attempt)
                    row.append(False)
                except faults.InjectedCrash:
                    row.append(True)
            outcomes.append(row)
        assert outcomes[0] == outcomes[1]
        assert True in outcomes[0] and False in outcomes[0]

    def test_counter_based_decisions_advance(self):
        faults.install("spill_read:io:1.0@seed=0")
        with pytest.raises(faults.InjectedIOError):
            faults.maybe_fault("spill_read", "spill-a")
        # rate 1.0: every invocation fires, counter or not
        with pytest.raises(faults.InjectedIOError):
            faults.maybe_fault("spill_read", "spill-a")

    def test_zero_rate_never_fires(self):
        faults.install("compute:crash:0.0@seed=0")
        for attempt in range(64):
            faults.maybe_fault("compute", "job", attempt=attempt)

    def test_backoff_is_bounded_and_deterministic(self):
        delays = [faults.backoff_delay(n, token="t") for n in range(8)]
        assert delays == [faults.backoff_delay(n, token="t") for n in range(8)]
        for n, delay in enumerate(delays):
            step = min(faults.RETRY_MAX_SECONDS,
                       faults.RETRY_BASE_SECONDS * 2.0**n)
            assert 0.5 * step <= delay <= step
        assert delays != [faults.backoff_delay(n, token="u") for n in range(8)]


class TestRetries:
    def test_transient_failure_retries_to_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert faults.call_with_retries(flaky, "claim", "job") == "ok"
        assert len(calls) == 3

    def test_no_retry_exceptions_propagate_immediately(self):
        calls = []

        def held():
            calls.append(1)
            raise FileExistsError("lock held")

        with pytest.raises(FileExistsError):
            faults.call_with_retries(held, "claim", "job",
                                     no_retry=(FileExistsError,))
        assert len(calls) == 1

    def test_exhausted_retries_raise_last_error(self):
        def always():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            faults.call_with_retries(always, "release", "job", attempts=3)

    def test_injected_io_is_transient_under_retries(self):
        """A rate-1-for-a-while injected fault resolves within the retry
        budget because retries advance the decision counter."""
        faults.install("claim:io:0.5@seed=1")
        # With four attempts the chance all four draws fire is tiny; the
        # fixed seed makes it a deterministic pass, not a flake.
        assert faults.call_with_retries(lambda: "ok", "claim", "job-r") == "ok"

    def test_disabled_layer_is_inert(self):
        assert faults.active_plan() is None
        faults.maybe_fault("compute", "anything", attempt=0)
        assert faults.call_with_retries(lambda: 42, "claim", "x") == 42


class TestQuarantine:
    def test_poisoned_job_quarantines_and_drain_completes(self, tmp_path,
                                                          disk_cache):
        faults.install("compute:crash:1.0@seed=1")
        jobs = build_graph([gop_profile_spec("IBPB", 4, 4)])
        queue = _fast_queue(tmp_path, quarantine_after=2)
        summary = drain_graph(jobs, queue, timeout=60.0)
        assert summary["computed"] == 0
        assert summary["failures"] == 2
        assert summary["quarantined"] == [jobs[0].job_id()]
        assert queue.is_quarantined(jobs[0].job_id())
        assert not disk_cache.has(jobs[0].key)
        # The attempt record is durable: a fresh drain over the same
        # queue dir sees the quarantine immediately, zero new failures.
        again = drain_graph(jobs, _fast_queue(tmp_path, quarantine_after=2),
                            timeout=60.0)
        assert again["failures"] == 0
        assert again["quarantined"] == [jobs[0].job_id()]

    def test_dependents_of_quarantined_job_are_skipped(self, tmp_path,
                                                       disk_cache):
        """A poisoned trace drops its results and sweep transitively —
        the drain completes instead of waiting on artifacts that will
        never exist."""
        faults.install("compute:crash:1.0@seed=1")
        jobs = build_graph([dnn_spec("AlexNet", "Cloud")])
        queue = _fast_queue(tmp_path, quarantine_after=2)
        summary = drain_graph(jobs, queue, timeout=60.0)
        trace_job = jobs[0]
        assert trace_job.kind == "trace"
        assert summary["quarantined"] == [trace_job.job_id()]
        assert sorted(summary["skipped"]) == sorted(
            job.job_id() for job in jobs[1:]
        )

    def test_success_clears_attempt_records(self, tmp_path, disk_cache):
        """A transient failure's record is cleared on the eventual
        success, so stale failures never poison later drains."""
        faults.install("compute:crash:0.5@seed=11")
        jobs = build_graph([gop_profile_spec("IBPB", 4, 4)])
        job_id = jobs[0].job_id()
        # seed 11 fires at attempt 0 and clears by attempt 2 (pinned by
        # TestDeterminism above); quarantine_after=3 leaves retry room.
        fires = [faults._roll(11, "compute#0", job_id, n) < 0.5
                 for n in range(3)]
        assume_transient = not all(fires)
        assert assume_transient, "pick a different seed for this test"
        queue = _fast_queue(tmp_path, quarantine_after=3)
        summary = drain_graph(jobs, queue, timeout=60.0)
        assert summary["computed"] == 1
        assert summary["quarantined"] == []
        assert queue.failure_count(job_id) == 0
        assert disk_cache.has(jobs[0].key)

    def test_attempt_counts_census(self, tmp_path):
        queue = _fast_queue(tmp_path, quarantine_after=2)
        queue.record_failure("profile-abc", RuntimeError("boom\nline2"))
        queue.record_failure("profile-abc", RuntimeError("again"))
        queue.record_failure("trace-def", OSError("io"))
        from repro.sim.queue import attempt_counts

        assert attempt_counts(queue.queue_dir) == {
            "profile-abc": 2, "trace-def": 1,
        }
        assert queue.quarantined_jobs() == ["profile-abc"]
        assert queue.is_quarantined("profile-abc")
        assert not queue.is_quarantined("trace-def")
        recorded = queue.attempts_path("profile-abc").read_text()
        assert "boom line2" in recorded  # newlines flattened
        queue.clear_failures("profile-abc")
        assert queue.failure_count("profile-abc") == 0


class TestDeadlines:
    def test_deadline_converts_hang_into_stale_lock(self, tmp_path,
                                                    disk_cache):
        """A claim past its job deadline stops heartbeating voluntarily,
        so peers reclaim it like a dead worker's lock."""
        queue = _fast_queue(tmp_path, stale_seconds=0.3,
                            job_deadline_seconds=0.1)
        claim = queue.try_claim("job-hang")
        assert claim is not None
        deadline = time.monotonic() + 10.0
        while not claim.expired() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert claim.expired()
        # Heartbeat has stopped: the mtime ages out and a peer reclaims.
        deadline = time.monotonic() + 10.0
        reclaimed: list[str] = []
        while not reclaimed and time.monotonic() < deadline:
            time.sleep(0.05)
            reclaimed = queue.reclaim_stale()
        assert reclaimed == ["job-hang"]
        claim.release()  # the hung owner resuming later is harmless

    def test_release_returns_promptly_under_injected_delay(self, tmp_path,
                                                           disk_cache):
        """Injected heartbeat delays wait on the stop event, so release
        joins the beat thread promptly instead of truncating it."""
        faults.install("heartbeat:delay:1.0:5.0@seed=0")  # 5 s every beat
        queue = _fast_queue(tmp_path, heartbeat_seconds=0.05)
        claim = queue.try_claim("job-slow")
        time.sleep(0.2)  # let the beat enter its injected delay
        start = time.monotonic()
        claim.release()
        assert time.monotonic() - start < 2.0
        assert not claim._thread.is_alive()
        assert not queue.is_claimed("job-slow")


class TestCorruptSpills:
    @pytest.mark.parametrize("kind,key,value", [
        ("result", ("dnn-result", "fake", "NP"), None),  # built below
        ("sweep", ("dnn-sweep", "fake"), None),
        ("profile", ("gop-profile", "fake"), {"cycles": 123, "rows": [1, 2]}),
    ])
    def test_corrupt_spill_discarded_and_rebuilt(self, disk_cache, kind,
                                                 key, value):
        """A digest-mismatch spill of any JSON kind is deleted on load —
        has() stops advertising it — and the rebuild respills over it."""
        if value is None:
            from repro.core.schemes.base import ProtectionTraffic
            from repro.sim.perf import SimResult
            from repro.sim.runner import SchemeSweep

            result = SimResult(scheme="NP", total_cycles=1.0,
                               traffic=ProtectionTraffic())
            value = (result if kind == "result"
                     else SchemeSweep(workload="fake",
                                      results={"NP": result}))
        disk_cache.put(key, value)
        (path,) = [p for p in disk_cache._disk_paths(key) if p.exists()]
        text = path.read_text()
        corrupted = text.replace("{", "{ ", 1)  # payload changes, digest kept
        path.write_text(corrupted)
        disk_cache.clear()  # drop the memory tier: force a disk load
        assert disk_cache.has(key)  # existence check is fooled...
        assert disk_cache.peek(key) is None  # ...but the load rejects it
        assert not path.exists()  # and deletes the provably-corrupt file
        assert disk_cache.corrupt_dropped == 1
        assert not disk_cache.has(key)
        disk_cache.put(key, value)  # rebuild path respills cleanly
        disk_cache.clear()
        assert disk_cache.peek(key) is not None

    def test_spill_write_faults_are_transient_under_retries(self, disk_cache):
        faults.install("spill_write:io:0.5@seed=4")
        key = ("gop-profile", "retry-check")
        disk_cache.put(key, {"ok": 1})
        # Retries inside _disk_store absorb the injected failures for
        # this seed; the spill must exist and decode.
        disk_cache.clear()
        assert disk_cache.peek(key) == {"ok": 1}

    def test_exhausted_spill_write_leaves_no_tmp_litter(self, disk_cache):
        faults.install("spill_write:io:1.0@seed=0")
        key = ("gop-profile", "never-lands")
        disk_cache.put(key, {"ok": 1})
        assert not disk_cache.has_spill(key)
        assert list(disk_cache.cache_dir.glob("*.tmp.*")) == []
        # The memory tier still has the value: the disk tier is
        # best-effort by contract.
        assert disk_cache.peek(key) == {"ok": 1}


class TestNativeDemotion:
    def test_auto_session_demotes_to_python_once(self, monkeypatch, capsys):
        from repro.core import engine_backend

        if not engine_backend.native_available():
            pytest.skip("native backend unavailable (no C compiler)")
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        engine_backend.clear_demotion()
        try:
            faults.install("native_call:crash:1.0@seed=0")
            from repro.core.lru_engine import LruEngine

            engine = engine_backend.create_engine(16)
            assert isinstance(engine, LruEngine)  # demoted this call
            assert engine_backend.demotion_reason() is not None
            assert engine_backend.resolve_backend() == "python"
            assert engine_backend.active_backend() == "python"
            engine_backend.create_engine(16)  # second call: still python
            warnings = capsys.readouterr().err
            assert warnings.count("native engine faulted") == 1
        finally:
            engine_backend.clear_demotion()

    def test_forced_native_propagates_the_fault(self, monkeypatch):
        from repro.core import engine_backend

        if not engine_backend.native_available():
            pytest.skip("native backend unavailable (no C compiler)")
        monkeypatch.setenv("REPRO_ENGINE", "native")
        engine_backend.clear_demotion()
        try:
            faults.install("native_call:crash:1.0@seed=0")
            with pytest.raises(faults.InjectedCrash):
                engine_backend.create_engine(16)
            assert engine_backend.demotion_reason() is None
        finally:
            engine_backend.clear_demotion()

    def test_demoted_tables_stay_byte_identical(self, monkeypatch,
                                                fresh_cache):
        """Degraded mode degrades speed only: a demoted session's sweep
        equals the python backend's (both pinned to the reference)."""
        from dataclasses import astuple

        from repro.core import engine_backend
        from repro.sim.runner import SCHEMES, dnn_sweep

        if not engine_backend.native_available():
            pytest.skip("native backend unavailable (no C compiler)")
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        engine_backend.clear_demotion()
        try:
            engine_backend.demote_to_python("test: simulated native fault")
            demoted = dnn_sweep("AlexNet", "Cloud", use_cache=False)
        finally:
            engine_backend.clear_demotion()
        monkeypatch.setenv("REPRO_ENGINE", "python")
        reference = dnn_sweep("AlexNet", "Cloud", use_cache=False)
        for name in SCHEMES:
            assert (demoted.results[name].total_cycles
                    == reference.results[name].total_cycles), name
            assert astuple(demoted.results[name].traffic) == astuple(
                reference.results[name].traffic
            ), name


#: Chaos plan for the soak: every injection point fires, at rates low
#: enough (given the fixed seed) that every job converges before the
#: quarantine threshold.  Validated deterministic-by-seed: changing any
#: rate or the seed requires re-checking the quarantine set is empty.
SOAK_SPEC = ("claim:delay:0.2:0.002,claim:io:0.1,heartbeat:io:0.2,"
             "release:io:0.2,spill_read:io:0.15,spill_write:io:0.15,"
             "compute:crash:0.25,native_call:crash:0.5@seed=5")


def _artifact_digests(cache_dir: Path) -> dict[str, str]:
    digests = {}
    for pattern in ("*.bin", "*.json"):
        for path in cache_dir.glob(pattern):
            digests[path.name] = hashlib.sha256(path.read_bytes()).hexdigest()
    return digests


class TestChaosSoak:
    def test_drain_under_full_chaos_is_byte_identical(self, tmp_path):
        """The capstone: a drain with faults at every point converges to
        the same artifact bytes as a clean drain, without deadlocking
        and with an empty (hence deterministic) quarantine set."""
        saved = TRACE_CACHE.cache_dir
        specs = [
            dnn_spec("AlexNet", "Cloud"),
            gact_profile_spec("chrY", "PacBio", 2),
            gop_profile_spec("IBPB", 8, 8),
        ]
        jobs = build_graph(specs)
        try:
            # Clean reference drain.
            TRACE_CACHE.clear()
            TRACE_CACHE.set_cache_dir(tmp_path / "clean")
            clean = drain_graph(jobs, _fast_queue(tmp_path / "a"),
                                timeout=300.0)
            assert clean["computed"] == len(jobs)
            reference = _artifact_digests(tmp_path / "clean")

            # Chaos drain into a fresh dir.
            faults.install(SOAK_SPEC)
            TRACE_CACHE.clear()
            TRACE_CACHE.set_cache_dir(tmp_path / "chaos")
            chaos_queue = _fast_queue(tmp_path / "b", stale_seconds=0.4)
            summary = drain_graph(jobs, chaos_queue, timeout=300.0)
            faults.install(None)
            assert summary["quarantined"] == []
            assert summary["skipped"] == []
            chaotic = _artifact_digests(tmp_path / "chaos")
            assert chaotic == reference
        finally:
            faults.install(None)
            TRACE_CACHE.set_cache_dir(saved)
            TRACE_CACHE.clear()

    def test_chaos_drain_is_repeatable(self, tmp_path):
        """Two chaos drains (same seed, fresh dirs) make identical
        fault decisions: same failure count, same artifacts."""
        saved = TRACE_CACHE.cache_dir
        jobs = build_graph([gop_profile_spec("IBPB", 4, 4)])
        outcomes = []
        try:
            for run in ("one", "two"):
                faults.install("compute:crash:0.5@seed=11")
                TRACE_CACHE.clear()
                TRACE_CACHE.set_cache_dir(tmp_path / run)
                summary = drain_graph(jobs, _fast_queue(tmp_path / run),
                                      timeout=60.0)
                faults.install(None)
                outcomes.append(
                    (summary["failures"], summary["quarantined"],
                     sorted(_artifact_digests(tmp_path / run).items()))
                )
            assert outcomes[0] == outcomes[1]
        finally:
            faults.install(None)
            TRACE_CACHE.set_cache_dir(saved)
            TRACE_CACHE.clear()
