"""Performance model and workload runner."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MHZ, MIB
from repro.core.access import DataClass, Phase, read, write
from repro.core.schemes import NoProtection, make_baseline, make_mgx
from repro.dram.model import DramConfig, DramModel
from repro.sim.perf import PerfConfig, PerformanceModel, SimResult
from repro.sim.runner import SCHEMES, dnn_sweep, graph_sweep


def _model(channels=4, crypto=0.97):
    return PerformanceModel(
        DramModel(DramConfig(channels=channels)),
        PerfConfig(accel_freq_hz=800 * MHZ, crypto_efficiency=crypto),
    )


class TestPerformanceModel:
    def test_compute_bound_phase_hides_memory(self):
        model = _model()
        phases = [Phase("p", compute_cycles=10**9,
                        accesses=[read(0, 1 * MIB)])]
        np_result = model.run(phases, NoProtection())
        bp_result = model.run(phases, make_baseline(256 * MIB))
        assert bp_result.total_cycles == np_result.total_cycles == 10**9

    def test_memory_bound_phase_exposes_overhead(self):
        model = _model()
        phases = [Phase("p", compute_cycles=0,
                        accesses=[read(0, 16 * MIB, DataClass.FEATURE)])]
        np_result = model.run(phases, NoProtection())
        bp_result = model.run(phases, make_baseline(256 * MIB))
        assert bp_result.total_cycles > 1.2 * np_result.total_cycles

    def test_crypto_engine_floor(self):
        """With negligible metadata, MGX still pays the Enc/IV engine's
        throughput tax on memory-bound phases — the paper's residual
        few percent."""
        model = _model(crypto=0.97)
        phases = [Phase("p", compute_cycles=0,
                        accesses=[read(0, 16 * MIB, DataClass.FEATURE)])]
        np_result = model.run(phases, NoProtection())
        mgx_result = model.run(phases, make_mgx(256 * MIB))
        ratio = mgx_result.total_cycles / np_result.total_cycles
        assert 1.02 < ratio < 1.05

    def test_crypto_disabled_at_unity(self):
        model = _model(crypto=1.0)
        phases = [Phase("p", compute_cycles=0,
                        accesses=[read(0, 16 * MIB, DataClass.FEATURE)])]
        np_result = model.run(phases, NoProtection())
        mgx_result = model.run(phases, make_mgx(256 * MIB))
        assert mgx_result.total_cycles / np_result.total_cycles < 1.02

    def test_phase_results_recorded(self):
        model = _model()
        phases = [
            Phase("a", compute_cycles=10**7, accesses=[read(0, 64)]),
            Phase("b", compute_cycles=0, accesses=[read(0, 1 * MIB)]),
        ]
        result = model.run(phases, NoProtection(), keep_phase_results=True)
        assert len(result.phase_results) == 2
        assert not result.phase_results[0].memory_bound
        assert result.phase_results[1].memory_bound

    def test_normalization(self):
        base = SimResult(scheme="NP", total_cycles=100.0, traffic=None)
        other = SimResult(scheme="BP", total_cycles=130.0, traffic=None)
        assert other.normalized_to(base) == pytest.approx(1.3)

    def test_normalize_zero_baseline_rejected(self):
        base = SimResult(scheme="NP", total_cycles=0.0, traffic=None)
        with pytest.raises(ConfigError):
            base.normalized_to(base)

    def test_perf_config_validation(self):
        with pytest.raises(ConfigError):
            PerfConfig(accel_freq_hz=0)
        with pytest.raises(ConfigError):
            PerfConfig(accel_freq_hz=1e9, crypto_efficiency=0.1)

    def test_run_resets_scheme_state(self):
        model = _model()
        scheme = make_baseline(256 * MIB)
        phases = [Phase("p", 0.0, [write(0, 1 * MIB, DataClass.FEATURE)])]
        first = model.run(phases, scheme)
        second = model.run(phases, scheme)
        assert second.total_cycles == pytest.approx(first.total_cycles)


class TestSweeps:
    @pytest.fixture(scope="class")
    def dnn(self):
        return dnn_sweep("AlexNet", "Cloud")

    def test_all_schemes_present(self, dnn):
        assert set(dnn.results) == set(SCHEMES)

    def test_paper_ordering_time(self, dnn):
        """The paper's central ranking: NP < MGX < MGX_VN < MGX_MAC < BP."""
        t = {s: dnn.normalized_time(s) for s in SCHEMES}
        assert 1.0 == t["NP"] < t["MGX"] < t["MGX_VN"] < t["MGX_MAC"] < t["BP"]

    def test_paper_ordering_traffic(self, dnn):
        t = {s: dnn.traffic_increase(s) for s in SCHEMES}
        assert 1.0 == t["NP"] < t["MGX"] < t["MGX_VN"] < t["MGX_MAC"] < t["BP"]

    def test_overhead_percent(self, dnn):
        assert dnn.overhead_percent("MGX") == pytest.approx(
            100 * (dnn.normalized_time("MGX") - 1), abs=1e-9
        )

    def test_mgx_band(self, dnn):
        """MGX overhead stays in the single digits (paper: ≤ 5%)."""
        assert dnn.overhead_percent("MGX") < 6.0

    def test_bp_band(self, dnn):
        """BP overhead is tens of percent (paper: 23–55% traffic)."""
        assert 15.0 < dnn.overhead_percent("BP") < 60.0

    def test_graph_sweep_ordering(self):
        sweep = graph_sweep("google-plus", "PR", iterations=2, scale_divisor=256)
        t = {s: sweep.normalized_time(s) for s in SCHEMES}
        assert t["NP"] <= t["MGX"] < t["MGX_VN"] <= t["MGX_MAC"] < t["BP"]

    def test_graph_bfs_close_to_pagerank(self):
        pr = graph_sweep("google-plus", "PR", iterations=2, scale_divisor=256)
        bfs = graph_sweep("google-plus", "BFS", iterations=2, scale_divisor=256)
        assert bfs.normalized_time("BP") == pytest.approx(
            pr.normalized_time("BP"), rel=0.05
        )

    def test_spmspv_sweep_runs(self):
        sweep = graph_sweep("google-plus", "SpMSpV", iterations=2,
                            scale_divisor=256)
        assert sweep.normalized_time("BP") > 1.0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            graph_sweep("google-plus", "Dijkstra")

    def test_training_sweep(self):
        sweep = dnn_sweep("AlexNet", "Cloud", training=True)
        assert sweep.normalized_time("BP") > 1.0
        assert sweep.results["NP"].total_traffic_bytes > (
            dnn_sweep("AlexNet", "Cloud").results["NP"].total_traffic_bytes
        )
