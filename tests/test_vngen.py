"""On-chip version-number generators — the core MGX mechanism (§IV-C, §V-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError, FreshnessError
from repro.core.counters import VnSpace, untag_vn
from repro.core.vngen import (
    BatchVnState,
    DnnVnState,
    FrameVnState,
    IterationVnState,
    UniquenessGuard,
)


class TestDnnVnState:
    def test_read_requires_prior_write(self):
        with pytest.raises(ConfigError):
            DnnVnState().read_features("x")

    def test_write_then_read_matches(self):
        s = DnnVnState()
        vn = s.write_features("x")
        assert s.read_features("x") == vn

    def test_write_vns_strictly_increase(self):
        s = DnnVnState()
        vns = [s.write_features(f"t{i % 3}") for i in range(20)]
        assert all(a < b for a, b in zip(vns, vns[1:]))

    def test_tiled_layer_increments_per_pass(self):
        """Fig. 7: y written t times ends with VN n + t."""
        s = DnnVnState()
        s.write_features("x")  # n = 1
        for _ in range(4):
            vn = s.write_features("y")
        __, payload = untag_vn(vn)
        assert payload == 1 + 4

    def test_residual_block_fig8_formula(self):
        """Fig. 8(a): VN_F[x_i] = n + sum(t_k) with per-layer pass counts."""
        s = DnnVnState()
        s.write_features("x0")  # n = 1
        pass_counts = {"x1": 2, "x2": 3, "x3": 1, "x4": 2}
        for tensor, t in pass_counts.items():
            for _ in range(t):
                s.write_features(tensor)
        expected = 1
        for tensor, t in pass_counts.items():
            expected += t
            if tensor == "x4":
                __, payload = untag_vn(s.read_features(tensor))
                assert payload == expected

    def test_feature_space_tag(self):
        __, _ = untag_vn(DnnVnState().write_features("x"))
        space, _ = untag_vn(DnnVnState().write_features("x"))
        assert space is VnSpace.FEATURE

    def test_weights_constant_until_update(self):
        s = DnnVnState()
        a = s.read_weights()
        b = s.read_weights()
        assert a == b
        s.update_weights()
        assert s.read_weights() != a

    def test_weight_space_tag(self):
        space, _ = untag_vn(DnnVnState().read_weights())
        assert space is VnSpace.WEIGHT

    def test_gradient_space_tag(self):
        space, _ = untag_vn(DnnVnState().write_gradients("g"))
        assert space is VnSpace.GRADIENT

    def test_gradients_mirror_features(self):
        s = DnnVnState()
        vn = s.write_gradients("gy")
        assert s.read_gradients("gy") == vn
        with pytest.raises(ConfigError):
            s.read_gradients("never")

    def test_drop_features_shrinks_state(self):
        s = DnnVnState()
        for i in range(10):
            s.write_features(f"t{i}")
        before = s.state_bytes
        s.drop_features("t0")
        assert s.state_bytes < before

    def test_state_bytes_scale(self):
        """~1 KB for a 127-layer network (§IV-C)."""
        s = DnnVnState()
        for i in range(127):
            s.write_features(f"layer{i}")
        assert s.state_bytes <= 1100

    def test_ingest_is_a_write(self):
        s = DnnVnState()
        vn = s.ingest_features("input")
        assert s.read_features("input") == vn


class TestIterationVnState:
    def test_adjacency_constant(self):
        s = IterationVnState()
        a = s.adjacency_vn()
        s.advance_iteration()
        assert s.adjacency_vn() == a

    def test_read_lags_write_by_one(self):
        """§V-B: read with Iter−1, write with Iter."""
        s = IterationVnState()
        first_write = s.write_vector_vn()
        s.advance_iteration()
        assert s.read_vector_vn() == first_write

    def test_write_vn_advances(self):
        s = IterationVnState()
        a = s.write_vector_vn()
        s.advance_iteration()
        assert s.write_vector_vn() > a

    def test_vector_never_collides_with_adjacency(self):
        s = IterationVnState()
        vns = {s.adjacency_vn()}
        for _ in range(50):
            assert s.write_vector_vn() not in vns
            s.advance_iteration()

    def test_state_is_64_bits(self):
        assert IterationVnState().state_bytes == 8

    def test_zero_adjacency_vn_rejected(self):
        with pytest.raises(ConfigError):
            IterationVnState(adjacency_vn=0)


class TestBatchVnState:
    def test_query_requires_batch(self):
        with pytest.raises(FreshnessError):
            BatchVnState().query_vn()

    def test_new_batch_changes_query_vn(self):
        s = BatchVnState()
        s.new_query_batch()
        a = s.query_vn()
        s.new_query_batch()
        assert s.query_vn() != a

    def test_new_genome_resets_query(self):
        s = BatchVnState()
        s.new_query_batch()
        ref_a = s.reference_vn()
        s.new_genome()
        assert s.reference_vn() != ref_a
        with pytest.raises(FreshnessError):
            s.query_vn()

    def test_reference_distinct_from_query(self):
        s = BatchVnState()
        s.new_query_batch()
        assert s.reference_vn() != s.query_vn()

    def test_state_bytes(self):
        assert BatchVnState().state_bytes == 16


class TestFrameVnState:
    def test_frame_vns_distinct(self):
        s = FrameVnState()
        assert len({s.frame_vn(f) for f in range(100)}) == 100

    def test_frame_vn_deterministic(self):
        s = FrameVnState()
        assert s.frame_vn(7) == s.frame_vn(7)

    def test_new_bitstream_changes_all(self):
        s = FrameVnState()
        a = s.frame_vn(3)
        s.new_bitstream()
        assert s.frame_vn(3) != a

    def test_negative_frame_rejected(self):
        with pytest.raises(ConfigError):
            FrameVnState().frame_vn(-1)


class TestUniquenessGuard:
    def test_increasing_vns_allowed(self):
        g = UniquenessGuard()
        g.register_write(0, 1)
        g.register_write(0, 2)

    def test_reuse_rejected(self):
        g = UniquenessGuard()
        g.register_write(0, 5)
        with pytest.raises(FreshnessError):
            g.register_write(0, 5)

    def test_decrease_rejected(self):
        g = UniquenessGuard()
        g.register_write(0, 5)
        with pytest.raises(FreshnessError):
            g.register_write(0, 4)

    def test_locations_independent(self):
        g = UniquenessGuard()
        g.register_write(0, 5)
        g.register_write(64, 5)  # different granule, same VN: fine

    def test_history(self):
        g = UniquenessGuard()
        g.register_write(0, 1)
        g.register_write(0, 3)
        assert g.was_ever_used(0, 1)
        assert not g.was_ever_used(0, 2)
        assert g.current_vn(0) == 3
        assert g.current_vn(64) is None

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2,
                    max_size=30, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_sorted_sequences_always_accepted(self, vns):
        g = UniquenessGuard()
        for vn in sorted(vns):
            g.register_write(0, vn)
