"""H.264 decoder model: GOP ordering, reference reads, write-once (§VII-A)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KIB
from repro.core.access import DataClass
from repro.core.functional import MgxFunctionalEngine
from repro.crypto.keys import SessionKeys
from repro.mem.backing import BackingStore
from repro.video.decoder import DecoderConfig, H264Decoder
from repro.video.gop import FrameType, GopStructure


class TestGopStructure:
    def test_fig18_decode_order(self):
        """Display I B P B … decodes as I, P, B, … (Fig. 18)."""
        gop = GopStructure("IBPB", 7)
        order = [f.display_number for f in gop.decode_order()]
        assert order[:4] == [0, 2, 1, 4]

    def test_p_references_previous_anchor(self):
        gop = GopStructure("IBPB", 8)
        p_frame = gop.frame(2)
        assert p_frame.frame_type is FrameType.P
        assert p_frame.references == (0,)

    def test_b_references_both_anchors(self):
        gop = GopStructure("IBPB", 8)
        b_frame = gop.frame(1)
        assert b_frame.frame_type is FrameType.B
        assert b_frame.references == (0, 2)

    def test_i_frames_standalone(self):
        gop = GopStructure("IBPB", 8)
        assert gop.frame(0).references == ()
        assert gop.frame(4).references == ()

    def test_trailing_b_demoted(self):
        """A GOP ending in B has no future anchor: the tail becomes P."""
        gop = GopStructure("IB", 4)
        assert gop.frame(3).frame_type is FrameType.P

    def test_all_frames_decoded_once(self):
        gop = GopStructure("IBPB", 13)
        order = [f.display_number for f in gop.decode_order()]
        assert sorted(order) == list(range(13))

    def test_references_precede_in_decode_order(self):
        gop = GopStructure("IBBPBB", 18)
        position = {
            f.display_number: i for i, f in enumerate(gop.decode_order())
        }
        for frame in gop.frames:
            for ref in frame.references:
                assert position[ref] < position[frame.display_number]

    def test_validation(self):
        with pytest.raises(ConfigError):
            GopStructure("BIP", 4)  # must start with I
        with pytest.raises(ConfigError):
            GopStructure("IXP", 4)
        with pytest.raises(ConfigError):
            GopStructure("IBPB", 0)


class TestDecodeTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return H264Decoder(GopStructure("IBPB", 16), DecoderConfig()).decode_trace()

    def test_write_once_per_buffer_per_step(self, trace):
        assert all(v == 1 for v in trace.writes_per_buffer_step().values())

    def test_every_frame_written_exactly_once(self, trace):
        writes = [r for r in trace.records if r.kind == "write"]
        assert sorted(r.display_number for r in writes) == list(range(16))

    def test_reference_reads_use_references_vn(self, trace):
        write_vn = {
            r.display_number: r.vn for r in trace.records if r.kind == "write"
        }
        for record in trace.records:
            if record.kind == "read":
                assert record.vn == write_vn[record.display_number]

    def test_b_frames_read_two_references(self, trace):
        by_step: dict[int, list] = {}
        for r in trace.records:
            by_step.setdefault(r.step, []).append(r)
        for step, records in by_step.items():
            writes = [r for r in records if r.kind == "write"]
            reads = [r for r in records if r.kind == "read"]
            if writes and writes[0].frame_type == "B":
                assert len(reads) == 2

    def test_writes_never_hit_live_reference_buffer(self, trace):
        by_step: dict[int, list] = {}
        for r in trace.records:
            by_step.setdefault(r.step, []).append(r)
        for records in by_step.values():
            read_buffers = {r.buffer_index for r in records if r.kind == "read"}
            for w in records:
                if w.kind == "write":
                    assert w.buffer_index not in read_buffers

    def test_phases_carry_bitstream_and_frames(self, trace):
        first = trace.phases[0]
        classes = {a.data_class for a in first.accesses}
        assert DataClass.BITSTREAM in classes
        assert DataClass.FRAME in classes

    def test_buffer_count_respected(self, trace):
        assert max(r.buffer_index for r in trace.records) <= 2

    def test_too_few_buffers_rejected(self):
        with pytest.raises(ConfigError):
            H264Decoder(GopStructure("IBPB", 8), DecoderConfig(frame_buffers=2))


class TestFunctionalDecode:
    def _engine(self, data_bytes=64 * KIB):
        keys = SessionKeys.derive(b"video", b"session")
        return MgxFunctionalEngine(keys, BackingStore(1 << 20),
                                   data_bytes=data_bytes, mac_granularity=512)

    def test_roundtrip_ibpb(self):
        decoder = H264Decoder(GopStructure("IBPB", 12), DecoderConfig())
        assert decoder.functional_decode(self._engine())

    def test_roundtrip_deeper_gop(self):
        decoder = H264Decoder(
            GopStructure("IBBPBB", 12), DecoderConfig(frame_buffers=4)
        )
        assert decoder.functional_decode(self._engine())

    def test_roundtrip_i_only(self):
        decoder = H264Decoder(GopStructure("I", 6), DecoderConfig())
        assert decoder.functional_decode(self._engine())

    def test_new_bitstream_separates_vn_spaces(self):
        """Two decodes through one engine: CTR_IN must advance, or frame
        VNs would repeat on the reused buffers."""
        engine = self._engine()
        decoder = H264Decoder(GopStructure("IPPP", 6), DecoderConfig())
        assert decoder.functional_decode(engine)
        # Without a new bitstream counter the same VNs repeat → guard trips.
        from repro.common.errors import FreshnessError

        fresh_decoder = H264Decoder(GopStructure("IPPP", 6), DecoderConfig())
        with pytest.raises(FreshnessError):
            fresh_decoder.functional_decode(engine)
