"""Statistics counters (repro.common.stats)."""

import pytest

from repro.common.stats import RunningMean, StatsGroup, geometric_mean


class TestStatsGroup:
    def test_add_and_get(self):
        s = StatsGroup("t")
        s.add("hits")
        s.add("hits", 4)
        assert s.get("hits") == 5

    def test_missing_is_zero(self):
        assert StatsGroup("t").get("nope") == 0

    def test_set_overwrites(self):
        s = StatsGroup("t")
        s.add("x", 10)
        s.set("x", 3)
        assert s.get("x") == 3

    def test_merge_accumulates(self):
        a, b = StatsGroup("a"), StatsGroup("b")
        a.add("reads", 2)
        b.add("reads", 3)
        b.add("writes", 1)
        a.merge(b)
        assert a.get("reads") == 5
        assert a.get("writes") == 1

    def test_total_prefix(self):
        s = StatsGroup("t")
        s.add("mac_seq", 10)
        s.add("mac_scat", 5)
        s.add("vn_seq", 99)
        assert s.total("mac_") == 15

    def test_ratio(self):
        s = StatsGroup("t")
        s.add("hits", 3)
        s.add("total", 4)
        assert s.ratio("hits", "total") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        assert StatsGroup("t").ratio("a", "b") == 0.0

    def test_reset(self):
        s = StatsGroup("t")
        s.add("x")
        s.reset()
        assert s.get("x") == 0

    def test_contains(self):
        s = StatsGroup("t")
        s.add("present")
        assert "present" in s
        assert "absent" not in s

    def test_as_dict_is_copy(self):
        s = StatsGroup("t")
        s.add("x")
        d = s.as_dict()
        d["x"] = 100
        assert s.get("x") == 1


class TestRunningMean:
    def test_empty_mean_zero(self):
        assert RunningMean().mean == 0.0

    def test_observations(self):
        m = RunningMean()
        for v in (1.0, 2.0, 6.0):
            m.observe(v)
        assert m.mean == pytest.approx(3.0)
        assert m.minimum == 1.0
        assert m.maximum == 6.0
        assert m.count == 3


class TestGeometricMean:
    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_identity(self):
        assert geometric_mean([1.0, 1.0]) == pytest.approx(1.0)

    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
