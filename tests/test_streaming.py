"""Chunk-iterable traces price byte-identically to materialized ones.

``StreamingTrace`` replays deterministic phase generators; the perf
model's session path converts and prices one phase at a time.  These
tests pin the streamed results — cycles, traffic, per-scheme — to the
batched pipeline across DNN inference/training and graph workloads, and
the generator trace methods to their list-building counterparts.
"""

from __future__ import annotations

import pytest

from repro.dnn.accelerator import CONFIGS
from repro.dnn.models import build_model
from repro.dnn.tracegen import DnnTraceGenerator
from repro.sim.runner import (
    BatchedTrace,
    StreamingTrace,
    TRACE_CACHE,
    dnn_workload,
    dnn_workload_streaming,
    graph_workload,
    graph_workload_streaming,
    sweep_schemes,
    sweep_schemes_streaming,
)


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch):
    """Streamed/batched comparisons must not share cached sweeps."""
    monkeypatch.setattr(TRACE_CACHE, "enabled", False)


def _assert_sweeps_equal(batched, streamed):
    assert set(batched.results) == set(streamed.results)
    for name in batched.results:
        a, b = batched.results[name], streamed.results[name]
        assert a.total_cycles == b.total_cycles, name
        assert a.traffic == b.traffic, name


def _batched_sweep(workload):
    return sweep_schemes(
        workload.label, workload.trace.phases, workload.performance_model(),
        workload.protected_bytes, batches=workload.trace.batches,
    )


def _streamed_sweep(workload):
    return sweep_schemes_streaming(
        workload.label, workload.trace, workload.performance_model(),
        workload.protected_bytes,
    )


class TestGeneratorPhases:
    def test_iter_inference_matches_inference(self):
        config = CONFIGS["Cloud"]
        phases = list(DnnTraceGenerator(build_model("AlexNet"),
                                        config).iter_inference())
        reference = DnnTraceGenerator(build_model("AlexNet"),
                                      config).inference().phases
        assert [p.name for p in phases] == [p.name for p in reference]
        assert [p.accesses for p in phases] == [p.accesses for p in reference]

    def test_iter_training_matches_training_step(self):
        config = CONFIGS["Cloud"]
        phases = list(DnnTraceGenerator(build_model("AlexNet"),
                                        config).iter_training_step())
        reference = DnnTraceGenerator(build_model("AlexNet"),
                                      config).training_step().phases
        assert [p.name for p in phases] == [p.name for p in reference]
        assert [p.accesses for p in phases] == [p.accesses for p in reference]

    def test_streaming_trace_reiterates(self):
        config = CONFIGS["Cloud"]
        trace = StreamingTrace(
            lambda: DnnTraceGenerator(build_model("AlexNet"),
                                      config).iter_inference()
        )
        first = [p.name for p in trace.iter_phases()]
        second = [p.name for p in trace.iter_phases()]
        assert first == second and first

    def test_batched_trace_iterates_phases(self):
        workload = dnn_workload("AlexNet", "Cloud", use_cache=False)
        assert isinstance(workload.trace, BatchedTrace)
        assert list(workload.trace.iter_phases()) == workload.trace.phases


class TestStreamedEqualsBatched:
    def test_dnn_inference(self):
        _assert_sweeps_equal(
            _batched_sweep(dnn_workload("AlexNet", "Cloud", use_cache=False)),
            _streamed_sweep(dnn_workload_streaming("AlexNet", "Cloud")),
        )

    def test_dnn_training(self):
        _assert_sweeps_equal(
            _batched_sweep(dnn_workload("AlexNet", "Cloud", training=True,
                                        use_cache=False)),
            _streamed_sweep(dnn_workload_streaming("AlexNet", "Cloud",
                                                   training=True)),
        )

    def test_graph_pagerank(self):
        _assert_sweeps_equal(
            _batched_sweep(graph_workload("google-plus", "PR",
                                          scale_divisor=512,
                                          use_cache=False)),
            _streamed_sweep(graph_workload_streaming("google-plus", "PR",
                                                     scale_divisor=512)),
        )

    def test_unknown_graph_algorithm_rejected(self):
        with pytest.raises(ValueError):
            graph_workload_streaming("google-plus", "Dijkstra",
                                     iterations=2, scale_divisor=512)
