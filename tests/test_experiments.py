"""Experiment harness: every figure runs (quick mode) and lands in band."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig03", "fig12", "fig13", "fig14", "fig16", "fig19", "headline"
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestResultStructure:
    def test_add_row_and_column(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        r.add_row(a=1, b=2.0)
        assert r.column("a") == [1]
        assert r.mean("b") == 2.0

    def test_to_text_contains_everything(self):
        r = ExperimentResult("x", "Title", ["w", "v"])
        r.add_row(w="alpha", v=1.234)
        r.summary["avg"] = 1.2
        r.paper["avg"] = 1.3
        text = r.to_text()
        assert "Title" in text
        assert "alpha" in text
        assert "1.234" in text
        assert "paper: 1.300" in text


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig03", quick=True)

    def test_all_groups_present(self, result):
        workloads = result.column("workload")
        assert any(w.endswith("-Inf") for w in workloads)
        assert any(w.endswith("-Train") for w in workloads)
        assert any(w.startswith("PR-") for w in workloads)
        assert any(w.startswith("BFS-") for w in workloads)

    def test_every_workload_above_paper_floor(self, result):
        """Paper: traffic overhead at least ~23% everywhere."""
        assert all(t > 20.0 for t in result.column("total_pct"))

    def test_vn_exceeds_mac(self, result):
        """The Fig. 3 observation driving MGX's design."""
        for row in result.rows:
            assert row["vn_pct"] > row["mac_pct"] * 0.9


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig12", quick=True)

    def test_mgx_beats_bp_everywhere(self, result):
        for row in result.rows:
            assert row["MGX"] < row["BP"]

    def test_mgx_band(self, result):
        for row in result.rows:
            assert row["MGX"] < 1.10

    def test_bp_band(self, result):
        for row in result.rows:
            assert 1.2 < row["BP"] < 1.6


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig13", quick=True)

    def test_scheme_ordering_per_row(self, result):
        for row in result.rows:
            assert row["MGX"] <= row["MGX_VN"] + 1e-9
            assert row["MGX_VN"] <= row["MGX_MAC"] + 1e-9
            assert row["MGX_MAC"] <= row["BP"] + 1e-9

    def test_mgx_near_zero(self, result):
        """Single digits everywhere; DLRM-Edge is the worst point."""
        for row in result.rows:
            assert row["MGX"] < 1.08


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig14", quick=True)

    def test_pr_and_bfs_rows(self, result):
        names = result.column("workload")
        assert any(n.startswith("PR-") for n in names)
        assert any(n.startswith("BFS-") for n in names)

    def test_traffic_bands(self, result):
        for row in result.rows:
            assert 1.2 < row["traffic_BP"] < 1.4
            assert row["traffic_MGX"] < 1.05

    def test_time_ordering(self, result):
        for row in result.rows:
            assert row["time_MGX"] < row["time_BP"]


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig16", quick=True)

    def test_mgx_vn_beats_bp(self, result):
        for row in result.rows:
            assert row["MGX_VN"] < row["BP"]

    def test_traffic_near_12_5_for_mgx_vn(self, result):
        """Fine-grained MACs cost ~1/8 of traffic (paper: +12.5%); the
        error-scaled traceback stream nudges it slightly above."""
        for row in result.rows:
            assert 1.10 < row["traffic_MGX_VN"] < 1.16

    def test_tiles_measured(self, result):
        assert all(f >= 1.0 for f in result.column("tiles_per_read"))


class TestFig19:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig19", quick=True)

    def test_all_invariants_hold(self, result):
        assert result.summary["write_once_per_frame"] == 1.0
        assert result.summary["vn_monotonic_per_buffer"] == 1.0
        assert result.summary["functional_roundtrip"] == 1.0

    def test_pattern_rows_present(self, result):
        kinds = set(result.column("kind"))
        assert kinds == {"read", "write"}


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("headline", quick=True)

    def test_four_tasks(self, result):
        assert [r["task"] for r in result.rows] == [
            "DNN-Inference", "DNN-Training", "PageRank", "BFS"
        ]

    def test_mgx_single_digit_everywhere(self, result):
        for row in result.rows:
            assert row["MGX_pct"] < 8.0

    def test_bp_tens_of_percent(self, result):
        for row in result.rows:
            assert 15.0 < row["BP_pct"] < 60.0

    def test_headline_reduction(self, result):
        """The abstract's claim: BP ~28-33% down to ~4-5%."""
        assert result.summary["DNN_BP_avg_pct"] > 5 * result.summary["DNN_MGX_avg_pct"]
        assert result.summary["Graph_BP_avg_pct"] > 5 * result.summary["Graph_MGX_avg_pct"]
