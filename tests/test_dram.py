"""DRAM substrate: timing grades, address map, bank FSM, fast-vs-detailed."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.dram.address_map import AddressMap
from repro.dram.bank import BankState
from repro.dram.controller import DramRequest
from repro.dram.model import DramConfig, DramModel, TrafficProfile
from repro.dram.timing import DDR4_2400, DDR4_3200, timing_for


class TestTiming:
    def test_lookup(self):
        assert timing_for("DDR4-2400") is DDR4_2400
        assert timing_for("DDR4-3200") is DDR4_3200

    def test_unknown_grade(self):
        with pytest.raises(ConfigError):
            timing_for("DDR5-9999")

    def test_row_cycle(self):
        assert DDR4_2400.rc == DDR4_2400.ras + DDR4_2400.rp

    def test_refresh_efficiency_below_one(self):
        assert 0.9 < DDR4_2400.refresh_efficiency < 1.0

    def test_peak_bytes_per_cycle(self):
        # 64-bit bus, double data rate: 16 bytes per controller cycle.
        assert DDR4_2400.bytes_per_cycle == 16


class TestAddressMap:
    def test_block_interleaves_channels(self):
        amap = AddressMap(channels=4, ranks=1, banks=16, row_bytes=2048)
        channels = [amap.decode(i * 64).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_walk_within_channel(self):
        amap = AddressMap(channels=1, ranks=1, banks=16, row_bytes=2048)
        # 2048-byte row = 32 blocks; block 31 and 32 are different rows
        # only after all banks cycle -- same bank revisits after
        # banks * blocks_per_row blocks.
        first = amap.decode(0)
        same_row_last = amap.decode(31 * 64)
        assert first.row == same_row_last.row
        assert first.bank == same_row_last.bank

    def test_decode_encode_roundtrip_concrete(self):
        amap = AddressMap(channels=2, ranks=2, banks=8, row_bytes=1024)
        for addr in (0, 64, 4096, 123456 * 64):
            assert amap.encode(amap.decode(addr)) == addr

    @given(st.integers(min_value=0, max_value=(1 << 34) - 1))
    @settings(max_examples=50, deadline=None)
    def test_decode_encode_roundtrip_property(self, block_index):
        amap = AddressMap(channels=4, ranks=1, banks=16, row_bytes=2048)
        address = block_index * 64
        assert amap.encode(amap.decode(address)) == address

    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(channels=3, ranks=1, banks=16, row_bytes=2048)

    def test_row_smaller_than_block_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(channels=1, ranks=1, banks=1, row_bytes=32)


class TestBankState:
    def test_first_access_is_miss(self):
        bank = BankState(DDR4_2400)
        issue, hit = bank.access(row=5, at=0)
        assert not hit
        assert issue >= DDR4_2400.rcd

    def test_second_access_same_row_hits(self):
        bank = BankState(DDR4_2400)
        bank.access(row=5, at=0)
        issue, hit = bank.access(row=5, at=0)
        assert hit

    def test_row_conflict_pays_precharge(self):
        bank = BankState(DDR4_2400)
        first, _ = bank.access(row=5, at=0)
        second, hit = bank.access(row=9, at=0)
        assert not hit
        # Must wait tRAS from activate, then tRP + tRCD.
        assert second >= DDR4_2400.ras + DDR4_2400.rp + DDR4_2400.rcd

    def test_ccd_spacing(self):
        bank = BankState(DDR4_2400)
        a, _ = bank.access(row=1, at=0)
        b, _ = bank.access(row=1, at=0)
        assert b - a >= DDR4_2400.ccd

    def test_hit_miss_counters(self):
        bank = BankState(DDR4_2400)
        bank.access(1, 0)
        bank.access(1, 0)
        bank.access(2, 0)
        assert bank.hits == 1
        assert bank.misses == 2


class TestDramModel:
    def test_peak_bandwidth(self):
        assert DramModel(DramConfig(channels=4)).config.peak_bandwidth_gbs == (
            pytest.approx(76.8)
        )

    def test_sequential_faster_than_scattered(self):
        m = DramModel()
        seq = m.cycles_for(TrafficProfile(sequential_bytes=1 << 20))
        scat = m.cycles_for(TrafficProfile(scattered_bytes=1 << 20))
        assert scat > seq

    def test_cycles_scale_linearly(self):
        m = DramModel()
        one = m.cycles_for(TrafficProfile(sequential_bytes=1 << 20))
        two = m.cycles_for(TrafficProfile(sequential_bytes=2 << 20))
        assert two == pytest.approx(2 * one)

    def test_channels_scale_bandwidth(self):
        one = DramModel(DramConfig(channels=1))
        four = DramModel(DramConfig(channels=4))
        t1 = one.cycles_for(TrafficProfile(sequential_bytes=1 << 20))
        t4 = four.cycles_for(TrafficProfile(sequential_bytes=1 << 20))
        assert t1 == pytest.approx(4 * t4)

    def test_fast_path_matches_detailed_sequential(self):
        """The analytic streaming rate is within 5% of the detailed model."""
        m = DramModel(DramConfig(channels=4))
        detailed = m.detailed_cycles_for_range(0, 1 << 20)
        fast = m.cycles_for(TrafficProfile(sequential_bytes=1 << 20))
        assert abs(detailed / fast - 1.0) < 0.05

    def test_fast_path_matches_detailed_scattered(self):
        """The analytic scattered rate is within 10% of the detailed model."""
        m = DramModel(DramConfig(channels=4))
        rng = random.Random(7)
        requests = [
            DramRequest(rng.randrange(0, 1 << 30) & ~63) for _ in range(4096)
        ]
        sim = m.detailed()
        detailed = sim.service(requests)
        fast = m.cycles_for(TrafficProfile(scattered_bytes=4096 * 64))
        assert abs(detailed / fast - 1.0) < 0.10

    def test_detailed_row_hit_rate_streaming(self):
        m = DramModel(DramConfig(channels=1))
        sim = m.detailed()
        sim.service([DramRequest(i * 64) for i in range(1024)])
        assert sim.row_hit_rate > 0.9

    def test_seconds_for(self):
        m = DramModel()
        profile = TrafficProfile(sequential_bytes=1 << 20)
        assert m.seconds_for(profile) == pytest.approx(
            m.cycles_for(profile) / m.config.timing.clock_hz
        )

    def test_profile_merge_and_scale(self):
        p = TrafficProfile(sequential_bytes=100, scattered_bytes=50)
        p.add(TrafficProfile(sequential_bytes=10, scattered_bytes=5))
        assert p.total_bytes == 165
        assert p.scaled(2.0).sequential_bytes == 220

    def test_write_requests_counted(self):
        m = DramModel(DramConfig(channels=1))
        sim = m.detailed()
        sim.service([DramRequest(i * 64, is_write=(i % 2 == 0)) for i in range(64)])
        assert sim.stats.get("write_requests") == 32
        assert sim.stats.get("read_requests") == 32

    def test_bad_stream_efficiency(self):
        with pytest.raises(ConfigError):
            DramConfig(stream_efficiency=0.2)
