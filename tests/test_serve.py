"""Serving front-end: protocol, coalescing, admission, isolation, loadgen.

The async paths run under ``asyncio.run`` inside synchronous tests (no
pytest-asyncio dependency).  Tests that pin cache/coalescing counters
clear the process-wide trace cache first so they are order-independent.
"""

import asyncio

import pytest

from repro.common.errors import IntegrityError, ReplayError
from repro.experiments.registry import resolve_request
from repro.host.attestation import ManufacturerCa
from repro.serve.loadgen import (
    SERVE_KERNEL,
    LoadConfig,
    run_load,
)
from repro.serve.protocol import (
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_OK,
    TenantClient,
    WorkReply,
    WorkRequest,
)
from repro.serve.server import SERVE_FIRMWARE, ProtectionServer, ServerConfig
from repro.sim.runner import TRACE_CACHE


@pytest.fixture
def ca():
    return ManufacturerCa(b"serve-root-secret")


def _client(ca, nonce):
    return TenantClient(ca, expected_firmware=SERVE_FIRMWARE,
                        kernel=SERVE_KERNEL, nonce=nonce)


class TestProtocol:
    def test_request_roundtrip(self):
        request = WorkRequest(request_id=7, name="pagerank", scheme="MGX")
        assert WorkRequest.decode(request.encode()) == request
        assert WorkRequest.decode(
            WorkRequest(3, "genome-align").encode()).scheme is None

    def test_reply_roundtrip(self):
        reply = WorkReply(request_id=9, status=STATUS_OK, kind="result",
                          payload="{}", detail=None)
        assert WorkReply.decode(reply.encode()) == reply

    def test_encoding_is_canonical(self):
        # Identical logical messages are byte-identical on the wire.
        a = WorkRequest(1, "bfs", "NP").encode()
        b = WorkRequest(1, "bfs", "NP").encode()
        assert a == b


class TestServing:
    def test_served_payloads_match_offline_pricing(self, ca):
        async def run():
            async with ProtectionServer(ca=ca) as server:
                client = _client(ca, b"offline-check")
                await client.connect(server)
                out = {}
                for name, scheme in (("pagerank", "MGX"), ("dnn-alexnet", "NP"),
                                     ("genome-align", None)):
                    reply = await client.request(name, scheme)
                    assert reply.status == STATUS_OK
                    out[(name, scheme)] = reply.payload
                await client.close()
                return out

        payloads = asyncio.run(run())
        for (name, scheme), payload in payloads.items():
            assert payload == resolve_request(name, scheme).offline_payload()

    def test_identical_inflight_requests_coalesce(self, ca):
        TRACE_CACHE.clear()

        async def run():
            async with ProtectionServer(ca=ca) as server:
                clients = [_client(ca, b"coalesce-%d" % i) for i in range(6)]
                for client in clients:
                    await client.connect(server)
                replies = await asyncio.gather(
                    *(c.request("video-decode") for c in clients))
                for client in clients:
                    await client.close()
                return replies, dict(server.stats), server.flights

        replies, stats, flights = asyncio.run(run())
        assert [r.status for r in replies] == [STATUS_OK] * 6
        # One computation served all six: the rest coalesced onto the
        # in-flight leader or hit the cache the leader populated.
        assert stats["computed"] == 1
        assert stats["coalesced"] + stats["warm_hits"] == 5
        assert flights.leaders >= 1
        # Byte-identical replies, each sealed under its own tenant key.
        assert len({r.payload for r in replies}) == 1

    def test_admission_rejects_when_full(self, ca):
        config = ServerConfig(queue_depth=1, per_tenant_inflight=1,
                              pricing_workers=1)

        async def run():
            async with ProtectionServer(ca=ca, config=config) as server:
                client = _client(ca, b"burst-tenant")
                await client.connect(server)
                replies = await asyncio.gather(
                    *(client.request("genome-align") for _ in range(5)))
                await client.close()
                return replies, dict(server.stats)

        replies, stats = asyncio.run(run())
        statuses = [r.status for r in replies]
        assert statuses.count(STATUS_OK) >= 1
        assert statuses.count(STATUS_BUSY) >= 1
        # Nothing lost: every request answered, busy counted not dropped.
        assert len(statuses) == 5
        assert stats["ok"] + stats["busy"] == stats["requests"] == 5

    def test_per_tenant_cap_isolates_tenants(self, ca):
        config = ServerConfig(queue_depth=64, per_tenant_inflight=1,
                              pricing_workers=1, batch_window_s=0.05)

        async def run():
            async with ProtectionServer(ca=ca, config=config) as server:
                greedy = _client(ca, b"greedy")
                quiet = _client(ca, b"quiet")
                await greedy.connect(server)
                await quiet.connect(server)
                burst = [asyncio.ensure_future(greedy.request("pagerank", "MGX"))
                         for _ in range(4)]
                await asyncio.sleep(0)  # let the burst hit admission
                polite = await quiet.request("pagerank", "MGX")
                burst_replies = await asyncio.gather(*burst)
                await greedy.close()
                await quiet.close()
                return polite, burst_replies

        polite, burst_replies = asyncio.run(run())
        # The quiet tenant is admitted even while the greedy one is
        # over its cap and eating BUSY replies.
        assert polite.status == STATUS_OK
        assert sum(1 for r in burst_replies
                   if r.status == STATUS_BUSY) >= 1

    def test_compatible_pricings_batch_over_one_trace(self, ca):
        config = ServerConfig(batch_window_s=0.05, pricing_workers=2)

        async def run():
            async with ProtectionServer(ca=ca, config=config) as server:
                clients = [_client(ca, b"batch-%d" % i) for i in range(2)]
                for client in clients:
                    await client.connect(server)
                replies = await asyncio.gather(
                    clients[0].request("dnn-dlrm", "NP"),
                    clients[1].request("dnn-dlrm", "MGX"),
                )
                for client in clients:
                    await client.close()
                return replies, dict(server.stats)

        replies, stats = asyncio.run(run())
        assert [r.status for r in replies] == [STATUS_OK] * 2
        # Same workload trace, different schemes: one flushed group
        # priced both requests.
        assert stats["batched_groups"] == 1
        assert stats["batched_requests"] == 2
        for reply, scheme in zip(replies, ("NP", "MGX")):
            assert reply.payload == resolve_request(
                "dnn-dlrm", scheme).offline_payload()

    def test_unknown_requests_get_error_replies(self, ca):
        async def run():
            async with ProtectionServer(ca=ca) as server:
                client = _client(ca, b"error-tenant")
                await client.connect(server)
                bad_name = await client.request("no-such-workload")
                bad_scheme = await client.request("pagerank", "XXX")
                await client.close()
                return bad_name, bad_scheme, dict(server.stats)

        bad_name, bad_scheme, stats = asyncio.run(run())
        assert bad_name.status == STATUS_ERROR
        assert "unknown serve request" in (bad_name.detail or "")
        assert bad_scheme.status == STATUS_ERROR
        assert "unknown scheme" in (bad_scheme.detail or "")
        assert stats["errors"] == 2 and stats["ok"] == 0

    def test_session_nonce_replay_rejected(self, ca):
        async def run():
            async with ProtectionServer(ca=ca) as server:
                first = _client(ca, b"replayed-nonce")
                await first.connect(server)
                second = _client(ca, b"replayed-nonce")
                with pytest.raises(ReplayError):
                    await second.connect(server)
                await first.close()

        asyncio.run(run())

    def test_cross_tenant_reply_fails_mac(self, ca):
        async def run():
            async with ProtectionServer(ca=ca) as server:
                a = _client(ca, b"tenant-a")
                b = _client(ca, b"tenant-b")
                await a.connect(server)
                await b.connect(server)
                # Seal a reply record under tenant A's session key and
                # try to verify it with tenant B's channel: the GCM tag
                # is the response MAC, and it must not verify.
                record = a._connection.session.send(
                    WorkReply(0, STATUS_OK).encode(), aad=b"mgx-serve-reply")
                with pytest.raises(IntegrityError):
                    b.channel.receive(*record, aad=b"mgx-serve-reply")
                await a.close()
                await b.close()

        asyncio.run(run())

    def test_replayed_record_counted_not_served(self, ca):
        async def run():
            async with ProtectionServer(ca=ca) as server:
                client = _client(ca, b"record-replayer")
                await client.connect(server)
                reply = await client.request("genome-align")
                assert reply.status == STATUS_OK
                # Replay the sealed request record wholesale: the channel
                # rejects the stale sequence number; the server counts it
                # and keeps serving.
                record = client.channel.send(
                    WorkRequest(99, "genome-align").encode(),
                    aad=b"mgx-serve-request")
                client._connection.submit(record)
                client._connection.submit(record)
                reply = await client.request("video-decode")
                assert reply.status == STATUS_OK
                await client.close()
                return dict(server.stats)

        stats = asyncio.run(run())
        assert stats["bad_records"] == 1


class TestLoadgen:
    def test_closed_loop_report(self):
        config = LoadConfig(tenants=4, requests=24, seed=7)
        report = run_load(config)
        assert report.sent == 24
        assert report.lost == 0
        assert report.ok == 24 and report.busy == 0 and report.errors == 0
        # Every reply MAC-verified under its tenant's key; identical
        # requests answered byte-identically.
        assert report.mac_verified == 24
        assert report.payload_mismatches == 0
        assert report.throughput_rps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p99"]
        for label, payload in report.payloads.items():
            name, _, scheme = label.partition(":")
            assert payload == resolve_request(
                name, None if scheme == "default" else scheme
            ).offline_payload()

    def test_open_loop_hits_admission_control(self):
        config = LoadConfig(
            tenants=6, requests=30, mode="open", rate=3000.0, seed=11,
            server=ServerConfig(queue_depth=2, per_tenant_inflight=1,
                                pricing_workers=1),
        )
        report = run_load(config)
        assert report.sent == 30
        assert report.lost == 0
        assert report.busy >= 1
        assert report.mac_verified == 30
        assert report.server_stats["busy"] == report.busy

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_load(LoadConfig(tenants=1, requests=1, mode="sideways"))
