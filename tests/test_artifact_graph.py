"""Artifact graph: structure, functional profile artifacts, key stability.

The graph's contract: every spec expands into the same deterministic,
topologically-ordered job list on every process; executing jobs through
``compute_job`` is result-identical to the serial drivers; and the
fig16/fig19 functional pipelines become disk artifacts that a warm
rerun restores without recomputation.
"""

from __future__ import annotations

import json
from dataclasses import astuple

import pytest

from repro.sim.runner import SCHEMES, dnn_sweep
from repro.sim.scheduler import (
    ArtifactJob,
    ablation_table_spec,
    build_graph,
    compute_job,
    dnn_spec,
    extra_table_spec,
    gact_profile_spec,
    gop_profile_spec,
    graph_spec,
)


class TestGraphStructure:
    def test_sweep_spec_expands_to_trace_results_sweep(self):
        spec = dnn_spec("AlexNet", "Cloud")
        jobs = build_graph([spec])
        assert [j.kind for j in jobs] == (
            ["trace"] + ["result"] * len(SCHEMES) + ["sweep"]
        )
        trace, *results, sweep = jobs
        assert trace.deps == ()
        for result, scheme in zip(results, SCHEMES):
            assert result.scheme == scheme
            assert result.deps == (trace.key,)
        assert sweep.deps == tuple(r.key for r in results)
        assert sweep.key == spec.sweep_key()

    def test_profile_spec_is_one_dependency_free_node(self):
        jobs = build_graph([gact_profile_spec("chrY", "PacBio", 2)])
        assert len(jobs) == 1
        assert jobs[0].kind == "profile"
        assert jobs[0].deps == ()

    def test_dependencies_precede_dependents(self):
        jobs = build_graph([
            dnn_spec("AlexNet", "Cloud"),
            graph_spec("google-plus", "PR", iterations=2, scale_divisor=256),
            gop_profile_spec("IBPB", 8, 8),
        ])
        seen: set = set()
        for job in jobs:
            assert all(dep in seen for dep in job.deps), job.kind
            seen.add(job.key)

    def test_duplicate_specs_dedup_first_seen(self):
        spec = dnn_spec("AlexNet", "Cloud")
        assert len(build_graph([spec, spec, spec])) == len(SCHEMES) + 2

    def test_graph_is_deterministic_and_picklable(self):
        import pickle

        specs = [dnn_spec("AlexNet", "Cloud"), gop_profile_spec("IBPB", 8, 8)]
        first, again = build_graph(specs), build_graph(specs)
        assert first == again
        assert pickle.loads(pickle.dumps(first)) == first

    def test_job_ids_are_unique_and_filesystem_safe(self):
        jobs = build_graph([
            dnn_spec("AlexNet", "Cloud"),
            dnn_spec("AlexNet", "Edge"),
            gact_profile_spec("chrY", "PacBio", 2),
        ])
        ids = [job.job_id() for job in jobs]
        assert len(set(ids)) == len(ids)
        for job_id in ids:
            assert job_id.replace("-", "").isalnum()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            compute_job(ArtifactJob("mystery", ("x",), dnn_spec("AlexNet")))


class TestComputeJob:
    def test_graph_execution_matches_serial_sweep(self, disk_cache):
        """trace → results → sweep through compute_job ≡ dnn_sweep."""
        spec = dnn_spec("AlexNet", "Cloud")
        for job in build_graph([spec]):
            compute_job(job)
        assembled = disk_cache.peek(spec.sweep_key())
        assert assembled is not None
        disk_cache.set_cache_dir(None)
        disk_cache.clear()
        reference = dnn_sweep("AlexNet", "Cloud")
        assert assembled.workload == reference.workload
        assert set(assembled.results) == set(reference.results)
        for name in reference.results:
            assert (assembled.results[name].total_cycles
                    == reference.results[name].total_cycles)
            assert (astuple(assembled.results[name].traffic)
                    == astuple(reference.results[name].traffic))

    def test_sweep_assembly_self_heals_missing_results(self, fresh_cache):
        """Undecodable/missing result deps are rebuilt, like get_or_build."""
        spec = dnn_spec("AlexNet", "Cloud")
        jobs = build_graph([spec])
        compute_job(jobs[-1])  # no result artifacts exist yet
        assembled = fresh_cache.peek(spec.sweep_key())
        assert assembled is not None
        assert set(assembled.results) == set(SCHEMES)

    def test_stale_result_spill_is_rebuilt_not_fatal(self, disk_cache):
        """A codec-version bump must not wedge a shared cache dir: stale
        result spills pass the existence check but rebuild on decode."""
        spec = dnn_spec("AlexNet", "Cloud")
        jobs = build_graph([spec])
        for job in jobs:
            compute_job(job)
        reference = disk_cache.peek(spec.sweep_key())
        for spill in disk_cache.cache_dir.glob("result-*.json"):
            spill.write_text('{"version": -1}')  # stale codec
        for spill in disk_cache.cache_dir.glob("sweep-*.json"):
            spill.unlink()
        disk_cache.clear()  # fresh process over the litter-y shared dir
        compute_job(jobs[-1])
        rebuilt = disk_cache.peek(spec.sweep_key())
        assert rebuilt.workload == reference.workload
        for name in reference.results:
            assert (rebuilt.results[name].total_cycles
                    == reference.results[name].total_cycles)


class TestProfileArtifacts:
    def test_fig16_warm_rerun_restores_profiles(self, disk_cache):
        from repro.experiments.registry import run_experiment

        cold = run_experiment("fig16", quick=True).to_text()
        assert disk_cache.miss_kinds.get("profile", 0) == 2
        assert list(disk_cache.cache_dir.glob("profile-*.json"))
        disk_cache.clear()  # fresh process: memory tier gone, disk stays
        warm = run_experiment("fig16", quick=True).to_text()
        assert warm == cold
        assert disk_cache.miss_kinds.get("profile", 0) == 0
        assert disk_cache.disk_hits == 2

    def test_fig19_warm_rerun_skips_decoder_and_crypto(self, disk_cache,
                                                       monkeypatch):
        from repro.experiments.registry import run_experiment

        cold = run_experiment("fig19", quick=True).to_text()
        disk_cache.clear()
        # A warm rerun must not touch the functional pipeline at all.
        monkeypatch.setattr(
            "repro.video.profile.decode_profile",
            lambda *a, **k: pytest.fail("functional pipeline recomputed"),
        )
        warm = run_experiment("fig19", quick=True).to_text()
        assert warm == cold

    def test_profile_prefetch_serves_the_drivers(self, fresh_cache):
        from repro.experiments.fig16_gact import profile_specs
        from repro.sim.scheduler import prefetch_artifacts

        summary = prefetch_artifacts(profile_specs(quick=True), jobs=1)
        assert summary["profiles_built"] == 2
        before = fresh_cache.misses
        from repro.experiments.registry import run_experiment

        run_experiment("fig16", quick=True)
        assert fresh_cache.misses == before  # pure cache hits

    def test_pool_prefetch_of_profiles_matches_inline(self, fresh_cache,
                                                      monkeypatch):
        from repro.sim.scheduler import prefetch_artifacts

        spec = gop_profile_spec("IBPB", 8, 8)
        reference = spec.build_profile()
        monkeypatch.setattr("repro.sim.scheduler.os.cpu_count", lambda: 2)
        summary = prefetch_artifacts([spec], jobs=2)
        assert summary["profiles_built"] == 1
        assert fresh_cache.peek(spec.artifact_key()) == reference


class TestProfileCodecs:
    def test_profile_round_trip_is_exact(self):
        from repro.experiments.storage import dumps_profile, loads_profile

        profile = gop_profile_spec("IBPB", 8, 8).build_profile()
        assert loads_profile(dumps_profile(profile)) == profile

    def test_result_round_trip_is_exact(self, fresh_cache):
        from repro.experiments.storage import dumps_result, loads_result

        sweep = dnn_sweep("AlexNet", "Cloud")
        for result in sweep.results.values():
            restored = loads_result(dumps_result(result))
            assert restored.total_cycles == result.total_cycles
            assert astuple(restored.traffic) == astuple(result.traffic)

    def test_version_mismatch_rejected(self):
        from repro.experiments.storage import loads_profile, loads_result

        with pytest.raises(ValueError):
            loads_profile('{"version": 999, "profile": {}}')
        with pytest.raises(ValueError):
            loads_result('{"version": 999, "result": {}}')


class TestTableArtifacts:
    """Ablations/extras as graph artifacts: full-suite coverage."""

    def test_registry_reaches_every_table(self):
        from repro.experiments.ablations import ABLATIONS
        from repro.experiments.extras import EXTRAS
        from repro.experiments.registry import FULL_SUITE, suite_graph

        keys = {job.key for job in suite_graph(FULL_SUITE, quick=True)}
        for name in ABLATIONS:
            assert ablation_table_spec(name, True).artifact_key() in keys
        for name in EXTRAS:
            assert extra_table_spec(name, True).artifact_key() in keys

    def test_extra_table_depends_on_its_sweeps_when_present(self):
        from repro.experiments.extras import table_dep_specs

        deps = table_dep_specs("batch", quick=True)
        assert deps  # the study assembles from suite sweeps
        jobs = build_graph(deps + [extra_table_spec("batch", True)])
        table = jobs[-1]
        assert table.kind == "profile"
        assert set(table.deps) == {s.sweep_key() for s in deps}

    def test_table_without_its_sweeps_is_dependency_free(self):
        """Soft deps: the graph never blocks on artifacts no job makes."""
        jobs = build_graph([extra_table_spec("batch", True)])
        assert len(jobs) == 1
        assert jobs[0].deps == ()

    def test_ablation_warm_rerun_skips_the_study(self, disk_cache,
                                                 monkeypatch):
        from repro.experiments.ablations import run_ablation

        cold = run_ablation("dram-grade", quick=True).to_text()
        assert disk_cache.miss_kinds.get("profile", 0) == 1
        disk_cache.clear()
        monkeypatch.setitem(
            __import__("repro.experiments.ablations",
                       fromlist=["ABLATIONS"]).ABLATIONS,
            "dram-grade",
            lambda quick: pytest.fail("ablation study recomputed"),
        )
        warm = run_ablation("dram-grade", quick=True).to_text()
        assert warm == cold
        assert disk_cache.miss_kinds.get("profile", 0) == 0

    def test_extra_warm_rerun_skips_study_and_sweeps(self, disk_cache):
        from repro.experiments.extras import run_extra

        cold = run_extra("batch", quick=True).to_text()
        disk_cache.clear()
        warm = run_extra("batch", quick=True).to_text()
        assert warm == cold
        assert sum(disk_cache.miss_kinds.values()) == 0

    def test_compute_job_matches_direct_study(self, fresh_cache):
        """A queue/pool-computed table decodes to the serial table."""
        from repro.experiments.ablations import ABLATIONS
        from repro.experiments.base import ExperimentResult

        spec = ablation_table_spec("crypto-efficiency", True)
        for job in build_graph([spec]):
            compute_job(job)
        doc = fresh_cache.peek(spec.artifact_key())
        restored = ExperimentResult.from_doc(doc)
        reference = ABLATIONS["crypto-efficiency"](quick=True)
        assert restored.to_text() == reference.to_text()

    def test_experiment_doc_round_trip_is_rendering_exact(self):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult("x", "Title", ["a", "b"])
        result.add_row(a="label", b=0.1 + 0.2)  # a float repr can't shorten
        result.summary["avg"] = 1 / 3
        result.paper["avg"] = 0.3
        result.notes = "note"
        doc = json.loads(json.dumps(result.to_doc()))
        restored = ExperimentResult.from_doc(doc)
        assert restored.to_text() == result.to_text()
        assert restored.rows[0]["b"] == result.rows[0]["b"]

    def test_numpy_scalars_are_unboxed(self):
        import numpy as np

        from repro.experiments.base import ExperimentResult

        result = ExperimentResult("x", "t", ["v"])
        result.add_row(v=np.float64(1.25))
        result.summary["n"] = np.int64(3)
        doc = result.to_doc()
        json.dumps(doc)  # must serialize
        assert doc["rows"][0]["v"] == 1.25
        assert type(doc["rows"][0]["v"]) is float
        assert type(doc["summary"]["n"]) is int

    def test_unknown_table_names_rejected(self):
        from repro.experiments.ablations import run_ablation
        from repro.experiments.extras import run_extra

        with pytest.raises(KeyError):
            run_ablation("nope")
        with pytest.raises(KeyError):
            run_extra("nope")


class TestStableCacheKeys:
    def test_equal_configs_share_keys(self):
        from repro.genome.darwin import DarwinConfig
        from repro.genome.dsoft import DsoftConfig
        from repro.video.decoder import DecoderConfig

        for cls in (DarwinConfig, DsoftConfig, DecoderConfig):
            assert cls().cache_key() == cls().cache_key()

    def test_field_changes_change_keys(self):
        from repro.genome.darwin import DarwinConfig
        from repro.genome.dsoft import DsoftConfig
        from repro.video.decoder import DecoderConfig

        assert (DarwinConfig(tiles_per_read_factor=2.0).cache_key()
                != DarwinConfig().cache_key())
        assert DsoftConfig(band=128).cache_key() != DsoftConfig().cache_key()
        assert DecoderConfig(width=1280).cache_key() != DecoderConfig().cache_key()

    def test_floats_are_hex_encoded_not_repr(self):
        """Float fields must appear as exact hex strings, never bare floats
        (artifact keys go through ``repr``; hex is format-proof)."""
        from repro.genome.darwin import DarwinConfig
        from repro.video.decoder import DecoderConfig

        def flatten(key):
            for item in key:
                if isinstance(item, tuple):
                    yield from flatten(item)
                else:
                    yield item

        for config in (DarwinConfig(), DecoderConfig()):
            values = list(flatten(config.cache_key()))
            assert not any(isinstance(v, float) for v in values)
            assert any(isinstance(v, str) and "0x" in v for v in values)

    def test_profile_keys_are_repr_stable(self):
        key = gact_profile_spec("chrY", "PacBio", 2).artifact_key()
        assert eval(repr(key)) == key  # primitives only round-trip repr
