"""Host workflow (§II): DH, attestation, channel, session provisioning."""

import pytest

from repro.common.errors import ConfigError, IntegrityError, ReplayError, SecurityError
from repro.host.attestation import ManufacturerCa, measurement, sign_quote
from repro.host.channel import SecureChannel
from repro.host.dh import MODP_2048_P, DhParty
from repro.host.session import SecureAcceleratorDevice, UserSession
from repro.mem.attacker import Attacker

_FIRMWARE = b"mgx-firmware-v1.0"
_KERNEL = b"kernel: resnet50 inference"


@pytest.fixture
def ca():
    return ManufacturerCa(b"manufacturer-root-secret")


@pytest.fixture
def device(ca):
    return SecureAcceleratorDevice(device_id=b"accel-42", firmware=_FIRMWARE, ca=ca)


class TestDiffieHellman:
    def test_agreement(self):
        alice, bob = DhParty(b"alice"), DhParty(b"bob")
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_different_pairs_differ(self):
        alice, bob, eve = DhParty(b"a"), DhParty(b"b"), DhParty(b"e")
        assert alice.shared_secret(bob.public) != alice.shared_secret(eve.public)

    def test_public_in_group(self):
        assert 1 < DhParty(b"x").public < MODP_2048_P - 1

    def test_degenerate_peer_rejected(self):
        with pytest.raises(ConfigError):
            DhParty(b"x").shared_secret(1)
        with pytest.raises(ConfigError):
            DhParty(b"x").shared_secret(MODP_2048_P - 1)


class TestAttestation:
    def test_genuine_quote_verifies(self, ca):
        sk = ca.device_key(b"dev-1")
        quote = sign_quote(sk, b"dev-1", measurement(_FIRMWARE),
                           measurement(_KERNEL), b"nonce", b"transcript")
        ca.verify(quote)  # must not raise

    def test_forged_signature_rejected(self, ca):
        quote = sign_quote(b"wrong-key", b"dev-1", measurement(_FIRMWARE),
                           measurement(_KERNEL), b"nonce", b"transcript")
        with pytest.raises(SecurityError):
            ca.verify(quote)

    def test_quote_binds_kernel(self, ca):
        """A quote for kernel A cannot vouch for kernel B."""
        sk = ca.device_key(b"dev-1")
        quote = sign_quote(sk, b"dev-1", measurement(_FIRMWARE),
                           measurement(b"kernel A"), b"nonce", b"t")
        assert quote.kernel_hash != measurement(b"kernel B")

    def test_different_devices_different_keys(self, ca):
        assert ca.device_key(b"dev-1") != ca.device_key(b"dev-2")


class TestSecureChannel:
    def _pair(self):
        key = bytes(range(16))
        return SecureChannel(key, 0), SecureChannel(key, 1)

    def test_roundtrip(self):
        host, dev = self._pair()
        record = host.send(b"weights shard 0", aad=b"weights")
        assert dev.receive(*record, aad=b"weights") == b"weights shard 0"

    def test_sequence_enforced(self):
        host, dev = self._pair()
        host.send(b"one")
        second = host.send(b"two")
        with pytest.raises(ReplayError):
            dev.receive(*second)  # skipped record 0

    def test_replayed_record_rejected(self):
        host, dev = self._pair()
        record = host.send(b"one")
        dev.receive(*record)
        with pytest.raises(ReplayError):
            dev.receive(*record)

    def test_direction_separation(self):
        """A host record cannot be reflected back to the host."""
        key = bytes(range(16))
        host = SecureChannel(key, 0)
        host2 = SecureChannel(key, 0)
        record = host.send(b"hello")
        with pytest.raises(IntegrityError):
            host2.receive(*record)  # expects device-direction IVs

    def test_tamper_rejected(self):
        host, dev = self._pair()
        seq, ct, tag = host.send(b"payload")
        with pytest.raises(IntegrityError):
            dev.receive(seq, ct[:-1] + bytes([ct[-1] ^ 1]), tag)


class TestProvisioningFlow:
    def test_end_to_end(self, ca, device):
        user = UserSession(ca=ca, expected_firmware=_FIRMWARE, kernel=_KERNEL)
        user.connect(device)
        payload = b"private training batch" * 20
        device.receive_payload("input", user.send("input", payload))
        assert device.read_protected("input") == payload

    def test_plaintext_never_in_dram(self, ca, device):
        user = UserSession(ca=ca, expected_firmware=_FIRMWARE, kernel=_KERNEL)
        user.connect(device)
        device.receive_payload("input", user.send("input", b"SECRETPATTERN" * 40))
        dump = Attacker(device.store).observe(0, device.protected_bytes)
        assert b"SECRETPATTERN" not in dump

    def test_wrong_firmware_detected(self, ca):
        rogue = SecureAcceleratorDevice(device_id=b"accel-66",
                                        firmware=b"patched-firmware", ca=ca)
        user = UserSession(ca=ca, expected_firmware=_FIRMWARE, kernel=_KERNEL)
        with pytest.raises(SecurityError):
            user.connect(rogue)

    def test_unknown_ca_detected(self, ca, device):
        other_ca = ManufacturerCa(b"counterfeit-root")
        user = UserSession(ca=other_ca, expected_firmware=_FIRMWARE, kernel=_KERNEL)
        with pytest.raises(SecurityError):
            user.connect(device)

    def test_session_reset_clears_state(self, ca, device):
        user = UserSession(ca=ca, expected_firmware=_FIRMWARE, kernel=_KERNEL)
        user.connect(device)
        device.receive_payload("input", user.send("input", b"round one" * 10))
        # Re-provisioning starts a fresh session with fresh keys.
        user2 = UserSession(ca=ca, expected_firmware=_FIRMWARE, kernel=_KERNEL,
                            nonce=b"user-nonce-0002")
        user2.connect(device)
        device.receive_payload("input", user2.send("input", b"round two" * 10))
        assert device.read_protected("input") == b"round two" * 10

    def test_receive_without_session_rejected(self, ca, device):
        with pytest.raises(ConfigError):
            device.receive_payload("input", (0, b"", b""))


class TestConcurrentSessions:
    """Multi-tenant sessions (the serving front-end's substrate)."""

    def test_session_nonce_replay_rejected(self, ca, device):
        user = UserSession(ca=ca, expected_firmware=_FIRMWARE, kernel=_KERNEL)
        user.connect(device)
        # Replaying the same handshake nonce must fail before any keys
        # are derived — the device DH seed is a function of the nonce.
        replayer = UserSession(ca=ca, expected_firmware=_FIRMWARE,
                               kernel=_KERNEL, nonce=user.nonce)
        with pytest.raises(ReplayError):
            replayer.connect(device)

    def test_tenant_nonce_replay_rejected(self, ca, device):
        dh = DhParty(b"tenant-a-entropy")
        device.open_tenant_session(b"nonce-a", dh.public, measurement(_KERNEL))
        with pytest.raises(ReplayError):
            device.open_tenant_session(b"nonce-a", DhParty(b"other").public,
                                       measurement(_KERNEL))
        # Nonces are single-use across *both* session APIs.
        with pytest.raises(ReplayError):
            device.open_session(b"nonce-a", dh.public, measurement(_KERNEL))

    def test_tenant_keys_are_isolated(self, ca, device):
        from repro.host.session import derive_channel_key, dh_transcript

        sessions = {}
        for tenant in (b"tenant-a", b"tenant-b"):
            dh = DhParty(tenant + b"-entropy")
            public, quote, session = device.open_tenant_session(
                tenant, dh.public, measurement(_KERNEL))
            ca.verify(quote)
            key = derive_channel_key(dh.shared_secret(public),
                                     dh_transcript(dh.public, public))
            sessions[tenant] = (SecureChannel(key, direction=0), session)
        chan_a, sess_a = sessions[b"tenant-a"]
        chan_b, sess_b = sessions[b"tenant-b"]
        # A record sealed under tenant A's session key fails MAC
        # verification under tenant B's — results are unverifiable (and
        # unforgeable) across tenants.
        record = sess_a.send(b"tenant A result", aad=b"reply")
        assert chan_a.receive(*record, aad=b"reply") == b"tenant A result"
        record = sess_a.send(b"second result", aad=b"reply")
        with pytest.raises(IntegrityError):
            chan_b.receive(*record, aad=b"reply")

    def test_tenant_stores_are_disjoint(self, ca, device):
        out = {}
        for tenant in (b"tenant-a", b"tenant-b"):
            dh = DhParty(tenant + b"-entropy")
            public, _quote, session = device.open_tenant_session(
                tenant, dh.public, measurement(_KERNEL))
            from repro.host.session import derive_channel_key, dh_transcript

            key = derive_channel_key(dh.shared_secret(public),
                                     dh_transcript(dh.public, public))
            channel = SecureChannel(key, direction=0)
            session.receive_payload(
                "input", channel.send(tenant + b" secret", aad=b"input"))
            out[tenant] = session
        # Same protected address range, different stores and keys: each
        # session reads back its own plaintext.
        assert out[b"tenant-a"].read_protected("input") == b"tenant-a secret"
        assert out[b"tenant-b"].read_protected("input") == b"tenant-b secret"
        assert out[b"tenant-a"].store is not out[b"tenant-b"].store
