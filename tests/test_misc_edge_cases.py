"""Edge cases across modules that the focused suites don't reach."""

import pytest

from repro.common.errors import ConfigError
from repro.core.access import AccessKind, DataClass, MemAccess, Phase, read, write
from repro.experiments.base import ExperimentResult
from repro.graph.graphlily import GraphAcceleratorConfig
from repro.video.gop import GopStructure


class TestMemAccessValidation:
    def test_negative_address(self):
        with pytest.raises(ConfigError):
            MemAccess(-1, 64, AccessKind.READ)

    def test_zero_size(self):
        with pytest.raises(ConfigError):
            MemAccess(0, 0, AccessKind.READ)

    def test_bad_burst(self):
        with pytest.raises(ConfigError):
            read(0, 4096, sequential=False, burst_bytes=0)

    def test_spread_smaller_than_burst(self):
        with pytest.raises(ConfigError):
            read(0, 4096, sequential=False, burst_bytes=512, spread_bytes=256)

    def test_end_property(self):
        assert read(0x100, 64).end == 0x140

    def test_is_write(self):
        assert write(0, 64).is_write
        assert not read(0, 64).is_write

    def test_accesses_are_hashable_values(self):
        a = read(0, 64, DataClass.FEATURE, vn=3)
        b = read(0, 64, DataClass.FEATURE, vn=3)
        assert a == b
        assert hash(a) == hash(b)


class TestPhaseAccounting:
    def test_byte_counters(self):
        phase = Phase("p", 10.0, [read(0, 100), write(128, 50)])
        assert phase.read_bytes() == 100
        assert phase.write_bytes() == 50
        assert phase.total_bytes() == 150

    def test_empty_phase(self):
        phase = Phase("p", 10.0)
        assert phase.total_bytes() == 0


class TestExperimentResultEdges:
    def test_empty_result_renders(self):
        r = ExperimentResult("x", "Empty", ["a"])
        text = r.to_text()
        assert "Empty" in text

    def test_mean_ignores_non_numeric(self):
        r = ExperimentResult("x", "t", ["a"])
        r.add_row(a="label")
        r.add_row(a=2.0)
        assert r.mean("a") == 2.0

    def test_mean_of_missing_column(self):
        r = ExperimentResult("x", "t", ["a"])
        assert r.mean("ghost") == 0.0

    def test_none_formats_as_dash(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        r.add_row(a=1.0)
        assert "-" in r.to_text()


class TestGraphConfigEdges:
    def test_vertices_per_block_floor(self):
        config = GraphAcceleratorConfig(vector_buffer_bytes=16)
        assert config.vertices_per_block == 64  # clamped minimum

    def test_edge_bytes(self):
        config = GraphAcceleratorConfig(index_bytes=4, value_bytes=4)
        assert config.edge_bytes == 8


class TestGopEdges:
    def test_single_frame(self):
        gop = GopStructure("I", 1)
        assert len(gop.decode_order()) == 1

    def test_all_p_chain(self):
        gop = GopStructure("IP", 6)
        # Decode order equals display order when there are no B frames.
        order = [f.display_number for f in gop.decode_order()]
        assert order == list(range(6))

    def test_deep_b_pattern_references(self):
        gop = GopStructure("IBBP", 8)
        b2 = gop.frame(2)
        assert b2.references == (0, 3)
