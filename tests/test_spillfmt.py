"""Columnar binary trace spills (disk format v3) and v2 back-compat."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.access import (
    AccessBatch,
    AccessKind,
    DataClass,
    LazyAccessList,
    MemAccess,
    Phase,
)
from repro.sim import gc as cache_gc
from repro.sim import spillfmt
from repro.sim.runner import (
    BatchedTrace,
    TraceCache,
    attach_digest,
    dnn_workload,
    encode_trace_v2,
    payload_digest,
    spill_filename,
    spill_filenames,
    split_spill_bytes,
    sweep_schemes,
)

KEY = ("dnn-trace", "AlexNet", "Cloud", False, 1)


def _trace() -> BatchedTrace:
    return dnn_workload("AlexNet", "Cloud", use_cache=False).trace


def _phase_lists_equal(a: list[Phase], b: list[Phase]) -> None:
    assert [p.name for p in a] == [p.name for p in b]
    assert [p.compute_cycles for p in a] == [p.compute_cycles for p in b]
    assert [list(p.accesses) for p in a] == [list(p.accesses) for p in b]


# -- Hypothesis round-trip property -----------------------------------------

_access = st.builds(
    MemAccess,
    address=st.integers(min_value=0, max_value=2**40),
    size=st.integers(min_value=1, max_value=1 << 20),
    kind=st.sampled_from(AccessKind),
    data_class=st.sampled_from(DataClass),
    sequential=st.booleans(),
    vn=st.one_of(st.none(), st.integers(min_value=0, max_value=2**64 - 1)),
    burst_bytes=st.one_of(st.none(), st.integers(min_value=64, max_value=4096)),
    spread_bytes=st.one_of(st.none(),
                           st.integers(min_value=4096, max_value=1 << 24)),
)

_phase = st.builds(
    Phase,
    name=st.text(min_size=1, max_size=12),
    compute_cycles=st.one_of(
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    ),
    accesses=st.lists(_access, max_size=6),
)


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(phases=st.lists(_phase, max_size=4))
    def test_columns_round_trip_preserves_phases(self, phases):
        cols = spillfmt.phases_to_columns(phases)
        rebuilt, batches = spillfmt.columns_to_phases(cols)
        _phase_lists_equal(phases, rebuilt)
        assert [len(b) for b in batches] == [len(p.accesses) for p in phases]

    @settings(max_examples=40, deadline=None)
    @given(phases=st.lists(_phase, max_size=4))
    def test_binary_encode_decode_round_trip(self, phases):
        trace = BatchedTrace.from_phases(phases)
        payload = spillfmt.encode_trace(trace)
        decoded = spillfmt.decode_trace(payload)
        _phase_lists_equal(phases, decoded.phases)
        # The binary form is canonical: encode is deterministic, so
        # cooperating workers write byte-identical spills.
        assert spillfmt.encode_trace(decoded) == payload


class TestCodec:
    def test_zero_copy_views_over_the_payload(self):
        trace = _trace()
        payload = spillfmt.encode_trace(trace)
        decoded = spillfmt.decode_trace(payload)
        total = sum(len(b) for b in decoded.batches)
        assert total == trace.total_accesses
        # Column arrays are views over the (immutable) payload buffer,
        # not copies: read-only, and zero bytes of column data on load.
        for batch in decoded.batches:
            assert not batch.address.flags.writeable
            assert batch.address.base is not None

    def test_lazy_phases_materialize_on_demand(self):
        trace = _trace()
        decoded = spillfmt.decode_trace(spillfmt.encode_trace(trace))
        accesses = decoded.phases[0].accesses
        assert isinstance(accesses, LazyAccessList)
        assert accesses._batch is not None  # len() must not materialize
        assert len(accesses) == len(trace.phases[0].accesses)
        assert accesses._batch is not None
        assert list(accesses) == list(trace.phases[0].accesses)
        assert accesses._batch is None  # iteration materialized it

    def test_structural_validation_catches_truncation(self):
        payload = spillfmt.encode_trace(_trace())
        with pytest.raises(ValueError):
            spillfmt.decode_trace(payload[: len(payload) // 2])
        with pytest.raises(ValueError):
            spillfmt.decode_trace(b"NOTMAGIC" + payload[8:])
        with pytest.raises(ValueError):
            spillfmt.decode_trace(payload[:4])

    def test_column_dtypes_match_access_batch(self):
        batch = AccessBatch.from_phase(_trace().phases[0])
        for name, dtype in spillfmt.COLUMN_DTYPES:
            assert np.dtype(dtype) == getattr(batch, name).dtype


class TestDiskTier:
    def test_trace_spills_as_binary_and_reloads(self, disk_cache):
        trace = _trace()
        disk_cache.get_or_build(KEY, lambda: trace)
        path = disk_cache.cache_dir / spill_filename(KEY)
        assert path.suffix == ".bin"
        assert path.exists()
        raw = path.read_bytes()
        payload, digest = split_spill_bytes(raw)
        assert digest == payload_digest(payload)
        assert bytes(payload[:8]) == spillfmt.MAGIC
        disk_cache.clear()
        restored = disk_cache.peek(KEY)
        assert restored is not None
        assert encode_trace_v2(restored) == encode_trace_v2(trace)

    def test_v2_spill_loads_without_rekeying(self, disk_cache):
        """A pre-migration JSON spill is found under the same key digest."""
        trace = _trace()
        names = spill_filenames(KEY)
        assert names[0].endswith(".bin") and names[1].endswith(".json")
        # Same digest in both names: v3 did not re-key the store.
        assert names[0].rsplit(".", 1)[0] == names[1].rsplit(".", 1)[0]
        legacy = disk_cache.cache_dir / names[1]
        legacy.write_text(attach_digest(encode_trace_v2(trace)))
        assert disk_cache.has_spill(KEY)
        restored = disk_cache.peek(KEY)
        assert restored is not None
        assert disk_cache.disk_hits == 1
        _phase_lists_equal(restored.phases, trace.phases)

    def test_v2_load_byte_identical_to_v3_reencode(self, disk_cache):
        """Mixed-dir invariant: the v2 payload a spill decodes from is
        exactly what its v3 re-encode decodes back to."""
        trace = _trace()
        legacy = disk_cache.cache_dir / spill_filenames(KEY)[1]
        legacy.write_text(attach_digest(encode_trace_v2(trace)))
        from_v2 = disk_cache.peek(KEY)
        from_v3 = spillfmt.decode_trace(spillfmt.encode_trace(from_v2))
        assert encode_trace_v2(from_v3) == encode_trace_v2(from_v2)
        _phase_lists_equal(from_v3.phases, from_v2.phases)

    def test_binary_spill_preferred_over_legacy(self, disk_cache):
        trace = _trace()
        disk_cache.get_or_build(KEY, lambda: trace)  # writes the .bin
        legacy = disk_cache.cache_dir / spill_filenames(KEY)[1]
        legacy.write_text(attach_digest(encode_trace_v2(trace)))
        disk_cache.clear()
        restored = disk_cache.peek(KEY)
        # Loaded from the binary spill: zero-copy views, not parsed JSON.
        assert not restored.batches[0].address.flags.writeable

    def test_corrupt_binary_falls_back_then_rebuilds(self, disk_cache):
        trace = _trace()
        reference = encode_trace_v2(trace)
        disk_cache.get_or_build(KEY, lambda: trace)
        path = disk_cache.cache_dir / spill_filename(KEY)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        disk_cache.clear()
        rebuilt = disk_cache.get_or_build(KEY, _trace)
        assert disk_cache.misses == 1
        assert encode_trace_v2(rebuilt) == reference

    def test_warm_load_prices_identically(self, disk_cache):
        workload = dnn_workload("AlexNet", "Cloud")
        disk_cache.clear()
        warm = dnn_workload("AlexNet", "Cloud")
        assert disk_cache.disk_hits == 1
        model = workload.performance_model()
        cold_sweep = sweep_schemes(workload.label, workload.trace.phases,
                                   model, workload.protected_bytes,
                                   batches=workload.trace.batches)
        warm_sweep = sweep_schemes(warm.label, warm.trace.phases, model,
                                   warm.protected_bytes,
                                   batches=warm.trace.batches)
        for name, result in cold_sweep.results.items():
            assert warm_sweep.results[name].total_cycles == result.total_cycles
            assert (warm_sweep.results[name].total_traffic_bytes
                    == result.total_traffic_bytes)

    def test_stats_report_spill_counts_bytes_and_formats(self, disk_cache):
        trace = _trace()
        disk_cache.get_or_build(KEY, lambda: trace)
        legacy = disk_cache.cache_dir / spill_filenames(KEY)[1]
        legacy.write_text(attach_digest(encode_trace_v2(trace)))
        stats = disk_cache.stats()
        assert stats["trace_spills"] == 1
        assert stats["trace_spill_bytes"] > 0
        assert stats["spill_bytes"] == stats["trace_spill_bytes"]
        assert stats["disk_spills_v3"] == 1
        assert stats["disk_spills_v2"] == 1


class TestGcAndVerifyMixedFormats:
    def _seed_mixed_dir(self, disk_cache):
        trace = _trace()
        disk_cache.get_or_build(KEY, lambda: trace)
        legacy = disk_cache.cache_dir / spill_filenames(KEY)[1]
        legacy.write_text(attach_digest(encode_trace_v2(trace)))
        return disk_cache.cache_dir

    def test_scan_sees_both_formats(self, disk_cache):
        cache_dir = self._seed_mixed_dir(disk_cache)
        artifacts = cache_gc.scan_artifacts(cache_dir)
        assert sorted(a.format_version for a in artifacts) == [2, 3]
        assert all(a.kind == "trace" for a in artifacts)

    def test_both_formats_reachable_under_live_key(self, disk_cache):
        cache_dir = self._seed_mixed_dir(disk_cache)
        live = set(spill_filenames(KEY))
        plan = cache_gc.plan_gc(cache_dir, live=live)
        assert plan.delete == []
        assert len(plan.keep) == 2

    def test_unreachable_formats_both_swept(self, disk_cache):
        cache_dir = self._seed_mixed_dir(disk_cache)
        plan = cache_gc.plan_gc(cache_dir, live=set())
        summary = cache_gc.run_gc(plan)
        assert summary["deleted"] == 2
        assert not list(cache_dir.glob("trace-*"))

    def test_verify_passes_a_clean_mixed_dir(self, disk_cache):
        cache_dir = self._seed_mixed_dir(disk_cache)
        ok, issues = cache_gc.verify_artifacts(cache_dir)
        assert (ok, issues) == (2, [])

    def test_verify_flags_flipped_byte_in_column_block(self, disk_cache):
        cache_dir = self._seed_mixed_dir(disk_cache)
        path = cache_dir / spill_filename(KEY)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # deep inside a column block
        path.write_bytes(bytes(data))
        ok, issues = cache_gc.verify_artifacts(cache_dir)
        assert ok == 1
        assert [(i.path.name, i.status) for i in issues] == [
            (path.name, "corrupt")]

    def test_verify_flags_truncated_binary(self, disk_cache):
        cache_dir = self._seed_mixed_dir(disk_cache)
        path = cache_dir / spill_filename(KEY)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        ok, issues = cache_gc.verify_artifacts(cache_dir)
        assert ok == 1
        assert [i.status for i in issues] == ["corrupt"]

    def test_cache_stats_format_census(self, disk_cache):
        cache_dir = self._seed_mixed_dir(disk_cache)
        stats = cache_gc.cache_stats(cache_dir, live=set(spill_filenames(KEY)))
        assert stats["kinds"]["trace"] == {
            "files": 2, "bytes": stats["total_bytes"], "v2": 1, "v3": 1}
        assert stats["format_v2"] == 1
        assert stats["format_v3"] == 1
        assert stats["reachable"] == 2


class TestKeyDigestStability:
    def test_spill_names_are_memoized(self):
        assert spill_filenames(KEY) is spill_filenames(KEY)

    def test_filename_digest_unchanged_from_v2(self):
        # The key→digest map is pinned to the v2 canonical string; the
        # v3 payload migration must not re-address existing cache dirs.
        import hashlib

        expected = hashlib.sha256(f"v2|{KEY!r}".encode()).hexdigest()[:32]
        assert spill_filename(KEY) == f"trace-{expected}.bin"

    def test_payload_digest_accepts_bytes_and_views(self):
        blob = b"columnar spill bytes"
        assert (payload_digest(blob)
                == payload_digest(memoryview(blob))
                == payload_digest(blob.decode()))

    def test_doc_digest_accepts_bytes(self):
        from repro.sim.tracefile import doc_digest

        assert doc_digest(b"abc") == doc_digest("abc")


class TestExternalTraceStore:
    def test_store_trace_spills_binary_and_mmap_loads(self):
        from repro.sim.scheduler import (_TRACE_MEMO, _load_stored_trace,
                                         _temp_store_dir, store_trace)

        trace = _trace()
        digest = store_trace(trace)
        path = _temp_store_dir() / f"xtrace-{digest}.bin"
        assert path.exists()
        _TRACE_MEMO.clear()
        loaded = _load_stored_trace(digest, str(_temp_store_dir()))
        assert not loaded.batches[0].address.flags.writeable  # mmap view
        _phase_lists_equal(loaded.phases, trace.phases)

    def test_pickles_as_plain_phases(self):
        import pickle

        trace = _trace()
        decoded = spillfmt.decode_trace(spillfmt.encode_trace(trace))
        clone = pickle.loads(pickle.dumps(decoded.phases))
        assert all(type(p.accesses) is list for p in clone)
        _phase_lists_equal(clone, trace.phases)


class TestMemoryOnlyCache:
    def test_no_cache_dir_means_no_spill_counters(self):
        cache = TraceCache()
        cache.get_or_build(KEY, _trace)
        stats = cache.stats()
        assert stats["trace_spills"] == 0
        assert "disk_spills_v3" not in stats
