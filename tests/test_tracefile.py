"""JSON trace interchange (repro.sim.tracefile)."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.core.access import AccessKind, DataClass
from repro.sim import tracefile

_MINIMAL = {
    "name": "t",
    "phases": [
        {
            "name": "p0",
            "compute_cycles": 100,
            "accesses": [
                {"address": 0, "size": 4096, "kind": "read", "class": "feature"},
                {"address": 4096, "size": 4096, "kind": "write"},
            ],
        }
    ],
}


class TestParsing:
    def test_minimal_document(self):
        trace = tracefile.loads(json.dumps(_MINIMAL))
        assert trace.name == "t"
        assert len(trace.phases) == 1
        assert trace.phases[0].accesses[0].data_class is DataClass.FEATURE
        assert trace.phases[0].accesses[1].kind is AccessKind.WRITE

    def test_defaults(self):
        trace = tracefile.loads(json.dumps(_MINIMAL))
        access = trace.phases[0].accesses[1]
        assert access.data_class is DataClass.BULK
        assert access.sequential
        assert access.vn is None
        assert trace.dram_channels == 4

    def test_gather_fields(self):
        doc = json.loads(json.dumps(_MINIMAL))
        doc["phases"][0]["accesses"][0].update(
            sequential=False, burst_bytes=512, spread_bytes=1 << 30
        )
        trace = tracefile.loads(json.dumps(doc))
        access = trace.phases[0].accesses[0]
        assert not access.sequential
        assert access.burst_bytes == 512

    def test_invalid_json(self):
        with pytest.raises(ConfigError):
            tracefile.loads("{not json")

    def test_missing_phases(self):
        with pytest.raises(ConfigError):
            tracefile.loads(json.dumps({"name": "x"}))

    def test_empty_phases(self):
        with pytest.raises(ConfigError):
            tracefile.loads(json.dumps({"phases": []}))

    def test_bad_kind(self):
        doc = json.loads(json.dumps(_MINIMAL))
        doc["phases"][0]["accesses"][0]["kind"] = "modify"
        with pytest.raises(ConfigError):
            tracefile.loads(json.dumps(doc))

    def test_bad_class(self):
        doc = json.loads(json.dumps(_MINIMAL))
        doc["phases"][0]["accesses"][0]["class"] = "tensor"
        with pytest.raises(ConfigError):
            tracefile.loads(json.dumps(doc))


class TestRoundTrip:
    def test_dumps_loads_identity(self):
        trace = tracefile.loads(json.dumps(_MINIMAL))
        again = tracefile.loads(tracefile.dumps(trace))
        assert again.phases[0].accesses == trace.phases[0].accesses
        assert again.name == trace.name

    def test_generated_trace_roundtrip(self):
        from repro.dnn.accelerator import CLOUD
        from repro.dnn.models import alexnet
        from repro.dnn.tracegen import DnnTraceGenerator

        dnn = DnnTraceGenerator(alexnet(), CLOUD).inference()
        tf = tracefile.TraceFile(
            name="alexnet", phases=dnn.phases,
            accel_freq_hz=CLOUD.array.freq_hz, dram_channels=4,
            protected_bytes=CLOUD.protected_bytes,
        )
        parsed = tracefile.loads(tracefile.dumps(tf))
        assert sum(p.total_bytes() for p in parsed.phases) == dnn.total_bytes


class TestEvaluate:
    def test_sweep_over_parsed_trace(self):
        trace = tracefile.loads(json.dumps(_MINIMAL))
        sweep = tracefile.evaluate(trace)
        assert sweep.normalized_time("BP") >= sweep.normalized_time("MGX") >= 1.0

    def test_cli_main(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(_MINIMAL))
        assert tracefile.main([str(path), "--scheme", "MGX"]) == 0
        out = capsys.readouterr().out
        assert "MGX" in out
