"""Numerical validation of the conv→GEMM lowering and SegNet/deconv."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.dnn.chaidnn import ChaiOp, compile_model
from repro.dnn.layers import ConvLayer, DeconvLayer
from repro.dnn.models import build_model, segnet_toy
from repro.dnn.reference import conv2d_direct, conv2d_gemm, im2col
from repro.dnn.tracegen import DnnTraceGenerator
from repro.dnn.accelerator import EDGE


class TestIm2colLowering:
    def _random(self, c, h, w, out_c, k, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((c, h, w))
        weights = rng.standard_normal((out_c, c, k, k))
        return x, weights

    def test_gemm_equals_direct_stride1(self):
        x, w = self._random(3, 8, 8, 4, 3)
        assert np.allclose(conv2d_gemm(x, w, 1, 1), conv2d_direct(x, w, 1, 1))

    def test_gemm_equals_direct_strided(self):
        x, w = self._random(2, 11, 9, 5, 3, seed=1)
        assert np.allclose(conv2d_gemm(x, w, 2, 1), conv2d_direct(x, w, 2, 1))

    def test_gemm_equals_direct_1x1(self):
        x, w = self._random(8, 6, 6, 16, 1, seed=2)
        assert np.allclose(conv2d_gemm(x, w), conv2d_direct(x, w))

    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=5, max_value=9),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=2),
           st.integers(min_value=0, max_value=1))
    @settings(max_examples=15, deadline=None)
    def test_gemm_equals_direct_property(self, c, h, out_c, k, stride, padding):
        if (h + 2 * padding - k) < 0:
            return
        x, w = self._random(c, h, h, out_c, k, seed=c * h + out_c)
        assert np.allclose(
            conv2d_gemm(x, w, stride, padding), conv2d_direct(x, w, stride, padding)
        )

    def test_im2col_shape_matches_gemmshape(self):
        """The timing model's GemmShape IS the im2col matrix geometry."""
        layer = ConvLayer(name="c", inputs=("input",), in_channels=3,
                          out_channels=8, kernel=3, stride=2, padding=1,
                          in_h=16, in_w=16)
        (gemm,) = layer.gemms()
        x = np.zeros((3, 16, 16))
        columns = im2col(x, 3, 2, 1)
        assert columns.shape == (gemm.m, gemm.k)
        assert gemm.n == 8

    def test_im2col_validation(self):
        with pytest.raises(ConfigError):
            im2col(np.zeros((4, 4)), 3, 1, 0)
        with pytest.raises(ConfigError):
            conv2d_direct(np.zeros((3, 4, 4)), np.zeros((2, 5, 3, 3)))


class TestDeconvLayer:
    def test_upsample_geometry(self):
        layer = DeconvLayer(name="d", inputs=("x",), in_channels=8,
                            out_channels=4, kernel=2, stride=2, in_h=14, in_w=14)
        assert (layer.out_h, layer.out_w) == (28, 28)

    def test_fcn_style_geometry(self):
        layer = DeconvLayer(name="d", inputs=("x",), in_channels=8,
                            out_channels=4, kernel=4, stride=2, padding=1,
                            in_h=14, in_w=14)
        assert (layer.out_h, layer.out_w) == (28, 28)

    def test_gemm_macs_match_conv_transpose(self):
        layer = DeconvLayer(name="d", inputs=("x",), in_channels=8,
                            out_channels=4, kernel=2, stride=2, in_h=14, in_w=14)
        (gemm,) = layer.gemms()
        # Every input pixel contributes k·k·out_c MACs per input channel.
        assert gemm.macs == 14 * 14 * 8 * 4 * 2 * 2

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            DeconvLayer(name="d", inputs=("x",), in_channels=1, out_channels=1,
                        kernel=1, stride=1, padding=3, in_h=2, in_w=2)


class TestSegNet:
    def test_builds_and_registers(self):
        model = build_model("SegNet")
        assert model.name == "SegNet"
        assert any(isinstance(l, DeconvLayer) for l in model.layers)

    def test_decoder_restores_resolution(self):
        model = segnet_toy()
        last_deconv = [l for l in model.layers if isinstance(l, DeconvLayer)][-1]
        assert last_deconv.out_h == 224

    def test_compiles_to_chaidnn_with_deconvolution(self):
        instructions = compile_model(segnet_toy())
        ops = {i.op for i in instructions}
        assert ChaiOp.DECONVOLUTION in ops
        assert ChaiOp.CONVOLUTION in ops

    def test_trace_generates_and_vns_hold(self):
        trace = DnnTraceGenerator(segnet_toy(), EDGE).inference()
        assert len(trace.phases) == len(segnet_toy().layers)
        write_vns = [
            a.vn for p in trace.phases for a in p.accesses if a.is_write
        ]
        assert all(x < y for x, y in zip(write_vns, write_vns[1:]))


class TestMarkdownRendering:
    def test_to_markdown(self):
        from repro.experiments.base import ExperimentResult

        r = ExperimentResult("x", "Title", ["a", "b"])
        r.add_row(a="v", b=1.5)
        r.summary["avg"] = 1.5
        r.paper["avg"] = 1.6
        md = r.to_markdown()
        assert "### Title" in md
        assert "| a | b |" in md
        assert "**avg**: 1.500 (paper: 1.600)" in md
