"""Systolic timing model and SRAM tiling decisions."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MHZ, MIB, ceil_div
from repro.dnn.accelerator import CLOUD, EDGE
from repro.dnn.layers import GemmShape
from repro.dnn.systolic import Dataflow, SystolicArray
from repro.dnn.tiling import plan_gemm

_ARRAY = SystolicArray(rows=32, cols=32, freq_hz=900 * MHZ)


class TestSystolicArray:
    def test_single_fold_ws(self):
        g = GemmShape(m=100, k=32, n=32)
        cycles = _ARRAY.gemm_cycles(g)
        assert cycles == 32 + (100 + 32 + 32 - 2)

    def test_fold_count_scales_ws(self):
        small = _ARRAY.gemm_cycles(GemmShape(m=100, k=32, n=32))
        quad = _ARRAY.gemm_cycles(GemmShape(m=100, k=64, n=64))
        assert quad == 4 * small

    def test_partial_fold_rounds_up(self):
        exact = _ARRAY.gemm_cycles(GemmShape(m=10, k=32, n=32))
        ragged = _ARRAY.gemm_cycles(GemmShape(m=10, k=33, n=32))
        assert ragged == 2 * exact

    def test_output_stationary_folds(self):
        os_array = SystolicArray(rows=32, cols=32, freq_hz=900 * MHZ,
                                 dataflow=Dataflow.OUTPUT_STATIONARY)
        g = GemmShape(m=64, k=100, n=32)
        assert os_array.gemm_cycles(g) == 2 * (100 + 32 + 32 - 2)

    def test_utilization_bounded(self):
        g = GemmShape(m=4096, k=512, n=512)
        u = _ARRAY.gemm_utilization(g)
        assert 0.5 < u <= 1.0

    def test_tiny_gemm_low_utilization(self):
        u = _ARRAY.gemm_utilization(GemmShape(m=1, k=8, n=8))
        assert u < 0.05

    def test_movement_cycles(self):
        assert _ARRAY.movement_cycles(2560) == 10

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            SystolicArray(rows=0, cols=32, freq_hz=1e9)
        with pytest.raises(ConfigError):
            SystolicArray(rows=32, cols=32, freq_hz=0)

    def test_configs_pe_counts(self):
        """Cloud = 64 K PEs (TPU-v1), Edge = 1 K PEs (§VI-A)."""
        assert CLOUD.array.pes == 65536
        assert EDGE.array.pes == 1024

    def test_config_sram_totals(self):
        assert CLOUD.onchip_sram == 24 * MIB
        assert EDGE.onchip_sram == pytest.approx(4.5 * MIB)


class TestTiling:
    def _plan(self, gemm, ifmap=1 * MIB, filt=1 * MIB, ofmap=1 * MIB):
        return plan_gemm(gemm, _ARRAY, ifmap, filt, ofmap, dtype_bytes=1)

    def test_everything_fits_single_pass(self):
        d = self._plan(GemmShape(m=256, k=256, n=256))
        assert (d.ifmap_passes, d.weight_passes, d.ofmap_passes) == (1, 1, 1)

    def test_big_weights_small_ifmap_stays_single_pass(self):
        """Ifmap resident on-chip: streaming weight tiles needs one pass."""
        d = self._plan(GemmShape(m=16, k=4096, n=4096))  # 16 MiB weights
        assert d.ifmap_passes == 1

    def test_neither_fits_ifmap_restreams(self):
        g = GemmShape(m=4 * MIB // 512, k=512, n=8192)  # big ifmap, 4 MiB weights
        d = self._plan(g, ifmap=1 * MIB, filt=1 * MIB)
        assert d.ifmap_passes == ceil_div(512 * 8192, 1 * MIB)

    def test_partial_sum_choice_prefers_cheaper(self):
        # Huge M with multi-fold K: working set >> ofmap SRAM.  Weights
        # are small, so reloading them must beat spilling partial sums.
        g = GemmShape(m=1 << 20, k=128, n=32)
        d = self._plan(g, ofmap=64 * 1024)
        assert d.weight_passes > 1
        assert d.ofmap_passes == 1

    def test_partial_sum_spill_when_reload_costlier(self):
        # With a tiny accumulator SRAM the M-chunk count explodes, making
        # weight reloading dearer than spilling partial sums.
        g = GemmShape(m=70_000, k=1024, n=32)
        d = self._plan(g, filt=64 * MIB, ofmap=1024)
        assert d.ofmap_passes == ceil_div(1024, _ARRAY.rows)
        assert d.weight_passes == 1

    def test_single_k_fold_never_spills(self):
        g = GemmShape(m=1 << 20, k=32, n=32)
        d = self._plan(g, ofmap=64 * 1024)
        assert d.ofmap_passes == 1
        assert d.weight_passes == 1

    def test_decision_validation(self):
        from repro.dnn.tiling import TilingDecision

        with pytest.raises(ConfigError):
            TilingDecision(ifmap_passes=0, weight_passes=1, ofmap_passes=1)
