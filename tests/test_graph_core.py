"""Graph substrate: CSR, generators, semirings, SpMV, algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.graph.algorithms import bfs, pagerank, sssp
from repro.graph.csr import CsrMatrix
from repro.graph.generators import (
    BENCHMARK_SIZES,
    benchmark_spec,
    build_benchmark_graph,
    rmat_edges,
    uniform_random_graph,
)
from repro.graph.semiring import ARITHMETIC, BOOLEAN, TROPICAL
from repro.graph.spmv import spmspv, spmv

try:
    import networkx as nx
except ImportError:  # pragma: no cover
    nx = None

requires_networkx = pytest.mark.skipif(nx is None, reason="networkx unavailable")


def _diamond() -> CsrMatrix:
    """A → B, A → C, B → D, C → D (rows = destinations)."""
    edges = np.array([[1, 0], [2, 0], [3, 1], [3, 2]])
    return CsrMatrix.from_edges(4, edges)


class TestCsr:
    def test_from_edges_structure(self):
        g = _diamond()
        assert g.nnz == 4
        assert list(g.row(3)) == [1, 2]
        assert list(g.row(0)) == []

    def test_indptr_invariants(self):
        g = _diamond()
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.nnz
        assert np.all(np.diff(g.indptr) >= 0)

    def test_out_degrees(self):
        g = _diamond()
        assert list(g.out_degrees()) == [2, 1, 1, 0]

    def test_transpose_involution(self):
        g = build_benchmark_graph("google-plus", scale_divisor=512)
        t = g.transpose().transpose()
        assert np.array_equal(t.indptr, g.indptr)
        assert np.array_equal(t.indices, g.indices)

    def test_transpose_reverses_edges(self):
        g = _diamond()
        t = g.transpose()
        assert list(t.row(0)) == [1, 2]  # A's out-edges become rows

    def test_row_slice_bytes(self):
        g = _diamond()
        # rows 0..3: 4 edges * 8 B + 5 pointers * 4 B
        assert g.row_slice_bytes(0, 3) == 4 * 8 + 5 * 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            CsrMatrix(2, np.array([0, 1]), np.array([0]))  # bad indptr shape
        with pytest.raises(ConfigError):
            CsrMatrix(2, np.array([0, 1, 1]), np.array([5]))  # col out of range

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=80),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_from_edges_preserves_multiset(self, n, m, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, n, size=(m, 2))
        g = CsrMatrix.from_edges(n, edges)
        rebuilt = sorted(
            (r, c)
            for r in range(n)
            for c in g.row(r)
        )
        assert rebuilt == sorted(map(tuple, edges.tolist()))


class TestGenerators:
    def test_benchmark_sizes_published(self):
        assert BENCHMARK_SIZES["ogbl-ppa"] == (576_289, 42_463_862)
        assert BENCHMARK_SIZES["ogbn-products"] == (2_449_029, 123_718_280)

    def test_spec_scaling(self):
        spec = benchmark_spec("pokec", scale_divisor=64)
        assert spec.vertices == 1_632_803 // 64
        assert spec.edges == 30_622_564 // 64

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigError):
            benchmark_spec("twitter")

    def test_rmat_deterministic(self):
        a = rmat_edges(1024, 4096, seed=5)
        b = rmat_edges(1024, 4096, seed=5)
        assert np.array_equal(a, b)

    def test_rmat_seed_matters(self):
        a = rmat_edges(1024, 4096, seed=5)
        b = rmat_edges(1024, 4096, seed=6)
        assert not np.array_equal(a, b)

    def test_rmat_degree_skew(self):
        """R-MAT degrees are heavy-tailed: max degree >> average."""
        g = build_benchmark_graph("google-plus", scale_divisor=64)
        degrees = np.diff(g.indptr)
        assert degrees.max() > 10 * degrees.mean()

    def test_uniform_graph_not_skewed(self):
        g = uniform_random_graph(2048, 20480, seed=1)
        degrees = np.diff(g.indptr)
        assert degrees.max() < 5 * max(1.0, degrees.mean())

    def test_no_self_loops(self):
        g = build_benchmark_graph("reddit", scale_divisor=256)
        rows = np.repeat(np.arange(g.n), np.diff(g.indptr))
        assert not np.any(rows == g.indices)

    def test_rmat_validation(self):
        with pytest.raises(ConfigError):
            rmat_edges(1, 10, seed=0)
        with pytest.raises(ConfigError):
            rmat_edges(64, 10, seed=0, abc=(0.6, 0.3, 0.2))


class TestSemiringsAndSpmv:
    def test_arithmetic_spmv_matches_numpy(self):
        g = uniform_random_graph(64, 512, seed=2)
        dense = np.zeros((64, 64))
        for r in range(64):
            for c, v in zip(g.row(r), g.row_values(r)):
                dense[r, c] += v
        x = np.random.default_rng(0).random(64)
        assert np.allclose(spmv(g, x, ARITHMETIC), dense @ x)

    def test_boolean_spmv_is_reachability(self):
        g = _diamond()
        frontier = np.zeros(4)
        frontier[0] = 1.0
        reached = spmv(g, frontier, BOOLEAN)
        assert list(reached) == [0.0, 1.0, 1.0, 0.0]

    def test_tropical_spmv_relaxes(self):
        g = _diamond()
        dist = np.array([0.0, np.inf, np.inf, np.inf])
        relaxed = spmv(g, dist, TROPICAL)
        assert relaxed[1] == 1.0  # weight 1 + dist 0

    def test_empty_row_yields_identity(self):
        g = _diamond()
        assert spmv(g, np.ones(4), ARITHMETIC)[0] == ARITHMETIC.add_identity
        assert spmv(g, np.zeros(4), TROPICAL)[0] == np.inf

    def test_spmspv_equals_dense_spmv(self):
        g = uniform_random_graph(64, 256, seed=3)
        dense_vec = np.zeros(64)
        idx = np.array([3, 17, 42])
        dense_vec[idx] = [1.0, 2.0, 3.0]
        out_idx, out_val = spmspv(g, idx, np.array([1.0, 2.0, 3.0]), ARITHMETIC)
        full = spmv(g, dense_vec, ARITHMETIC)
        rebuilt = np.zeros(64)
        rebuilt[out_idx] = out_val
        assert np.allclose(rebuilt, full)

    def test_shape_validation(self):
        g = _diamond()
        with pytest.raises(ConfigError):
            spmv(g, np.ones(5), ARITHMETIC)


class TestAlgorithms:
    def test_pagerank_sums_to_one(self):
        g = build_benchmark_graph("google-plus", scale_divisor=256)
        result = pagerank(g)
        assert result.ranks.sum() == pytest.approx(1.0, abs=1e-6)

    def test_pagerank_converges(self):
        g = uniform_random_graph(256, 2048, seed=4)
        assert pagerank(g).converged

    def test_pagerank_hub_ranks_higher(self):
        # Star graph: everything points at vertex 0.
        edges = np.array([[0, s] for s in range(1, 16)])
        g = CsrMatrix.from_edges(16, edges)
        ranks = pagerank(g).ranks
        assert ranks[0] == ranks.max()

    @requires_networkx
    def test_pagerank_matches_networkx(self):
        # Deduplicate edges: networkx collapses parallel edges while the
        # CSR keeps multiplicity, which would change the comparison.
        raw = uniform_random_graph(128, 1024, seed=5)
        unique = sorted({(int(r), int(c)) for r in range(raw.n) for c in raw.row(r)})
        g = CsrMatrix.from_edges(128, np.array(unique))
        ours = pagerank(g, damping=0.85, tol=1e-10).ranks
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(g.n))
        for r in range(g.n):
            for c in g.row(r):
                nxg.add_edge(int(c), int(r))  # row = destination
        theirs = nx.pagerank(nxg, alpha=0.85, tol=1e-12)
        for v in range(g.n):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-4)

    def test_bfs_levels_diamond(self):
        result = bfs(_diamond(), source=0)
        assert list(result.levels) == [0, 1, 1, 2]
        assert result.iterations >= 2

    def test_bfs_unreachable_is_minus_one(self):
        edges = np.array([[1, 0]])
        g = CsrMatrix.from_edges(4, edges)
        result = bfs(g, source=0)
        assert result.levels[3] == -1

    @requires_networkx
    def test_bfs_matches_networkx(self):
        g = uniform_random_graph(128, 768, seed=6)
        ours = bfs(g, source=0).levels
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(g.n))
        for r in range(g.n):
            for c in g.row(r):
                nxg.add_edge(int(c), int(r))
        theirs = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(g.n):
            expected = theirs.get(v, -1)
            assert ours[v] == expected

    def test_sssp_diamond(self):
        result = sssp(_diamond(), source=0)
        assert list(result.distances) == [0.0, 1.0, 1.0, 2.0]
        assert result.converged

    @requires_networkx
    def test_sssp_matches_dijkstra(self):
        rng = np.random.default_rng(7)
        edges = rng.integers(0, 64, size=(256, 2))
        keep = edges[:, 0] != edges[:, 1]
        edges = edges[keep]
        weights = rng.uniform(0.1, 5.0, size=len(edges))
        g = CsrMatrix.from_edges(64, edges, weights)
        ours = sssp(g, source=0).distances
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(64))
        for r in range(64):
            for c, w in zip(g.row(r), g.row_values(r)):
                # Keep the minimum parallel edge weight, as SpMV does.
                u, v = int(c), int(r)
                if nxg.has_edge(u, v):
                    w = min(w, nxg[u][v]["weight"])
                nxg.add_edge(u, v, weight=w)
        theirs = nx.single_source_dijkstra_path_length(nxg, 0)
        for v in range(64):
            expected = theirs.get(v, np.inf)
            assert ours[v] == pytest.approx(expected)

    def test_source_validation(self):
        with pytest.raises(ConfigError):
            bfs(_diamond(), source=4)
        with pytest.raises(ConfigError):
            sssp(_diamond(), source=-1)
        with pytest.raises(ConfigError):
            pagerank(_diamond(), damping=1.5)


class TestBuilderPinning:
    """The fused-key sort and vectorized R-MAT decode are byte-identical
    to the original lexsort/per-level builders (digests computed from the
    pre-optimization implementations)."""

    @staticmethod
    def _digest(*arrays):
        import hashlib

        h = hashlib.sha256()
        for array in arrays:
            h.update(np.ascontiguousarray(array).tobytes())
        return h.hexdigest()[:16]

    def test_rmat_edges_pinned(self):
        edges = rmat_edges(1000, 5000, seed=7)
        assert edges.shape == (4967, 2)
        assert self._digest(edges) == "a79cc6a9bbb76f4b"

    def test_benchmark_csr_pinned(self):
        graph = build_benchmark_graph("google-plus", scale_divisor=256)
        assert (graph.n, graph.nnz) == (420, 52642)
        assert self._digest(graph.indptr, graph.indices) == "6bae0f5996810569"
        graph = build_benchmark_graph("reddit", scale_divisor=256)
        assert (graph.n, graph.nnz) == (910, 443924)
        assert self._digest(graph.indptr, graph.indices) == "7e6739adeb61d8bc"

    def test_from_edges_matches_lexsort_reference(self):
        """Both from_edges paths (keys-only and values-carrying) equal a
        straightforward stable lexsort construction."""
        rng = np.random.default_rng(17)
        n = 97
        edges = np.stack([rng.integers(0, n, 4000),
                          rng.integers(0, n, 4000)], axis=1).astype(np.int64)
        values = rng.random(4000)
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        reference = edges[order]
        built = CsrMatrix.from_edges(n, edges)
        assert (built.indices == reference[:, 1]).all()
        counts = np.bincount(reference[:, 0], minlength=n)
        assert (built.indptr == np.concatenate([[0], np.cumsum(counts)])).all()
        carrying = CsrMatrix.from_edges(n, edges, values)
        assert (carrying.indices == reference[:, 1]).all()
        assert (carrying.values == values[order]).all()

    def test_benchmark_graph_memoized(self):
        first = build_benchmark_graph("google-plus", scale_divisor=256)
        again = build_benchmark_graph("google-plus", scale_divisor=256)
        assert again is first  # pure-constructor memo (not the trace cache)
