"""CHaiDNN retrofit case study (§VI-C)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.counters import VnSpace, untag_vn
from repro.dnn.chaidnn import (
    ChaiMicrocontroller,
    ChaiOp,
    compile_model,
    retrofit_budget,
)
from repro.dnn.models import alexnet, dlrm, googlenet, resnet50, vgg16


class TestCompilation:
    def test_alexnet_under_20_instructions(self):
        """The paper's claim: AlexNet in fewer than 20 instructions."""
        instructions = compile_model(alexnet())
        assert len(instructions) < 20

    def test_alexnet_instruction_mix(self):
        instructions = compile_model(alexnet())
        convs = [i for i in instructions if i.op is ChaiOp.CONVOLUTION]
        pools = [i for i in instructions if i.op is ChaiOp.POOLING]
        assert len(convs) == 8  # 5 conv + 3 dense-as-1x1-conv
        assert len(pools) == 3

    def test_vgg16_compiles(self):
        instructions = compile_model(vgg16())
        assert len(instructions) == 13 + 3 + 5  # convs + dense + pools

    def test_fusion_drops_eltwise(self):
        instructions = compile_model(resnet50())
        assert all("add" not in i.source_layer for i in instructions)

    def test_googlenet_concat_fused(self):
        instructions = compile_model(googlenet())
        assert all("out" not in i.source_layer for i in instructions)

    def test_dlrm_rejected(self):
        with pytest.raises(ConfigError):
            compile_model(dlrm())

    def test_indices_sequential(self):
        instructions = compile_model(alexnet())
        assert [i.index for i in instructions] == list(range(len(instructions)))


class TestMicrocontroller:
    @pytest.fixture
    def controller(self):
        return ChaiMicrocontroller(compile_model(alexnet()))

    def test_output_vns_unique(self, controller):
        vns = controller.run_network()
        assert len(set(vns.values())) == len(vns)

    def test_input_vn_matches_producer(self, controller):
        vns = controller.run_network()
        assert controller.vn_for_input("conv1") == vns["conv1"]

    def test_feature_space_tag(self, controller):
        vn = controller.vn_for_output(0)
        space, _ = untag_vn(vn)
        assert space is VnSpace.FEATURE

    def test_weight_vn_constant_until_update(self, controller):
        a = controller.vn_for_weights()
        assert controller.vn_for_weights() == a
        controller.update_weights()
        assert controller.vn_for_weights() != a

    def test_external_input_counter(self, controller):
        a = controller.vn_for_input("input")
        controller.new_input()
        assert controller.vn_for_input("input") != a

    def test_unknown_producer(self, controller):
        with pytest.raises(ConfigError):
            controller.vn_for_input("ghost-layer")

    def test_vn_table_size_small(self, controller):
        """The microcontroller's SRAM table is tiny (§VI-C)."""
        assert controller.vn_table_bytes < 256

    def test_second_run_advances_vns(self, controller):
        first = controller.run_network()
        second = controller.run_network()
        assert all(second[k] > first[k] for k in first)

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigError):
            ChaiMicrocontroller([])


class TestRetrofitBudget:
    def test_gcm_cores_cover_bandwidth(self):
        budget = retrofit_budget(alexnet(), peak_bandwidth_gbs=19.2,
                                 gcm_core_gbs=4.0)
        assert budget.aes_gcm_cores == 5

    def test_area_is_modest(self):
        """§VI-C: "the overhead ... is expected to be modest"."""
        budget = retrofit_budget(alexnet())
        assert budget.relative_area_estimate < 0.35

    def test_instruction_count_reported(self):
        budget = retrofit_budget(alexnet())
        assert budget.instruction_count == len(compile_model(alexnet()))
