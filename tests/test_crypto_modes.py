"""CTR mode, GHASH, MACs and session keys."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.crypto.aes import AES
from repro.crypto.ctr import CtrMode, xor_bytes
from repro.crypto.ghash import Ghash, gf128_mul
from repro.crypto.keys import SessionKeys
from repro.crypto.mac import GcmMac, HmacSha256Mac, constant_time_equal

_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


class TestXorBytes:
    def test_xor(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_self_inverse(self):
        a, b = b"hello!", b"world."
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            xor_bytes(b"ab", b"abc")


class TestCtrMode:
    def test_transform_is_involution(self):
        ctr = CtrMode(_KEY)
        data = b"secret accelerator tensor bytes!" * 3
        cb = bytes(range(16))
        assert ctr.transform(cb, ctr.transform(cb, data)) == data

    def test_keystream_deterministic(self):
        ctr = CtrMode(_KEY)
        assert ctr.keystream(bytes(16), 64) == ctr.keystream(bytes(16), 64)

    def test_keystream_lane_structure(self):
        """Lane i of the keystream is AES(counter + i)."""
        ctr = CtrMode(_KEY)
        ks = ctr.keystream(bytes(16), 48)
        aes = AES(_KEY)
        for lane in range(3):
            counter = lane.to_bytes(16, "big")
            assert ks[16 * lane : 16 * lane + 16] == aes.encrypt_block(counter)

    def test_different_counters_different_streams(self):
        ctr = CtrMode(_KEY)
        a = ctr.keystream(bytes(16), 32)
        b = ctr.keystream((1 << 64).to_bytes(16, "big"), 32)
        assert a != b

    def test_counter_wraps_at_128_bits(self):
        ctr = CtrMode(_KEY)
        top = (2**128 - 1).to_bytes(16, "big")
        ks = ctr.keystream(top, 32)
        assert ks[16:] == AES(_KEY).encrypt_block(bytes(16))

    def test_partial_block(self):
        ctr = CtrMode(_KEY)
        assert len(ctr.keystream(bytes(16), 10)) == 10

    def test_zero_bytes(self):
        assert CtrMode(_KEY).keystream(bytes(16), 0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            CtrMode(_KEY).keystream(bytes(16), -1)

    def test_bad_counter_length(self):
        with pytest.raises(ConfigError):
            CtrMode(_KEY).keystream(bytes(15), 16)

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, data):
        ctr = CtrMode(_KEY)
        cb = b"\xab" * 16
        assert ctr.transform(cb, ctr.transform(cb, data)) == data


class TestGf128:
    def test_zero_annihilates(self):
        assert gf128_mul(0, 12345) == 0

    def test_commutative(self):
        a, b = 0xDEADBEEF << 64, 0xCAFEBABE
        assert gf128_mul(a, b) == gf128_mul(b, a)

    def test_one_msb_is_identity(self):
        """In GCM bit order the multiplicative identity is MSB-first 1."""
        one = 1 << 127
        x = 0x123456789ABCDEF << 32
        assert gf128_mul(x, one) == x

    @given(st.integers(min_value=0, max_value=2**128 - 1),
           st.integers(min_value=0, max_value=2**128 - 1),
           st.integers(min_value=0, max_value=2**128 - 1))
    @settings(max_examples=15, deadline=None)
    def test_distributive(self, a, b, c):
        assert gf128_mul(a, b ^ c) == gf128_mul(a, b) ^ gf128_mul(a, c)


class TestGhash:
    def test_nist_test_case_2(self):
        """NIST GCM spec test case 2: zero key, one zero plaintext block.

        GHASH_H(C) with C = 0388dace60b6a392f328c2b971b2fe78 must equal
        f38cbb1ad69223dcc3457ae5b6b0f885.
        """
        h = AES(bytes(16)).encrypt_block(bytes(16))
        digest = Ghash(h).digest(bytes.fromhex("0388dace60b6a392f328c2b971b2fe78"))
        assert digest.hex() == "f38cbb1ad69223dcc3457ae5b6b0f885"

    def test_empty_data(self):
        h = AES(bytes(16)).encrypt_block(bytes(16))
        # GHASH of empty data is GHASH of just the length block (zero),
        # and multiplying zero by H gives zero.
        assert Ghash(h).digest(b"") == bytes(16)

    def test_length_matters(self):
        h = AES(_KEY).encrypt_block(bytes(16))
        g = Ghash(h)
        assert g.digest(b"\x00" * 16) != g.digest(b"\x00" * 32)

    def test_bad_subkey(self):
        with pytest.raises(ConfigError):
            Ghash(bytes(8))


class TestMacs:
    @pytest.mark.parametrize("mac_cls", [GcmMac, HmacSha256Mac])
    def test_deterministic(self, mac_cls):
        m = mac_cls(_KEY)
        assert m.tag(b"x" * 64, 0x1000, 7) == mac_cls(_KEY).tag(b"x" * 64, 0x1000, 7)

    @pytest.mark.parametrize("mac_cls", [GcmMac, HmacSha256Mac])
    def test_binds_data(self, mac_cls):
        m = mac_cls(_KEY)
        assert m.tag(b"x" * 64, 0, 0) != m.tag(b"y" * 64, 0, 0)

    @pytest.mark.parametrize("mac_cls", [GcmMac, HmacSha256Mac])
    def test_binds_address(self, mac_cls):
        """Relocation resistance: same data at another address differs."""
        m = mac_cls(_KEY)
        assert m.tag(b"x" * 64, 0x0, 5) != m.tag(b"x" * 64, 0x40, 5)

    @pytest.mark.parametrize("mac_cls", [GcmMac, HmacSha256Mac])
    def test_binds_version(self, mac_cls):
        """Replay resistance: same data+address, older VN differs."""
        m = mac_cls(_KEY)
        assert m.tag(b"x" * 64, 0x40, 5) != m.tag(b"x" * 64, 0x40, 6)

    def test_tag_truncation(self):
        assert len(GcmMac(_KEY, tag_bits=64).tag(b"d" * 16, 0, 0)) == 8
        assert len(HmacSha256Mac(_KEY, tag_bits=56).tag(b"d" * 16, 0, 0)) == 7

    def test_bad_tag_bits(self):
        with pytest.raises(ConfigError):
            GcmMac(_KEY, tag_bits=63)
        with pytest.raises(ConfigError):
            HmacSha256Mac(_KEY, tag_bits=256)

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")


class TestSessionKeys:
    def test_keys_differ(self):
        k = SessionKeys.derive(b"root", b"nonce")
        assert k.encryption_key != k.integrity_key

    def test_deterministic(self):
        assert SessionKeys.derive(b"r", b"n") == SessionKeys.derive(b"r", b"n")

    def test_nonce_changes_keys(self):
        a = SessionKeys.derive(b"r", b"n1")
        b = SessionKeys.derive(b"r", b"n2")
        assert a.encryption_key != b.encryption_key

    def test_rotation_changes_keys(self):
        k = SessionKeys.derive(b"r", b"n")
        r = k.rotate()
        assert r.encryption_key != k.encryption_key
        assert r.session_id == k.session_id + 1

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            SessionKeys.derive(b"", b"nonce")

    def test_key_sizes(self):
        k = SessionKeys.derive(b"r", b"n")
        assert len(k.encryption_key) == 16
        assert len(k.integrity_key) == 16
