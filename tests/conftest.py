"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.crypto.keys import SessionKeys
from repro.mem.backing import BackingStore


@pytest.fixture
def keys() -> SessionKeys:
    return SessionKeys.derive(b"test-root-secret", b"test-session-nonce")


@pytest.fixture
def store() -> BackingStore:
    return BackingStore(4 << 20)


@pytest.fixture
def fresh_cache():
    """Run with an empty, memory-only TRACE_CACHE; restore state after."""
    from repro.sim.runner import TRACE_CACHE

    saved_dir = TRACE_CACHE.cache_dir
    TRACE_CACHE.set_cache_dir(None)
    TRACE_CACHE.clear()
    yield TRACE_CACHE
    TRACE_CACHE.set_cache_dir(saved_dir)
    TRACE_CACHE.clear()


@pytest.fixture
def disk_cache(tmp_path):
    """TRACE_CACHE with a disk tier under a temporary directory."""
    from repro.sim.runner import TRACE_CACHE

    saved_dir = TRACE_CACHE.cache_dir
    TRACE_CACHE.clear()
    TRACE_CACHE.set_cache_dir(tmp_path / "cache")
    yield TRACE_CACHE
    TRACE_CACHE.set_cache_dir(saved_dir)
    TRACE_CACHE.clear()
