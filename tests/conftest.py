"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.crypto.keys import SessionKeys
from repro.mem.backing import BackingStore


@pytest.fixture
def keys() -> SessionKeys:
    return SessionKeys.derive(b"test-root-secret", b"test-session-nonce")


@pytest.fixture
def store() -> BackingStore:
    return BackingStore(4 << 20)
