"""Metadata cache: LRU, write-back, write-allocate (§VI-A baseline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.core.metadata_cache import MetadataCache


class TestBasics:
    def test_first_access_misses(self):
        assert not MetadataCache(1024).access(0).hit

    def test_second_access_hits(self):
        c = MetadataCache(1024)
        c.access(0)
        assert c.access(0).hit

    def test_line_granularity(self):
        c = MetadataCache(1024)
        c.access(0)
        assert c.access(63).hit       # same 64-byte line
        assert not c.access(64).hit   # next line

    def test_capacity_lines(self):
        assert MetadataCache(32 * 1024).capacity_lines == 512

    def test_bad_capacity(self):
        with pytest.raises(ConfigError):
            MetadataCache(100)  # not a multiple of 64
        with pytest.raises(ConfigError):
            MetadataCache(0)


class TestLru:
    def test_eviction_order_is_lru(self):
        c = MetadataCache(2 * 64)
        c.access(0)
        c.access(64)
        c.access(0)        # 0 becomes MRU
        c.access(128)      # evicts 64 (LRU), not 0
        assert c.contains(0)
        assert not c.contains(64)

    def test_working_set_within_capacity_all_hits(self):
        c = MetadataCache(8 * 64)
        for addr in range(0, 8 * 64, 64):
            c.access(addr)
        for _ in range(3):
            for addr in range(0, 8 * 64, 64):
                assert c.access(addr).hit

    def test_streaming_larger_than_capacity_all_misses(self):
        c = MetadataCache(4 * 64)
        for round_ in range(2):
            for addr in range(0, 16 * 64, 64):
                assert not c.access(addr).hit


class TestWriteBack:
    def test_clean_eviction_no_writeback(self):
        c = MetadataCache(1 * 64)
        c.access(0, dirty=False)
        outcome = c.access(64)
        assert outcome.writeback_address is None

    def test_dirty_eviction_writes_back(self):
        c = MetadataCache(1 * 64)
        c.access(0, dirty=True)
        outcome = c.access(64)
        assert outcome.writeback_address == 0

    def test_dirty_sticks_until_eviction(self):
        c = MetadataCache(2 * 64)
        c.access(0, dirty=True)
        c.access(0, dirty=False)  # re-access clean must not clear dirty
        c.access(64)
        outcome = c.access(128)   # evicts 0
        assert outcome.writeback_address == 0

    def test_flush_returns_dirty_lines(self):
        c = MetadataCache(4 * 64)
        c.access(0, dirty=True)
        c.access(64, dirty=False)
        c.access(128, dirty=True)
        dirty = c.flush()
        assert sorted(dirty) == [0, 128]
        assert len(c) == 0


class TestStats:
    def test_hit_rate(self):
        c = MetadataCache(1024)
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_writeback_counter(self):
        c = MetadataCache(64)
        c.access(0, dirty=True)
        c.access(64, dirty=True)
        c.access(128, dirty=True)
        assert c.stats.get("writebacks") == 2


class TestAgainstReferenceModel:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15),
                              st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_lru(self, accesses):
        """Exhaustive check against a straightforward LRU list model."""
        capacity = 4
        cache = MetadataCache(capacity * 64)
        reference: list[tuple[int, bool]] = []  # (line, dirty), index 0 = LRU
        for line, dirty in accesses:
            addr = line * 64
            outcome = cache.access(addr, dirty=dirty)
            entry = next((e for e in reference if e[0] == line), None)
            if entry is not None:
                assert outcome.hit
                reference.remove(entry)
                reference.append((line, entry[1] or dirty))
                assert outcome.writeback_address is None
            else:
                assert not outcome.hit
                expected_wb = None
                if len(reference) >= capacity:
                    victim = reference.pop(0)
                    if victim[1]:
                        expected_wb = victim[0] * 64
                reference.append((line, dirty))
                assert outcome.writeback_address == expected_wb
