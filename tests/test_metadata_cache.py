"""Metadata cache: LRU, write-back, write-allocate (§VI-A baseline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.core.metadata_cache import MetadataCache


class TestBasics:
    def test_first_access_misses(self):
        assert not MetadataCache(1024).access(0).hit

    def test_second_access_hits(self):
        c = MetadataCache(1024)
        c.access(0)
        assert c.access(0).hit

    def test_line_granularity(self):
        c = MetadataCache(1024)
        c.access(0)
        assert c.access(63).hit       # same 64-byte line
        assert not c.access(64).hit   # next line

    def test_capacity_lines(self):
        assert MetadataCache(32 * 1024).capacity_lines == 512

    def test_bad_capacity(self):
        with pytest.raises(ConfigError):
            MetadataCache(100)  # not a multiple of 64
        with pytest.raises(ConfigError):
            MetadataCache(0)


class TestLru:
    def test_eviction_order_is_lru(self):
        c = MetadataCache(2 * 64)
        c.access(0)
        c.access(64)
        c.access(0)        # 0 becomes MRU
        c.access(128)      # evicts 64 (LRU), not 0
        assert c.contains(0)
        assert not c.contains(64)

    def test_working_set_within_capacity_all_hits(self):
        c = MetadataCache(8 * 64)
        for addr in range(0, 8 * 64, 64):
            c.access(addr)
        for _ in range(3):
            for addr in range(0, 8 * 64, 64):
                assert c.access(addr).hit

    def test_streaming_larger_than_capacity_all_misses(self):
        c = MetadataCache(4 * 64)
        for round_ in range(2):
            for addr in range(0, 16 * 64, 64):
                assert not c.access(addr).hit


class TestWriteBack:
    def test_clean_eviction_no_writeback(self):
        c = MetadataCache(1 * 64)
        c.access(0, dirty=False)
        outcome = c.access(64)
        assert outcome.writeback_address is None

    def test_dirty_eviction_writes_back(self):
        c = MetadataCache(1 * 64)
        c.access(0, dirty=True)
        outcome = c.access(64)
        assert outcome.writeback_address == 0

    def test_dirty_sticks_until_eviction(self):
        c = MetadataCache(2 * 64)
        c.access(0, dirty=True)
        c.access(0, dirty=False)  # re-access clean must not clear dirty
        c.access(64)
        outcome = c.access(128)   # evicts 0
        assert outcome.writeback_address == 0

    def test_flush_returns_dirty_lines(self):
        c = MetadataCache(4 * 64)
        c.access(0, dirty=True)
        c.access(64, dirty=False)
        c.access(128, dirty=True)
        dirty = c.flush()
        assert sorted(dirty) == [0, 128]
        assert len(c) == 0


class TestStats:
    def test_hit_rate(self):
        c = MetadataCache(1024)
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_writeback_counter(self):
        c = MetadataCache(64)
        c.access(0, dirty=True)
        c.access(64, dirty=True)
        c.access(128, dirty=True)
        assert c.stats.get("writebacks") == 2


class TestAgainstReferenceModel:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15),
                              st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_lru(self, accesses):
        """Exhaustive check against a straightforward LRU list model."""
        capacity = 4
        cache = MetadataCache(capacity * 64)
        reference: list[tuple[int, bool]] = []  # (line, dirty), index 0 = LRU
        for line, dirty in accesses:
            addr = line * 64
            outcome = cache.access(addr, dirty=dirty)
            entry = next((e for e in reference if e[0] == line), None)
            if entry is not None:
                assert outcome.hit
                reference.remove(entry)
                reference.append((line, entry[1] or dirty))
                assert outcome.writeback_address is None
            else:
                assert not outcome.hit
                expected_wb = None
                if len(reference) >= capacity:
                    victim = reference.pop(0)
                    if victim[1]:
                        expected_wb = victim[0] * 64
                reference.append((line, dirty))
                assert outcome.writeback_address == expected_wb


class TestProbeSegment:
    """probe_segment ≡ per-line access() + writeback-chain walking."""

    @staticmethod
    def _parent_of(address):
        # A simple two-level geometry: lines in [0, 64*64) have parents
        # at 64*64 + (index // 8) * 64; parent lines have no parent.
        if address < 64 * 64:
            return 64 * 64 + ((address // 64) // 8) * 64
        return None

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                              st.integers(min_value=1, max_value=12),
                              st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_matches_per_line_walk(self, segments):
        """Same misses, writebacks, parent events, and final LRU state."""
        capacity = 8
        probed = MetadataCache(capacity * 64)
        walked = MetadataCache(capacity * 64)
        for start, n_lines, dirty in segments:
            probe = probed.probe_segment(
                start * 64, n_lines, dirty=dirty, parent_of=self._parent_of
            )
            misses, writebacks, parent_misses = [], [], []
            for i in range(start, start + n_lines):
                outcome = walked.access(i * 64, dirty=dirty)
                if not outcome.hit:
                    misses.append(i * 64)
                queue = ([outcome.writeback_address]
                         if outcome.writeback_address is not None else [])
                while queue:
                    addr = queue.pop()
                    writebacks.append(addr)
                    parent = self._parent_of(addr)
                    if parent is None:
                        continue
                    parent_outcome = walked.access(parent, dirty=True)
                    if not parent_outcome.hit:
                        parent_misses.append(parent)
                    if parent_outcome.writeback_address is not None:
                        queue.append(parent_outcome.writeback_address)
            assert probe.misses == misses
            assert probe.writebacks == writebacks
            assert probe.parent_misses == parent_misses
        assert probed._sets == walked._sets  # identical LRU order + dirt
        assert probed.stats.as_dict() == walked.stats.as_dict()

    def test_set_associative_probe(self):
        probed = MetadataCache(16 * 64, ways=4)
        walked = MetadataCache(16 * 64, ways=4)
        probe = probed.probe_segment(0, 40, dirty=True)
        misses = [i * 64 for i in range(40)
                  if not walked.access(i * 64, dirty=True).hit]
        assert probe.misses == misses

    def test_probe_without_parents_reports_writebacks(self):
        cache = MetadataCache(2 * 64)
        cache.probe_segment(0, 2, dirty=True)
        probe = cache.probe_segment(4 * 64, 2, dirty=False)
        assert probe.writebacks == [0, 64]


class TestResidentFastPath:
    """The closed-form path for segments entirely under the hot-set size
    must be state-identical to the general walk (and actually trigger)."""

    def test_fast_path_triggers_on_resident_segment(self):
        cache = MetadataCache(8 * 64)
        cache.probe_segment(0, 6, dirty=False)   # cold: general walk
        assert cache.fast_probes == 0
        probe = cache.probe_segment(0, 6, dirty=False)  # hot: fast path
        assert cache.fast_probes == 1
        assert probe.misses == [] and probe.writebacks == []

    def test_fast_path_state_matches_general_walk(self):
        fast = MetadataCache(8 * 64)
        slow = MetadataCache(8 * 64)
        for c in (fast, slow):
            c.probe_segment(0, 8, dirty=False)
        fast.probe_segment(2 * 64, 4, dirty=True)   # resident: fast path
        for i in range(2, 6):                        # reference: per-line
            slow.access(i * 64, dirty=True)
        assert fast.fast_probes == 1
        assert fast._sets == slow._sets  # identical LRU order and dirt
        assert fast.stats.as_dict() == slow.stats.as_dict()

    def test_fast_path_skipped_when_any_line_absent(self):
        cache = MetadataCache(8 * 64)
        cache.probe_segment(0, 4, dirty=False)
        cache.probe_segment(0, 5, dirty=False)  # line 4 missing: general walk
        assert cache.fast_probes == 0

    def test_fast_path_skipped_on_oversized_segment(self):
        cache = MetadataCache(4 * 64)
        cache.probe_segment(0, 8, dirty=False)
        cache.probe_segment(0, 8, dirty=False)
        assert cache.fast_probes == 0

    def test_set_associative_fast_path(self):
        fast = MetadataCache(16 * 64, ways=4)
        slow = MetadataCache(16 * 64, ways=4)
        for c in (fast, slow):
            c.probe_segment(0, 12, dirty=True)
        fast.probe_segment(0, 12, dirty=True)
        for i in range(12):
            slow.access(i * 64, dirty=True)
        assert fast.fast_probes == 1
        assert fast._sets == slow._sets
        assert fast.stats.as_dict() == slow.stats.as_dict()
