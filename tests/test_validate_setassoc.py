"""Trace validator and the set-associative cache option."""

import pytest

from repro.core.access import DataClass, Phase, read, write
from repro.core.counters import VnSpace
from repro.core.metadata_cache import MetadataCache
from repro.core.validate import validate_trace
from repro.common.errors import ConfigError


class TestValidateTrace:
    def test_clean_trace_passes(self):
        phases = [
            Phase("l0", 1.0, [
                write(0, 4096, DataClass.FEATURE, vn=1),
            ]),
            Phase("l1", 1.0, [
                read(0, 4096, DataClass.FEATURE, vn=1),
                write(8192, 4096, DataClass.FEATURE, vn=2),
            ]),
        ]
        report = validate_trace(phases)
        assert report.ok
        assert report.accesses_checked == 3
        assert report.writes_seen == 2

    def test_vn_reuse_flagged(self):
        phases = [
            Phase("l0", 1.0, [
                write(0, 4096, DataClass.FEATURE, vn=5),
                write(0, 4096, DataClass.FEATURE, vn=5),
            ]),
        ]
        report = validate_trace(phases)
        assert not report.ok
        assert "does not exceed" in str(report.violations[0])

    def test_stale_read_flagged(self):
        phases = [
            Phase("l0", 1.0, [
                write(0, 4096, DataClass.FEATURE, vn=1),
                write(0, 4096, DataClass.FEATURE, vn=2),
                read(0, 4096, DataClass.FEATURE, vn=1),  # stale!
            ]),
        ]
        report = validate_trace(phases)
        assert not report.ok
        assert "!=" in str(report.violations[0])

    def test_read_of_never_written_flagged(self):
        phases = [Phase("l0", 1.0, [read(0, 64, DataClass.FEATURE, vn=1)])]
        assert not validate_trace(phases).ok

    def test_preloaded_seeds_reads(self):
        phases = [Phase("l0", 1.0, [read(0, 64, DataClass.WEIGHT, vn=7)])]
        preloaded = {(int(VnSpace.WEIGHT), 0): 7}
        assert validate_trace(phases, preloaded=preloaded).ok

    def test_spaces_are_independent(self):
        """Gradients may reuse feature addresses: different tag space."""
        phases = [
            Phase("fwd", 1.0, [write(0, 4096, DataClass.FEATURE, vn=9)]),
            Phase("bwd", 1.0, [write(0, 4096, DataClass.GRADIENT, vn=2)]),
        ]
        assert validate_trace(phases).ok

    def test_vnless_accesses_skipped(self):
        phases = [Phase("l0", 1.0, [read(0, 64)])]
        report = validate_trace(phases)
        assert report.ok
        assert report.accesses_checked == 0

    def test_generated_traces_validate(self):
        """Our own generators must pass their own validator."""
        from repro.dnn.accelerator import CLOUD
        from repro.dnn.models import resnet50
        from repro.dnn.tracegen import DnnTraceGenerator

        gen = DnnTraceGenerator(resnet50(), CLOUD)
        trace = gen.inference()
        input_region = trace.address_space.region("feat:input")
        preloaded = {}
        for region in trace.address_space.regions():
            if region.kind == "weight":
                preloaded[(int(VnSpace.WEIGHT), region.base)] = (
                    trace.vn_state.read_weights()
                )
        preloaded[(int(VnSpace.FEATURE), input_region.base)] = (
            trace.vn_state.read_features("input")
        )
        report = validate_trace(trace.phases, preloaded=preloaded)
        assert report.ok, report.violations[:3]

    def test_graph_traces_validate(self):
        from repro.graph.generators import uniform_random_graph
        from repro.graph.graphlily import GraphTraceGenerator

        gen = GraphTraceGenerator(uniform_random_graph(2048, 16384, seed=1))
        trace = gen.pagerank_trace(iterations=3)
        # Adjacency + initial vector were host-loaded: seed them.
        preloaded = {
            (int(VnSpace.OTHER), gen.address_space.region("adjacency").base):
                trace.vn_state.adjacency_vn(),
        }
        report = validate_trace(trace.phases, preloaded=preloaded)
        # Vector reads of iteration 1 reference the host-written initial
        # vector; all violations (if any) must be only those seeds.
        real = [v for v in report.violations if "never written" not in v.reason]
        assert not real

    def test_max_violations_cap(self):
        phases = [
            Phase("l0", 1.0, [read(i * 64, 64, DataClass.FEATURE, vn=1)
                              for i in range(100)]),
        ]
        report = validate_trace(phases, max_violations=5)
        assert len(report.violations) == 5


class TestSetAssociativeCache:
    def test_ways_must_divide_capacity(self):
        with pytest.raises(ConfigError):
            MetadataCache(capacity_bytes=64 * 10, ways=3)

    def test_conflict_misses_within_set(self):
        """Lines mapping to the same set evict each other even when the
        cache as a whole has room — unlike fully-associative."""
        cache = MetadataCache(capacity_bytes=64 * 8, ways=2)  # 4 sets
        n_sets = 4
        # Three lines in set 0: the third evicts the first (2 ways).
        a, b, c = (0, n_sets * 64, 2 * n_sets * 64)
        cache.access(a)
        cache.access(b)
        cache.access(c)
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)

    def test_fully_assoc_keeps_all_three(self):
        cache = MetadataCache(capacity_bytes=64 * 8)
        for addr in (0, 4 * 64, 8 * 64):
            cache.access(addr)
        assert all(cache.contains(a) for a in (0, 4 * 64, 8 * 64))

    def test_dirty_writeback_per_set(self):
        cache = MetadataCache(capacity_bytes=64 * 4, ways=1)  # direct-mapped
        cache.access(0, dirty=True)
        outcome = cache.access(4 * 64)  # same set (4 sets, stride 4 lines)
        assert outcome.writeback_address == 0

    def test_flush_covers_all_sets(self):
        cache = MetadataCache(capacity_bytes=64 * 4, ways=2)
        cache.access(0, dirty=True)
        cache.access(64, dirty=True)
        assert sorted(cache.flush()) == [0, 64]
        assert len(cache) == 0

    def test_lru_within_set(self):
        cache = MetadataCache(capacity_bytes=64 * 4, ways=2)  # 2 sets
        s = 2 * 64  # set stride
        cache.access(0)
        cache.access(s)        # same set as 0
        cache.access(0)        # refresh 0
        cache.access(2 * s)    # evicts s, not 0
        assert cache.contains(0)
        assert not cache.contains(s)
