"""Backend selection, tree-geometry encoding, and cross-backend pricing.

``REPRO_ENGINE`` picks which LRU-engine implementation prices the
cached/tree schemes; every backend must be byte-identical, so the tests
here pin (a) the selection rules themselves, (b) the
:class:`TreeGeometry` region tables counter-mode schemes hand the native
backend, (c) whole-suite pricing equality between forced backends, and
(d) the closed-form flood-adjacent walk against the probed walk it
replaces.
"""

from __future__ import annotations

import pickle

import pytest

import repro.core.engine_backend as engine_backend
from repro.common.errors import ConfigError
from repro.core.access import AccessBatch, AccessKind, DataClass, MemAccess
from repro.core.engine_backend import (
    TreeGeometry,
    active_backend,
    create_engine,
    native_available,
    native_error,
    requested_backend,
    resolve_backend,
)
from repro.core.lru_engine import LruEngine
from repro.core.schemes import scheme_suite
from repro.core.schemes.counter_mode import (
    FINE_MAC_POLICY,
    CounterModeProtection,
)

needs_native = pytest.mark.skipif(
    not native_available(),
    reason=f"native engine unavailable: {native_error()}",
)

BACKENDS = ("python",) + (("native",) if native_available() else ())


class TestSelection:
    def test_requested_backend_default_and_forced(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert requested_backend() == "auto"
        monkeypatch.setenv("REPRO_ENGINE", "python")
        assert requested_backend() == "python"
        monkeypatch.setenv("REPRO_ENGINE", " Native ")
        assert requested_backend() == "native"

    def test_invalid_request_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "cython")
        with pytest.raises(ConfigError):
            requested_backend()

    def test_python_always_resolves(self):
        assert resolve_backend("python") == "python"

    def test_auto_never_fails(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_backend() in ("python", "native")
        assert active_backend() in ("python", "native")
        if native_available():
            assert resolve_backend() == "native"

    def test_forced_native_without_compiler_is_config_error(self, monkeypatch):
        monkeypatch.setattr(engine_backend, "_lib", False)
        monkeypatch.setattr(engine_backend, "_load_error", "no C compiler")
        with pytest.raises(ConfigError, match="no C compiler"):
            resolve_backend("native")
        # auto degrades gracefully to the reference implementation
        assert resolve_backend("auto") == "python"
        assert native_error() == "no C compiler"

    def test_create_engine_python_forced(self):
        engine = create_engine(8, backend="python",
                               geometry=TreeGeometry(()))
        assert isinstance(engine, LruEngine)
        assert engine.backend_name == "python"

    @needs_native
    def test_create_engine_native_with_geometry(self):
        from repro.core.lru_native import NativeLruEngine

        engine = create_engine(8, backend="native", geometry=TreeGeometry(()))
        assert isinstance(engine, NativeLruEngine)
        assert engine.backend_name == "native"

    @needs_native
    def test_callable_parent_without_geometry_pins_python(self):
        # The C engine cannot call back into Python for parents.
        engine = create_engine(8, backend="native",
                               parent_of=lambda address: None)
        assert isinstance(engine, LruEngine)


class TestTreeGeometry:
    def test_encode_layout(self):
        table = TreeGeometry(((0, 640, 640, 8), (640, 720, 720, 4)), 64)
        assert table.encode().tolist() == [2, 0, 640, 640, 8, 640, 720, 720, 4]

    def test_parent_of_outside_regions_is_none(self):
        table = TreeGeometry(((128, 256, 512, 4),), 64)
        assert table.parent_of(0) is None
        assert table.parent_of(256) is None
        assert table.parent_of(128) == 512
        assert table.parent_of(192) == 512
        assert table.parent_of(128 + 4 * 64) is None  # past the region

    def test_scheme_geometry_matches_parent_of(self):
        """The region table a scheme builds IS its ``_parent_of``."""
        scheme = CounterModeProtection(
            "T", vn_onchip=False, mac_policy=FINE_MAC_POLICY,
            protected_bytes=1 << 20, cache_bytes=32 * 1024,
        )
        table = scheme._tree_geometry()
        top = scheme._tree.level_base(scheme._tree.stored_levels) + \
            scheme._tree.level_sizes[scheme._tree.stored_levels - 1] * 64
        for address in range(0, top + 8 * 64, 64):
            assert table.parent_of(address) == scheme._parent_of(address), \
                hex(address)


def _sequential_trace():
    """A few batches that exercise runs, walks, chains, and floods."""
    base = 0
    accesses = [
        MemAccess(base, 96 * 1024, AccessKind.READ, DataClass.FEATURE, vn=1),
        MemAccess(base + 128 * 1024, 8 * 1024, AccessKind.WRITE,
                  DataClass.FEATURE, vn=2),
        MemAccess(base, 96 * 1024, AccessKind.READ, DataClass.FEATURE, vn=1),
        MemAccess(base + 512 * 1024, 256 * 1024, AccessKind.WRITE,
                  DataClass.WEIGHT, vn=3),
        MemAccess(base + 64 * 1024, 32 * 1024, AccessKind.READ,
                  DataClass.FEATURE, vn=2),
    ]
    return [AccessBatch.from_accesses(accesses[:2]),
            AccessBatch.from_accesses(accesses[2:])]


@needs_native
class TestCrossBackendPricing:
    def test_suite_tables_identical_across_backends(self, monkeypatch):
        """Every scheme's priced traffic is byte-identical per backend."""
        batches = _sequential_trace()
        results = {}
        for backend in ("python", "native"):
            monkeypatch.setenv("REPRO_ENGINE", backend)
            suite = scheme_suite(1 << 20)
            table = {}
            for name, scheme in suite.items():
                traffics = scheme.price_trace(batches)
                tail = scheme.finish()
                table[name] = ([t.__dict__ for t in traffics], tail.__dict__)
                if isinstance(scheme, CounterModeProtection) and \
                        scheme._cache is not None:
                    assert scheme.engine_backend == backend
                    table[name] += (scheme._cache.stats.as_dict(),)
            results[backend] = table
        assert results["python"] == results["native"]

    def test_scheme_pickles_without_engine(self, monkeypatch):
        """Sweep workers pickle schemes; the engine handle must not ride."""
        monkeypatch.setenv("REPRO_ENGINE", "native")
        scheme = CounterModeProtection(
            "T", vn_onchip=False, mac_policy=FINE_MAC_POLICY,
            protected_bytes=1 << 20, cache_bytes=32 * 1024,
        )
        batches = _sequential_trace()
        first = [t.__dict__ for t in scheme.price_trace(batches)]
        assert scheme._engine is not None
        clone = pickle.loads(pickle.dumps(scheme))
        assert clone._engine is None
        # The clone carries the cache state and prices the next batches
        # exactly as the original would.
        again_orig = [t.__dict__ for t in scheme.price_trace(batches)]
        again_clone = [t.__dict__ for t in clone.price_trace(batches)]
        assert again_orig == again_clone
        assert first  # the warm-up actually priced something


@needs_native
class TestCacheSelfHealing:
    def test_corrupt_cached_so_recompiles(self, monkeypatch, tmp_path):
        """A truncated/garbage artifact in the content-addressed cache
        must be deleted and rebuilt, not disable the backend."""
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        monkeypatch.setattr(engine_backend, "_lib", None)
        monkeypatch.setattr(engine_backend, "_load_error", None)
        source = engine_backend._SOURCE.read_bytes()
        import hashlib

        digest = hashlib.sha256(source).hexdigest()[:16]
        bad = tmp_path / f"lru_native-{digest}.so"
        bad.write_bytes(b"\x7fELF not actually a shared object")
        lib = engine_backend.native_library()
        assert lib is not None and lib is not False
        # The poisoned file was replaced by a working build.
        assert bad.stat().st_size > 64
        engine = create_engine(8, backend="native", geometry=TreeGeometry(()))
        assert engine.backend_name == "native"

    def test_truncated_cached_so_recompiles(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        monkeypatch.setattr(engine_backend, "_lib", None)
        monkeypatch.setattr(engine_backend, "_load_error", None)
        good = engine_backend._compile_library()
        data = good.read_bytes()
        # Keep only the ELF ident: dlopen rejects it cleanly (a longer
        # truncation could map and then fault past end-of-file).
        good.write_bytes(data[:64])
        lib = engine_backend.native_library()
        assert lib is not None and lib is not False
        assert good.stat().st_size > 64


@pytest.mark.parametrize("backend", BACKENDS)
class TestClosedFormWalk:
    def _scheme(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_ENGINE", backend)
        # Eight metadata-cache lines: a ~3 KiB sequential access floods
        # MAC+VN runs past capacity without either run flooding alone.
        return CounterModeProtection(
            "T", vn_onchip=False, mac_policy=FINE_MAC_POLICY,
            protected_bytes=1 << 20, cache_bytes=8 * 64,
        )

    def _price(self, scheme, batches):
        traffic = [t.__dict__ for t in scheme.price_trace(batches)]
        return traffic, scheme._cache.contents(), scheme.stats.as_dict()

    def test_flood_adjacent_walk_matches_probed_walk(self, monkeypatch,
                                                     backend):
        accesses = [
            MemAccess(0, 3 * 1024, AccessKind.READ, DataClass.FEATURE, vn=1),
            MemAccess(8 * 1024, 3 * 1024, AccessKind.READ,
                      DataClass.FEATURE, vn=1),
            MemAccess(0, 512, AccessKind.WRITE, DataClass.FEATURE, vn=2),
            MemAccess(16 * 1024, 2 * 1024, AccessKind.READ,
                      DataClass.FEATURE, vn=1),
        ]
        batches = [AccessBatch.from_accesses(accesses)]

        fast = self._scheme(monkeypatch, backend)
        if backend == "python":
            # The flood-adjacent guard lives in the engine now: spy on
            # walk_tree to see the closed-form path engage, then force
            # every walk probed and demand identical results.
            flood_flags = []
            orig_walk = LruEngine.walk_tree

            def spying_walk(self, seed_lines, sink, flood=False):
                flood_flags.append(flood)
                return orig_walk(self, seed_lines, sink, flood=flood)

            monkeypatch.setattr(LruEngine, "walk_tree", spying_walk)
            fast_results = self._price(fast, batches)
            assert any(flood_flags), "closed-form walk never engaged"

            def never_flood(self, seed_lines, sink, flood=False):
                return orig_walk(self, seed_lines, sink, flood=False)

            monkeypatch.setattr(LruEngine, "walk_tree", never_flood)
            probed = self._scheme(monkeypatch, backend)
            assert self._price(probed, batches) == fast_results
        else:
            # The native walk is always probed (the compiled per-level
            # probe IS the bulk replace); it must match the python
            # backend's flood-accelerated results exactly.
            native_results = self._price(fast, batches)
            reference = self._scheme(monkeypatch, "python")
            assert self._price(reference, batches) == native_results
