"""Integrity tree: geometry (TreeLayout) and the functional hash tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError, IntegrityError
from repro.core.merkle import FunctionalMerkleTree, TreeLayout


class TestTreeLayout:
    def test_level_sizes_8ary(self):
        layout = TreeLayout(leaf_lines=512, arity=8)
        assert layout.level_sizes == [64, 8]  # then 1 = on-chip root

    def test_root_not_stored(self):
        # 8 leaves → 1 parent, which IS the root → nothing stored.
        layout = TreeLayout(leaf_lines=8, arity=8)
        assert layout.stored_levels == 0
        assert layout.total_bytes == 0

    def test_single_leaf(self):
        layout = TreeLayout(leaf_lines=1, arity=8)
        assert layout.stored_levels == 0

    def test_ragged_levels(self):
        layout = TreeLayout(leaf_lines=100, arity=8)
        assert layout.level_sizes == [13, 2]

    def test_path_addresses_bottom_up(self):
        layout = TreeLayout(leaf_lines=512, arity=8, base_address=0x1000)
        path = layout.path_addresses(511)
        assert len(path) == 2
        # Leaf 511's level-1 parent is node 63 of 64.
        assert path[0] == 0x1000 + 63 * 64
        # Level-2 parent is node 7 of 8.
        assert path[1] == 0x1000 + 64 * 64 + 7 * 64

    def test_siblings_share_parent(self):
        layout = TreeLayout(leaf_lines=512, arity=8)
        assert layout.path_addresses(0)[0] == layout.path_addresses(7)[0]
        assert layout.path_addresses(0)[0] != layout.path_addresses(8)[0]

    def test_node_address_bounds(self):
        layout = TreeLayout(leaf_lines=512, arity=8)
        with pytest.raises(ConfigError):
            layout.node_address(1, 64)
        with pytest.raises(ConfigError):
            layout.node_address(3, 0)

    def test_total_bytes(self):
        layout = TreeLayout(leaf_lines=512, arity=8)
        assert layout.total_bytes == (64 + 8) * 64

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            TreeLayout(leaf_lines=0)
        with pytest.raises(ConfigError):
            TreeLayout(leaf_lines=8, arity=1)


class TestFunctionalTree:
    def test_update_changes_root(self):
        tree = FunctionalMerkleTree(64)
        r0 = tree.root
        tree.update(0, b"leaf-zero")
        assert tree.root != r0

    def test_verify_accepts_genuine_value(self):
        tree = FunctionalMerkleTree(64)
        tree.update(5, b"value-5")
        tree.verify(5, b"value-5", tree.root)  # must not raise

    def test_verify_rejects_tampered_value(self):
        tree = FunctionalMerkleTree(64)
        tree.update(5, b"value-5")
        with pytest.raises(IntegrityError):
            tree.verify(5, b"value-X", tree.root)

    def test_verify_rejects_stale_root(self):
        """The replay scenario: old value + old root don't match current."""
        tree = FunctionalMerkleTree(64)
        tree.update(5, b"old")
        old_root = tree.root
        tree.update(5, b"new")
        with pytest.raises(IntegrityError):
            tree.verify(5, b"old", tree.root)
        # And the old pair is internally consistent — only the on-chip
        # root pins down freshness.
        tree2 = FunctionalMerkleTree(64)
        tree2.update(5, b"old")
        tree2.verify(5, b"old", old_root)

    def test_sibling_update_does_not_break_verification(self):
        tree = FunctionalMerkleTree(64)
        tree.update(8, b"a")
        tree.update(9, b"b")
        tree.verify(8, b"a", tree.root)
        tree.verify(9, b"b", tree.root)

    def test_cross_leaf_substitution_detected(self):
        tree = FunctionalMerkleTree(64)
        tree.update(1, b"one")
        tree.update(2, b"two")
        with pytest.raises(IntegrityError):
            tree.verify(1, b"two", tree.root)

    def test_out_of_range(self):
        tree = FunctionalMerkleTree(8)
        with pytest.raises(ConfigError):
            tree.update(8, b"x")
        with pytest.raises(ConfigError):
            tree.verify(-1, b"x", tree.root)

    def test_non_pow_arity_leaf_count(self):
        tree = FunctionalMerkleTree(100, arity=8)
        tree.update(99, b"last")
        tree.verify(99, b"last", tree.root)

    @given(st.dictionaries(st.integers(min_value=0, max_value=63),
                           st.binary(min_size=1, max_size=32),
                           min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_all_updates_verifiable_property(self, updates):
        tree = FunctionalMerkleTree(64)
        for leaf, value in updates.items():
            tree.update(leaf, value)
        for leaf, value in updates.items():
            tree.verify(leaf, value, tree.root)
