"""Untrusted memory substrate: backing store, address space, attacker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import AddressError, ConfigError
from repro.mem.attacker import Attacker
from repro.mem.backing import BackingStore
from repro.mem.layout import AddressSpace


class TestBackingStore:
    def test_unwritten_reads_zero(self):
        assert BackingStore(1024).read(100, 8) == bytes(8)

    def test_write_read_roundtrip(self):
        s = BackingStore(1024)
        s.write(10, b"hello")
        assert s.read(10, 5) == b"hello"

    def test_cross_page_write(self):
        s = BackingStore(3 * 4096)
        payload = bytes(range(256)) * 40  # 10240 bytes across 3 pages
        s.write(100, payload)
        assert s.read(100, len(payload)) == payload

    def test_partial_overlap(self):
        s = BackingStore(1024)
        s.write(0, b"\xaa" * 16)
        s.write(8, b"\xbb" * 4)
        assert s.read(0, 16) == b"\xaa" * 8 + b"\xbb" * 4 + b"\xaa" * 4

    def test_out_of_range_read(self):
        with pytest.raises(AddressError):
            BackingStore(64).read(60, 8)

    def test_out_of_range_write(self):
        with pytest.raises(AddressError):
            BackingStore(64).write(63, b"ab")

    def test_negative_address(self):
        with pytest.raises(AddressError):
            BackingStore(64).read(-1, 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            BackingStore(0)

    def test_sparse_footprint(self):
        s = BackingStore(1 << 30)
        s.write(1 << 29, b"x")
        assert s.touched_bytes() == 4096

    @given(st.integers(min_value=0, max_value=8000),
           st.binary(min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, address, data):
        s = BackingStore(10_000)
        if address + len(data) > s.size:
            address = s.size - len(data)
        s.write(address, data)
        assert s.read(address, len(data)) == data


class TestAddressSpace:
    def test_alloc_aligned(self):
        space = AddressSpace(size=1 << 20)
        space.alloc("a", 10)
        b = space.alloc("b", 10)
        assert b.base % 64 == 0

    def test_alloc_disjoint(self):
        space = AddressSpace(size=1 << 20)
        a = space.alloc("a", 100)
        b = space.alloc("b", 100)
        assert a.end <= b.base

    def test_duplicate_name_rejected(self):
        space = AddressSpace(size=1 << 20)
        space.alloc("a", 10)
        with pytest.raises(ConfigError):
            space.alloc("a", 10)

    def test_exhaustion(self):
        space = AddressSpace(size=128)
        space.alloc("a", 100)
        with pytest.raises(AddressError):
            space.alloc("b", 100)

    def test_find_hits_correct_region(self):
        space = AddressSpace(size=1 << 20)
        regions = [space.alloc(f"r{i}", 1000) for i in range(10)]
        target = regions[7]
        assert space.find(target.base + 500).name == "r7"

    def test_find_miss(self):
        space = AddressSpace(size=1 << 20)
        space.alloc("a", 64)
        with pytest.raises(AddressError):
            space.find(1 << 19)

    def test_region_lookup_by_name(self):
        space = AddressSpace(size=1 << 20)
        space.alloc("weights", 64, kind="weight")
        assert space.region("weights").kind == "weight"

    def test_region_missing_name(self):
        with pytest.raises(AddressError):
            AddressSpace(size=64).region("ghost")

    def test_region_contains_and_offset(self):
        space = AddressSpace(size=1 << 20)
        r = space.alloc("a", 128)
        assert r.contains(r.base)
        assert not r.contains(r.end)
        assert r.offset_of(r.base + 5) == 5
        with pytest.raises(AddressError):
            r.offset_of(r.end)

    def test_zero_size_region_rejected(self):
        with pytest.raises(ConfigError):
            AddressSpace(size=1024).alloc("z", 0)

    def test_used_tracks_cursor(self):
        space = AddressSpace(size=1 << 20)
        space.alloc("a", 64)
        space.alloc("b", 64)
        assert space.used == 128


class TestAttacker:
    def test_flip_bit(self, store):
        store.write(0, b"\x00")
        Attacker(store).flip_bit(0, 3)
        assert store.read(0, 1) == b"\x08"

    def test_flip_bit_twice_restores(self, store):
        store.write(5, b"\x5a")
        atk = Attacker(store)
        atk.flip_bit(5, 1)
        atk.flip_bit(5, 1)
        assert store.read(5, 1) == b"\x5a"

    def test_snapshot_and_replay(self, store):
        store.write(0, b"old value!")
        atk = Attacker(store)
        snap = atk.snapshot(0, 10)
        store.write(0, b"new value!")
        atk.replay(snap)
        assert store.read(0, 10) == b"old value!"

    def test_relocate(self, store):
        store.write(0, b"payload")
        Attacker(store).relocate(0, 100, 7)
        assert store.read(100, 7) == b"payload"

    def test_swap(self, store):
        store.write(0, b"AAAA")
        store.write(64, b"BBBB")
        Attacker(store).swap(0, 64, 4)
        assert store.read(0, 4) == b"BBBB"
        assert store.read(64, 4) == b"AAAA"

    def test_zero(self, store):
        store.write(0, b"\xff" * 8)
        Attacker(store).zero(0, 8)
        assert store.read(0, 8) == bytes(8)

    def test_observe_matches_store(self, store):
        store.write(0, b"ciphertext")
        assert Attacker(store).observe(0, 10) == b"ciphertext"

    def test_bad_bit_index(self, store):
        with pytest.raises(ConfigError):
            Attacker(store).flip_bit(0, 8)
