"""Functional protection engines: real crypto against a real adversary.

These are the paper's §III-D security arguments turned into executable
checks: confidentiality (ciphertext reveals nothing reusable), integrity
(tamper/substitution/relocation detected), freshness (replay detected —
by the MAC's VN binding in MGX, by the Merkle tree in the baseline), and
CTR-mode safety (VN reuse refused).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError, FreshnessError, IntegrityError, ReplayError
from repro.core.functional import BaselineFunctionalEngine, MgxFunctionalEngine
from repro.crypto.keys import SessionKeys
from repro.mem.attacker import Attacker
from repro.mem.backing import BackingStore


@pytest.fixture
def mgx(keys, store):
    return MgxFunctionalEngine(keys, store, data_bytes=1 << 20, mac_granularity=512)


@pytest.fixture
def bp(keys, store):
    return BaselineFunctionalEngine(keys, store, data_bytes=256 * 1024)


_DATA = bytes(range(256)) * 2  # 512 B


class TestMgxRoundTrip:
    def test_write_read(self, mgx):
        mgx.write(0, _DATA, vn=1)
        assert mgx.read(0, 512, vn=1) == _DATA

    def test_multi_granule(self, mgx):
        payload = bytes(4096)
        mgx.write(512, payload, vn=3)
        assert mgx.read(512, 4096, vn=3) == payload

    def test_ciphertext_differs_from_plaintext(self, mgx, store):
        mgx.write(0, _DATA, vn=1)
        assert store.read(0, 512) != _DATA

    def test_same_data_two_locations_distinct_ciphertext(self, mgx, store):
        """Per-lane address in the counter: no ECB-style leakage."""
        mgx.write(0, _DATA, vn=1)
        mgx.write(512, _DATA, vn=1)
        assert store.read(0, 512) != store.read(512, 512)

    def test_same_data_two_vns_distinct_ciphertext(self, mgx, store):
        mgx.write(0, _DATA, vn=1)
        first = store.read(0, 512)
        mgx.write(0, _DATA, vn=2)
        assert store.read(0, 512) != first

    def test_rewrites_with_higher_vn(self, mgx):
        mgx.write(0, _DATA, vn=1)
        mgx.write(0, b"\x77" * 512, vn=2)
        assert mgx.read(0, 512, vn=2) == b"\x77" * 512

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=1, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, granule, vn):
        keys = SessionKeys.derive(b"prop", b"n")
        engine = MgxFunctionalEngine(keys, BackingStore(1 << 20),
                                     data_bytes=256 * 1024, mac_granularity=512)
        address = (granule % 500) * 512
        payload = bytes([(granule + i) % 256 for i in range(512)])
        engine.write(address, payload, vn=vn)
        assert engine.read(address, 512, vn=vn) == payload


class TestMgxAttacks:
    def test_data_tamper_detected(self, mgx, store):
        mgx.write(0, _DATA, vn=1)
        Attacker(store).flip_bit(17, 5)
        with pytest.raises(IntegrityError):
            mgx.read(0, 512, vn=1)

    def test_mac_tamper_detected(self, mgx, store):
        mgx.write(0, _DATA, vn=1)
        Attacker(store).flip_bit(mgx.mac_address(0), 0)
        with pytest.raises(IntegrityError):
            mgx.read(0, 512, vn=1)

    def test_relocation_detected(self, mgx, store):
        """Valid (data, MAC) moved to another address fails: the MAC
        binds the granule address."""
        mgx.write(0, _DATA, vn=1)
        mgx.write(512, b"\x11" * 512, vn=1)
        atk = Attacker(store)
        atk.relocate(0, 512, 512)
        atk.relocate(mgx.mac_address(0), mgx.mac_address(1), 8)
        with pytest.raises(IntegrityError):
            mgx.read(512, 512, vn=1)

    def test_swap_detected(self, mgx, store):
        mgx.write(0, b"\xaa" * 512, vn=1)
        mgx.write(512, b"\xbb" * 512, vn=1)
        atk = Attacker(store)
        atk.swap(0, 512, 512)
        atk.swap(mgx.mac_address(0), mgx.mac_address(1), 8)
        with pytest.raises(IntegrityError):
            mgx.read(0, 512, vn=1)

    def test_replay_detected_as_replay(self, mgx, store):
        """Stale (data, MAC) restored after a newer write: ReplayError."""
        mgx.write(0, _DATA, vn=1)
        atk = Attacker(store)
        stale_data = atk.snapshot(0, 512)
        stale_mac = atk.snapshot(mgx.mac_address(0), 8)
        mgx.write(0, b"\xcc" * 512, vn=2)
        atk.replay(stale_data)
        atk.replay(stale_mac)
        with pytest.raises(ReplayError):
            mgx.read(0, 512, vn=2)

    def test_wrong_vn_read_rejected(self, mgx):
        mgx.write(0, _DATA, vn=5)
        with pytest.raises(IntegrityError):
            mgx.read(0, 512, vn=6)

    def test_vn_reuse_refused_before_touching_memory(self, mgx, store):
        mgx.write(0, _DATA, vn=5)
        before = store.read(0, 512)
        with pytest.raises(FreshnessError):
            mgx.write(0, b"\x99" * 512, vn=5)
        assert store.read(0, 512) == before  # nothing was written

    def test_vn_decrease_refused(self, mgx):
        mgx.write(0, _DATA, vn=5)
        with pytest.raises(FreshnessError):
            mgx.write(0, _DATA, vn=4)

    def test_zeroed_macs_detected(self, mgx, store):
        mgx.write(0, _DATA, vn=1)
        Attacker(store).zero(mgx.mac_address(0), 8)
        with pytest.raises(IntegrityError):
            mgx.read(0, 512, vn=1)


class TestMgxValidation:
    def test_misaligned_write(self, mgx):
        with pytest.raises(ConfigError):
            mgx.write(100, _DATA, vn=1)

    def test_partial_granule_write(self, mgx):
        with pytest.raises(ConfigError):
            mgx.write(0, b"abc", vn=1)

    def test_beyond_region(self, mgx):
        with pytest.raises(ConfigError):
            mgx.write(mgx.data_bytes, _DATA, vn=1)

    def test_store_too_small(self, keys):
        with pytest.raises(ConfigError):
            MgxFunctionalEngine(keys, BackingStore(1024), data_bytes=1024)

    def test_bad_granularity(self, keys, store):
        with pytest.raises(ConfigError):
            MgxFunctionalEngine(keys, store, data_bytes=1024, mac_granularity=100)


class TestBaselineEngine:
    def test_roundtrip_no_vn_argument(self, bp):
        bp.write(0, _DATA[:64])
        assert bp.read(0, 64) == _DATA[:64]

    def test_vn_auto_increments(self, bp, store):
        bp.write(0, b"\x01" * 64)
        vn1 = int.from_bytes(store.read(bp.vn_address(0), 8), "big")
        bp.write(0, b"\x02" * 64)
        vn2 = int.from_bytes(store.read(bp.vn_address(0), 8), "big")
        assert vn2 == vn1 + 1

    def test_data_tamper_detected(self, bp, store):
        bp.write(0, b"\xab" * 64)
        Attacker(store).flip_bit(3, 1)
        with pytest.raises(IntegrityError):
            bp.read(0, 64)

    def test_vn_tamper_detected_by_tree(self, bp, store):
        bp.write(0, b"\xab" * 64)
        Attacker(store).flip_bit(bp.vn_address(0), 0)
        with pytest.raises(IntegrityError):
            bp.read(0, 64)

    def test_full_replay_detected_by_tree(self, bp, store):
        """Replaying a consistent (data, MAC, VN) triple is exactly what
        the MAC alone cannot catch; the tree does."""
        bp.write(0, b"v1".ljust(64, b"."))
        atk = Attacker(store)
        snaps = [
            atk.snapshot(0, 64),
            atk.snapshot(bp.mac_address(0), bp._mac.tag_bytes),
            atk.snapshot(bp.vn_address(0), 8),
        ]
        bp.write(0, b"v2".ljust(64, b"."))
        for snap in snaps:
            atk.replay(snap)
        with pytest.raises(IntegrityError):
            bp.read(0, 64)

    def test_treeless_baseline_is_replayable(self, keys):
        """Ablation: without the tree the same replay silently succeeds —
        the motivating attack for Merkle protection (§III-A)."""
        store = BackingStore(4 << 20)
        engine = BaselineFunctionalEngine(keys, store, data_bytes=64 * 1024,
                                          verify_vn_tree=False)
        engine.write(0, b"v1".ljust(64, b"."))
        atk = Attacker(store)
        snaps = [
            atk.snapshot(0, 64),
            atk.snapshot(engine.mac_address(0), engine._mac.tag_bytes),
            atk.snapshot(engine.vn_address(0), 8),
        ]
        engine.write(0, b"v2".ljust(64, b"."))
        for snap in snaps:
            atk.replay(snap)
        assert engine.read(0, 64).startswith(b"v1")  # attack succeeded

    def test_multi_block_write(self, bp):
        payload = np.arange(256, dtype=np.uint8).tobytes()
        bp.write(64, payload)
        assert bp.read(64, 256) == payload

    def test_alignment_required(self, bp):
        with pytest.raises(ConfigError):
            bp.write(32, b"\x00" * 64)
        with pytest.raises(ConfigError):
            bp.read(0, 32)

    def test_beyond_region(self, bp):
        with pytest.raises(ConfigError):
            bp.read(bp.data_bytes, 64)


class TestEngineEquivalence:
    def test_both_engines_protect_same_plaintext(self, keys):
        """Same plaintext round-trips through either engine; their
        ciphertexts differ (different VN handling) but both verify."""
        payload = bytes(range(64)) * 8
        s1, s2 = BackingStore(4 << 20), BackingStore(4 << 20)
        mgx = MgxFunctionalEngine(keys, s1, data_bytes=64 * 1024, mac_granularity=512)
        base = BaselineFunctionalEngine(keys, s2, data_bytes=64 * 1024)
        mgx.write(0, payload, vn=1)
        base.write(0, payload)
        assert mgx.read(0, 512, vn=1) == base.read(0, 512) == payload


class TestVectorizedKeystream:
    """The batched counter build must be byte-identical to the per-lane loop."""

    @pytest.mark.parametrize("address,vn,nbytes", [
        (0, 1, 16),
        (512, 7, 512),
        (0x1000, 1 << 40, 100),       # tail shorter than a lane
        (16, 3, 17),                  # one lane + 1 byte
        (0, (1 << 64) - 1, 64),       # max VN
        (1 << 40, 5, 4096),           # high address bytes
    ])
    def test_matches_per_lane_loop(self, keys, address, vn, nbytes):
        from repro.core.counters import counter_block
        from repro.core.functional import _LANE, _keystream
        from repro.crypto.aes_batch import AesBatch

        aes = AesBatch(keys.encryption_key)
        lanes = -(-nbytes // _LANE)
        counters = np.empty((lanes, _LANE), dtype=np.uint8)
        for i in range(lanes):  # the pre-vectorization reference loop
            counters[i] = np.frombuffer(
                counter_block(address + i * _LANE, vn), dtype=np.uint8
            )
        reference = aes.encrypt_blocks(counters).reshape(-1)[:nbytes]
        assert np.array_equal(_keystream(aes, address, vn, nbytes), reference)
