"""The asyncio multi-tenant protection server.

One :class:`SecureAcceleratorDevice` serves many tenants concurrently:
each connection runs the real §II handshake (nonce + DH + attested
quote) and gets its own :class:`~repro.host.session.DeviceSession`,
so channel keys, sequence state and protected memory are per-tenant.
Sealed :class:`~repro.serve.protocol.WorkRequest` records arrive on the
connection's inbox, are decrypted strictly in sequence order, and flow
through three serving disciplines before a sealed reply goes back:

* **admission control** — a bounded global pending queue plus a
  per-tenant in-flight cap; overload is answered with an explicit
  ``BUSY`` reply (never silently dropped);
* **single-flight coalescing** — identical in-flight artifact keys
  share one computation (:class:`~repro.sim.scheduler.SingleFlight`),
  and warm :data:`~repro.sim.runner.TRACE_CACHE` hits are served
  without re-pricing;
* **trace-batched pricing** — result requests arriving within the
  batch window that share a workload trace are grouped, the trace is
  materialised once, and every requested scheme is priced against it
  through the scheme's ``pricing_session()`` (the exact
  :func:`~repro.sim.scheduler._price_spec` computation, so payloads
  stay byte-identical to offline artifact-graph pricing).

Pricing runs on a thread pool; the event loop only decrypts, admits,
groups, and seals.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.experiments.registry import RequestSpec, resolve_request
from repro.host.attestation import AttestationQuote, ManufacturerCa
from repro.host.session import DeviceSession, SecureAcceleratorDevice
from repro.serve.protocol import (
    REPLY_AAD,
    REQUEST_AAD,
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_OK,
    WorkReply,
    WorkRequest,
)
from repro.sim.runner import TRACE_CACHE
from repro.sim.scheduler import SingleFlight

#: Firmware the default server device attests to (clients must expect it).
SERVE_FIRMWARE = b"mgx-serve-firmware-v1"


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs: admission limits, pricing pool, batching window."""

    #: Global cap on accepted-but-unfinished requests; beyond it every
    #: arrival is answered ``BUSY``.
    queue_depth: int = 64
    #: Per-tenant cap on in-flight requests (admission isolation: one
    #: aggressive tenant cannot monopolise the queue depth).
    per_tenant_inflight: int = 4
    #: Threads pricing artifacts (the event loop never prices).
    pricing_workers: int = 2
    #: How long a pricing group stays open for compatible requests to
    #: join before it is flushed, in seconds.
    batch_window_s: float = 0.002
    #: Per-tenant protected-memory size (each session allocates its own
    #: backing store of twice this, for data + MAC table).
    protected_bytes: int = 1 << 16


class TenantConnection:
    """Server-side endpoint of one tenant's session.

    ``submit`` and the ``replies`` queue are the in-memory transport:
    the client puts sealed request records in, the server puts sealed
    reply records out (``None`` is the close sentinel).  All sealing
    and unsealing happens with this connection's session keys.
    """

    def __init__(self, tenant_id: int, session: DeviceSession) -> None:
        self.tenant_id = tenant_id
        self.session = session
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.replies: asyncio.Queue = asyncio.Queue()
        self.inflight = 0

    def submit(self, record: tuple[int, bytes, bytes]) -> None:
        """Deliver one sealed client→server record (synchronous, so a
        caller can seal + submit without an intervening await and keep
        the record stream in sequence order)."""
        self.inbox.put_nowait(record)


class _PriceGroup:
    """Result requests sharing one workload trace, awaiting a flush."""

    def __init__(self) -> None:
        #: artifact key → (spec, future of (value, outcome))
        self.entries: dict[Hashable, tuple[RequestSpec, asyncio.Future]] = {}

    def add(
        self,
        key: Hashable,
        rs: RequestSpec,
        loop: asyncio.AbstractEventLoop,
    ) -> tuple[asyncio.Future, bool]:
        entry = self.entries.get(key)
        if entry is not None:
            return entry[1], False
        future = loop.create_future()
        self.entries[key] = (rs, future)
        return future, True


class ProtectionServer:
    """Async multi-tenant front-end over one secure accelerator device."""

    def __init__(
        self,
        ca: ManufacturerCa | None = None,
        device: SecureAcceleratorDevice | None = None,
        config: ServerConfig | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.ca = ca or ManufacturerCa(b"serve-root-secret")
        self.device = device or SecureAcceleratorDevice(
            device_id=b"serve-accel-0",
            firmware=SERVE_FIRMWARE,
            ca=self.ca,
            protected_bytes=self.config.protected_bytes,
        )
        self.flights = SingleFlight()
        self._pool: ThreadPoolExecutor | None = None
        self._pending = 0
        self._connections: list[TenantConnection] = []
        self._readers: list[asyncio.Task] = []
        self._handlers: set[asyncio.Task] = set()
        self._groups: dict[Hashable, _PriceGroup] = {}
        self._ids = 0
        self.stats: dict[str, int] = {
            "tenants": 0,  # sessions opened
            "requests": 0,  # sealed requests decrypted
            "ok": 0,
            "busy": 0,  # admission rejections (answered, not lost)
            "errors": 0,
            "bad_records": 0,  # records that failed channel verification
            "computed": 0,  # artifacts priced/built fresh
            "warm_hits": 0,  # served from the artifact cache, no pricing
            "coalesced": 0,  # shared an identical in-flight computation
            "batched_groups": 0,  # flushed groups holding >= 2 requests
            "batched_requests": 0,  # requests priced through those groups
        }

    # -- lifecycle ---------------------------------------------------------
    async def __aenter__(self) -> "ProtectionServer":
        self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.pricing_workers,
                thread_name_prefix="serve-pricing",
            )

    async def stop(self) -> None:
        """Close every connection and drain in-flight work."""
        for conn in self._connections:
            conn.inbox.put_nowait(None)
        if self._readers:
            await asyncio.gather(*self._readers, return_exceptions=True)
            self._readers.clear()
        while self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        for conn in self._connections:
            conn.replies.put_nowait(None)
        self._connections.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- handshake ---------------------------------------------------------
    def open_session(
        self,
        user_nonce: bytes,
        user_dh_public: int,
        kernel_hash: bytes,
    ) -> tuple[int, AttestationQuote, TenantConnection]:
        """§II handshake for one new tenant; starts its record reader.

        Raises :class:`~repro.common.errors.ReplayError` if the nonce
        was ever used on this device — before any keys are derived.
        """
        if self._pool is None:
            self.start()
        public, quote, session = self.device.open_tenant_session(
            user_nonce, user_dh_public, kernel_hash
        )
        conn = TenantConnection(self._ids, session)
        self._ids += 1
        self.stats["tenants"] += 1
        self._connections.append(conn)
        self._readers.append(asyncio.ensure_future(self._serve_connection(conn)))
        return public, quote, conn

    # -- per-connection record loop ----------------------------------------
    async def _serve_connection(self, conn: TenantConnection) -> None:
        """Decrypt this tenant's records strictly in sequence order."""
        while True:
            record = await conn.inbox.get()
            if record is None:
                break
            try:
                payload = conn.session.receive(record, aad=REQUEST_AAD)
                request = WorkRequest.decode(payload)
            except Exception:
                # Forged/replayed/malformed record: the channel refused
                # it (its own state is untouched) or the body didn't
                # parse; count and keep serving.
                self.stats["bad_records"] += 1
                continue
            self.stats["requests"] += 1
            if (
                self._pending >= self.config.queue_depth
                or conn.inflight >= self.config.per_tenant_inflight
            ):
                self.stats["busy"] += 1
                self._send_reply(conn, WorkReply(request.request_id, STATUS_BUSY))
                continue
            self._pending += 1
            conn.inflight += 1
            task = asyncio.ensure_future(self._handle(conn, request))
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)

    async def _handle(self, conn: TenantConnection, request: WorkRequest) -> None:
        try:
            reply = await self._process(request)
        except Exception as exc:  # never lose a request to an exception
            self.stats["errors"] += 1
            reply = WorkReply(
                request.request_id,
                STATUS_ERROR,
                detail=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self._pending -= 1
            conn.inflight -= 1
        self._send_reply(conn, reply)

    def _send_reply(self, conn: TenantConnection, reply: WorkReply) -> None:
        # Seal + enqueue without an intervening await, mirroring the
        # client: sequence numbers are assigned at seal time and the
        # tenant decrypts in arrival order.
        record = conn.session.send(reply.encode(), aad=REPLY_AAD)
        conn.replies.put_nowait(record)

    # -- request processing ------------------------------------------------
    async def _process(self, request: WorkRequest) -> WorkReply:
        try:
            rs = resolve_request(request.name, request.scheme)
        except (KeyError, ValueError) as exc:
            self.stats["errors"] += 1
            return WorkReply(request.request_id, STATUS_ERROR, detail=str(exc))
        if rs.kind == "result":
            value, outcome = await self._serve_priced(rs)
        else:
            value, outcome = await self._serve_profile(rs)
        self.stats[outcome] += 1
        self.stats["ok"] += 1
        return WorkReply(
            request.request_id, STATUS_OK, kind=rs.kind, payload=rs.encode(value)
        )

    async def _serve_profile(self, rs: RequestSpec) -> tuple[object, str]:
        """Profile artifacts: single-flight around the artifact cache."""
        key = rs.artifact_key()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self._fetch_sync, key, rs.build)

    async def _serve_priced(self, rs: RequestSpec) -> tuple[object, str]:
        """Result artifacts: batch compatible requests over one trace.

        Requests whose specs share a trace key and arrive within the
        batch window join one :class:`_PriceGroup`; duplicates of the
        same artifact key within the group coalesce onto one future.
        """
        loop = asyncio.get_running_loop()
        gkey = rs.group_key()
        group = self._groups.get(gkey)
        if group is None:
            group = _PriceGroup()
            self._groups[gkey] = group
            task = asyncio.ensure_future(self._flush_group(gkey, group))
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        future, first = group.add(rs.artifact_key(), rs, loop)
        value, outcome = await future
        if not first:
            return value, "coalesced"
        return value, outcome

    async def _flush_group(self, gkey: Hashable, group: _PriceGroup) -> None:
        await asyncio.sleep(self.config.batch_window_s)
        self._groups.pop(gkey, None)
        entries = list(group.entries.items())
        if len(entries) >= 2:
            self.stats["batched_groups"] += 1
            self.stats["batched_requests"] += len(entries)
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._pool, self._price_entries, entries
            )
        except Exception as exc:
            for _key, (_rs, future) in entries:
                if not future.done():
                    future.set_exception(exc)
            return
        for key, (_rs, future) in entries:
            if not future.done():
                future.set_result(results[key])

    def _price_entries(self, entries) -> dict[Hashable, tuple[object, str]]:
        """Price one group's unique artifacts (executor thread).

        The group shares one workload: the trace is materialised once
        (``build_workload`` itself goes through the artifact cache) and
        each requested scheme is priced against it through the scheme's
        ``pricing_session()`` — exactly what ``_price_spec`` computes,
        so the stored value and the sealed payload match offline pricing
        byte for byte.
        """
        from repro.core.schemes import scheme_suite

        workload_box: list = []
        out: dict[Hashable, tuple[object, str]] = {}
        for key, (rs, _future) in entries:

            def price(rs: RequestSpec = rs) -> object:
                if not workload_box:
                    workload_box.append(rs.spec.build_workload())
                workload = workload_box[0]
                scheme = scheme_suite(workload.protected_bytes)[rs.scheme]
                model = workload.performance_model()
                return model.run(
                    workload.trace.phases, scheme, batches=workload.trace.batches
                )

            out[key] = self._fetch_sync(key, price)
        return out

    def _fetch_sync(
        self, key: Hashable, builder: Callable[[], object]
    ) -> tuple[object, str]:
        """Single-flight + artifact-cache fetch (executor thread).

        Returns ``(value, outcome)`` where outcome is ``"coalesced"``
        (waited on an identical in-flight computation), ``"warm_hits"``
        (cache served it without building) or ``"computed"``.
        """
        future, leader = self.flights.begin(key)
        if not leader:
            return future.result(), "coalesced"
        try:
            misses_before = TRACE_CACHE.misses
            value = TRACE_CACHE.get_or_build(key, builder)
            outcome = "warm_hits" if TRACE_CACHE.misses == misses_before else "computed"
        except BaseException as exc:
            self.flights.finish(key, future, error=exc)
            raise
        self.flights.finish(key, future, result=value)
        return value, outcome
