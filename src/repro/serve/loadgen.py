"""Closed- and open-loop load generation against the serving front-end.

Spins up a :class:`~repro.serve.server.ProtectionServer`, connects
``tenants`` real attested clients, and drives a deterministic request
mix (seeded RNG over the registered catalog):

* **closed loop** — every tenant keeps exactly one request in flight,
  issuing its next the moment a reply arrives; measures sustained
  throughput at fixed concurrency;
* **open loop** — requests arrive on a fixed-rate schedule regardless
  of completions; measures tail latency under offered load (and drives
  the server into admission-control ``BUSY`` territory when the rate
  outruns it).

The report carries everything the CI smoke gate asserts: nothing lost
(every request answered ``ok``/``busy``/``error``), every reply
MAC-verified under its tenant's key, and identical (name, scheme)
requests answered with byte-identical payloads.  The bench suite
(``benchmarks/test_serve_bench.py``) re-exports the same numbers as
``serve_`` entries for ``bench_trend.py``.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field

from repro.host.attestation import ManufacturerCa
from repro.serve.protocol import (
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_OK,
    TenantClient,
    WorkReply,
)
from repro.serve.server import SERVE_FIRMWARE, ProtectionServer, ServerConfig

#: Default request mix (name, scheme); ``None`` scheme = catalog default.
DEFAULT_MIX: tuple[tuple[str, str | None], ...] = (
    ("dnn-alexnet", "MGX"),
    ("dnn-alexnet", "NP"),
    ("dnn-dlrm", "MGX"),
    ("pagerank", "MGX"),
    ("bfs", "MGX"),
    ("genome-align", None),
    ("video-decode", None),
)

SERVE_KERNEL = b"mgx-serve-kernel-v1"


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation run."""

    tenants: int = 16
    requests: int = 200  # total requests across all tenants
    mix: tuple[tuple[str, str | None], ...] = DEFAULT_MIX
    mode: str = "closed"  # "closed" | "open"
    rate: float = 200.0  # open-loop arrivals per second
    seed: int = 1234
    server: ServerConfig = field(default_factory=ServerConfig)


@dataclass
class LoadReport:
    """What a run measured (plus the server's own counters)."""

    mode: str
    tenants: int
    sent: int
    ok: int
    busy: int
    errors: int
    lost: int  # sent - answered; the smoke gate pins this at 0
    mac_verified: int  # replies whose GCM tag verified client-side
    payload_mismatches: int  # same (name, scheme) answered differently
    duration_s: float
    throughput_rps: float  # answered requests per second, sustained
    latency_ms: dict[str, float]  # p50 / p95 / p99 over ok replies
    per_kind: dict[str, int]
    server_stats: dict[str, int]
    payloads: dict[str, str] = field(default_factory=dict, repr=False)

    def to_doc(self) -> dict:
        """JSON-ready summary (payloads elided; they can be megabytes)."""
        return {
            "mode": self.mode,
            "tenants": self.tenants,
            "sent": self.sent,
            "ok": self.ok,
            "busy": self.busy,
            "errors": self.errors,
            "lost": self.lost,
            "mac_verified": self.mac_verified,
            "payload_mismatches": self.payload_mismatches,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": {k: round(v, 3) for k, v in self.latency_ms.items()},
            "per_kind": self.per_kind,
            "server_stats": self.server_stats,
        }


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def _request_schedule(config: LoadConfig) -> list[tuple[int, str, str | None]]:
    """Deterministic (tenant, name, scheme) sequence for the run."""
    rng = random.Random(config.seed)
    schedule = []
    for i in range(config.requests):
        name, scheme = config.mix[rng.randrange(len(config.mix))]
        schedule.append((i % config.tenants, name, scheme))
    return schedule


async def _run_async(config: LoadConfig) -> LoadReport:
    ca = ManufacturerCa(b"serve-root-secret")
    server = ProtectionServer(ca=ca, config=config.server)
    replies: list[tuple[str, str | None, WorkReply]] = []
    latencies: list[float] = []

    async with server:
        clients = [
            TenantClient(
                ca,
                expected_firmware=SERVE_FIRMWARE,
                kernel=SERVE_KERNEL,
                nonce=f"tenant-{i:04d}-{config.seed}".encode(),
            )
            for i in range(config.tenants)
        ]
        for client in clients:
            await client.connect(server)
        schedule = _request_schedule(config)

        async def issue(tenant: int, name: str, scheme: str | None) -> None:
            started = time.perf_counter()
            reply = await clients[tenant].request(name, scheme)
            if reply.status == STATUS_OK:
                latencies.append((time.perf_counter() - started) * 1e3)
            replies.append((name, scheme, reply))

        started = time.perf_counter()
        if config.mode == "closed":
            # One request in flight per tenant: each tenant walks its
            # slice of the schedule sequentially.
            per_tenant: dict[int, list[tuple[str, str | None]]] = {}
            for tenant, name, scheme in schedule:
                per_tenant.setdefault(tenant, []).append((name, scheme))

            async def drive(tenant: int) -> None:
                for name, scheme in per_tenant.get(tenant, []):
                    await issue(tenant, name, scheme)

            await asyncio.gather(*(drive(t) for t in range(config.tenants)))
        elif config.mode == "open":
            # Fixed-rate arrivals, issued regardless of completions.
            interval = 1.0 / config.rate if config.rate > 0 else 0.0
            tasks = []
            for i, (tenant, name, scheme) in enumerate(schedule):
                target = started + i * interval
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.ensure_future(issue(tenant, name, scheme)))
            await asyncio.gather(*tasks)
        else:
            raise ValueError(f"unknown load mode {config.mode!r}")
        duration = time.perf_counter() - started

        for client in clients:
            await client.close()

    ok = sum(1 for _, _, r in replies if r.status == STATUS_OK)
    busy = sum(1 for _, _, r in replies if r.status == STATUS_BUSY)
    errors = sum(1 for _, _, r in replies if r.status == STATUS_ERROR)
    per_kind: dict[str, int] = {}
    payloads: dict[str, str] = {}
    mismatches = 0
    for name, scheme, reply in replies:
        per_kind[name] = per_kind.get(name, 0) + 1
        if reply.status != STATUS_OK:
            continue
        label = f"{name}:{scheme or 'default'}"
        first = payloads.setdefault(label, reply.payload or "")
        if first != (reply.payload or ""):
            mismatches += 1
    return LoadReport(
        mode=config.mode,
        tenants=config.tenants,
        sent=len(schedule),
        ok=ok,
        busy=busy,
        errors=errors,
        lost=len(schedule) - (ok + busy + errors),
        mac_verified=sum(c.mac_verified for c in clients),
        payload_mismatches=mismatches,
        duration_s=duration,
        throughput_rps=(ok + busy + errors) / duration if duration > 0 else 0.0,
        latency_ms={
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
        },
        per_kind=dict(sorted(per_kind.items())),
        server_stats=dict(server.stats),
        payloads=payloads,
    )


def run_load(config: LoadConfig) -> LoadReport:
    """Run one load-generation pass (its own event loop)."""
    return asyncio.run(_run_async(config))
