"""``python -m repro.serve`` — drive the serving front-end under load.

Boots the in-process multi-tenant server, connects attested tenants,
runs the configured load, and prints the report.  ``--verify``
recomputes every distinct (name, scheme) payload offline through the
artifact graph and asserts byte-identity with what the server sealed;
the CI ``serve-smoke`` job runs exactly this.

Exit status is non-zero if any request was lost, any reply failed MAC
verification, identical requests got different payloads, or ``--verify``
found a divergence from offline pricing.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.loadgen import DEFAULT_MIX, LoadConfig, LoadReport, run_load
from repro.serve.server import ServerConfig


def _parse_mix(kinds: str | None) -> tuple[tuple[str, str | None], ...]:
    """``name[:scheme]`` comma list → request mix (default: full catalog)."""
    if not kinds:
        return DEFAULT_MIX
    mix = []
    for item in kinds.split(","):
        name, _, scheme = item.strip().partition(":")
        mix.append((name, scheme or None))
    return tuple(mix)


def _verify_offline(report: LoadReport) -> list[str]:
    """Recompute every distinct payload offline; return divergences."""
    from repro.experiments.registry import resolve_request

    failures = []
    for label, payload in sorted(report.payloads.items()):
        name, _, scheme = label.partition(":")
        rs = resolve_request(name, None if scheme == "default" else scheme)
        if rs.offline_payload() != payload:
            failures.append(label)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant serving front-end load driver",
    )
    parser.add_argument("--tenants", type=int, default=16)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--kinds",
        type=str,
        default=None,
        help="comma list of name[:scheme] requests (default: the full catalog mix)",
    )
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument(
        "--rate",
        type=float,
        default=200.0,
        help="open-loop arrival rate, requests/sec",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="global admission cap on in-flight requests",
    )
    parser.add_argument(
        "--per-tenant", type=int, default=4, help="per-tenant in-flight cap"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pricing thread-pool size"
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="trace-batching window, seconds",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="assert payloads are byte-identical to offline artifact-graph pricing",
    )
    args = parser.parse_args(argv)

    config = LoadConfig(
        tenants=args.tenants,
        requests=args.requests,
        mix=_parse_mix(args.kinds),
        mode=args.mode,
        rate=args.rate,
        seed=args.seed,
        server=ServerConfig(
            queue_depth=args.queue_depth,
            per_tenant_inflight=args.per_tenant,
            pricing_workers=args.workers,
            batch_window_s=args.batch_window,
        ),
    )
    report = run_load(config)
    doc = report.to_doc()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"serve[{report.mode}] tenants={report.tenants} "
            f"sent={report.sent} ok={report.ok} busy={report.busy} "
            f"errors={report.errors} lost={report.lost}"
        )
        print(
            f"  throughput {report.throughput_rps:.1f} req/s over "
            f"{report.duration_s:.2f}s; latency ms "
            f"p50={report.latency_ms['p50']:.2f} "
            f"p95={report.latency_ms['p95']:.2f} "
            f"p99={report.latency_ms['p99']:.2f}"
        )
        print(
            f"  mac_verified={report.mac_verified} "
            f"payload_mismatches={report.payload_mismatches}"
        )
        print(f"  server: {report.server_stats}")

    status = 0
    if report.lost != 0:
        print(f"FAIL: {report.lost} requests lost", file=sys.stderr)
        status = 1
    if report.mac_verified < report.ok:
        print(
            f"FAIL: only {report.mac_verified}/{report.ok} replies MAC-verified",
            file=sys.stderr,
        )
        status = 1
    if report.payload_mismatches:
        print(
            f"FAIL: {report.payload_mismatches} payload mismatches "
            "between identical requests",
            file=sys.stderr,
        )
        status = 1
    if args.verify:
        failures = _verify_offline(report)
        if failures:
            print(
                f"FAIL: payloads diverge from offline pricing: {failures}",
                file=sys.stderr,
            )
            status = 1
        else:
            # Stderr so --json output stays machine-parseable.
            print(
                f"verified {len(report.payloads)} distinct payloads "
                "against offline artifact-graph pricing",
                file=sys.stderr,
            )
    return status


if __name__ == "__main__":
    sys.exit(main())
