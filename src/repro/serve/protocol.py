"""Serving wire protocol: sealed work records + the tenant-side client.

Every message after the attestation handshake travels as an AES-GCM
record on the tenant's session channel (:class:`repro.host.channel.
SecureChannel`), so requests and replies are encrypted, authenticated
and replay-protected under **per-tenant** keys — the GCM tag is the
response MAC, and only the tenant that opened the session can verify
(or forge) its records.  Message bodies are canonical JSON (sorted
keys, no whitespace), so identical logical messages are byte-identical
on the wire.

The handshake itself is the §II flow of :mod:`repro.host.session`: the
client sends a fresh nonce + DH public value, the server's device
completes the exchange and returns a quote the client verifies against
the manufacturer CA before deriving the channel key.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.host.attestation import ManufacturerCa, measurement
from repro.host.channel import SecureChannel
from repro.host.dh import DhParty
from repro.host.session import derive_channel_key, dh_transcript, verify_session_quote

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.server import ProtectionServer, TenantConnection

#: Reply status values.
STATUS_OK = "ok"
STATUS_BUSY = "busy"
STATUS_ERROR = "error"

#: Additional authenticated data binding records to their protocol role:
#: a request record cannot be replayed to the server as a reply (or vice
#: versa) even under the same key and sequence number.
REQUEST_AAD = b"mgx-serve-request"
REPLY_AAD = b"mgx-serve-reply"


def canonical_dumps(doc: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class WorkRequest:
    """One tenant request: a registered workload name (+ scheme)."""

    request_id: int
    name: str
    scheme: str | None = None

    def encode(self) -> bytes:
        return canonical_dumps(
            {"id": self.request_id, "name": self.name, "scheme": self.scheme}
        )

    @classmethod
    def decode(cls, payload: bytes) -> "WorkRequest":
        doc = json.loads(payload)
        return cls(
            request_id=int(doc["id"]), name=doc["name"], scheme=doc.get("scheme")
        )


@dataclass(frozen=True)
class WorkReply:
    """One sealed response.

    ``status`` is :data:`STATUS_OK` with the artifact payload (the disk
    codec's deterministic JSON, byte-identical to offline artifact-graph
    pricing of the same spec), :data:`STATUS_BUSY` for an admission
    rejection (the request was *answered*, not dropped — retry later),
    or :data:`STATUS_ERROR` with a diagnostic detail.
    """

    request_id: int
    status: str
    kind: str | None = None
    payload: str | None = None
    detail: str | None = None

    def encode(self) -> bytes:
        return canonical_dumps(
            {
                "id": self.request_id,
                "status": self.status,
                "kind": self.kind,
                "payload": self.payload,
                "detail": self.detail,
            }
        )

    @classmethod
    def decode(cls, payload: bytes) -> "WorkReply":
        doc = json.loads(payload)
        return cls(
            request_id=int(doc["id"]),
            status=doc["status"],
            kind=doc.get("kind"),
            payload=doc.get("payload"),
            detail=doc.get("detail"),
        )


class TenantClient:
    """One tenant: attested handshake, sealed requests, verified replies.

    The client owns the user side of the session — it verifies the
    device's quote before deriving keys, seals every request, and
    MAC-verifies every reply (a reply that fails GCM verification raises
    :class:`~repro.common.errors.IntegrityError` out of the pending
    request).  Requests may be issued concurrently; replies arrive in
    the server's completion order and are matched by request id, while
    the channel's sequence numbers keep the record stream itself
    replay-protected.
    """

    def __init__(
        self,
        ca: ManufacturerCa,
        expected_firmware: bytes,
        kernel: bytes,
        nonce: bytes,
    ) -> None:
        self._ca = ca
        self._expected_firmware = expected_firmware
        self._kernel = kernel
        self.nonce = nonce
        self._channel: SecureChannel | None = None
        self._connection: "TenantConnection | None" = None
        self._reader: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count()
        #: Replies whose GCM tag verified under this tenant's key.
        self.mac_verified = 0

    async def connect(self, server: "ProtectionServer") -> None:
        """Run the attestation/DH handshake and start the reply reader."""
        user_dh = DhParty(self.nonce + b"user-entropy")
        device_public, quote, connection = server.open_session(
            self.nonce, user_dh.public, measurement(self._kernel)
        )
        transcript = dh_transcript(user_dh.public, device_public)
        verify_session_quote(
            self._ca,
            quote,
            expected_firmware=self._expected_firmware,
            kernel=self._kernel,
            nonce=self.nonce,
            transcript=transcript,
        )
        shared = user_dh.shared_secret(device_public)
        self._channel = SecureChannel(
            derive_channel_key(shared, transcript), direction=0
        )
        self._connection = connection
        self._reader = asyncio.create_task(self._read_replies())

    @property
    def channel(self) -> SecureChannel:
        if self._channel is None:
            raise ConfigError("client is not connected")
        return self._channel

    async def request(self, name: str, scheme: str | None = None) -> WorkReply:
        """Submit one workload request; resolves when its reply arrives."""
        if self._connection is None:
            raise ConfigError("client is not connected")
        request = WorkRequest(request_id=next(self._ids), name=name, scheme=scheme)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request.request_id] = future
        # Seal + enqueue without an intervening await: the channel's
        # sequence numbers are assigned at seal time, and the server
        # decrypts records strictly in sequence order.
        record = self.channel.send(request.encode(), aad=REQUEST_AAD)
        self._connection.submit(record)
        return await future

    async def _read_replies(self) -> None:
        assert self._connection is not None
        while True:
            record = await self._connection.replies.get()
            if record is None:  # server closed the connection
                break
            sequence, ciphertext, tag = record
            try:
                payload = self.channel.receive(sequence, ciphertext, tag, aad=REPLY_AAD)
            except Exception as exc:
                # A reply that fails MAC verification poisons the oldest
                # pending request: the failure must surface, not hang.
                self._fail_pending(exc)
                continue
            self.mac_verified += 1
            reply = WorkReply.decode(payload)
            future = self._pending.pop(reply.request_id, None)
            if future is not None and not future.done():
                future.set_result(reply)

    def _fail_pending(self, exc: Exception) -> None:
        for request_id in sorted(self._pending):
            future = self._pending.pop(request_id)
            if not future.done():
                future.set_exception(exc)
            break

    async def close(self) -> None:
        """Stop the reader task (the session itself is dropped with it)."""
        if self._reader is not None:
            self._reader.cancel()
            try:
                await self._reader
            except asyncio.CancelledError:
                pass
            self._reader = None
