"""Protection-as-a-service: the asyncio multi-tenant serving front-end.

Builds the concurrent service of the ROADMAP's "millions of users"
direction on the §II session substrate: tenants perform the real
attestation/DH handshake (:mod:`repro.host`), submit registered workload
requests (DNN inference, PageRank/BFS, genome alignment, video decode)
over their AES-GCM record channel, and receive MAC-sealed results priced
through the artifact graph — identical requests coalesced single-flight,
compatible pricings batched over one shared trace, overload rejected
explicitly by admission control.

* :mod:`repro.serve.protocol` — wire messages + the tenant-side client;
* :mod:`repro.serve.server` — the server (admission, coalescing,
  batching, per-tenant sessions);
* :mod:`repro.serve.loadgen` — closed/open-loop load generator with
  sustained-throughput and tail-latency reporting;
* ``python -m repro.serve`` — CLI wiring it all together (the CI
  ``serve-smoke`` gate drives it).
"""

from repro.serve.loadgen import LoadConfig, LoadReport, run_load
from repro.serve.protocol import (
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_OK,
    TenantClient,
    WorkReply,
    WorkRequest,
)
from repro.serve.server import ProtectionServer, ServerConfig

__all__ = [
    "LoadConfig",
    "LoadReport",
    "run_load",
    "STATUS_BUSY",
    "STATUS_ERROR",
    "STATUS_OK",
    "TenantClient",
    "WorkReply",
    "WorkRequest",
    "ProtectionServer",
    "ServerConfig",
]
