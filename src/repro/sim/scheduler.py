"""Artifact-graph scheduler: the suite's content-addressed job graph.

The whole evaluation — timing sweeps *and* functionally-verified crypto
pipelines — is modelled as one **artifact graph**.  A job is
``(kind, content key, dependencies)`` and produces a codec-serialized
artifact in the shared cache (:data:`~repro.sim.runner.TRACE_CACHE`,
whose disk tier is the cross-process / cross-machine substrate):

* ``trace`` — a workload's generated trace, spilled through the trace
  cache so every consumer can reach it without re-shipping it;
* ``result`` — one (workload × scheme) pricing, depending on its trace;
* ``sweep`` — the assembled five-scheme sweep under the exact cache key
  the serial drivers use, depending on its five results;
* ``profile`` — a functional-pipeline or table artifact: fig16's
  measured per-(chromosome, sequencer) D-SOFT tile factors, fig19's
  per-GOP decode/traffic profiles (see :mod:`repro.genome.profile` and
  :mod:`repro.video.profile`), and the ablation/extra families' whole
  rendered tables (``ExperimentResult.to_doc()`` docs; a table node
  soft-depends on the suite sweeps it assembles its rows from).

Two executors drain the graph, through **one** execution path
(:func:`compute_job` via :func:`_compute_job_shared`), so both populate
identical artifact sets — per-scheme ``result`` spills included:

* :func:`prefetch_artifacts` — **one shared process pool** inside a
  single run.  Ready nodes fan out immediately and each job is
  dispatched the moment its dependencies' artifacts exist, so pricing
  of workload A overlaps trace generation of workload B; the finished
  artifacts are then promoted under the serial drivers' exact cache
  keys, so figure tables are byte-identical to a serial run.
* :func:`repro.sim.queue.drain_graph` — a **file-lock work queue** over
  the shared cache directory, letting ``--workers`` processes on
  separate machines pointed at the same ``REPRO_CACHE_DIR`` drain one
  graph cooperatively.

Single-workload parallel sweeps (``sweep_schemes(..., jobs=N)``, the
trace-file CLI) ride the same shared pool: the trace is spilled once to
the scheduler's store and each scheme job references it by content
digest.

Prefetch spills go through :data:`~repro.sim.runner.TRACE_CACHE`'s
``cache_dir`` when one is attached (so they persist across runs) and a
process-lifetime temporary directory otherwise; one-off external traces
always use the temporary store, which :func:`shutdown` removes.
"""

from __future__ import annotations

import atexit
import mmap
import os
import shutil
import tempfile
import threading
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.perf import PerformanceModel, SimResult
    from repro.sim.runner import BatchedTrace, SchemeSweep, Workload

# ---------------------------------------------------------------------------
# Shared process pool
# ---------------------------------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}


def effective_workers(jobs: int | None) -> int:
    """Worker processes a ``jobs`` request can actually keep busy."""
    if jobs is None:
        return 1
    return max(1, min(jobs, os.cpu_count() or 1))


def shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The process pool shared by every sweep of the suite.

    Pools are keyed by worker count and live until process exit (or
    :func:`shutdown`), so repeated ``sweep_schemes(jobs=N)`` calls and
    whole-suite prefetches reuse warm workers instead of forking a fresh
    pool per sweep.
    """
    workers = effective_workers(jobs)
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def shutdown() -> None:
    """Tear down the shared pools and the temporary trace store."""
    global _SPILL_DIR
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()
    if _SPILL_DIR is not None:
        shutil.rmtree(_SPILL_DIR, ignore_errors=True)
        _SPILL_DIR = None


atexit.register(shutdown)

# ---------------------------------------------------------------------------
# Trace store
# ---------------------------------------------------------------------------

_SPILL_DIR: Path | None = None


def _temp_store_dir() -> Path:
    """Process-lifetime spill directory (removed by :func:`shutdown`)."""
    global _SPILL_DIR
    if _SPILL_DIR is None:
        _SPILL_DIR = Path(tempfile.mkdtemp(prefix="repro-sweep-store-"))
    return _SPILL_DIR


def trace_store_dir() -> Path:
    """Directory workload traces are spilled to for cross-worker sharing."""
    from repro.sim.runner import TRACE_CACHE

    if TRACE_CACHE.cache_dir is not None:
        return TRACE_CACHE.cache_dir
    return _temp_store_dir()


def store_trace(trace: "BatchedTrace") -> str:
    """Spill a one-off external trace; returns its content digest.

    External traces always land in the temporary store (cleaned at
    shutdown), never the persistent cache dir: their cache-key spill
    would duplicate them there with nothing ever reclaiming the space.
    The payload is the columnar binary layout of
    :mod:`repro.sim.spillfmt`, so every pool worker pricing this trace
    mmaps the same file — one copy of the columns in the OS page cache
    shared across ``--jobs``, instead of N independent JSON parses.
    """
    from repro.sim.runner import _encode_trace
    from repro.sim.tracefile import doc_digest

    payload = _encode_trace(trace)
    digest = doc_digest(payload)
    path = _temp_store_dir() / f"xtrace-{digest}.bin"
    if not path.exists():
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
    return digest


#: Worker-side memo of external traces, keyed by content digest, so a
#: worker pricing several schemes of one trace decodes the spill once.
#: Bounded: workers are long-lived (the pool is shared suite-wide), so
#: an unbounded memo would pin every trace ever priced in every worker.
#: (A memoized trace holds its mmap alive via the column views, which
#: is cheap: the pages are shared and reclaimable.)
_TRACE_MEMO: "OrderedDict[str, BatchedTrace]" = OrderedDict()
_TRACE_MEMO_ENTRIES = 8


def _load_stored_trace(digest: str, store_dir: str) -> "BatchedTrace":
    from repro.sim.runner import _decode_trace

    trace = _TRACE_MEMO.get(digest)
    if trace is None:
        path = Path(store_dir) / f"xtrace-{digest}.bin"
        try:
            with open(path, "rb") as f:
                payload: object = mmap.mmap(f.fileno(), 0,
                                            access=mmap.ACCESS_READ)
        except FileNotFoundError:
            # A store populated by an older process: fall back to the
            # legacy JSON spill name.
            payload = (Path(store_dir) / f"xtrace-{digest}.json").read_text()
        trace = _decode_trace(payload)
        _TRACE_MEMO[digest] = trace
        while len(_TRACE_MEMO) > _TRACE_MEMO_ENTRIES:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(digest)
    return trace


# ---------------------------------------------------------------------------
# Single-flight coalescing
# ---------------------------------------------------------------------------

class SingleFlight:
    """Coalesce concurrent computations of one artifact key.

    The serving front-end (:mod:`repro.serve`) receives many identical
    requests at once — N tenants asking for the same ``ArtifactJob`` key.
    Computing the artifact N times is wasted work (the results are
    byte-identical), so the first caller of :meth:`run` for a key becomes
    the **leader** and actually computes; every concurrent caller with
    the same key becomes a **follower** and waits on the leader's future
    instead.  Once the leader finishes, the key leaves the in-flight
    table — a later call computes afresh (the artifact cache, not this
    table, is the memoization layer).

    Thread-safe: leaders may run on executor threads while followers
    wait from others.  A leader's exception propagates to every waiter
    of that flight and is not sticky.  ``leaders``/``followers`` count
    flights for observability (the serve stats and the coalescing tests
    pin against them).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, Future] = {}
        self.leaders = 0
        self.followers = 0

    def begin(self, key: Hashable) -> tuple[Future, bool]:
        """Join (or open) the flight for ``key``.

        Returns ``(future, leader)``.  A leader **must** complete the
        future via :meth:`finish`; followers just wait on it.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self.followers += 1
                return future, False
            future = Future()
            self._inflight[key] = future
            self.leaders += 1
            return future, True

    def finish(self, key: Hashable, future: Future,
               result: object = None, error: BaseException | None = None) -> None:
        """Retire a leader's flight, waking every follower."""
        with self._lock:
            self._inflight.pop(key, None)
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def run(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Compute (or wait for) the value of ``key`` — blocking form."""
        future, leader = self.begin(key)
        if not leader:
            return future.result()
        try:
            value = compute()
        except BaseException as exc:
            self.finish(key, future, error=exc)
            raise
        self.finish(key, future, result=value)
        return value


# ---------------------------------------------------------------------------
# Workload specifications
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepSpec:
    """A (workload, all-schemes) sweep request the scheduler can ship.

    Specs are tiny and picklable: workers rebuild the workload from the
    spec through their own trace cache (memory tier, then the shared
    disk store, then regeneration), so no trace crosses the pipe.
    """

    kind: str  # "dnn" | "graph"
    params: tuple

    def sweep_key(self) -> Hashable:
        """The exact TRACE_CACHE key the serial drivers use."""
        if self.kind == "dnn":
            return ("dnn-sweep", *self.params)
        from repro.graph.graphlily import GraphAcceleratorConfig

        return ("graph-sweep", *self.params, GraphAcceleratorConfig().cache_key())

    def trace_key(self) -> Hashable:
        """The workload's trace-artifact key (the warm node's output)."""
        if self.kind == "dnn":
            return ("dnn-trace", *self.params)
        from repro.graph.graphlily import GraphAcceleratorConfig

        return ("graph-trace", *self.params, GraphAcceleratorConfig().cache_key())

    def result_key(self, scheme: str) -> Hashable:
        """The (workload × scheme) result-artifact key (a price node)."""
        if self.kind == "dnn":
            return ("dnn-result", *self.params, scheme)
        from repro.graph.graphlily import GraphAcceleratorConfig

        return ("graph-result", *self.params,
                GraphAcceleratorConfig().cache_key(), scheme)

    def label(self) -> str:
        """The workload label, computed without building the trace."""
        from repro.sim.runner import dnn_label, graph_label

        if self.kind == "dnn":
            model, config, training, _batch = self.params
            return dnn_label(model, config, training)
        return graph_label(self.params[0], self.params[1])

    def build_workload(self) -> "Workload":
        from repro.sim import runner

        if self.kind == "dnn":
            model, config, training, batch = self.params
            return runner.dnn_workload(model, config, training=training,
                                       batch=batch)
        benchmark, algorithm, iterations, scale_divisor = self.params
        return runner.graph_workload(benchmark, algorithm,
                                     iterations=iterations,
                                     scale_divisor=scale_divisor)

    def run_inline(self) -> "SchemeSweep":
        """Serial fallback: the ordinary cached sweep in this process."""
        from repro.sim import runner

        if self.kind == "dnn":
            model, config, training, batch = self.params
            return runner.dnn_sweep(model, config, training=training, batch=batch)
        benchmark, algorithm, iterations, scale_divisor = self.params
        return runner.graph_sweep(benchmark, algorithm, iterations=iterations,
                                  scale_divisor=scale_divisor)


def dnn_spec(model: str, config: str = "Cloud", training: bool = False,
             batch: int = 1) -> SweepSpec:
    return SweepSpec("dnn", (model, config, training, batch))


def graph_spec(benchmark: str, algorithm: str = "PR",
               iterations: int | None = None,
               scale_divisor: int = 64) -> SweepSpec:
    return SweepSpec("graph", (benchmark, algorithm, iterations, scale_divisor))


@dataclass(frozen=True)
class ProfileSpec:
    """A functional-pipeline or table artifact request (profile nodes).

    Like :class:`SweepSpec`, a profile spec is tiny, picklable and
    hashable; its artifact is a JSON-primitive dict produced by a pure
    entry point and keyed on the full configuration content, so equal
    configurations share one cached measurement across processes and
    machines.  Kinds:

    * ``gact``/``gop`` — fig16/fig19 functional pipelines
      (:mod:`repro.genome.profile`, :mod:`repro.video.profile`);
    * ``ablation``/``extra`` — whole rendered tables of the ablation and
      beyond-the-figures families, serialized as
      :meth:`~repro.experiments.base.ExperimentResult.to_doc` docs.  A
      table node may depend on suite sweeps it consumes (see
      :meth:`dep_keys`), which the graph wires up when those sweeps are
      present so cooperating workers assemble tables from cached results
      instead of repricing.
    """

    kind: str  # "gact" | "gop" | "ablation" | "extra"
    params: tuple

    def artifact_key(self) -> Hashable:
        if self.kind == "gact":
            from repro.genome.dsoft import DsoftConfig

            chromosome, sequencer, probe_reads, seed = self.params
            return ("gact-profile", chromosome, sequencer, probe_reads,
                    seed, DsoftConfig().cache_key())
        if self.kind == "gop":
            from repro.video.decoder import DecoderConfig
            from repro.video.profile import (
                FUNCTIONAL_DATA_BYTES,
                FUNCTIONAL_MAC_GRANULARITY,
            )

            pattern, n_frames, functional_frames = self.params
            return ("gop-profile", pattern, n_frames, functional_frames,
                    FUNCTIONAL_DATA_BYTES, FUNCTIONAL_MAC_GRANULARITY,
                    DecoderConfig().cache_key())
        if self.kind in ("ablation", "extra"):
            if self.kind == "ablation":
                from repro.experiments.ablations import table_key_params
            else:
                from repro.experiments.extras import table_key_params

            name, quick = self.params
            # The study's parameter content is part of the address, like
            # the gact/gop keys embed their pipeline configs: changing a
            # study's inputs re-keys its table instead of serving stale
            # rows from a shared cache dir.
            return (f"{self.kind}-profile", name, quick,
                    *table_key_params(name, quick))
        raise ValueError(f"unknown profile spec kind {self.kind!r}")

    def dep_keys(self) -> tuple:
        """Artifact keys this node consumes when they are available.

        Only table nodes have any: the extras assemble their rows from
        ordinary suite sweeps.  These are *soft* dependencies —
        :func:`build_graph` wires up only the ones the same graph
        produces, and a table node can always rebuild a missing sweep
        inline through the trace cache.
        """
        if self.kind == "extra":
            from repro.experiments.extras import table_dep_specs

            name, quick = self.params
            return tuple(s.sweep_key() for s in table_dep_specs(name, quick))
        return ()

    def build_profile(self) -> dict:
        """Run the pipeline/study (the expensive, cacheable part)."""
        if self.kind == "gact":
            from repro.genome.profile import measure_tile_profile

            chromosome, sequencer, probe_reads, seed = self.params
            return measure_tile_profile(chromosome, sequencer, probe_reads,
                                        seed=seed)
        if self.kind == "gop":
            from repro.video.profile import decode_profile

            pattern, n_frames, functional_frames = self.params
            return decode_profile(pattern, n_frames, functional_frames)
        if self.kind == "ablation":
            from repro.experiments.ablations import ABLATIONS

            name, quick = self.params
            return ABLATIONS[name](quick=quick).to_doc()
        if self.kind == "extra":
            from repro.experiments.extras import EXTRAS

            name, quick = self.params
            return EXTRAS[name](quick=quick).to_doc()
        raise ValueError(f"unknown profile spec kind {self.kind!r}")

    def fetch(self) -> dict:
        """The cached profile, built on a miss — the figure drivers' entry."""
        from repro.sim.runner import TRACE_CACHE

        return TRACE_CACHE.get_or_build(self.artifact_key(), self.build_profile)


def gact_profile_spec(chromosome: str, sequencer: str, probe_reads: int,
                      seed: int = 11) -> ProfileSpec:
    """Fig. 16's measured D-SOFT tile factor for one (chromosome, sequencer)."""
    return ProfileSpec("gact", (chromosome, sequencer, probe_reads, seed))


def gop_profile_spec(pattern: str, n_frames: int,
                     functional_frames: int) -> ProfileSpec:
    """Fig. 19's decode/traffic profile for one GOP configuration."""
    return ProfileSpec("gop", (pattern, n_frames, functional_frames))


def ablation_table_spec(name: str, quick: bool = False) -> ProfileSpec:
    """One ablation study's whole rendered table as a graph artifact."""
    return ProfileSpec("ablation", (name, bool(quick)))


def extra_table_spec(name: str, quick: bool = False) -> ProfileSpec:
    """One beyond-the-figures study's table as a graph artifact."""
    return ProfileSpec("extra", (name, bool(quick)))


# ---------------------------------------------------------------------------
# The artifact graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArtifactJob:
    """One node of the content-addressed job graph.

    ``key`` is the artifact's exact :data:`~repro.sim.runner.TRACE_CACHE`
    key (its content address — the disk-tier file name is a stable digest
    of it); ``deps`` are the keys whose artifacts must exist before this
    job can run.  Jobs are tiny, picklable and hashable, so the same
    graph can be drained by the in-process pool or by the file-lock
    queue across machines.
    """

    kind: str  # "trace" | "result" | "sweep" | "profile"
    key: tuple
    spec: "SweepSpec | ProfileSpec"
    scheme: str | None = None
    deps: tuple = ()

    def job_id(self) -> str:
        """Filesystem-safe stable identity (the queue's lock-file name)."""
        from repro.sim.runner import _key_digest

        return f"{self.kind}-{_key_digest(self.key)}"


def build_graph(specs: Iterable["SweepSpec | ProfileSpec"]) -> list[ArtifactJob]:
    """Expand specs into a deterministic, topologically-ordered job list.

    Every sweep spec becomes a ``trace`` node, one ``result`` node per
    suite scheme (depending on the trace) and a ``sweep`` assembly node
    (depending on the results); profile specs become single ``profile``
    nodes, depending on whichever of their soft dependencies
    (:meth:`ProfileSpec.dep_keys`) earlier specs in the sequence produce
    — so a table node waits for the sweeps it consumes instead of
    repricing them, but never blocks on artifacts no job makes.
    Dependencies always precede their dependents, and the order is a
    pure function of the spec sequence — every cooperating process
    derives the identical graph.
    """
    from repro.sim.runner import SCHEMES

    jobs: list[ArtifactJob] = []
    seen: set = set()
    produced: set = set()
    for spec in specs:
        if spec in seen:
            continue
        seen.add(spec)
        if isinstance(spec, ProfileSpec):
            deps = tuple(k for k in spec.dep_keys() if k in produced)
            jobs.append(ArtifactJob("profile", spec.artifact_key(), spec,
                                    deps=deps))
            produced.add(spec.artifact_key())
            continue
        trace_key = spec.trace_key()
        jobs.append(ArtifactJob("trace", trace_key, spec))
        result_keys = tuple(spec.result_key(name) for name in SCHEMES)
        for name, key in zip(SCHEMES, result_keys):
            jobs.append(
                ArtifactJob("result", key, spec, scheme=name, deps=(trace_key,))
            )
        jobs.append(ArtifactJob("sweep", spec.sweep_key(), spec,
                                deps=result_keys))
        produced.update((trace_key, spec.sweep_key(), *result_keys))
    return jobs


def compute_job(job: ArtifactJob, attempt: int = 0) -> None:
    """Execute one job inline, storing its artifact in the shared cache.

    This is the single execution path the file-lock queue workers use;
    every kind stores under its content key through
    :data:`~repro.sim.runner.TRACE_CACHE`, whose disk tier (atomic
    tmp+rename writes) makes concurrent duplicate computation harmless —
    deterministic jobs produce byte-identical artifacts.

    ``attempt`` is the job's persisted failure count (from the queue's
    attempt records, or a local retry counter): it indexes the
    ``compute`` fault-injection decision, so whether a given attempt of
    a given job crashes is identical across workers and orderings —
    the property that makes quarantine sets deterministic.
    """
    from repro.sim import faults
    from repro.sim.runner import SCHEMES, TRACE_CACHE, SchemeSweep

    faults.maybe_fault("compute", job.job_id(), attempt=attempt)
    if job.kind == "trace":
        job.spec.build_workload()  # get_or_build spills under the trace key
    elif job.kind == "result":
        TRACE_CACHE.put(job.key, _price_spec(job.spec, job.scheme))
    elif job.kind == "profile":
        TRACE_CACHE.put(job.key, job.spec.build_profile())
    elif job.kind == "sweep":
        sweep = SchemeSweep(workload=job.spec.label())
        for name, key in zip(SCHEMES, job.deps):
            result = TRACE_CACHE.peek(key)
            if result is None:
                # The dep passed the queue's existence check but does not
                # decode (stale codec version, truncated spill) — or was
                # never spilled at all.  Rebuild transparently, exactly
                # as the serial get_or_build path would.
                result = _price_spec(job.spec, name)
                TRACE_CACHE.put(key, result)
            sweep.results[name] = result
        TRACE_CACHE.put(job.key, sweep)
    else:
        raise ValueError(f"unknown artifact job kind {job.kind!r}")


# ---------------------------------------------------------------------------
# Worker entry points (must be picklable module functions)
# ---------------------------------------------------------------------------

def _attach_store(store_dir: str) -> None:
    """Point the worker's trace cache at the shared trace store.

    Workers are long-lived (the pool is shared suite-wide), so their
    memory tier is also tightened: the disk store is the system of
    record, and a small hot set per worker prevents every worker from
    pinning the whole suite's traces in memory.

    Re-pointing to a *different* store drops the memory tier first: an
    artifact's existence in the shared store is its completion marker,
    and a worker whose memory still holds keys from a previous store
    must not skip the spill the new store is waiting for.
    """
    from repro.sim.runner import TRACE_CACHE

    TRACE_CACHE.max_entries = min(TRACE_CACHE.max_entries, 32)
    if TRACE_CACHE.cache_dir is None or str(TRACE_CACHE.cache_dir) != store_dir:
        TRACE_CACHE.clear()
        TRACE_CACHE.set_cache_dir(store_dir)


def _compute_job_shared(job: ArtifactJob, store_dir: str, attempt: int = 0,
                        fault_spec: str | None = None) -> None:
    """Pool entry point for a file-lock queue worker's claimed job.

    Attaches the worker's trace cache to the shared store, then runs the
    single inline execution path; the artifact's atomic tmp+rename spill
    makes a duplicate computation (claim reclaimed mid-flight) harmless.

    ``fault_spec`` carries the parent's chaos plan explicitly: pool
    workers are long-lived and shared, so a plan installed in the parent
    *after* the pool forked would never reach them through the
    environment alone.
    """
    from repro.sim import faults
    from repro.sim.runner import TRACE_CACHE

    if fault_spec != faults.active_spec():
        faults.install(fault_spec)
    _attach_store(store_dir)
    if not TRACE_CACHE.has(job.key):
        compute_job(job, attempt=attempt)


def _price_spec(spec: SweepSpec, scheme_name: str) -> "SimResult":
    """One (workload × scheme) pricing; the workload comes via the cache."""
    from repro.core.schemes import scheme_suite

    workload = spec.build_workload()
    scheme = scheme_suite(workload.protected_bytes)[scheme_name]
    model = workload.performance_model()
    return model.run(workload.trace.phases, scheme, batches=workload.trace.batches)


def _price_stored_job(digest: str, store_dir: str, model: "PerformanceModel",
                      scheme) -> "SimResult":
    """Price node for an externally-supplied (spilled) trace."""
    trace = _load_stored_trace(digest, store_dir)
    return model.run(trace.phases, scheme, batches=trace.batches)


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------

def parallel_sweep(workload: str, phases, model: "PerformanceModel", suite: dict,
                   names: Sequence[str], batches, jobs: int) -> "SchemeSweep":
    """All schemes of one workload across the shared pool.

    The trace is spilled once to the scheduler store; each scheme job
    references it by digest, so the per-job payload is the (small)
    scheme object and performance model.  Results are collected in
    presentation order — bit-identical to the serial path.
    """
    from repro.core.access import AccessBatch
    from repro.sim.runner import BatchedTrace, SchemeSweep

    if batches is None:
        batches = [AccessBatch.from_phase(phase) for phase in phases]
    digest = store_trace(BatchedTrace(list(phases), list(batches)))
    store = str(_temp_store_dir())
    pool = shared_pool(jobs)
    futures = {
        name: pool.submit(_price_stored_job, digest, store, model, suite[name])
        for name in names
    }
    sweep = SchemeSweep(workload=workload)
    for name in names:
        sweep.results[name] = futures[name].result()
    return sweep


def prefetch_artifacts(specs: Iterable["SweepSpec | ProfileSpec"],
                       jobs: int | None = None) -> dict:
    """Compute every spec's missing artifact; returns a summary.

    This is the cross-workload fan-out over the artifact graph: the
    pending specs expand through :func:`build_graph` and the jobs drain
    on the shared pool through :func:`_compute_job_shared` — the *same*
    execution path the file-lock queue workers use — so a ``--jobs`` run
    and a ``--workers`` run populate identical artifact sets (traces,
    per-scheme results, assembled sweeps, profiles/tables; one codec,
    and an artifact's existence is its completion marker in both).  Each
    workload's scheme-price nodes dispatch the moment its trace lands,
    table nodes wait for the sweeps they consume, and the finished
    sweeps and profiles are promoted into the parent's memory tier under
    the serial drivers' keys, so the drivers afterwards run entirely
    from cache — deterministically.  Sweeps always cover the full scheme
    suite: the cache keys are the drivers' full-sweep keys, so a partial
    sweep must never land there.

    Without an attached cache dir the workers spill into the scheduler's
    process-lifetime temporary store, which the parent attaches for the
    duration of the drain (and detaches after promoting the finished
    artifacts); :func:`shutdown` removes it.
    """
    from repro.sim.runner import TRACE_CACHE

    sweep_specs: list[SweepSpec] = []
    profile_specs: list[ProfileSpec] = []
    seen: set = set()
    for spec in specs:
        if spec in seen:
            continue
        seen.add(spec)
        if isinstance(spec, ProfileSpec):
            profile_specs.append(spec)
        else:
            sweep_specs.append(spec)
    pending = [s for s in sweep_specs if TRACE_CACHE.peek(s.sweep_key()) is None]
    pending_profiles = [
        p for p in profile_specs if TRACE_CACHE.peek(p.artifact_key()) is None
    ]
    summary = {
        "workloads": len(sweep_specs) + len(profile_specs),
        "cached": (len(sweep_specs) - len(pending)
                   + len(profile_specs) - len(pending_profiles)),
        "priced": 0,
        "traces_built": 0,
        "results_built": 0,
        "profiles_built": 0,
    }
    if not pending and not pending_profiles:
        return summary
    if not TRACE_CACHE.enabled:
        # Nowhere to put prefetched results; the drivers will price (and
        # parallelize per sweep) themselves.
        return summary
    if effective_workers(jobs) < 2:
        # One core (or jobs <= 1): a worker pool would only add pickling
        # and process churn, so compute inline — the cache still fills.
        # (The serial sweep path prices whole sweeps without materializing
        # per-result artifacts; only the pool and queue paths spill them.)
        for spec in pending:
            before = TRACE_CACHE.miss_kinds.get("trace", 0)
            spec.run_inline()
            summary["traces_built"] += (
                TRACE_CACHE.miss_kinds.get("trace", 0) > before
            )
            summary["priced"] += 1
        for profile_spec in pending_profiles:
            profile_spec.fetch()
            summary["profiles_built"] += 1
        return summary

    store = str(trace_store_dir())
    detach_after = TRACE_CACHE.cache_dir is None
    if detach_after:
        # No persistent cache dir: the workers spill into the temporary
        # store; attach the parent to it so presence checks and the final
        # promotion read the same substrate.
        TRACE_CACHE.set_cache_dir(store)
    try:
        graph = build_graph(pending + pending_profiles)
        pool = shared_pool(jobs)
        done: set = set()
        waiting: list[ArtifactJob] = []
        for job in graph:
            # A job is done only when its artifact is in the *shared
            # store* — a memory-tier value in this process is invisible
            # to the workers, and skipping the job would leave every
            # worker regenerating the dependency for itself.
            if TRACE_CACHE.has_spill(job.key):
                done.add(job.key)
            else:
                waiting.append(job)
        in_flight: dict[Future, ArtifactJob] = {}
        from repro.sim import faults
        from repro.sim.queue import QUARANTINE_AFTER

        #: Local retry ledger for the pool path.  The pool has no shared
        #: queue dir to persist attempts in, but the counter still feeds
        #: compute_job's fault-decision index, so a transient injected
        #: crash resolves on retry instead of failing the whole prefetch.
        attempts: dict[str, int] = {}

        def submit(job: ArtifactJob) -> None:
            future = pool.submit(_compute_job_shared, job, store,
                                 attempts.get(job.job_id(), 0),
                                 faults.active_spec())
            in_flight[future] = job

        def submit_ready() -> None:
            nonlocal waiting
            blocked: list[ArtifactJob] = []
            for job in waiting:
                if all(dep in done for dep in job.deps):
                    submit(job)
                else:
                    blocked.append(job)
            waiting = blocked

        computed = {"trace": 0, "result": 0, "sweep": 0, "profile": 0}
        submit_ready()
        while in_flight:
            finished, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            for future in finished:
                job = in_flight.pop(future)
                try:
                    future.result()
                except Exception:
                    job_id = job.job_id()
                    attempts[job_id] = attempts.get(job_id, 0) + 1
                    if attempts[job_id] >= QUARANTINE_AFTER:
                        raise  # persistent failure: propagate to caller
                    submit(job)
                    continue
                done.add(job.key)
                computed[job.kind] += 1
            submit_ready()
        summary["traces_built"] = computed["trace"]
        summary["results_built"] = computed["result"]

        # Promote the finished artifacts into the parent's memory tier
        # under the drivers' exact keys (disk hits, not misses).  A spill
        # that fails to decode — torn write on a shared mount — falls
        # back to the ordinary serial path, exactly like get_or_build.
        for spec in pending:
            if TRACE_CACHE.peek(spec.sweep_key()) is None:
                spec.run_inline()
            summary["priced"] += 1
        for profile_spec in pending_profiles:
            if TRACE_CACHE.peek(profile_spec.artifact_key()) is None:
                profile_spec.fetch()
            summary["profiles_built"] += 1
    finally:
        if detach_after:
            TRACE_CACHE.set_cache_dir(None)
    return summary


#: Back-compat name from the PR-2 sweep-only scheduler; sweep specs are
#: now just one artifact kind among several.
prefetch_sweeps = prefetch_artifacts
