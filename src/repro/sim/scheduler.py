"""Sweep scheduler: the suite's (workload × scheme) job graph.

PR 1 parallelized *within* one sweep — a fresh process pool per
``sweep_schemes`` call, schemes fanned out, pool torn down.  The figure
suite, however, is a batch of many workloads, each priced under the same
five schemes, with heavy overlap between experiments.  This module
treats that whole batch as a single job graph executed on **one shared
process pool**:

* a **warm node** per workload generates (or restores) the trace and
  spills it through the trace cache's disk tier, so every worker can
  reach it without re-shipping it over the pipe;
* a **price node** per (workload × scheme) pair loads the spilled trace
  and prices one scheme — these are submitted as soon as their
  workload's warm node completes, so pricing of workload A overlaps
  trace generation of workload B;
* results are collected **deterministically** (workload submission order
  × scheme presentation order) and inserted into
  :data:`~repro.sim.runner.TRACE_CACHE` under the exact keys the serial
  drivers use, so the figure tables are byte-identical to a serial run.

Single-workload parallel sweeps (``sweep_schemes(..., jobs=N)``, the
trace-file CLI) ride the same shared pool: the trace is spilled once to
the scheduler's store and each scheme job references it by content
digest.

Prefetch spills go through :data:`~repro.sim.runner.TRACE_CACHE`'s
``cache_dir`` when one is attached (so they persist across runs) and a
process-lifetime temporary directory otherwise; one-off external traces
always use the temporary store, which :func:`shutdown` removes.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import tempfile
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.perf import PerformanceModel, SimResult
    from repro.sim.runner import BatchedTrace, SchemeSweep, Workload

# ---------------------------------------------------------------------------
# Shared process pool
# ---------------------------------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}


def effective_workers(jobs: int | None) -> int:
    """Worker processes a ``jobs`` request can actually keep busy."""
    if jobs is None:
        return 1
    return max(1, min(jobs, os.cpu_count() or 1))


def shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The process pool shared by every sweep of the suite.

    Pools are keyed by worker count and live until process exit (or
    :func:`shutdown`), so repeated ``sweep_schemes(jobs=N)`` calls and
    whole-suite prefetches reuse warm workers instead of forking a fresh
    pool per sweep.
    """
    workers = effective_workers(jobs)
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def shutdown() -> None:
    """Tear down the shared pools and the temporary trace store."""
    global _SPILL_DIR
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()
    if _SPILL_DIR is not None:
        shutil.rmtree(_SPILL_DIR, ignore_errors=True)
        _SPILL_DIR = None


atexit.register(shutdown)

# ---------------------------------------------------------------------------
# Trace store
# ---------------------------------------------------------------------------

_SPILL_DIR: Path | None = None


def _temp_store_dir() -> Path:
    """Process-lifetime spill directory (removed by :func:`shutdown`)."""
    global _SPILL_DIR
    if _SPILL_DIR is None:
        _SPILL_DIR = Path(tempfile.mkdtemp(prefix="repro-sweep-store-"))
    return _SPILL_DIR


def trace_store_dir() -> Path:
    """Directory workload traces are spilled to for cross-worker sharing."""
    from repro.sim.runner import TRACE_CACHE

    if TRACE_CACHE.cache_dir is not None:
        return TRACE_CACHE.cache_dir
    return _temp_store_dir()


def store_trace(trace: "BatchedTrace") -> str:
    """Spill a one-off external trace; returns its content digest.

    External traces always land in the temporary store (cleaned at
    shutdown), never the persistent cache dir: their cache-key spill
    would duplicate them there with nothing ever reclaiming the space.
    """
    from repro.sim.runner import _encode_trace

    text = _encode_trace(trace)
    digest = hashlib.sha256(text.encode()).hexdigest()[:32]
    path = _temp_store_dir() / f"xtrace-{digest}.json"
    if not path.exists():
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text)
        os.replace(tmp, path)
    return digest


#: Worker-side memo of external traces, keyed by content digest, so a
#: worker pricing several schemes of one trace parses the spill once.
#: Bounded: workers are long-lived (the pool is shared suite-wide), so
#: an unbounded memo would pin every trace ever priced in every worker.
_TRACE_MEMO: "OrderedDict[str, BatchedTrace]" = OrderedDict()
_TRACE_MEMO_ENTRIES = 8


def _load_stored_trace(digest: str, store_dir: str) -> "BatchedTrace":
    from repro.sim.runner import _decode_trace

    trace = _TRACE_MEMO.get(digest)
    if trace is None:
        text = (Path(store_dir) / f"xtrace-{digest}.json").read_text()
        trace = _decode_trace(text)
        _TRACE_MEMO[digest] = trace
        while len(_TRACE_MEMO) > _TRACE_MEMO_ENTRIES:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(digest)
    return trace


# ---------------------------------------------------------------------------
# Workload specifications
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepSpec:
    """A (workload, all-schemes) sweep request the scheduler can ship.

    Specs are tiny and picklable: workers rebuild the workload from the
    spec through their own trace cache (memory tier, then the shared
    disk store, then regeneration), so no trace crosses the pipe.
    """

    kind: str  # "dnn" | "graph"
    params: tuple

    def sweep_key(self) -> Hashable:
        """The exact TRACE_CACHE key the serial drivers use."""
        if self.kind == "dnn":
            return ("dnn-sweep", *self.params)
        from repro.graph.graphlily import GraphAcceleratorConfig

        return ("graph-sweep", *self.params, GraphAcceleratorConfig().cache_key())

    def build_workload(self) -> "Workload":
        from repro.sim import runner

        if self.kind == "dnn":
            model, config, training, batch = self.params
            return runner.dnn_workload(model, config, training=training,
                                       batch=batch)
        benchmark, algorithm, iterations, scale_divisor = self.params
        return runner.graph_workload(benchmark, algorithm,
                                     iterations=iterations,
                                     scale_divisor=scale_divisor)

    def run_inline(self) -> "SchemeSweep":
        """Serial fallback: the ordinary cached sweep in this process."""
        from repro.sim import runner

        if self.kind == "dnn":
            model, config, training, batch = self.params
            return runner.dnn_sweep(model, config, training=training, batch=batch)
        benchmark, algorithm, iterations, scale_divisor = self.params
        return runner.graph_sweep(benchmark, algorithm, iterations=iterations,
                                  scale_divisor=scale_divisor)


def dnn_spec(model: str, config: str = "Cloud", training: bool = False,
             batch: int = 1) -> SweepSpec:
    return SweepSpec("dnn", (model, config, training, batch))


def graph_spec(benchmark: str, algorithm: str = "PR",
               iterations: int | None = None,
               scale_divisor: int = 64) -> SweepSpec:
    return SweepSpec("graph", (benchmark, algorithm, iterations, scale_divisor))


# ---------------------------------------------------------------------------
# Worker entry points (must be picklable module functions)
# ---------------------------------------------------------------------------

def _attach_store(store_dir: str) -> None:
    """Point the worker's trace cache at the shared trace store.

    Workers are long-lived (the pool is shared suite-wide), so their
    memory tier is also tightened: the disk store is the system of
    record, and a small hot set per worker prevents every worker from
    pinning the whole suite's traces in memory.
    """
    from repro.sim.runner import TRACE_CACHE

    TRACE_CACHE.max_entries = min(TRACE_CACHE.max_entries, 32)
    if TRACE_CACHE.cache_dir is None or str(TRACE_CACHE.cache_dir) != store_dir:
        TRACE_CACHE.set_cache_dir(store_dir)


def _warm_job(spec: SweepSpec, store_dir: str) -> dict:
    """Warm node: ensure the spec's trace exists in the shared store."""
    from repro.sim.runner import TRACE_CACHE

    _attach_store(store_dir)
    before = TRACE_CACHE.miss_kinds.get("trace", 0)
    workload = spec.build_workload()
    return {
        "label": workload.label,
        "accesses": workload.trace.total_accesses,
        "built": TRACE_CACHE.miss_kinds.get("trace", 0) > before,
    }


def _price_spec_job(spec: SweepSpec, scheme_name: str, store_dir: str) -> "SimResult":
    """Price node: one scheme over one workload's (stored) trace."""
    from repro.core.schemes import scheme_suite

    _attach_store(store_dir)
    workload = spec.build_workload()
    scheme = scheme_suite(workload.protected_bytes)[scheme_name]
    model = workload.performance_model()
    return model.run(workload.trace.phases, scheme, batches=workload.trace.batches)


def _price_stored_job(digest: str, store_dir: str, model: "PerformanceModel",
                      scheme) -> "SimResult":
    """Price node for an externally-supplied (spilled) trace."""
    trace = _load_stored_trace(digest, store_dir)
    return model.run(trace.phases, scheme, batches=trace.batches)


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------

def parallel_sweep(workload: str, phases, model: "PerformanceModel", suite: dict,
                   names: Sequence[str], batches, jobs: int) -> "SchemeSweep":
    """All schemes of one workload across the shared pool.

    The trace is spilled once to the scheduler store; each scheme job
    references it by digest, so the per-job payload is the (small)
    scheme object and performance model.  Results are collected in
    presentation order — bit-identical to the serial path.
    """
    from repro.core.access import AccessBatch
    from repro.sim.runner import BatchedTrace, SchemeSweep

    if batches is None:
        batches = [AccessBatch.from_phase(phase) for phase in phases]
    digest = store_trace(BatchedTrace(list(phases), list(batches)))
    store = str(_temp_store_dir())
    pool = shared_pool(jobs)
    futures = {
        name: pool.submit(_price_stored_job, digest, store, model, suite[name])
        for name in names
    }
    sweep = SchemeSweep(workload=workload)
    for name in names:
        sweep.results[name] = futures[name].result()
    return sweep


def prefetch_sweeps(specs: Iterable[SweepSpec], jobs: int | None = None) -> dict:
    """Price every spec's missing full-suite sweep; returns a summary.

    This is the cross-workload fan-out: warm nodes run for all missing
    workloads concurrently, and each workload's scheme-price nodes are
    submitted the moment its warm node finishes.  Finished sweeps are
    inserted into :data:`~repro.sim.runner.TRACE_CACHE` (and spilled to
    its disk tier when attached) under the serial drivers' keys, so the
    drivers afterwards run entirely from cache — deterministically.
    Sweeps always cover the full scheme suite: the cache keys are the
    drivers' full-sweep keys, so a partial sweep must never land there.
    """
    from repro.sim.runner import SCHEMES, TRACE_CACHE, SchemeSweep

    names = list(SCHEMES)
    unique: list[SweepSpec] = []
    seen: set[SweepSpec] = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)
    pending = [s for s in unique if TRACE_CACHE.peek(s.sweep_key()) is None]
    summary = {
        "workloads": len(unique),
        "cached": len(unique) - len(pending),
        "priced": 0,
        "traces_built": 0,
    }
    if not pending:
        return summary
    if not TRACE_CACHE.enabled:
        # Nowhere to put prefetched results; the drivers will price (and
        # parallelize per sweep) themselves.
        return summary
    if effective_workers(jobs) < 2:
        # One core (or jobs <= 1): a worker pool would only add pickling
        # and process churn, so price inline — the cache still fills.
        for spec in pending:
            before = TRACE_CACHE.miss_kinds.get("trace", 0)
            spec.run_inline()
            summary["traces_built"] += (
                TRACE_CACHE.miss_kinds.get("trace", 0) > before
            )
            summary["priced"] += 1
        return summary

    store = str(trace_store_dir())
    pool = shared_pool(jobs)
    warm: dict[Future, SweepSpec] = {
        pool.submit(_warm_job, spec, store): spec for spec in pending
    }
    price: dict[Future, tuple[SweepSpec, str]] = {}
    labels: dict[SweepSpec, str] = {}
    results: dict[tuple[SweepSpec, str], "SimResult"] = {}
    outstanding: set[Future] = set(warm)
    while outstanding:
        done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
        for future in done:
            if future in warm:
                spec = warm[future]
                meta = future.result()
                labels[spec] = meta["label"]
                summary["traces_built"] += bool(meta["built"])
                for name in names:
                    job = pool.submit(_price_spec_job, spec, name, store)
                    price[job] = (spec, name)
                    outstanding.add(job)
            else:
                spec, name = price[future]
                results[spec, name] = future.result()

    # Deterministic collection: submission order × presentation order.
    for spec in pending:
        sweep = SchemeSweep(workload=labels[spec])
        for name in names:
            sweep.results[name] = results[spec, name]
        TRACE_CACHE.put(spec.sweep_key(), sweep)
        summary["priced"] += 1
    return summary
