"""Simulation glue: performance model, runner, trace files, roofline."""

from repro.sim.perf import PerfConfig, PerformanceModel, PhaseResult, SimResult
from repro.sim.roofline import PhaseRoofline, RooflineReport, analyze
from repro.sim.runner import (
    SCHEMES,
    TRACE_CACHE,
    BatchedTrace,
    SchemeSweep,
    TraceCache,
    Workload,
    dnn_sweep,
    dnn_workload,
    graph_sweep,
    graph_workload,
    sweep_schemes,
)
from repro.sim.tracefile import TraceFile, evaluate, load, loads

__all__ = [
    "PerfConfig",
    "PerformanceModel",
    "PhaseResult",
    "SimResult",
    "PhaseRoofline",
    "RooflineReport",
    "analyze",
    "SCHEMES",
    "TRACE_CACHE",
    "BatchedTrace",
    "SchemeSweep",
    "TraceCache",
    "Workload",
    "dnn_sweep",
    "dnn_workload",
    "graph_sweep",
    "graph_workload",
    "sweep_schemes",
    "TraceFile",
    "evaluate",
    "load",
    "loads",
]
