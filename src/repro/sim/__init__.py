"""Simulation glue: performance model, runner, trace files, roofline."""

from repro.sim.perf import PerfConfig, PerformanceModel, PhaseResult, SimResult
from repro.sim.roofline import PhaseRoofline, RooflineReport, analyze
from repro.sim.runner import SCHEMES, SchemeSweep, dnn_sweep, graph_sweep, sweep_schemes
from repro.sim.tracefile import TraceFile, evaluate, load, loads

__all__ = [
    "PerfConfig",
    "PerformanceModel",
    "PhaseResult",
    "SimResult",
    "PhaseRoofline",
    "RooflineReport",
    "analyze",
    "SCHEMES",
    "SchemeSweep",
    "dnn_sweep",
    "graph_sweep",
    "sweep_schemes",
    "TraceFile",
    "evaluate",
    "load",
    "loads",
]
