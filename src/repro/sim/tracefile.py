"""JSON trace interchange: drive the protection simulator with any trace.

Downstream users with their *own* accelerator (an RTL simulator, a
production trace, an FPGA profiler) can evaluate MGX without writing
Python: dump phases to the JSON schema below, then

.. code-block:: bash

    python -m repro.sim.tracefile mytrace.json            # all schemes
    python -m repro.sim.tracefile mytrace.json --scheme MGX BP

Schema::

    {
      "name": "my-workload",
      "accel_freq_mhz": 800,
      "dram_channels": 4,
      "protected_mib": 16384,
      "phases": [
        {
          "name": "layer0",
          "compute_cycles": 123456,
          "accesses": [
            {"address": 0, "size": 1048576, "kind": "read",
             "class": "feature", "sequential": true,
             "vn": 1, "burst_bytes": null, "spread_bytes": null}
          ]
        }
      ]
    }

Only ``address``, ``size`` and ``kind`` are required per access; the
rest default to a sequential bulk transfer with scheme-managed VNs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import MHZ, MIB
from repro.core.access import AccessBatch, AccessKind, DataClass, MemAccess, Phase
from repro.dram.model import DramConfig, DramModel
from repro.sim.perf import PerfConfig, PerformanceModel
from repro.sim.runner import SCHEMES, SchemeSweep, sweep_schemes

_KINDS = {"read": AccessKind.READ, "write": AccessKind.WRITE}
_CLASSES = {c.value: c for c in DataClass}


@dataclass(frozen=True)
class TraceFile:
    """A parsed trace plus its machine parameters."""

    name: str
    phases: list[Phase]
    accel_freq_hz: float
    dram_channels: int
    protected_bytes: int


def _parse_access(raw: dict) -> MemAccess:
    try:
        kind = _KINDS[raw.get("kind", "read")]
    except KeyError:
        raise ConfigError(f"access kind must be read/write, got {raw.get('kind')!r}")
    class_name = raw.get("class", "bulk")
    try:
        data_class = _CLASSES[class_name]
    except KeyError:
        raise ConfigError(
            f"unknown data class {class_name!r}; known: {sorted(_CLASSES)}"
        )
    return MemAccess(
        address=int(raw["address"]),
        size=int(raw["size"]),
        kind=kind,
        data_class=data_class,
        sequential=bool(raw.get("sequential", True)),
        vn=raw.get("vn"),
        burst_bytes=raw.get("burst_bytes"),
        spread_bytes=raw.get("spread_bytes"),
    )


def phases_from_doc(doc: list[dict]) -> list[Phase]:
    """Decode a list of phase dictionaries (inverse of :func:`phases_to_doc`)."""
    phases: list[Phase] = []
    for raw_phase in doc:
        accesses = [_parse_access(a) for a in raw_phase.get("accesses", [])]
        phases.append(
            Phase(
                name=str(raw_phase.get("name", f"phase{len(phases)}")),
                compute_cycles=float(raw_phase.get("compute_cycles", 0.0)),
                accesses=accesses,
            )
        )
    return phases


def phases_to_doc(phases: list[Phase]) -> list[dict]:
    """Encode phases as JSON-serializable dictionaries.

    The schema is the ``"phases"`` section of the trace-file format, and
    also what the trace cache's disk tier spills, so externally-supplied
    and internally-generated traces share one codec.
    """
    return [
        {
            "name": phase.name,
            "compute_cycles": phase.compute_cycles,
            "accesses": [
                {
                    "address": a.address,
                    "size": a.size,
                    "kind": a.kind.value,
                    "class": a.data_class.value,
                    "sequential": a.sequential,
                    "vn": a.vn,
                    "burst_bytes": a.burst_bytes,
                    "spread_bytes": a.spread_bytes,
                }
                for a in phase.accesses
            ],
        }
        for phase in phases
    ]


def doc_digest(doc: str | bytes | bytearray | memoryview) -> str:
    """Stable content digest of a serialized trace/artifact document.

    This is the content-addressing primitive shared by the scheduler's
    spill store and the distributed work queue: equal documents get equal
    names on every machine, so a shared cache directory deduplicates by
    construction.  Accepts text or a bytes-like view; binary documents
    (columnar trace spills) hash without an intermediate encode copy.
    """
    if isinstance(doc, str):
        doc = doc.encode()
    return hashlib.sha256(doc).hexdigest()[:32]


def loads(text: str) -> TraceFile:
    """Parse a JSON trace document."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid trace JSON: {exc}") from exc
    if "phases" not in doc or not isinstance(doc["phases"], list):
        raise ConfigError("trace must contain a 'phases' list")
    phases = phases_from_doc(doc["phases"])
    if not phases:
        raise ConfigError("trace contains no phases")
    return TraceFile(
        name=str(doc.get("name", "trace")),
        phases=phases,
        accel_freq_hz=float(doc.get("accel_freq_mhz", 800)) * MHZ,
        dram_channels=int(doc.get("dram_channels", 4)),
        protected_bytes=int(doc.get("protected_mib", 16 * 1024)) * MIB,
    )


def load(path: str) -> TraceFile:
    with open(path) as f:
        return loads(f.read())


def dumps(trace: TraceFile) -> str:
    """Serialize a trace (inverse of :func:`loads`)."""
    doc = {
        "name": trace.name,
        "accel_freq_mhz": trace.accel_freq_hz / MHZ,
        "dram_channels": trace.dram_channels,
        "protected_mib": trace.protected_bytes // MIB,
        "phases": phases_to_doc(trace.phases),
    }
    return json.dumps(doc, indent=2)


def evaluate(trace: TraceFile, jobs: int | None = None) -> SchemeSweep:
    """Run all protection schemes over a parsed trace.

    External traces go through the same batched pipeline as the built-in
    workloads: the phases are converted to structure-of-arrays columns
    once and shared across all schemes, and ``jobs >= 2`` fans the
    schemes out over the shared sweep worker pool.
    """
    perf = PerformanceModel(
        DramModel(DramConfig(channels=trace.dram_channels)),
        PerfConfig(accel_freq_hz=trace.accel_freq_hz),
    )
    batches = [AccessBatch.from_phase(phase) for phase in trace.phases]
    return sweep_schemes(trace.name, trace.phases, perf, trace.protected_bytes,
                         batches=batches, jobs=jobs)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Evaluate a JSON trace under "
                                                 "the MGX protection schemes.")
    parser.add_argument("trace", help="path to the JSON trace file")
    parser.add_argument("--scheme", nargs="*", choices=list(SCHEMES),
                        help="schemes to report (default: all)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="price independent schemes across N worker "
                             "processes (shared sweep pool)")
    parser.add_argument("--validate", action="store_true",
                        help="check the trace's VN discipline first")
    args = parser.parse_args(argv)

    trace = load(args.trace)
    if args.validate:
        from repro.core.validate import validate_trace

        report = validate_trace(trace.phases)
        print(f"VN discipline: {report.summary()}")
        for violation in report.violations[:10]:
            print(f"  {violation}")
        if not report.ok:
            return 1
    sweep = evaluate(trace, jobs=args.jobs)
    schemes = args.scheme or [s for s in SCHEMES if s != "NP"]
    print(f"{trace.name}: {len(trace.phases)} phases, "
          f"{sum(p.total_bytes() for p in trace.phases) / (1 << 20):.1f} MiB")
    print(f"{'scheme':10s} {'exec time':>10s} {'traffic':>9s}")
    for scheme in schemes:
        print(f"{scheme:10s} {sweep.normalized_time(scheme):9.3f}x "
              f"{sweep.traffic_increase(scheme):8.3f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
