"""Columnar binary trace spills: the artifact cache's disk format v3.

Disk format v2 spilled traces as single-line JSON — one Python dict per
:class:`~repro.core.access.MemAccess` on the way out, a full JSON parse
plus object reconstruction on the way in, after which
:class:`~repro.core.access.AccessBatch` re-derived the very columns the
generator already had.  On warm and distributed runs that (de)serialization
round trip *was* the cache plane's dominant cost — the same
metadata-movement overhead the paper eliminates from the protection
pipeline.

Format v3 stores the structure-of-arrays form directly::

    REPROCOL                          8-byte magic
    <header length>                   8-byte little-endian uint64
    <header JSON>                     utf-8, compact separators
    <zero padding>                    to the 64-byte data-section boundary
    <column blocks>                   raw little-endian arrays, 64-byte
                                      aligned, one block per column, each
                                      of length ``total_accesses``
    \\n#sha256:<payload digest>\\n      content-digest trailer (the same
                                      framing v2 text spills carry)

The header records the layout (``version``, per-phase
name/compute_cycles/access count, per-column dtype/offset/nbytes), so a
load is: parse a few hundred bytes of JSON, then build **zero-copy**
read-only :class:`AccessBatch` views with :func:`numpy.frombuffer` over
an ``mmap`` of the file.  Phases materialize their ``MemAccess`` objects
lazily (:class:`~repro.core.access.LazyAccessList`), so ``vectorizes=True``
schemes price a warm-loaded trace without constructing a single access
object — and cooperating processes mmapping the same spill share one
copy of the columns in the OS page cache.

Encoding is equally object-free: :func:`phases_to_columns` concatenates
the trace's existing batch columns (``BatchedTrace`` always carries
them), so a spill never walks per-access Python objects either.

Loads perform *structural* validation (magic, version, bounds — which
catches truncation); full bit-rot detection against the digest trailer
is ``python -m repro.experiments cache verify``'s job, exactly because
hashing every page on load would defeat the lazy mmap.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.access import AccessBatch, Phase, lazy_phase

#: The trace-spill layout this module writes (``_DISK_FORMAT_VERSION``).
SPILL_VERSION = 3

MAGIC = b"REPROCOL"
_HEADER_LEN = struct.Struct("<Q")

#: Column blocks (and the data section) start on this alignment.
DATA_ALIGN = 64

#: On-disk column order and dtypes — exactly the :class:`AccessBatch`
#: columns, explicitly little-endian.  The order is part of the format:
#: reordering is a layout change and needs a version bump.
COLUMN_DTYPES: tuple[tuple[str, str], ...] = (
    ("address", "<i8"),
    ("size", "<i8"),
    ("is_write", "|b1"),
    ("data_class", "<i8"),
    ("sequential", "|b1"),
    ("vn", "<u8"),
    ("vn_present", "|b1"),
    ("burst_bytes", "<i8"),
    ("spread_bytes", "<i8"),
)


def _align(offset: int) -> int:
    return (offset + DATA_ALIGN - 1) // DATA_ALIGN * DATA_ALIGN


@dataclass
class TraceColumns:
    """A whole trace in columnar form: per-phase metadata + one
    concatenated array per :class:`AccessBatch` column."""

    names: list[str]
    compute_cycles: list[float]
    #: Per-phase access counts; ``columns`` arrays all have ``sum(counts)``
    #: elements, phase *i* owning the half-open slice at ``cumsum``.
    counts: list[int]
    columns: dict[str, np.ndarray]

    @property
    def total_accesses(self) -> int:
        return sum(self.counts)


def phases_to_columns(phases: Sequence[Phase],
                      batches: Sequence[AccessBatch] | None = None,
                      ) -> TraceColumns:
    """The columnar form of a trace, without touching access objects.

    ``batches`` supplies the per-phase structure-of-arrays views
    (:class:`~repro.sim.runner.BatchedTrace` always carries them); the
    conversion is then pure array concatenation.  Without ``batches``
    (external callers holding only phases) the columns are built through
    :meth:`AccessBatch.from_phase` first.
    """
    if batches is None:
        batches = [AccessBatch.from_phase(phase) for phase in phases]
    columns: dict[str, np.ndarray] = {}
    for name, dtype_str in COLUMN_DTYPES:
        dtype = np.dtype(dtype_str)
        if batches:
            stacked = np.concatenate(
                [np.asarray(getattr(batch, name)) for batch in batches]
            ).astype(dtype, copy=False)
        else:
            stacked = np.zeros(0, dtype=dtype)
        columns[name] = stacked
    return TraceColumns(
        # compute_cycles passes through untouched (no float() coercion):
        # int-valued cycles must re-encode to the identical v2 JSON.
        names=[phase.name for phase in phases],
        compute_cycles=[phase.compute_cycles for phase in phases],
        counts=[len(batch) for batch in batches],
        columns=columns,
    )


def columns_to_phases(cols: TraceColumns,
                      ) -> tuple[list[Phase], list[AccessBatch]]:
    """Rebuild per-phase batches (zero-copy slices) and lazy phases.

    The inverse of :func:`phases_to_columns`: each phase gets a sliced
    *view* of the whole-trace columns as its :class:`AccessBatch`
    (``source=None``) and a :class:`~repro.core.access.LazyAccessList`
    that constructs ``MemAccess`` objects only if something iterates it.
    """
    phases: list[Phase] = []
    batches: list[AccessBatch] = []
    start = 0
    for name, cycles, count in zip(cols.names, cols.compute_cycles,
                                   cols.counts):
        stop = start + count
        batch = AccessBatch(
            **{col: cols.columns[col][start:stop]
               for col, _ in COLUMN_DTYPES},
            source=None,
        )
        batches.append(batch)
        phases.append(lazy_phase(name, cycles, batch))
        start = stop
    return phases, batches


def _header_doc(cols: TraceColumns) -> tuple[bytes, int]:
    """Serialized header plus the derived data-section offset."""
    offset = 0
    specs = []
    for name, dtype_str in COLUMN_DTYPES:
        nbytes = cols.columns[name].nbytes
        specs.append({"name": name, "dtype": dtype_str,
                      "offset": offset, "nbytes": nbytes})
        offset = _align(offset + nbytes)
    header = {
        "version": SPILL_VERSION,
        "kind": "trace",
        "total_accesses": cols.total_accesses,
        "phases": [
            {"name": name, "compute_cycles": cycles, "accesses": count}
            for name, cycles, count in zip(cols.names, cols.compute_cycles,
                                           cols.counts)
        ],
        "columns": specs,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    data_start = _align(len(MAGIC) + _HEADER_LEN.size + len(header_bytes))
    return header_bytes, data_start


def encode_columns(cols: TraceColumns) -> bytes:
    """Pack columnar trace data into the v3 binary payload (no trailer)."""
    header_bytes, data_start = _header_doc(cols)
    out = bytearray(data_start)
    out[: len(MAGIC)] = MAGIC
    _HEADER_LEN.pack_into(out, len(MAGIC), len(header_bytes))
    out[len(MAGIC) + _HEADER_LEN.size:
        len(MAGIC) + _HEADER_LEN.size + len(header_bytes)] = header_bytes
    for name, dtype_str in COLUMN_DTYPES:
        block = np.ascontiguousarray(cols.columns[name],
                                     dtype=np.dtype(dtype_str))
        out += bytes(_align(len(out)) - len(out))
        out += block.tobytes()
    return bytes(out)


def encode_trace(trace) -> bytes:
    """A :class:`~repro.sim.runner.BatchedTrace` as the v3 payload."""
    return encode_columns(phases_to_columns(trace.phases, trace.batches))


def decode_columns(payload) -> TraceColumns:
    """Parse a v3 payload into zero-copy column views.

    ``payload`` may be ``bytes``, a ``memoryview`` or an ``mmap`` — the
    returned arrays are views over it (read-only when the buffer is),
    so the buffer must outlive them; :func:`numpy.frombuffer` keeps a
    reference, which is what makes the mmap path safe.

    Raises :class:`ValueError` on any structural problem — wrong magic,
    unsupported version, truncated header or column blocks — so callers
    treat a damaged spill exactly like a stale one: rebuild.
    """
    view = memoryview(payload)
    prefix = len(MAGIC) + _HEADER_LEN.size
    if len(view) < prefix or bytes(view[: len(MAGIC)]) != MAGIC:
        raise ValueError("not a columnar trace spill (bad magic)")
    (header_len,) = _HEADER_LEN.unpack_from(view, len(MAGIC))
    if prefix + header_len > len(view):
        raise ValueError("truncated spill header")
    try:
        header = json.loads(bytes(view[prefix: prefix + header_len]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"undecodable spill header: {exc}") from exc
    if header.get("version") != SPILL_VERSION:
        raise ValueError(
            f"unsupported columnar spill version {header.get('version')!r}"
        )
    total = int(header.get("total_accesses", -1))
    raw_phases = header.get("phases")
    specs = header.get("columns")
    if total < 0 or not isinstance(raw_phases, list) \
            or not isinstance(specs, list):
        raise ValueError("malformed spill header")
    counts = [int(p["accesses"]) for p in raw_phases]
    if sum(counts) != total:
        raise ValueError("phase access counts do not sum to the total")
    expected = {name: dtype for name, dtype in COLUMN_DTYPES}
    data_start = _align(prefix + header_len)
    columns: dict[str, np.ndarray] = {}
    for spec in specs:
        name = spec.get("name")
        if expected.get(name) != spec.get("dtype"):
            raise ValueError(f"unexpected column {name!r}:{spec.get('dtype')!r}")
        dtype = np.dtype(spec["dtype"])
        offset = int(spec["offset"])
        nbytes = int(spec["nbytes"])
        if nbytes != total * dtype.itemsize:
            raise ValueError(f"column {name!r} has inconsistent size")
        if data_start + offset + nbytes > len(view):
            raise ValueError(f"column {name!r} is truncated")
        columns[name] = np.frombuffer(view, dtype=dtype, count=total,
                                      offset=data_start + offset)
    if set(columns) != set(expected):
        raise ValueError("spill is missing columns")
    return TraceColumns(
        names=[str(p.get("name", "")) for p in raw_phases],
        compute_cycles=[p.get("compute_cycles", 0.0) for p in raw_phases],
        counts=counts,
        columns=columns,
    )


def decode_trace(payload):
    """A v3 payload as a :class:`~repro.sim.runner.BatchedTrace` of
    zero-copy batches and lazy phases."""
    from repro.sim.runner import BatchedTrace

    phases, batches = columns_to_phases(decode_columns(payload))
    return BatchedTrace(phases, batches)
