"""Workload runner: sweep protection schemes over a trace in one call.

The experiments all follow the same pattern — generate a trace once, run
{NP, BP, MGX, MGX_VN, MGX_MAC} over it, normalize to NP — so this module
packages that loop along with the workload constructors for the DNN and
graph benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access import Phase
from repro.core.schemes import ProtectionScheme, scheme_suite
from repro.dnn.accelerator import CONFIGS, DnnAcceleratorConfig
from repro.dnn.models import build_model
from repro.dnn.tracegen import DnnTraceGenerator
from repro.dram.model import DramModel
from repro.graph.generators import build_benchmark_graph
from repro.graph.graphlily import GraphAcceleratorConfig, GraphTraceGenerator
from repro.sim.perf import PerfConfig, PerformanceModel, SimResult

#: Paper scheme names in presentation order.
SCHEMES = ("NP", "BP", "MGX", "MGX_VN", "MGX_MAC")


@dataclass
class SchemeSweep:
    """Results of all schemes over one workload, normalized to NP."""

    workload: str
    results: dict[str, SimResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SimResult:
        return self.results["NP"]

    def normalized_time(self, scheme: str) -> float:
        return self.results[scheme].normalized_to(self.baseline)

    def traffic_increase(self, scheme: str) -> float:
        return self.results[scheme].traffic_increase_over(self.baseline)

    def overhead_percent(self, scheme: str) -> float:
        return 100.0 * (self.normalized_time(scheme) - 1.0)


def sweep_schemes(
    workload: str,
    phases: list[Phase],
    model: PerformanceModel,
    protected_bytes: int,
    schemes: dict[str, ProtectionScheme] | None = None,
) -> SchemeSweep:
    """Run every scheme over ``phases`` and collect normalized results."""
    suite = schemes if schemes is not None else scheme_suite(protected_bytes)
    sweep = SchemeSweep(workload=workload)
    for name in SCHEMES:
        if name not in suite:
            continue
        sweep.results[name] = model.run(phases, suite[name])
    return sweep


# ---------------------------------------------------------------------------
# Workload constructors
# ---------------------------------------------------------------------------

def dnn_sweep(model_name: str, config_name: str = "Cloud", training: bool = False,
              batch: int = 1) -> SchemeSweep:
    """Sweep all schemes over one DNN workload (Fig. 12/13 data points)."""
    config: DnnAcceleratorConfig = CONFIGS[config_name]
    generator = DnnTraceGenerator(build_model(model_name), config, batch=batch)
    trace = generator.training_step() if training else generator.inference()
    perf = PerformanceModel(
        DramModel(config.dram), PerfConfig(accel_freq_hz=config.array.freq_hz)
    )
    label = f"{model_name}-{'Train' if training else 'Inf'}-{config_name}"
    return sweep_schemes(label, trace.phases, perf, config.protected_bytes)


def graph_sweep(benchmark: str, algorithm: str = "PR", iterations: int | None = None,
                scale_divisor: int = 64,
                config: GraphAcceleratorConfig | None = None) -> SchemeSweep:
    """Sweep all schemes over one graph workload (Fig. 14 data points)."""
    config = config or GraphAcceleratorConfig()
    graph = build_benchmark_graph(benchmark, scale_divisor=scale_divisor)
    generator = GraphTraceGenerator(graph, config)
    if algorithm == "PR":
        trace = generator.pagerank_trace(iterations=iterations)
    elif algorithm == "BFS":
        trace = generator.bfs_trace(iterations=iterations)
    elif algorithm == "SSSP":
        trace = generator.sssp_trace(iterations=iterations)
    elif algorithm == "SpMSpV":
        trace = generator.spmspv_trace(iterations=iterations or 4)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    perf = PerformanceModel(
        DramModel(config.dram), PerfConfig(accel_freq_hz=config.freq_hz)
    )
    return sweep_schemes(f"{algorithm}-{benchmark}", trace.phases, perf,
                         config.protected_bytes)
