"""Workload runner: batched traces, trace/sweep reuse, parallel sweeps.

The experiments all follow the same pattern — generate a trace, run
{NP, BP, MGX, MGX_VN, MGX_MAC} over it, normalize to NP — and the figure
drivers repeat the *same* workloads (fig03, fig12, fig13 and the
headline table all sweep the same DNN configurations).  This module
packages that loop as a pipeline with three levers:

* **Batching** — every workload is converted once into per-phase
  :class:`~repro.core.access.AccessBatch` columns
  (:class:`BatchedTrace`), shared across all schemes of a sweep, so
  stateless schemes price whole columns instead of walking objects.
* **Reuse** — a process-wide :class:`TraceCache` keyed by workload
  configuration caches both the generated traces and the finished
  :class:`SchemeSweep` results, so a five-scheme suite prices one
  generated trace and repeated sweeps across experiment drivers are
  free.  Opt out per call with ``use_cache=False`` or globally with
  ``TRACE_CACHE.enabled = False``.
* **Parallelism** — ``sweep_schemes(..., jobs=N)`` with ``N >= 2`` runs
  independent schemes across worker processes (opt-in; results are
  bit-identical to the serial path).
"""

from __future__ import annotations

import functools
import hashlib
import json
import mmap
import os
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable, Iterator

from repro.core.access import AccessBatch, Phase
from repro.core.schemes import ProtectionScheme, scheme_suite
from repro.dnn.accelerator import CONFIGS, DnnAcceleratorConfig
from repro.dnn.models import build_model
from repro.dnn.tracegen import DnnTraceGenerator
from repro.dram.model import DramModel
from repro.graph.generators import build_benchmark_graph
from repro.graph.graphlily import GraphAcceleratorConfig, GraphTraceGenerator
from repro.sim import faults
from repro.sim.perf import PerfConfig, PerformanceModel, SimResult

#: Paper scheme names in presentation order.
SCHEMES = ("NP", "BP", "MGX", "MGX_VN", "MGX_MAC")


def dnn_label(model_name: str, config_name: str, training: bool) -> str:
    """One DNN workload's display label.

    The single source of truth: sweeps are cached under tables keyed by
    this string, and the scheduler's assembly nodes
    (:meth:`~repro.sim.scheduler.SweepSpec.label`) must render the exact
    label the serial drivers do.
    """
    return f"{model_name}-{'Train' if training else 'Inf'}-{config_name}"


def graph_label(benchmark: str, algorithm: str) -> str:
    """One graph workload's display label (see :func:`dnn_label`)."""
    return f"{algorithm}-{benchmark}"


@dataclass
class BatchedTrace:
    """A phase list plus its once-converted structure-of-arrays columns."""

    phases: list[Phase]
    batches: list[AccessBatch]

    @classmethod
    def from_phases(cls, phases: list[Phase]) -> "BatchedTrace":
        return cls(phases, [AccessBatch.from_phase(p) for p in phases])

    @property
    def total_accesses(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def iter_phases(self) -> Iterator[Phase]:
        return iter(self.phases)


@dataclass
class StreamingTrace:
    """A chunk-iterable trace: phases built on demand, never held whole.

    ``build_phases`` is a *factory* returning a fresh phase iterator —
    every scheme of a sweep re-iterates the trace from scratch, and the
    generators are deterministic, so each iteration yields identical
    phases.  Streaming traces bypass the :class:`TraceCache` (there is
    nothing bounded to hold) and price through
    :meth:`~repro.sim.perf.PerformanceModel.run`'s session path, which
    converts and drops one phase at a time — a trace much larger than
    memory runs in bounded space, byte-identical to the batched form.
    """

    build_phases: Callable[[], Iterator[Phase]]

    def iter_phases(self) -> Iterator[Phase]:
        return self.build_phases()


#: Bump when the disk-tier file layout changes.
#: v2: single-line JSON payloads with a ``#sha256:`` content-digest
#: trailer, verified on load and re-checkable offline by ``python -m
#: repro.experiments cache verify`` (see :mod:`repro.sim.gc`).
#: v3: **trace** spills switch to the columnar binary layout of
#: :mod:`repro.sim.spillfmt` (``trace-<digest>.bin``), mmapped and
#: decoded zero-copy on load; all other kinds keep the v2 JSON layout,
#: and v2 trace spills remain readable (same digest trailer framing).
_DISK_FORMAT_VERSION = 3

#: The disk-format version pinned into the key→filename digest.  Keys
#: are content addresses: v3 changed the *payload* layout, not what a
#: key means, so filenames keep their v2-era digests and existing cache
#: dirs stay addressable without re-keying.  Bump only when the key
#: schema itself changes meaning.
_KEY_DIGEST_VERSION = 2

#: Trailer separating a spill's payload from its content digest.  v2
#: payloads are single-line JSON, so the first occurrence of the marker
#: is unambiguous; v3 binary spills carry the same trailer as a
#: fixed-size tail (see :func:`split_spill_bytes`).
DIGEST_TRAILER = "\n#sha256:"
DIGEST_TRAILER_BYTES = DIGEST_TRAILER.encode()

#: Exact byte length of a binary spill's trailer: marker + 64 hex digits
#: of sha256 + newline.
_TRAILER_LEN = len(DIGEST_TRAILER_BYTES) + 64 + 1


@functools.lru_cache(maxsize=4096)
def _key_digest(key: Hashable) -> str:
    """Stable content hash of a cache key (tuples of primitives only).

    Memoized: executors recompute spill paths for the same keys on every
    poll of the shared store, and keys are immutable primitive tuples.
    """
    canonical = f"v{_KEY_DIGEST_VERSION}|{key!r}"
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def payload_digest(payload: str | bytes | bytearray | memoryview) -> str:
    """The content digest a spill's trailer must carry for ``payload``.

    Accepts text or a bytes-like view; binary payloads (and mmapped
    files) hash directly, without an intermediate ``.encode()`` copy.
    """
    if isinstance(payload, str):
        payload = payload.encode()
    return hashlib.sha256(payload).hexdigest()


def attach_digest(payload: str) -> str:
    """Append the content-digest trailer to a text spill payload."""
    return f"{payload}{DIGEST_TRAILER}{payload_digest(payload)}\n"


def split_spill(text: str) -> tuple[str, str | None]:
    """Split a text spill file into ``(payload, digest)``.

    ``digest`` is ``None`` for legacy spills without a trailer; callers
    that verify must treat those as unverifiable rather than corrupt.
    """
    payload, sep, trailer = text.partition(DIGEST_TRAILER)
    if not sep:
        return text, None
    return payload, trailer.strip()


def split_spill_bytes(data: bytes | memoryview,
                      ) -> tuple[memoryview, str | None]:
    """Split a binary spill into ``(payload view, digest)`` — zero-copy.

    Binary payloads may contain the trailer marker as data, so the
    trailer is framed by *position*, not by search: a well-formed binary
    spill ends with exactly ``\\n#sha256:<64 hex>\\n``.  Anything else
    returns the whole buffer with ``digest=None`` (unverifiable).
    """
    view = memoryview(data)
    if len(view) < _TRAILER_LEN:
        return view, None
    tail = bytes(view[len(view) - _TRAILER_LEN:])
    if not tail.startswith(DIGEST_TRAILER_BYTES) or not tail.endswith(b"\n"):
        return view, None
    digest = tail[len(DIGEST_TRAILER_BYTES):-1].decode("ascii", "replace")
    return view[: len(view) - _TRAILER_LEN], digest


#: The trace-spill JSON schema of disk format v2, still accepted on load.
_V2_TRACE_VERSION = 2


def _encode_trace(value: "BatchedTrace") -> bytes:
    from repro.sim import spillfmt

    return spillfmt.encode_trace(value)


def encode_trace_v2(value: "BatchedTrace") -> str:
    """The legacy (format v2) JSON payload for a trace.

    Kept for the back-compat tests and CI's migration gate, which seed
    v2 spills into a cache dir and assert they load byte-identically.
    """
    from repro.sim.tracefile import phases_to_doc

    return json.dumps({"version": _V2_TRACE_VERSION,
                       "phases": phases_to_doc(value.phases)})


def _decode_trace(payload: str | bytes | memoryview) -> "BatchedTrace":
    if not isinstance(payload, str):
        from repro.sim import spillfmt

        return spillfmt.decode_trace(payload)
    doc = json.loads(payload)
    if doc.get("version") != _V2_TRACE_VERSION:
        raise ValueError(f"unsupported trace spill version {doc.get('version')!r}")
    from repro.sim.tracefile import phases_from_doc

    return BatchedTrace.from_phases(phases_from_doc(doc["phases"]))


def _encode_sweep(value: "SchemeSweep") -> str:
    from repro.experiments.storage import dumps_sweep

    return dumps_sweep(value)


def _decode_sweep(text: str) -> "SchemeSweep":
    from repro.experiments.storage import loads_sweep

    return loads_sweep(text)


def _encode_result(value) -> str:
    from repro.experiments.storage import dumps_result

    return dumps_result(value)


def _decode_result(text: str):
    from repro.experiments.storage import loads_result

    return loads_result(text)


def _encode_profile(value) -> str:
    from repro.experiments.storage import dumps_profile

    return dumps_profile(value)


def _decode_profile(text: str):
    from repro.experiments.storage import loads_profile

    return loads_profile(text)


#: Disk codecs by key kind (the suffix of a key's leading tag, e.g.
#: ``("dnn-trace", ...)`` → ``trace``).  Kinds without a codec stay
#: memory-only.  ``result`` entries are the artifact graph's per-scheme
#: price nodes and ``profile`` entries its functional-pipeline nodes
#: (fig16 tile factors, fig19 GOP profiles).  Encoders return ``str``
#: (JSON spills) or ``bytes`` (columnar binary spills); decoders accept
#: whichever framing the file on disk carries.
_DISK_CODECS: dict[str, tuple[Callable[[object], str | bytes],
                              Callable[[str | bytes | memoryview], object]]] = {
    "trace": (_encode_trace, _decode_trace),
    "sweep": (_encode_sweep, _decode_sweep),
    "result": (_encode_result, _decode_result),
    "profile": (_encode_profile, _decode_profile),
}

#: Every artifact kind with a disk codec, in reporting order.
ARTIFACT_KINDS = ("trace", "sweep", "result", "profile")

#: Kinds spilled in the columnar binary layout (``.bin``) under format
#: v3; everything else keeps the single-line JSON layout (``.json``).
_BINARY_KINDS = frozenset({"trace"})


@functools.lru_cache(maxsize=4096)
def spill_filenames(key: Hashable) -> tuple[str, ...]:
    """Every disk-tier file name for a cache key, preferred first.

    Binary kinds list the current ``.bin`` name and then the legacy v2
    ``.json`` name — both are valid addresses for the key, so loads try
    them in order and the GC's mark phase keeps either alive.  Empty for
    memory-only kinds.
    """
    kind = TraceCache._kind(key)
    if kind not in _DISK_CODECS:
        return ()
    digest = _key_digest(key)
    if kind in _BINARY_KINDS:
        return (f"{kind}-{digest}.bin", f"{kind}-{digest}.json")
    return (f"{kind}-{digest}.json",)


def spill_filename(key: Hashable) -> str | None:
    """The *current* disk-tier file name for a cache key (``None``:
    memory-only kind).

    This is the content address new spills are written under; the full
    set of readable names (including a binary kind's legacy ``.json``)
    is :func:`spill_filenames`.
    """
    names = spill_filenames(key)
    return names[0] if names else None


def decode_spill(kind: str, payload: str | bytes | memoryview) -> object:
    """Decode one spill payload under its kind's codec (raises on stale).

    ``payload`` is text for JSON spills and a bytes-like view (possibly
    over an mmap) for columnar binary spills.
    """
    return _DISK_CODECS[kind][1](payload)


class TraceCache:
    """Process-wide LRU cache of generated traces and sweep results.

    Keys are workload-configuration tuples (model, machine, algorithm,
    iterations, …), so any driver asking for the same workload — within
    one experiment or across the whole figure suite — reuses the entry
    instead of regenerating.  Entries are treated as immutable by every
    consumer.

    An optional **disk tier** (``cache_dir`` / :meth:`set_cache_dir`,
    opt-in via ``--cache-dir`` or ``REPRO_CACHE_DIR``) spills artifacts
    keyed by a content hash of the workload configuration, so a fresh
    process restores them instead of regenerating — a warm rerun of the
    whole figure suite prices zero traces.  Traces spill in the columnar
    binary layout of :mod:`repro.sim.spillfmt` and load **zero-copy**:
    the file is mmapped and the phases are rebuilt as read-only column
    views, so cooperating ``--jobs``/``--workers`` processes loading the
    same spill share one copy in the OS page cache.  Other kinds spill
    as single-line JSON.  Writes are atomic (tmp + rename), making the
    directory safe to share between the sweep workers and the parent.
    """

    def __init__(self, max_entries: int = 512,
                 cache_dir: str | os.PathLike | None = None) -> None:
        self.max_entries = max_entries
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.miss_kinds: Counter[str] = Counter()
        #: Per-kind count / byte totals of spills *written* by this
        #: process (reset by :meth:`clear` with the other counters).
        self.spill_kinds: Counter[str] = Counter()
        self.spill_bytes: Counter[str] = Counter()
        #: Digest-mismatch spills deleted on load (bit-rot / torn
        #: writes): the artifact is rebuilt and respilled, and deleting
        #: stops ``has`` from advertising a corrupt file as done.
        self.corrupt_dropped = 0
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._cache_dir: Path | None = None
        if cache_dir:
            self.set_cache_dir(cache_dir)

    # -- disk tier -----------------------------------------------------
    @property
    def cache_dir(self) -> Path | None:
        return self._cache_dir

    def set_cache_dir(self, cache_dir: str | os.PathLike | None) -> None:
        """Attach (or detach, with ``None``) the persistent disk tier."""
        if cache_dir is None:
            self._cache_dir = None
            return
        path = Path(cache_dir)
        path.mkdir(parents=True, exist_ok=True)
        self._cache_dir = path

    @staticmethod
    def _kind(key: Hashable) -> str:
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0].rsplit("-", 1)[-1]
        return "other"

    def _disk_paths(self, key: Hashable) -> list[Path]:
        """Candidate spill files for a key, preferred (current) first."""
        if self._cache_dir is None:
            return []
        return [self._cache_dir / name for name in spill_filenames(key)]

    def _disk_path(self, key: Hashable) -> Path | None:
        """The current-format spill path (writes go here; loads try all
        of :meth:`_disk_paths`)."""
        paths = self._disk_paths(key)
        return paths[0] if paths else None

    @staticmethod
    def _load_binary_spill(path: Path, kind: str) -> object | None:
        """mmap a columnar spill and decode it into zero-copy views.

        Structural validation (magic, version, bounds) happens in the
        decoder and catches truncation; the digest trailer is *not*
        hashed here — that would fault in every page and defeat the lazy
        mmap — full bit-rot detection is ``cache verify``'s job.  The
        mmap stays alive exactly as long as the decoded arrays reference
        it.
        """
        try:
            with open(path, "rb") as f:
                mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            return None  # unreadable or empty file: rebuild
        payload, _digest = split_spill_bytes(mm)
        try:
            return _DISK_CODECS[kind][1](payload)
        except (ValueError, KeyError, TypeError, AttributeError):
            return None  # stale, truncated or foreign spill: rebuild

    def _drop_corrupt(self, path: Path) -> None:
        """Delete a digest-mismatch spill so ``has`` stops advertising it.

        A failed digest is bit-rot or a torn write, never version skew
        (stale-codec spills keep valid digests), so deleting is safe —
        and necessary: executors use spill *existence* as the completion
        marker, and a corrupt file left in place would make every drain
        treat the artifact as done while every decode fails.  The next
        successful rebuild respills under the same name.
        """
        try:
            path.unlink()
        except OSError:
            return  # still corrupt on disk; cache verify will flag it
        self.corrupt_dropped += 1

    def _disk_load(self, key: Hashable) -> object | None:
        kind = self._kind(key)
        for path in self._disk_paths(key):
            if path.suffix == ".bin":
                try:
                    value = faults.call_with_retries(
                        lambda: self._load_binary_spill(path, kind),
                        "spill_read", path.name)
                except OSError:
                    continue  # transient read outlasted retries: rebuild
                if value is not None:
                    return value
                continue
            try:
                text = faults.call_with_retries(path.read_text, "spill_read",
                                                path.name)
            except OSError:
                continue
            payload, digest = split_spill(text)
            if digest is not None and digest != payload_digest(payload):
                self._drop_corrupt(path)
                continue  # bit-rot or torn write: rebuild
            try:
                return _DISK_CODECS[kind][1](payload)
            except (ValueError, KeyError, TypeError, AttributeError):
                continue  # stale, truncated or foreign spill: rebuild
        return None

    def _disk_store(self, key: Hashable, value: object) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        kind = self._kind(key)
        try:
            payload = _DISK_CODECS[kind][0](value)
        except (TypeError, ValueError):
            return  # unencodable value; the memory tier still has it
        tmp = path.with_suffix(f".tmp.{os.getpid()}")

        def _write() -> int:
            if isinstance(payload, str):
                text = attach_digest(payload)
                tmp.write_text(text)
                nbytes = len(text.encode())
            else:
                # Payload and trailer are written as separate pieces —
                # no concatenation copy of a multi-megabyte buffer.
                trailer = (DIGEST_TRAILER_BYTES
                           + payload_digest(payload).encode() + b"\n")
                with open(tmp, "wb") as f:
                    f.write(payload)
                    f.write(trailer)
                nbytes = len(payload) + len(trailer)
            os.replace(tmp, path)
            return nbytes

        try:
            nbytes = faults.call_with_retries(_write, "spill_write", path.name)
        except (OSError, TypeError, ValueError):
            # The disk tier is best-effort; the value stays in memory.
            # Drop a torn tmp so it neither confuses peers nor waits for
            # the GC's stale-tmp sweep.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.spill_kinds[kind] += 1
        self.spill_bytes[kind] += nbytes

    # -- lookup --------------------------------------------------------
    def _lookup(self, key: Hashable) -> object | None:
        """Two-tier lookup: memory, then disk (promoted to memory)."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        value = self._disk_load(key)
        if value is not None:
            self.disk_hits += 1
            self._store_mem(key, value)
        return value

    def get_or_build(self, key: Hashable, builder: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building it on a miss.

        Lookup order: memory tier, then disk tier (restored values are
        promoted to memory), then ``builder()`` — whose result is stored
        in both tiers.
        """
        if not self.enabled:
            return builder()
        value = self._lookup(key)
        if value is not None:
            return value
        self.misses += 1
        self.miss_kinds[self._kind(key)] += 1
        value = builder()
        self._store_mem(key, value)
        self._disk_store(key, value)
        return value

    def peek(self, key: Hashable) -> object | None:
        """Non-building lookup of both tiers (no miss is recorded)."""
        if not self.enabled:
            return None
        return self._lookup(key)

    def has_spill(self, key: Hashable) -> bool:
        """Disk-tier-only presence check (the shared completion marker).

        Unlike :meth:`has` this ignores the memory tier: a value this
        process holds in memory is invisible to cooperating workers, so
        executors deciding whether the *shared store* needs a job must
        ask the store, not the two-tier cache.
        """
        if not self.enabled:
            return False
        return any(path.exists() for path in self._disk_paths(key))

    def has(self, key: Hashable) -> bool:
        """Cheap presence check: memory tier, or a spill file on disk.

        Unlike :meth:`peek` this never parses a spill, so the distributed
        work queue can poll artifact availability without repeatedly
        decoding multi-megabyte traces.  A truncated/corrupt spill can
        make ``has`` report True where ``peek`` would return ``None``;
        consumers fall back to rebuilding via :meth:`get_or_build`.
        """
        if not self.enabled:
            return False
        if key in self._entries:
            return True
        return self.has_spill(key)

    def put(self, key: Hashable, value: object, built: bool = True) -> None:
        """Insert a value computed elsewhere (e.g. by a sweep worker).

        ``built`` keeps the miss accounting honest: a value priced by a
        worker this run still counts as a miss of its kind.
        """
        if not self.enabled:
            return
        if built:
            self.misses += 1
            self.miss_kinds[self._kind(key)] += 1
        self._store_mem(key, value)
        self._disk_store(key, value)

    def _store_mem(self, key: Hashable, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop the memory tier and reset counters (disk entries persist)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.miss_kinds.clear()
        self.spill_kinds.clear()
        self.spill_bytes.clear()
        self.corrupt_dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int | str]:
        counters: dict[str, int | str] = {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self),
        }
        for kind in ARTIFACT_KINDS:
            counters[f"{kind}_misses"] = self.miss_kinds.get(kind, 0)
            counters[f"{kind}_spills"] = self.spill_kinds.get(kind, 0)
            counters[f"{kind}_spill_bytes"] = self.spill_bytes.get(kind, 0)
        counters["spill_bytes"] = sum(self.spill_bytes.values())
        counters["corrupt_dropped"] = self.corrupt_dropped
        if self._cache_dir is not None:
            # On-disk format census so migrations are observable: every
            # ``.bin`` artifact is format v3, every ``.json`` one v2.
            counters["disk_spills_v3"] = sum(
                1 for _ in self._cache_dir.glob("*-*.bin"))
            counters["disk_spills_v2"] = sum(
                1 for _ in self._cache_dir.glob("*-*.json"))
        # Which LRU-engine backend priced this run's misses: cached
        # artifacts are backend-independent (all backends are
        # byte-identical), but perf numbers are not, so reports carry it.
        from repro.core.engine_backend import active_backend

        counters["engine_backend"] = active_backend()
        return counters


#: The default cache every workload constructor consults.  The disk tier
#: starts attached when ``REPRO_CACHE_DIR`` is set.
TRACE_CACHE = TraceCache(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


@dataclass
class Workload:
    """A priced-workload bundle: trace columns + the machine to run on."""

    label: str
    trace: BatchedTrace | StreamingTrace
    protected_bytes: int
    accel_freq_hz: float
    dram_model: DramModel

    def performance_model(self) -> PerformanceModel:
        return PerformanceModel(
            self.dram_model, PerfConfig(accel_freq_hz=self.accel_freq_hz)
        )


@dataclass
class SchemeSweep:
    """Results of all schemes over one workload, normalized to NP."""

    workload: str
    results: dict[str, SimResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SimResult:
        return self.results["NP"]

    def normalized_time(self, scheme: str) -> float:
        return self.results[scheme].normalized_to(self.baseline)

    def traffic_increase(self, scheme: str) -> float:
        return self.results[scheme].traffic_increase_over(self.baseline)

    def overhead_percent(self, scheme: str) -> float:
        return 100.0 * (self.normalized_time(scheme) - 1.0)


def sweep_schemes(
    workload: str,
    phases: list[Phase],
    model: PerformanceModel,
    protected_bytes: int,
    schemes: dict[str, ProtectionScheme] | None = None,
    batches: list[AccessBatch] | None = None,
    jobs: int | None = None,
) -> SchemeSweep:
    """Run every scheme over ``phases`` and collect normalized results.

    ``batches`` shares precomputed per-phase columns across the schemes.
    ``jobs >= 2`` distributes independent schemes over the suite-wide
    shared worker pool (see :mod:`repro.sim.scheduler`): the trace is
    spilled once to the scheduler's store and each scheme job loads it by
    content digest, so the per-job payload stays small and the pool is
    reused across every sweep of the run.  Scheme objects are mutated in
    the workers, the caller's instances stay untouched, and results are
    collected in presentation order — bit-identical to the serial path.
    ``None`` (or ``jobs <= 1``) runs serially.
    """
    suite = schemes if schemes is not None else scheme_suite(protected_bytes)
    names = [name for name in SCHEMES if name in suite]
    names += [name for name in suite if name not in SCHEMES]
    if batches is None and any(suite[name].vectorizes for name in names):
        # Convert once here rather than per vectorizing scheme in run().
        batches = [AccessBatch.from_phase(phase) for phase in phases]
    if jobs is not None and jobs > 1 and len(names) > 1:
        from repro.sim.scheduler import effective_workers, parallel_sweep

        if effective_workers(jobs) >= 2:
            return parallel_sweep(workload, phases, model, suite, names,
                                  batches, jobs)
        # Single core: a pool would only add spill + pickling overhead.
    sweep = SchemeSweep(workload=workload)
    for name in names:
        sweep.results[name] = model.run(phases, suite[name], batches=batches)
    return sweep


def sweep_schemes_streaming(
    workload: str,
    trace: StreamingTrace,
    model: PerformanceModel,
    protected_bytes: int,
    schemes: dict[str, ProtectionScheme] | None = None,
) -> SchemeSweep:
    """Run every scheme over a chunk-iterable trace, never holding it.

    Each scheme re-iterates the trace from the factory (the generators
    are deterministic, so all schemes see identical phases) and prices
    it through :meth:`~repro.sim.perf.PerformanceModel.run`'s session
    path one phase at a time.  Results are bit-identical to
    :func:`sweep_schemes` over the materialized phase list.
    """
    suite = schemes if schemes is not None else scheme_suite(protected_bytes)
    names = [name for name in SCHEMES if name in suite]
    names += [name for name in suite if name not in SCHEMES]
    sweep = SchemeSweep(workload=workload)
    for name in names:
        sweep.results[name] = model.run(trace.iter_phases(), suite[name])
    return sweep


# ---------------------------------------------------------------------------
# Workload constructors
# ---------------------------------------------------------------------------

def dnn_workload_streaming(model_name: str, config_name: str = "Cloud",
                           training: bool = False,
                           batch: int = 1) -> Workload:
    """One DNN workload as a chunk-iterable trace (cache bypassed).

    A fresh :class:`~repro.dnn.tracegen.DnnTraceGenerator` per iteration
    makes the phase stream re-iterable and deterministic, so pricing it
    matches :func:`dnn_workload`'s batched trace byte for byte while a
    multi-GB trace never materializes.
    """
    config: DnnAcceleratorConfig = CONFIGS[config_name]

    def build_phases() -> Iterator[Phase]:
        generator = DnnTraceGenerator(build_model(model_name), config,
                                      batch=batch)
        if training:
            return generator.iter_training_step()
        return generator.iter_inference()

    return Workload(
        label=dnn_label(model_name, config_name, training),
        trace=StreamingTrace(build_phases),
        protected_bytes=config.protected_bytes,
        accel_freq_hz=config.array.freq_hz,
        dram_model=DramModel(config.dram),
    )


def dnn_workload(model_name: str, config_name: str = "Cloud",
                 training: bool = False, batch: int = 1,
                 use_cache: bool = True) -> Workload:
    """Build (or fetch from the cache) one DNN workload's batched trace."""
    config: DnnAcceleratorConfig = CONFIGS[config_name]
    label = dnn_label(model_name, config_name, training)

    def build() -> BatchedTrace:
        generator = DnnTraceGenerator(build_model(model_name), config, batch=batch)
        trace = generator.training_step() if training else generator.inference()
        return BatchedTrace.from_phases(trace.phases)

    key = ("dnn-trace", model_name, config_name, training, batch)
    trace = (
        TRACE_CACHE.get_or_build(key, build) if use_cache else build()
    )
    return Workload(
        label=label,
        trace=trace,
        protected_bytes=config.protected_bytes,
        accel_freq_hz=config.array.freq_hz,
        dram_model=DramModel(config.dram),
    )


def graph_workload_streaming(benchmark: str, algorithm: str = "PR",
                             iterations: int | None = None,
                             scale_divisor: int = 64,
                             config: GraphAcceleratorConfig | None = None,
                             ) -> Workload:
    """One graph workload as a chunk-iterable trace (cache bypassed).

    The CSR graph and the iteration count (functional run when not
    given) resolve once up front; the phase factory then replays
    deterministic per-iteration phases, matching :func:`graph_workload`
    byte for byte without holding the trace.
    """
    config = config or GraphAcceleratorConfig()
    graph = build_benchmark_graph(benchmark, scale_divisor=scale_divisor)
    resolved = (
        iterations if iterations is not None
        else GraphTraceGenerator(graph, config).default_iterations(algorithm)
    )
    if algorithm not in ("PR", "BFS", "SSSP", "SpMSpV"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    sparse_vector = algorithm == "SpMSpV"

    def build_phases() -> Iterator[Phase]:
        generator = GraphTraceGenerator(graph, config)
        return generator.iter_run(resolved, sparse_vector)

    return Workload(
        label=graph_label(benchmark, algorithm),
        trace=StreamingTrace(build_phases),
        protected_bytes=config.protected_bytes,
        accel_freq_hz=config.freq_hz,
        dram_model=DramModel(config.dram),
    )


def graph_workload(benchmark: str, algorithm: str = "PR",
                   iterations: int | None = None, scale_divisor: int = 64,
                   config: GraphAcceleratorConfig | None = None,
                   use_cache: bool = True) -> Workload:
    """Build (or fetch from the cache) one graph workload's batched trace."""
    config = config or GraphAcceleratorConfig()

    def build() -> BatchedTrace:
        # The CSR graph is shared by every algorithm over this benchmark
        # (PR and BFS sweep the same six graphs), so it gets its own
        # memory-tier cache entry under the trace that uses it.
        graph = TRACE_CACHE.get_or_build(
            ("graph-csr", benchmark, scale_divisor),
            lambda: build_benchmark_graph(benchmark, scale_divisor=scale_divisor),
        ) if use_cache else build_benchmark_graph(
            benchmark, scale_divisor=scale_divisor
        )
        generator = GraphTraceGenerator(graph, config)
        if algorithm == "PR":
            trace = generator.pagerank_trace(iterations=iterations)
        elif algorithm == "BFS":
            trace = generator.bfs_trace(iterations=iterations)
        elif algorithm == "SSSP":
            trace = generator.sssp_trace(iterations=iterations)
        elif algorithm == "SpMSpV":
            trace = generator.spmspv_trace(iterations=iterations or 4)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        return BatchedTrace.from_phases(trace.phases)

    key = ("graph-trace", benchmark, algorithm, iterations, scale_divisor,
           config.cache_key())
    trace = (
        TRACE_CACHE.get_or_build(key, build) if use_cache else build()
    )
    return Workload(
        label=graph_label(benchmark, algorithm),
        trace=trace,
        protected_bytes=config.protected_bytes,
        accel_freq_hz=config.freq_hz,
        dram_model=DramModel(config.dram),
    )


def _sweep_workload(build_workload: Callable[[], Workload],
                    sweep_key: Hashable | None,
                    use_cache: bool, jobs: int | None) -> SchemeSweep:
    """Sweep the five-scheme suite over a workload, reusing cached results.

    The workload (and with it the trace) is only constructed when the
    sweep itself is missing from both cache tiers, so a warm rerun never
    touches trace generation at all.
    """
    def run() -> SchemeSweep:
        workload = build_workload()
        return sweep_schemes(
            workload.label,
            workload.trace.phases,
            workload.performance_model(),
            workload.protected_bytes,
            batches=workload.trace.batches,
            jobs=jobs,
        )

    if use_cache and sweep_key is not None:
        return TRACE_CACHE.get_or_build(sweep_key, run)
    return run()


def dnn_sweep(model_name: str, config_name: str = "Cloud", training: bool = False,
              batch: int = 1, use_cache: bool = True,
              jobs: int | None = None) -> SchemeSweep:
    """Sweep all schemes over one DNN workload (Fig. 12/13 data points)."""
    key = ("dnn-sweep", model_name, config_name, training, batch)
    return _sweep_workload(
        lambda: dnn_workload(model_name, config_name, training, batch,
                             use_cache=use_cache),
        key, use_cache, jobs,
    )


def graph_sweep(benchmark: str, algorithm: str = "PR", iterations: int | None = None,
                scale_divisor: int = 64,
                config: GraphAcceleratorConfig | None = None,
                use_cache: bool = True,
                jobs: int | None = None) -> SchemeSweep:
    """Sweep all schemes over one graph workload (Fig. 14 data points)."""
    config = config or GraphAcceleratorConfig()
    key = ("graph-sweep", benchmark, algorithm, iterations, scale_divisor,
           config.cache_key())
    return _sweep_workload(
        lambda: graph_workload(benchmark, algorithm, iterations, scale_divisor,
                               config=config, use_cache=use_cache),
        key, use_cache, jobs,
    )
