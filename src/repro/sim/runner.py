"""Workload runner: batched traces, trace/sweep reuse, parallel sweeps.

The experiments all follow the same pattern — generate a trace, run
{NP, BP, MGX, MGX_VN, MGX_MAC} over it, normalize to NP — and the figure
drivers repeat the *same* workloads (fig03, fig12, fig13 and the
headline table all sweep the same DNN configurations).  This module
packages that loop as a pipeline with three levers:

* **Batching** — every workload is converted once into per-phase
  :class:`~repro.core.access.AccessBatch` columns
  (:class:`BatchedTrace`), shared across all schemes of a sweep, so
  stateless schemes price whole columns instead of walking objects.
* **Reuse** — a process-wide :class:`TraceCache` keyed by workload
  configuration caches both the generated traces and the finished
  :class:`SchemeSweep` results, so a five-scheme suite prices one
  generated trace and repeated sweeps across experiment drivers are
  free.  Opt out per call with ``use_cache=False`` or globally with
  ``TRACE_CACHE.enabled = False``.
* **Parallelism** — ``sweep_schemes(..., jobs=N)`` with ``N >= 2`` runs
  independent schemes across worker processes (opt-in; results are
  bit-identical to the serial path).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.access import AccessBatch, Phase
from repro.core.schemes import ProtectionScheme, scheme_suite
from repro.dnn.accelerator import CONFIGS, DnnAcceleratorConfig
from repro.dnn.models import build_model
from repro.dnn.tracegen import DnnTraceGenerator
from repro.dram.model import DramModel
from repro.graph.generators import build_benchmark_graph
from repro.graph.graphlily import GraphAcceleratorConfig, GraphTraceGenerator
from repro.sim.perf import PerfConfig, PerformanceModel, SimResult

#: Paper scheme names in presentation order.
SCHEMES = ("NP", "BP", "MGX", "MGX_VN", "MGX_MAC")


@dataclass
class BatchedTrace:
    """A phase list plus its once-converted structure-of-arrays columns."""

    phases: list[Phase]
    batches: list[AccessBatch]

    @classmethod
    def from_phases(cls, phases: list[Phase]) -> "BatchedTrace":
        return cls(phases, [AccessBatch.from_phase(p) for p in phases])

    @property
    def total_accesses(self) -> int:
        return sum(len(batch) for batch in self.batches)


class TraceCache:
    """Process-wide LRU cache of generated traces and sweep results.

    Keys are workload-configuration tuples (model, machine, algorithm,
    iterations, …), so any driver asking for the same workload — within
    one experiment or across the whole figure suite — reuses the entry
    instead of regenerating.  Entries are treated as immutable by every
    consumer.
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def get_or_build(self, key: Hashable, builder: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building it on a miss."""
        if not self.enabled:
            return builder()
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        value = builder()
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}


#: The default cache every workload constructor consults.
TRACE_CACHE = TraceCache()


@dataclass
class Workload:
    """A priced-workload bundle: trace columns + the machine to run on."""

    label: str
    trace: BatchedTrace
    protected_bytes: int
    accel_freq_hz: float
    dram_model: DramModel

    def performance_model(self) -> PerformanceModel:
        return PerformanceModel(
            self.dram_model, PerfConfig(accel_freq_hz=self.accel_freq_hz)
        )


@dataclass
class SchemeSweep:
    """Results of all schemes over one workload, normalized to NP."""

    workload: str
    results: dict[str, SimResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SimResult:
        return self.results["NP"]

    def normalized_time(self, scheme: str) -> float:
        return self.results[scheme].normalized_to(self.baseline)

    def traffic_increase(self, scheme: str) -> float:
        return self.results[scheme].traffic_increase_over(self.baseline)

    def overhead_percent(self, scheme: str) -> float:
        return 100.0 * (self.normalized_time(scheme) - 1.0)


#: Per-worker sweep context set by :func:`_init_sweep_worker`; shipping the
#: trace once per worker (instead of once per scheme submission) keeps the
#: serialization cost independent of the scheme count.
_WORKER_CONTEXT: tuple[PerformanceModel, list[Phase], list[AccessBatch] | None] | None = None


def _init_sweep_worker(
    context: tuple[PerformanceModel, list[Phase], list[AccessBatch] | None],
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_scheme_job(scheme: ProtectionScheme) -> SimResult:
    """Worker entry point for parallel sweeps (must be picklable)."""
    assert _WORKER_CONTEXT is not None
    model, phases, batches = _WORKER_CONTEXT
    return model.run(phases, scheme, batches=batches)


def sweep_schemes(
    workload: str,
    phases: list[Phase],
    model: PerformanceModel,
    protected_bytes: int,
    schemes: dict[str, ProtectionScheme] | None = None,
    batches: list[AccessBatch] | None = None,
    jobs: int | None = None,
) -> SchemeSweep:
    """Run every scheme over ``phases`` and collect normalized results.

    ``batches`` shares precomputed per-phase columns across the schemes.
    ``jobs >= 2`` distributes independent schemes over that many worker
    processes; the scheme objects are mutated in the workers, so the
    caller's instances stay untouched and results are collected in
    presentation order.  ``None`` (or ``jobs <= 1``) runs serially.
    """
    suite = schemes if schemes is not None else scheme_suite(protected_bytes)
    names = [name for name in SCHEMES if name in suite]
    names += [name for name in suite if name not in SCHEMES]
    if batches is None and any(suite[name].vectorizes for name in names):
        # Convert once here rather than per vectorizing scheme in run().
        batches = [AccessBatch.from_phase(phase) for phase in phases]
    sweep = SchemeSweep(workload=workload)
    if jobs is not None and jobs > 1 and len(names) > 1:
        workers = min(jobs, os.cpu_count() or 1, len(names))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_sweep_worker,
            initargs=((model, phases, batches),),
        ) as pool:
            futures = {
                name: pool.submit(_run_scheme_job, suite[name]) for name in names
            }
            for name in names:
                sweep.results[name] = futures[name].result()
        return sweep
    for name in names:
        sweep.results[name] = model.run(phases, suite[name], batches=batches)
    return sweep


# ---------------------------------------------------------------------------
# Workload constructors
# ---------------------------------------------------------------------------

def dnn_workload(model_name: str, config_name: str = "Cloud",
                 training: bool = False, batch: int = 1,
                 use_cache: bool = True) -> Workload:
    """Build (or fetch from the cache) one DNN workload's batched trace."""
    config: DnnAcceleratorConfig = CONFIGS[config_name]
    label = f"{model_name}-{'Train' if training else 'Inf'}-{config_name}"

    def build() -> BatchedTrace:
        generator = DnnTraceGenerator(build_model(model_name), config, batch=batch)
        trace = generator.training_step() if training else generator.inference()
        return BatchedTrace.from_phases(trace.phases)

    key = ("dnn-trace", model_name, config_name, training, batch)
    trace = (
        TRACE_CACHE.get_or_build(key, build) if use_cache else build()
    )
    return Workload(
        label=label,
        trace=trace,
        protected_bytes=config.protected_bytes,
        accel_freq_hz=config.array.freq_hz,
        dram_model=DramModel(config.dram),
    )


def graph_workload(benchmark: str, algorithm: str = "PR",
                   iterations: int | None = None, scale_divisor: int = 64,
                   config: GraphAcceleratorConfig | None = None,
                   use_cache: bool = True) -> Workload:
    """Build (or fetch from the cache) one graph workload's batched trace."""
    config = config or GraphAcceleratorConfig()

    def build() -> BatchedTrace:
        graph = build_benchmark_graph(benchmark, scale_divisor=scale_divisor)
        generator = GraphTraceGenerator(graph, config)
        if algorithm == "PR":
            trace = generator.pagerank_trace(iterations=iterations)
        elif algorithm == "BFS":
            trace = generator.bfs_trace(iterations=iterations)
        elif algorithm == "SSSP":
            trace = generator.sssp_trace(iterations=iterations)
        elif algorithm == "SpMSpV":
            trace = generator.spmspv_trace(iterations=iterations or 4)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        return BatchedTrace.from_phases(trace.phases)

    key = ("graph-trace", benchmark, algorithm, iterations, scale_divisor, config)
    trace = (
        TRACE_CACHE.get_or_build(key, build) if use_cache else build()
    )
    return Workload(
        label=f"{algorithm}-{benchmark}",
        trace=trace,
        protected_bytes=config.protected_bytes,
        accel_freq_hz=config.freq_hz,
        dram_model=DramModel(config.dram),
    )


def _sweep_workload(workload: Workload, sweep_key: Hashable | None,
                    use_cache: bool, jobs: int | None) -> SchemeSweep:
    """Sweep the five-scheme suite over a workload, reusing cached results."""
    def run() -> SchemeSweep:
        return sweep_schemes(
            workload.label,
            workload.trace.phases,
            workload.performance_model(),
            workload.protected_bytes,
            batches=workload.trace.batches,
            jobs=jobs,
        )

    if use_cache and sweep_key is not None:
        return TRACE_CACHE.get_or_build(sweep_key, run)
    return run()


def dnn_sweep(model_name: str, config_name: str = "Cloud", training: bool = False,
              batch: int = 1, use_cache: bool = True,
              jobs: int | None = None) -> SchemeSweep:
    """Sweep all schemes over one DNN workload (Fig. 12/13 data points)."""
    workload = dnn_workload(model_name, config_name, training, batch,
                            use_cache=use_cache)
    key = ("dnn-sweep", model_name, config_name, training, batch)
    return _sweep_workload(workload, key, use_cache, jobs)


def graph_sweep(benchmark: str, algorithm: str = "PR", iterations: int | None = None,
                scale_divisor: int = 64,
                config: GraphAcceleratorConfig | None = None,
                use_cache: bool = True,
                jobs: int | None = None) -> SchemeSweep:
    """Sweep all schemes over one graph workload (Fig. 14 data points)."""
    config = config or GraphAcceleratorConfig()
    workload = graph_workload(benchmark, algorithm, iterations, scale_divisor,
                              config=config, use_cache=use_cache)
    key = ("graph-sweep", benchmark, algorithm, iterations, scale_divisor, config)
    return _sweep_workload(workload, key, use_cache, jobs)
