"""Cache lifecycle: mark-and-sweep GC, verification and stats.

The shared artifact cache (:class:`~repro.sim.runner.TraceCache`'s disk
tier) is append-only by construction — every code or configuration
change re-keys its artifacts, and nothing ever reclaims the superseded
spills — so a long-lived ``REPRO_CACHE_DIR`` grows without bound.  This
module closes the loop, in the spirit of the paper's thesis that
metadata should be *derivable on demand rather than stored*: every
artifact can be regenerated from its spec, so the cache is free to
discard anything, and the only question is what is worth keeping.

* **Mark** — the live set is derived exactly the way the distributed
  queue derives its job list: expand the suite's artifact graph
  (figures *and* ablation/extra tables, quick and full mode) and map
  every job key to its spill file names
  (:func:`~repro.sim.runner.spill_filenames` — for binary kinds that is
  both the current ``.bin`` name and the legacy v2 ``.json`` one, so a
  reachable v2 spill survives the sweep too).  Reachable artifacts are
  never deleted, by any policy.
* **Sweep** — unreachable artifacts are deletion candidates, filtered
  by an age grace (``max_age``) and, after that, by a size budget
  (``max_bytes``) applied oldest-first with a stable name tiebreak, so
  two GC runs over the same directory state plan identical deletions.
* **Housekeeping** — orphaned queue locks (heartbeat long stopped; see
  :func:`repro.sim.queue.find_stale_locks`) and abandoned ``*.tmp.*``
  spill temporaries are removed; fresh locks of live workers are left
  alone.
* **Verify** — every spill carries a ``#sha256:`` content-digest
  trailer (:func:`~repro.sim.runner.split_spill` for JSON spills,
  :func:`~repro.sim.runner.split_spill_bytes` for columnar binary
  ones); ``verify`` re-hashes the payloads — binary spills over a
  memoryview, no text copy — and decodes them under their kind codec,
  flagging corruption and stale layouts without touching the artifacts.

CLI: ``python -m repro.experiments cache {stats,gc,verify}``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.common.errors import ConfigError
from repro.sim.queue import (
    QUARANTINE_AFTER,
    QUEUE_SUBDIR,
    attempt_counts,
    find_stale_locks,
)
from repro.sim.runner import (
    ARTIFACT_KINDS,
    decode_spill,
    payload_digest,
    spill_filenames,
    split_spill,
    split_spill_bytes,
)

#: A queue lock this old has no live heartbeat behind it (workers touch
#: theirs every ~2 s); generous so a GC racing a live drain on a slow
#: shared mount never steals a working claim.
LOCK_STALE_SECONDS = 600.0

#: Spill temporaries (`*.tmp.<pid>`) older than this are from writers
#: that died mid-spill; live writers rename them within milliseconds.
TMP_STALE_SECONDS = 3600.0


@dataclass(frozen=True)
class ArtifactFile:
    """One artifact spill on disk (a ``<kind>-<keydigest>.json`` file in
    disk format v2, ``<kind>-<keydigest>.bin`` in format v3)."""

    path: Path
    kind: str
    size: int
    mtime: float

    @property
    def format_version(self) -> int:
        """The disk-format version the file's framing encodes."""
        return 3 if self.path.suffix == ".bin" else 2


def _artifact_kind(name: str) -> str | None:
    """The artifact kind a spill file name encodes (``None``: not one)."""
    if not (name.endswith(".json") or name.endswith(".bin")):
        return None
    kind = name.split("-", 1)[0]
    return kind if kind in ARTIFACT_KINDS else None


def scan_artifacts(cache_dir: str | os.PathLike) -> list[ArtifactFile]:
    """Every artifact spill in the cache dir, sorted by file name."""
    files: list[ArtifactFile] = []
    paths = list(Path(cache_dir).glob("*.json"))
    paths += Path(cache_dir).glob("*.bin")
    for path in sorted(paths):
        kind = _artifact_kind(path.name)
        if kind is None:
            continue
        try:
            stat = path.stat()
        except OSError:
            continue  # deleted under us
        files.append(ArtifactFile(path, kind, stat.st_size, stat.st_mtime))
    return files


def live_file_names(jobs: Iterable) -> set[str]:
    """The spill names a job graph's artifacts occupy (the mark set).

    A binary-kind key contributes every name it is readable under —
    current ``.bin`` and legacy ``.json`` — so pre-migration spills of a
    live key are reachable, not garbage.
    """
    names: set[str] = set()
    for job in jobs:
        names.update(spill_filenames(job.key))
    return names


def default_live_names() -> set[str]:
    """The mark set of the whole registered suite, quick and full mode.

    Both modes are live: CI populates quick-mode artifacts and paper
    runs full-mode ones, and the two share a cache dir by design.
    """
    from repro.experiments.registry import FULL_SUITE, suite_graph

    names: set[str] = set()
    for quick in (False, True):
        names |= live_file_names(suite_graph(FULL_SUITE, quick))
    return names


@dataclass
class GcPlan:
    """A deterministic deletion plan (computed before anything is touched)."""

    keep: list[ArtifactFile] = field(default_factory=list)
    delete: list[ArtifactFile] = field(default_factory=list)
    #: Unreachable artifacts retained by the age grace / size headroom.
    spared: list[ArtifactFile] = field(default_factory=list)
    stale_locks: list[Path] = field(default_factory=list)
    stale_tmp: list[Path] = field(default_factory=list)
    #: Queue ``*.attempts`` records whose job has since produced its
    #: artifact (a transient failure that resolved) or that have aged
    #: out — left in place they would keep reporting long-dead failures
    #: in the quarantine census.
    stale_attempts: list[Path] = field(default_factory=list)

    @property
    def bytes_freed(self) -> int:
        return sum(f.size for f in self.delete)


def plan_gc(
    cache_dir: str | os.PathLike,
    live: set[str] | None = None,
    max_age: float | None = None,
    max_bytes: int | None = None,
    now: float | None = None,
    lock_stale_seconds: float = LOCK_STALE_SECONDS,
    tmp_stale_seconds: float = TMP_STALE_SECONDS,
) -> GcPlan:
    """Plan a mark-and-sweep pass; nothing is deleted yet.

    ``live`` is the mark set of spill file names (defaults to the whole
    registered suite's, quick + full).  Reachable artifacts are always
    kept.  Policies apply to unreachable artifacts only: with neither
    policy given, all of them go (a classic sweep); ``max_age`` deletes
    those older than the grace period and spares the rest; ``max_bytes``
    then evicts spared artifacts — oldest first, ties broken by file
    name — until the directory's total artifact size fits the budget.
    Reachable artifacts never count *against* other artifacts' survival:
    if the live set alone exceeds the budget, the budget is simply not
    reachable and every unreachable artifact goes.
    """
    import time as _time

    if now is None:
        now = _time.time()
    if live is None:
        live = default_live_names()
    plan = GcPlan()
    candidates: list[ArtifactFile] = []
    for artifact in scan_artifacts(cache_dir):
        if artifact.path.name in live:
            plan.keep.append(artifact)
        else:
            candidates.append(artifact)

    for artifact in candidates:
        if max_age is None and max_bytes is None:
            plan.delete.append(artifact)  # no policy: classic sweep
        elif max_age is not None and now - artifact.mtime >= max_age:
            plan.delete.append(artifact)
        else:
            plan.spared.append(artifact)

    if max_bytes is not None:
        remaining = sum(f.size for f in plan.keep) + sum(
            f.size for f in plan.spared
        )
        if remaining > max_bytes:
            # Oldest-first, stable name tiebreak: deterministic on equal
            # mtimes (bulk-restored caches have plenty of those).
            overage = sorted(plan.spared, key=lambda f: (f.mtime, f.path.name))
            spared: list[ArtifactFile] = []
            for artifact in overage:
                if remaining > max_bytes:
                    plan.delete.append(artifact)
                    remaining -= artifact.size
                else:
                    spared.append(artifact)
            plan.spared = sorted(spared, key=lambda f: f.path.name)

    queue_dir = Path(cache_dir) / QUEUE_SUBDIR
    if queue_dir.is_dir():
        plan.stale_locks = find_stale_locks(queue_dir, lock_stale_seconds,
                                            now=now)
        for record in sorted(queue_dir.glob("*.attempts")):
            # A failure record is stale once the job's artifact exists
            # under either spill format (the failure resolved — usually a
            # peer computed it, so nobody cleared the loser's record) or
            # once it has aged past the tmp grace: either way, keeping
            # it only pollutes the quarantine census.
            resolved = any(
                (Path(cache_dir) / f"{record.stem}{ext}").exists()
                for ext in (".bin", ".json")
            )
            try:
                aged = now - record.stat().st_mtime >= tmp_stale_seconds
            except OSError:
                continue  # cleared between glob and stat
            if resolved or aged:
                plan.stale_attempts.append(record)
    # The tmp glob matches every artifact kind: spill temporaries keep
    # their `<kind>-<keydigest>` stem and only swap the extension for
    # `.tmp.<pid>`, so a worker SIGKILLed mid-write leaves exactly one
    # matching orphan regardless of kind or format version.
    for tmp in sorted(Path(cache_dir).glob("*.tmp.*")):
        try:
            if now - tmp.stat().st_mtime >= tmp_stale_seconds:
                plan.stale_tmp.append(tmp)
        except OSError:
            continue
    return plan


def run_gc(plan: GcPlan, dry_run: bool = False) -> dict:
    """Execute (or, with ``dry_run``, only describe) a GC plan.

    Deletions are best-effort unlinks — a peer GC racing us may win any
    individual file, which is fine: both planned the same deletions.
    """
    summary = {
        "kept": len(plan.keep),
        "spared": len(plan.spared),
        "deleted": 0,
        "bytes_freed": 0,
        "locks_removed": 0,
        "tmp_removed": 0,
        "attempts_removed": 0,
        "dry_run": dry_run,
    }
    for artifact in plan.delete:
        if not dry_run:
            try:
                artifact.path.unlink()
            except OSError:
                continue
        summary["deleted"] += 1
        summary["bytes_freed"] += artifact.size
    for lock in plan.stale_locks:
        if not dry_run:
            try:
                lock.unlink()
            except OSError:
                continue
        summary["locks_removed"] += 1
    for tmp in plan.stale_tmp:
        if not dry_run:
            try:
                tmp.unlink()
            except OSError:
                continue
        summary["tmp_removed"] += 1
    for record in plan.stale_attempts:
        if not dry_run:
            try:
                record.unlink()
            except OSError:
                continue
        summary["attempts_removed"] += 1
    return summary


@dataclass(frozen=True)
class VerifyIssue:
    """One artifact that failed re-verification."""

    path: Path
    status: str  # "corrupt" | "stale" | "unverifiable"
    detail: str


def verify_artifacts(cache_dir: str | os.PathLike) -> tuple[int, list[VerifyIssue]]:
    """Re-hash and re-decode every stored artifact.

    Returns ``(ok_count, issues)``.  ``corrupt`` means the payload no
    longer matches its recorded content digest (bit rot, truncation,
    manual edits); ``stale`` means the digest holds but the payload no
    longer decodes under the current codec (an old layout version —
    harmless, the cache rebuilds over it, and ``gc`` will sweep it once
    unreachable); ``unverifiable`` marks legacy spills without a digest
    trailer.
    """
    ok = 0
    issues: list[VerifyIssue] = []
    for artifact in scan_artifacts(cache_dir):
        binary = artifact.format_version >= 3
        try:
            raw = artifact.path.read_bytes()
        except OSError as exc:
            issues.append(VerifyIssue(artifact.path, "corrupt", str(exc)))
            continue
        payload: str | memoryview
        if binary:
            payload, digest = split_spill_bytes(raw)
        else:
            try:
                text = raw.decode()
            except UnicodeDecodeError as exc:
                issues.append(VerifyIssue(artifact.path, "corrupt", str(exc)))
                continue
            payload, digest = split_spill(text)
        if digest is None:
            status = "corrupt" if binary else "unverifiable"
            detail = ("missing digest trailer (truncated binary spill)"
                      if binary else "no digest trailer (legacy spill)")
            issues.append(VerifyIssue(artifact.path, status, detail))
            continue
        # payload_digest hashes the binary payload through its
        # memoryview — no intermediate copy of a multi-megabyte spill.
        if payload_digest(payload) != digest:
            issues.append(VerifyIssue(artifact.path, "corrupt",
                                      "payload does not match its digest"))
            continue
        try:
            decode_spill(artifact.kind, payload)
        except Exception as exc:  # noqa: BLE001 - any decode failure is stale
            issues.append(VerifyIssue(artifact.path, "stale", str(exc)))
            continue
        ok += 1
    return ok, issues


def cache_stats(cache_dir: str | os.PathLike,
                live: set[str] | None = None) -> dict:
    """Aggregate per-kind counts/bytes plus queue and reachability state."""
    if live is None:
        live = default_live_names()
    stats: dict = {
        "cache_dir": str(cache_dir),
        "kinds": {kind: {"files": 0, "bytes": 0, "v2": 0, "v3": 0}
                  for kind in ARTIFACT_KINDS},
        "total_files": 0,
        "total_bytes": 0,
        "format_v2": 0,
        "format_v3": 0,
        "reachable": 0,
        "unreachable": 0,
    }
    for artifact in scan_artifacts(cache_dir):
        bucket = stats["kinds"][artifact.kind]
        bucket["files"] += 1
        bucket["bytes"] += artifact.size
        bucket[f"v{artifact.format_version}"] += 1
        stats["total_files"] += 1
        stats["total_bytes"] += artifact.size
        stats[f"format_v{artifact.format_version}"] += 1
        if artifact.path.name in live:
            stats["reachable"] += 1
        else:
            stats["unreachable"] += 1
    queue_dir = Path(cache_dir) / QUEUE_SUBDIR
    locks = list(queue_dir.glob("*.lock")) if queue_dir.is_dir() else []
    stale = (find_stale_locks(queue_dir, LOCK_STALE_SECONDS)
             if locks else [])
    stats["queue_locks"] = len(locks)
    stats["stale_queue_locks"] = len(stale)
    stats["tmp_files"] = len(list(Path(cache_dir).glob("*.tmp.*")))
    # Quarantine census from the durable attempt records, so fleet
    # tooling can gate on poisoned jobs without scraping drain output.
    counts = attempt_counts(queue_dir) if queue_dir.is_dir() else {}
    stats["attempt_records"] = len(counts)
    stats["failed_attempts"] = sum(counts.values())
    stats["quarantined_jobs"] = sorted(
        job_id for job_id, n in counts.items() if n >= QUARANTINE_AFTER
    )
    return stats


# ---------------------------------------------------------------------------
# CLI helpers (``python -m repro.experiments cache ...``)
# ---------------------------------------------------------------------------

_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
_SIZE_UNITS = {"b": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30,
               "t": 1 << 40}


def parse_duration(text: str) -> float:
    """``"0s"``/``"30m"``/``"12h"``/``"7d"`` (or plain seconds) → seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _DURATION_UNITS:
        unit = _DURATION_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ConfigError(f"unparseable duration {text!r} "
                          "(expected e.g. 90, 0s, 30m, 12h, 7d)") from None
    if value < 0:
        raise ConfigError("durations must be non-negative")
    return value * unit


def parse_size(text: str) -> int:
    """``"512M"``/``"2G"`` (or plain bytes) → bytes."""
    text = text.strip().lower()
    unit = 1
    if text and text[-1] in _SIZE_UNITS:
        unit = _SIZE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ConfigError(f"unparseable size {text!r} "
                          "(expected e.g. 1048576, 512M, 2G)") from None
    if value < 0:
        raise ConfigError("sizes must be non-negative")
    return int(value * unit)


def format_bytes(n: int | float) -> str:
    """Human-readable byte count (exact below 1 KiB)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(n)} {unit}"
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable
