"""Roofline analysis: where each workload sits and what protection costs.

For a balanced accelerator (§VI-A), protection overhead surfaces only in
memory-bound phases.  This utility classifies a trace's phases against
the machine's compute roof and bandwidth roof, reporting the
arithmetic-intensity distribution and the fraction of execution exposed
to memory overhead — the quantity that converts Fig. 12's traffic
numbers into Fig. 13's time numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.core.access import Phase
from repro.core.schemes import NoProtection
from repro.dram.model import DramModel
from repro.sim.perf import PerfConfig, PerformanceModel


@dataclass(frozen=True)
class PhaseRoofline:
    """One phase's position against the two roofs."""

    name: str
    compute_cycles: float
    memory_cycles: float
    bytes_moved: int

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles >= self.compute_cycles

    @property
    def intensity_cycles_per_byte(self) -> float:
        """Compute cycles per DRAM byte — the trace-level analogue of
        arithmetic intensity."""
        return self.compute_cycles / self.bytes_moved if self.bytes_moved else float("inf")


@dataclass
class RooflineReport:
    """Aggregate roofline classification of a trace on a machine."""

    phases: list[PhaseRoofline]

    @property
    def memory_bound_fraction_of_time(self) -> float:
        """Share of execution time spent in memory-bound phases — the
        ceiling on how much protection overhead can show up."""
        total = sum(max(p.compute_cycles, p.memory_cycles) for p in self.phases)
        if total == 0:
            return 0.0
        bound = sum(
            max(p.compute_cycles, p.memory_cycles)
            for p in self.phases
            if p.memory_bound
        )
        return bound / total

    @property
    def memory_bound_phase_count(self) -> int:
        return sum(1 for p in self.phases if p.memory_bound)

    def predicted_overhead(self, traffic_increase: float) -> float:
        """First-order prediction of execution overhead from a traffic
        ratio: memory-bound phases stretch with traffic, compute-bound
        phases absorb it (until they flip)."""
        if traffic_increase < 1.0:
            raise ConfigError("traffic increase must be >= 1.0")
        total = 0.0
        stretched = 0.0
        for p in self.phases:
            base = max(p.compute_cycles, p.memory_cycles)
            total += base
            stretched += max(p.compute_cycles, p.memory_cycles * traffic_increase)
        return stretched / total if total else 1.0


def analyze(phases: list[Phase], dram: DramModel, accel_freq_hz: float) -> RooflineReport:
    """Classify every phase of a trace (unprotected baseline)."""
    model = PerformanceModel(dram, PerfConfig(accel_freq_hz=accel_freq_hz,
                                              crypto_efficiency=1.0))
    result = model.run(phases, NoProtection(), keep_phase_results=True)
    report_phases = [
        PhaseRoofline(
            name=pr.name,
            compute_cycles=pr.compute_cycles,
            memory_cycles=pr.memory_cycles,
            bytes_moved=phase.total_bytes(),
        )
        for pr, phase in zip(result.phase_results, phases)
    ]
    return RooflineReport(phases=report_phases)
