"""File-lock distributed work queue over the shared artifact cache.

The artifact graph (:mod:`repro.sim.scheduler`) is a pure function of
the experiment selection, so every process pointed at the same cache
directory derives the *same* job list.  That makes distribution almost
trivial: the only coordination needed is "who computes which missing
artifact", and a shared filesystem can answer it with lock files —

* **claim** — atomically create ``<job-id>.lock`` (``O_CREAT | O_EXCL``)
  in the queue directory; the winner computes the job, everyone else
  moves on to other jobs;
* **heartbeat** — a daemon thread touches the lock's mtime while the
  job runs, so long jobs are distinguishable from dead owners;
* **orphan reclaim** — a lock whose mtime has gone stale (killed
  worker, rebooted machine) is removed by any waiting worker, and the
  job becomes claimable again;
* **done** — an artifact's existence *is* its completion marker (the
  cache writes are atomic tmp+rename), so stale state can never
  deadlock a fresh run: a lock without a live heartbeat expires, and a
  lock racing an existing artifact is skipped outright.

Because every job is deterministic and artifacts are content-addressed,
duplicate computation after a reclaim race is harmless — both workers
write byte-identical bytes (the columnar binary trace layout of
:mod:`repro.sim.spillfmt` included).  ``python -m repro.experiments
--workers N`` drains the graph this way; processes on separate machines
sharing ``REPRO_CACHE_DIR`` cooperate with no other channel, and the
figure tables rendered afterwards are byte-identical to a serial run.
Workers consuming a finished trace spill mmap it through the cache's
zero-copy load path, so co-located workers share one copy of the
columns in the OS page cache rather than each parsing its own JSON.

Failure handling (chaos-hardened; see :mod:`repro.sim.faults`):

* **attempt records** — a job whose computation raises gets a line
  appended to ``<job-id>.attempts`` in the queue directory, so failure
  counts are shared across workers and machines exactly like claims;
* **poison-job quarantine** — a job that has failed
  :data:`QUARANTINE_AFTER` times is quarantined: the drain stops
  retrying it, drops every job depending (transitively) on its
  artifact, **completes** instead of deadlocking, and reports the
  quarantined set (the CLI exits nonzero);
* **per-job deadlines** — a claim can carry a deadline after which its
  heartbeat stops voluntarily, so a *hung* job (not just a dead one)
  converts into a stale-reclaimable lock peers can take over;
* **transient I/O** — claim/release/heartbeat filesystem operations run
  under :func:`repro.sim.faults.call_with_retries` (bounded retries,
  exponential backoff, deterministic jitter); a missed heartbeat is
  skipped, not fatal, and a failed release is left to stale reclaim.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import wait
from pathlib import Path
from typing import Sequence

from repro.common.errors import ConfigError
from repro.sim import faults
from repro.sim.scheduler import ArtifactJob, compute_job

#: Subdirectory of the shared cache dir that holds the lock files.
QUEUE_SUBDIR = "queue"

#: Failures (recorded in a job's ``*.attempts`` file) after which a job
#: is quarantined as poisoned rather than retried forever.
QUARANTINE_AFTER = 3


def attempt_counts(queue_dir: str | os.PathLike) -> dict[str, int]:
    """Per-job failure counts from the queue dir's ``*.attempts`` records.

    The census ``cache stats`` and the GC read; sorted by job id so two
    scans of the same state report identically.
    """
    counts: dict[str, int] = {}
    for path in sorted(Path(queue_dir).glob("*.attempts")):
        try:
            text = path.read_text()
        except OSError:
            continue  # cleared between glob and read
        counts[path.stem] = sum(1 for line in text.splitlines() if line.strip())
    return counts


def find_stale_locks(queue_dir: str | os.PathLike, stale_seconds: float,
                     now: float | None = None) -> list[Path]:
    """Lock files whose heartbeat stopped (sorted; shared with the GC).

    A lock is stale when its mtime is older than ``stale_seconds`` — the
    owner's heartbeat thread died with the owner, so nothing refreshes
    it.  Fresh locks belong to live workers and must be left alone;
    :meth:`WorkQueue.reclaim_stale` and ``cache gc``'s orphaned-lock
    cleanup both build on this predicate.
    """
    if now is None:
        now = time.time()
    stale: list[Path] = []
    for lock in sorted(Path(queue_dir).glob("*.lock")):
        try:
            mtime = lock.stat().st_mtime
        except OSError:
            continue  # released between glob and stat
        if now - mtime > stale_seconds:
            stale.append(lock)
    return stale


class Claim:
    """An exclusive claim on one job, kept alive by a heartbeat thread.

    The heartbeat is a daemon thread touching the lock file's mtime; if
    the owning process dies (even ``SIGKILL``), the heartbeat stops with
    it and the lock goes stale, which is exactly the signal
    :meth:`WorkQueue.reclaim_stale` keys on.

    ``token`` is the unique line :meth:`WorkQueue.try_claim` wrote into
    the lock file; both the heartbeat and :meth:`release` verify it
    before touching the path, so a claim that was reclaimed while its
    owner stalled (and possibly re-claimed by a peer) can neither
    keep-alive nor delete the peer's lock.

    ``deadline_seconds`` bounds how long the heartbeat keeps the claim
    alive: past the deadline the beat thread stops *voluntarily*, so a
    job that hangs (rather than dies) converts into an ordinary
    stale-reclaimable lock and peers take the job over — the hang costs
    one worker, never the drain.
    """

    def __init__(self, path: Path, token: str, heartbeat_seconds: float,
                 deadline_seconds: float | None = None) -> None:
        self.path = path
        self.token = token
        self._deadline = (
            None if deadline_seconds is None
            else time.monotonic() + deadline_seconds
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat, args=(heartbeat_seconds,), daemon=True
        )
        self._thread.start()

    def _owns_lock(self) -> bool:
        try:
            return self.path.read_text() == self.token
        except OSError:
            return False  # reclaimed and not (yet) re-claimed

    def _beat(self, interval: float) -> None:
        # Every wait in this loop — the beat interval, injected delays,
        # retry backoffs — blocks on the stop event, never a bare
        # sleep, so release() observes the thread exiting promptly even
        # under chaos and can join it fully instead of truncating.
        while not self._stop.wait(interval):
            if self._deadline is not None and time.monotonic() > self._deadline:
                break  # job deadline passed: go stale, let peers reclaim
            if not self._owns_lock():
                break  # lock was reclaimed under us; stop beating
            try:
                faults.maybe_fault("heartbeat", self.path.name,
                                   event=self._stop)
                os.utime(self.path)
            except faults.FaultInjected:
                continue  # one missed beat; the stale window absorbs it
            except OSError:
                break

    def expired(self) -> bool:
        """Whether this claim's job deadline has passed."""
        return self._deadline is not None and time.monotonic() > self._deadline

    def release(self, timeout: float | None = None) -> None:
        """Stop the heartbeat and remove the lock file (if still ours).

        The beat thread only ever waits on the stop event, so the join
        returns as soon as the current ``utime`` finishes; ``timeout``
        (``None``: join fully) is a last-ditch guard for a filesystem
        call hung inside the beat.  A failed unlink is left to stale
        reclaim — the heartbeat is already stopped, so the lock ages
        out on its own.
        """
        self._stop.set()
        self._thread.join(timeout)
        if not self._owns_lock():
            return  # reclaimed by a peer, possibly re-claimed: leave it
        try:
            faults.call_with_retries(self.path.unlink, "release",
                                     self.path.name,
                                     no_retry=(FileNotFoundError,))
        except OSError:
            pass

    def __enter__(self) -> "Claim":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class WorkQueue:
    """Lock-file claims over a shared directory (no daemon, no sockets).

    ``stale_seconds`` must comfortably exceed ``heartbeat_seconds`` —
    the gap is the tolerance for filesystem latency on a shared mount.
    """

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        worker_id: str | None = None,
        heartbeat_seconds: float = 2.0,
        stale_seconds: float = 30.0,
        poll_seconds: float = 0.1,
        quarantine_after: int = QUARANTINE_AFTER,
        job_deadline_seconds: float | None = None,
    ) -> None:
        if stale_seconds <= heartbeat_seconds:
            raise ConfigError(
                f"stale_seconds ({stale_seconds}) must exceed "
                f"heartbeat_seconds ({heartbeat_seconds})"
            )
        if quarantine_after < 1:
            raise ConfigError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.queue_dir = Path(queue_dir)
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.heartbeat_seconds = heartbeat_seconds
        self.stale_seconds = stale_seconds
        self.poll_seconds = poll_seconds
        self.quarantine_after = quarantine_after
        self.job_deadline_seconds = job_deadline_seconds

    def lock_path(self, job_id: str) -> Path:
        return self.queue_dir / f"{job_id}.lock"

    def try_claim(self, job_id: str) -> Claim | None:
        """Atomically claim a job; ``None`` if a peer holds it.

        An existing lock is an answer, not an error, so it short-cuts
        the retry loop; transient claim I/O (injected or real) retries
        with backoff and, exhausted, reads as "not claimed" — the next
        drain pass simply tries again.
        """
        path = self.lock_path(job_id)

        def _create() -> int:
            return os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)

        try:
            fd = faults.call_with_retries(_create, "claim", job_id,
                                          no_retry=(FileExistsError,))
        except FileExistsError:
            return None
        except OSError:
            return None  # transient claim I/O outlasted the retries
        token = f"{self.worker_id} {os.getpid()} {time.monotonic_ns()}\n"
        with os.fdopen(fd, "w") as f:
            f.write(token)
        return Claim(path, token, self.heartbeat_seconds,
                     deadline_seconds=self.job_deadline_seconds)

    def is_claimed(self, job_id: str) -> bool:
        return self.lock_path(job_id).exists()

    # -- attempt records / quarantine ---------------------------------
    def attempts_path(self, job_id: str) -> Path:
        return self.queue_dir / f"{job_id}.attempts"

    def failure_count(self, job_id: str) -> int:
        """Recorded failures for a job (shared across workers/machines)."""
        try:
            text = self.attempts_path(job_id).read_text()
        except OSError:
            return 0
        return sum(1 for line in text.splitlines() if line.strip())

    def record_failure(self, job_id: str, error: BaseException) -> int:
        """Append one failure line; returns the new failure count.

        Appends are tiny single writes (``O_APPEND``), so concurrent
        recorders interleave whole lines.  The record is durable in the
        queue dir: any worker — this run or the next — counts the same
        failures, which is what makes quarantine a *fleet* decision.
        """
        detail = f"{type(error).__name__}: {error}".replace("\n", " ")[:200]
        line = f"{self.worker_id}\t{time.time():.3f}\t{detail}\n"
        try:
            with open(self.attempts_path(job_id), "a") as f:
                f.write(line)
        except OSError:
            pass  # record loss only delays quarantine, never corrupts it
        return self.failure_count(job_id)

    def clear_failures(self, job_id: str) -> None:
        """Forget a job's failures (it has since computed successfully)."""
        try:
            self.attempts_path(job_id).unlink()
        except OSError:
            pass

    def is_quarantined(self, job_id: str) -> bool:
        return self.failure_count(job_id) >= self.quarantine_after

    def quarantined_jobs(self) -> list[str]:
        """Job ids currently quarantined in this queue dir (sorted)."""
        return sorted(
            job_id
            for job_id, count in attempt_counts(self.queue_dir).items()
            if count >= self.quarantine_after
        )

    def reclaim_stale(self) -> list[str]:
        """Remove locks whose heartbeat stopped; returns reclaimed job ids.

        Safe to race: ``unlink`` failures (a peer reclaimed first, or
        the owner released) are ignored, and a reclaimed job is still
        guarded by the artifact-existence check before recomputation.
        """
        reclaimed: list[str] = []
        for lock in find_stale_locks(self.queue_dir, self.stale_seconds):
            try:
                lock.unlink()
            except OSError:
                continue
            reclaimed.append(lock.stem)
        return reclaimed


def drain_graph(
    jobs: Sequence[ArtifactJob],
    queue: WorkQueue,
    timeout: float | None = None,
    pool_jobs: int | None = None,
) -> dict:
    """Cooperatively compute every missing artifact of one job graph.

    Each pass walks the (topologically ordered) job list: jobs whose
    artifact already exists are done — whether this process or a peer
    made them — jobs with missing dependencies wait, and buildable jobs
    are raced for via lock-file claims.  When a pass makes no progress
    the worker reclaims stale locks and naps briefly; the loop ends when
    every artifact exists.  Returns a summary of this worker's share.

    ``pool_jobs`` hands claimed jobs to the scheduler's shared process
    pool instead of computing them inline: one ``--workers`` participant
    then keeps several claims in flight at once, their heartbeats alive
    in this process while the pool computes.  The artifact writes stay
    atomic and content-addressed, so the drain remains byte-identical to
    the inline path (pinned in ``tests/test_queue.py``).

    ``timeout`` bounds the total wait (``RuntimeError`` on expiry) —
    mainly a test/CI guard against a peer that claimed work and then
    hangs while still heartbeating.

    A job whose computation raises is **retried** (its failure recorded
    in the shared queue dir) until it reaches the queue's quarantine
    threshold; quarantined jobs — and, transitively, every job whose
    dependencies can now never exist — are dropped from the drain and
    reported in ``summary["quarantined"]`` / ``summary["skipped"]``, so
    a poisoned job degrades the run's coverage, never its liveness.  A
    computation that *returns* without its artifact landing in the
    shared store (a persistently failing spill) counts as a failure
    too, for the same reason.
    """
    from repro.sim.runner import TRACE_CACHE
    from repro.sim.scheduler import effective_workers

    if not TRACE_CACHE.enabled:
        raise ConfigError("the trace cache is disabled; a distributed drain "
                          "needs it as the shared artifact substrate")
    if TRACE_CACHE.cache_dir is None:
        raise ConfigError("no cache dir attached (use --cache-dir or "
                          "REPRO_CACHE_DIR); a distributed drain needs a "
                          "shared artifact directory")
    pool = None
    if pool_jobs is not None and effective_workers(pool_jobs) >= 2:
        from repro.sim.scheduler import _compute_job_shared, shared_pool

        pool = shared_pool(pool_jobs)
        store_dir = str(TRACE_CACHE.cache_dir)
    summary = {"jobs": len(jobs), "computed": 0, "reclaimed": 0, "waits": 0,
               "failures": 0, "quarantined": [], "skipped": []}
    #: Keys that will never exist this drain: quarantined jobs' outputs
    #: and, transitively, the outputs of jobs depending on them.
    poisoned: set = set()
    deadline = None if timeout is None else time.monotonic() + timeout
    pending = list(jobs)
    in_flight: dict = {}
    #: Claims held at once: bounded by the pool width so one participant
    #: cannot hoard the whole ready frontier while peers idle.
    max_in_flight = 0 if pool is None else 2 * effective_workers(pool_jobs)

    def job_failed(job: ArtifactJob, exc: BaseException) -> None:
        queue.record_failure(job.job_id(), exc)
        summary["failures"] += 1

    try:
        while pending or in_flight:
            progressed = False
            if in_flight:
                done = [future for future in in_flight if future.done()]
                for future in done:
                    job, claim = in_flight.pop(future)
                    try:
                        future.result()
                        if not TRACE_CACHE.has_spill(job.key):
                            raise RuntimeError(
                                f"artifact missing after computing "
                                f"{job.job_id()}"
                            )
                        summary["computed"] += 1
                        queue.clear_failures(job.job_id())
                    except Exception as exc:  # noqa: BLE001 - any failure is one attempt
                        job_failed(job, exc)
                    finally:
                        claim.release()
                    progressed = True
            still_pending: list[ArtifactJob] = []
            for job in pending:
                if TRACE_CACHE.has(job.key):
                    continue  # done — by us earlier, or by a peer
                if queue.is_quarantined(job.job_id()):
                    # Poisoned (here or by a peer): stop retrying, keep
                    # draining everything else.
                    summary["quarantined"].append(job.job_id())
                    poisoned.add(job.key)
                    progressed = True
                    continue
                if any(dep in poisoned for dep in job.deps):
                    # A dependency will never exist: dropping this job
                    # too is what keeps the drain from deadlocking.
                    summary["skipped"].append(job.job_id())
                    poisoned.add(job.key)
                    progressed = True
                    continue
                if not all(TRACE_CACHE.has(dep) for dep in job.deps):
                    still_pending.append(job)
                    continue
                if pool is not None and len(in_flight) >= max_in_flight:
                    still_pending.append(job)  # pool saturated: leave it
                    continue
                claim = queue.try_claim(job.job_id())
                if claim is None:
                    still_pending.append(job)  # a peer is on it
                    continue
                # Re-check under the lock: the artifact may have landed
                # between our presence check and the claim.
                if TRACE_CACHE.has(job.key):
                    claim.release()
                    progressed = True
                    continue
                attempt = queue.failure_count(job.job_id())
                if pool is not None:
                    future = pool.submit(_compute_job_shared, job, store_dir,
                                         attempt, faults.active_spec())
                    in_flight[future] = (job, claim)
                    progressed = True
                    continue
                try:
                    compute_job(job, attempt=attempt)
                    if not TRACE_CACHE.has_spill(job.key):
                        raise RuntimeError(
                            f"artifact missing after computing {job.job_id()}"
                        )
                    summary["computed"] += 1
                    queue.clear_failures(job.job_id())
                except Exception as exc:  # noqa: BLE001 - any failure is one attempt
                    job_failed(job, exc)
                    still_pending.append(job)  # retry until quarantine
                finally:
                    claim.release()
                progressed = True
            pending = still_pending
            if (pending or in_flight) and not progressed:
                summary["reclaimed"] += len(queue.reclaim_stale())
                summary["waits"] += 1
                if deadline is not None and time.monotonic() > deadline:
                    stuck = (pending[0].job_id() if pending
                             else next(iter(in_flight.values()))[0].job_id())
                    raise RuntimeError(
                        f"distributed drain timed out with "
                        f"{len(pending) + len(in_flight)} jobs pending "
                        f"(first: {stuck})"
                    )
                if in_flight:
                    wait(set(in_flight), timeout=queue.poll_seconds)
                else:
                    time.sleep(queue.poll_seconds)
    finally:
        # On any error, release outstanding claims: their heartbeats
        # would otherwise keep the locks fresh for the process lifetime,
        # locking peers out of those jobs.
        for job, claim in in_flight.values():
            claim.release()
    summary["quarantined"] = sorted(set(summary["quarantined"]))
    summary["skipped"] = sorted(set(summary["skipped"]))
    return summary


def _drain_worker(jobs: Sequence[ArtifactJob], cache_dir: str,
                  worker_id: str, pool_jobs: int | None = None) -> None:
    """Entry point for a local drain subprocess (picklable, top-level)."""
    from repro.sim.runner import TRACE_CACHE

    TRACE_CACHE.set_cache_dir(cache_dir)
    queue = WorkQueue(Path(cache_dir) / QUEUE_SUBDIR, worker_id=worker_id)
    drain_graph(jobs, queue, pool_jobs=pool_jobs)


def run_workers(jobs: Sequence[ArtifactJob], cache_dir: str | os.PathLike,
                workers: int, timeout: float | None = 3600.0,
                pool_jobs: int | None = None) -> dict:
    """Drain one graph with ``workers`` local processes (plus any peers).

    The calling process is worker 0 (so ``workers=1`` degrades to a
    plain in-process drain); the rest are spawned subprocesses.  All of
    them — and any ``--workers`` processes on other machines sharing the
    cache dir — coordinate purely through the queue directory.

    ``pool_jobs`` additionally fans each participant's claimed jobs out
    over the scheduler's shared in-process pool (``--workers N --jobs
    M``: N cooperating queue workers, each computing up to M claims
    concurrently).

    The default ``timeout`` is a guard against a *live but hung* peer —
    one that holds a claim and keeps heartbeating without ever
    finishing; dead peers are handled by stale-lock reclaim long before
    it fires, and the ``RuntimeError`` names the stuck job.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    import multiprocessing as mp

    cache_dir = str(cache_dir)
    queue = WorkQueue(Path(cache_dir) / QUEUE_SUBDIR)
    helpers = [
        mp.Process(target=_drain_worker,
                   args=(list(jobs), cache_dir, f"{queue.worker_id}-w{i}",
                         pool_jobs),
                   daemon=True)
        for i in range(1, workers)
    ]
    for helper in helpers:
        helper.start()
    try:
        summary = drain_graph(jobs, queue, timeout=timeout,
                              pool_jobs=pool_jobs)
    finally:
        for helper in helpers:
            helper.join(timeout=60.0)
            if helper.is_alive():
                helper.terminate()
    # Aggregate quarantine across all participants from the durable
    # attempt records: a helper may have quarantined a job this worker
    # never visited after it went poisoned.
    graph_ids = {job.job_id() for job in jobs}
    summary["quarantined"] = sorted(
        graph_ids.intersection(queue.quarantined_jobs())
    )
    return summary
