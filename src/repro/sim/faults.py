"""Deterministic, seeded fault injection for the distributed substrate.

The queue/cache/engine stack is supposed to survive flaky filesystems,
poisoned jobs and mis-compiled shared objects — but nothing exercises
those paths unless something *injects* them on purpose.  This module is
that something: a set of **named injection points** wired into the
substrate's seams, driven by a spec like ::

    REPRO_FAULTS="spill_read:io:0.05,claim:delay:0.1,native_call:crash:0.01@seed=7"

(equivalently ``python -m repro.experiments --faults "..."``).  Each
entry is ``point:mode:rate[:param]``:

* **point** — where to inject (:data:`POINTS`): queue claim /
  heartbeat / release, cache spill read / write, scheduler job compute,
  native-engine entry;
* **mode** — what happens (:data:`MODES`): ``io`` raises
  :class:`InjectedIOError` (a transient-looking :class:`OSError`),
  ``delay`` sleeps (``param`` seconds, default 0.02 — interruptibly,
  when the caller passes its stop event), ``crash`` raises
  :class:`InjectedCrash` (a poisoned computation / dying worker);
* **rate** — probability per decision, in ``[0, 1]``;
* ``@seed=N`` — the plan's seed (default 0).

**Determinism.**  A decision is a pure function of ``(seed, point,
context, n)`` hashed through BLAKE2b — no global RNG, no ordering
sensitivity.  ``context`` names the object (a job id, a spill file
name) and ``n`` is either the caller-supplied attempt number or a
per-``(point, context)`` invocation counter.  Scheduler job-compute
faults pass the **persisted** attempt count from the queue's
``*.attempts`` records as ``n``, so whether a job's first/second/third
attempt fails is identical no matter which worker runs it, in which
order — which is what makes quarantine sets reproducible across runs
and fleets.  Retries advance ``n``, so a fault with ``rate < 1`` is
transient by construction and a drain under faults converges to the
same byte-identical artifacts as a clean one.

**Zero overhead when disabled.**  With no spec installed
:func:`maybe_fault` is one global-is-``None`` check; the injection
points sit on per-job / per-spill seams, never in per-access loops
(pinned by ``benchmarks/test_faults_bench.py`` and the CI trend gate).

:func:`call_with_retries` is the substrate's shared **bounded retry
with exponential backoff + deterministic jitter** for transient
cache/queue I/O — it wraps the real filesystem calls, so genuinely
flaky mounts get the same treatment as injected faults.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Named injection points, in substrate order.
POINTS = (
    "claim",        # WorkQueue.try_claim — lock-file creation
    "heartbeat",    # Claim._beat — the mtime keep-alive touch
    "release",      # Claim.release — lock-file removal
    "spill_read",   # TraceCache disk-tier load (JSON and binary spills)
    "spill_write",  # TraceCache disk-tier store (encode + tmp + rename)
    "compute",      # scheduler.compute_job — one artifact job's body
    "native_call",  # engine_backend.create_engine — native-engine entry
)

#: Fault modes.
MODES = ("io", "delay", "crash")

#: Default injected-delay duration (seconds) when a ``delay`` rule
#: carries no explicit ``param``.
DEFAULT_DELAY_SECONDS = 0.02

#: Bounded-retry policy for transient cache/queue I/O: attempts and the
#: exponential-backoff base/cap (jittered deterministically per token).
RETRY_ATTEMPTS = 4
RETRY_BASE_SECONDS = 0.01
RETRY_MAX_SECONDS = 0.25


class FaultInjected(Exception):
    """Mixin base of every injected fault (never raised itself)."""


class InjectedIOError(FaultInjected, OSError):
    """An injected transient I/O failure (``io`` mode)."""


class InjectedCrash(FaultInjected, RuntimeError):
    """An injected computation crash (``crash`` mode)."""


@dataclass(frozen=True)
class FaultRule:
    """One ``point:mode:rate[:param]`` entry of a fault spec."""

    point: str
    mode: str
    rate: float
    param: float | None = None


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec: rules grouped by point, plus the seed."""

    spec: str
    rules: tuple[FaultRule, ...]
    seed: int = 0

    def rules_for(self, point: str) -> tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.point == point)


def parse_spec(text: str | None) -> FaultPlan | None:
    """Parse a fault spec string; ``None``/empty disables injection."""
    if text is None:
        return None
    text = text.strip()
    if not text:
        return None
    body, _, options = text.partition("@")
    seed = 0
    for option in filter(None, (o.strip() for o in options.split("@"))):
        key, sep, value = option.partition("=")
        if key.strip() != "seed" or not sep:
            raise ConfigError(
                f"unknown fault-spec option {option!r} (expected seed=N)"
            )
        try:
            seed = int(value)
        except ValueError:
            raise ConfigError(
                f"fault-spec seed must be an integer, got {value!r}"
            ) from None
    rules: list[FaultRule] = []
    for entry in filter(None, (e.strip() for e in body.split(","))):
        fields = entry.split(":")
        if len(fields) not in (3, 4):
            raise ConfigError(
                f"unparseable fault entry {entry!r} "
                "(expected point:mode:rate[:param])"
            )
        point, mode, rate_text = fields[0].strip(), fields[1].strip(), fields[2]
        if point not in POINTS:
            raise ConfigError(
                f"unknown fault point {point!r} (expected one of {POINTS})"
            )
        if mode not in MODES:
            raise ConfigError(
                f"unknown fault mode {mode!r} (expected one of {MODES})"
            )
        try:
            rate = float(rate_text)
        except ValueError:
            raise ConfigError(
                f"fault rate must be a float, got {rate_text!r}"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {rate}")
        param: float | None = None
        if len(fields) == 4:
            try:
                param = float(fields[3])
            except ValueError:
                raise ConfigError(
                    f"fault param must be a float, got {fields[3]!r}"
                ) from None
            if param < 0:
                raise ConfigError("fault param must be non-negative")
        rules.append(FaultRule(point, mode, rate, param))
    if not rules:
        return None
    return FaultPlan(spec=text, rules=tuple(rules), seed=seed)


#: The installed plan (``None``: injection disabled — the common case,
#: and the *only* cost the disabled fast path pays).
_PLAN: FaultPlan | None = None

#: Per-``(point, context)`` invocation counters for decisions without a
#: caller-supplied attempt number.  Contexts are job ids / spill names,
#: so the table is bounded by the suite size.
_COUNTS: Counter[tuple[str, str]] = Counter()

_COUNTS_LOCK = threading.Lock()


def install(spec: str | FaultPlan | None) -> FaultPlan | None:
    """Install a fault plan (``None`` uninstalls); resets counters.

    Workers spawned *after* installation inherit the plan through
    ``REPRO_FAULTS`` in the environment (the CLI sets both); this
    function governs the current process.
    """
    global _PLAN
    plan = parse_spec(spec) if isinstance(spec, (str, type(None))) else spec
    with _COUNTS_LOCK:
        _COUNTS.clear()
    _PLAN = plan
    return plan


def active_plan() -> FaultPlan | None:
    """The installed plan (``None`` when injection is disabled)."""
    return _PLAN


def active_spec() -> str | None:
    """The installed plan's spec string — picklable, for pool workers."""
    return None if _PLAN is None else _PLAN.spec


def _roll(seed: int, point: str, context: str, n: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one decision."""
    token = f"{seed}|{point}|{context}|{n}".encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def backoff_delay(attempt: int, token: str = "",
                  base: float = RETRY_BASE_SECONDS,
                  cap: float = RETRY_MAX_SECONDS) -> float:
    """Exponential backoff with deterministic jitter for ``attempt``.

    Jitter scales the step into ``[0.5, 1.0]×`` of the exponential
    value, derived from the plan seed (0 when none) and ``token`` so
    two workers backing off over the same resource do not retry in
    lockstep yet every run of one worker is reproducible.
    """
    seed = 0 if _PLAN is None else _PLAN.seed
    step = min(cap, base * (2.0**attempt))
    return step * (0.5 + 0.5 * _roll(seed, "backoff", token, attempt))


def maybe_fault(point: str, context: str, attempt: int | None = None,
                event: threading.Event | None = None) -> None:
    """Evaluate ``point``'s rules for ``context``; act on any that fire.

    ``attempt`` pins the decision index for cross-process determinism
    (the scheduler passes persisted per-job attempt counts); without it
    a per-``(point, context)`` process-local counter advances.  Delay
    faults wait on ``event`` when given — an interrupted wait (the
    caller is shutting down) cuts the delay short — and plain-sleep
    otherwise.  ``io``/``crash`` faults raise; callers treat them
    exactly like the real failure they model.
    """
    plan = _PLAN
    if plan is None:
        return
    rules = plan.rules_for(point)
    if not rules:
        return
    if attempt is None:
        with _COUNTS_LOCK:
            n = _COUNTS[(point, context)]
            _COUNTS[(point, context)] = n + 1
    else:
        n = attempt
    for index, rule in enumerate(rules):
        # Distinct draw per rule so stacked rules (e.g. delay + io on
        # one point) fire independently.
        if _roll(plan.seed, f"{point}#{index}", context, n) >= rule.rate:
            continue
        if rule.mode == "delay":
            duration = rule.param if rule.param is not None else (
                DEFAULT_DELAY_SECONDS
            )
            if event is not None:
                event.wait(duration)
            else:
                time.sleep(duration)
        elif rule.mode == "io":
            raise InjectedIOError(
                f"injected io fault at {point} ({context}, n={n})"
            )
        else:  # crash
            raise InjectedCrash(
                f"injected crash at {point} ({context}, n={n})"
            )


def call_with_retries(fn, point: str, context: str, *,
                      attempts: int = RETRY_ATTEMPTS,
                      retry_on: tuple[type[BaseException], ...] = (OSError,),
                      no_retry: tuple[type[BaseException], ...] = (),
                      event: threading.Event | None = None):
    """Run ``fn`` under ``point``'s faults with bounded retry + backoff.

    Each attempt first evaluates :func:`maybe_fault` (so injected
    ``io`` faults exercise exactly the path real transient errors
    take), then calls ``fn``.  Exceptions in ``no_retry`` propagate
    immediately (e.g. ``FileExistsError`` for lock claims — a held lock
    is an answer, not a failure); injected faults and ``retry_on``
    exceptions back off exponentially with deterministic jitter and
    retry up to ``attempts`` times; the last failure propagates to the
    caller, which keeps its existing degraded-mode handling.
    """
    last: BaseException | None = None
    for attempt in range(attempts):
        try:
            maybe_fault(point, context, event=event)
            return fn()
        except no_retry:
            raise
        except (FaultInjected, *retry_on) as exc:
            last = exc
            if attempt + 1 >= attempts:
                raise
        delay = backoff_delay(attempt, token=f"{point}|{context}")
        if event is not None:
            event.wait(delay)
        else:
            time.sleep(delay)
    raise last  # pragma: no cover - loop always returns or raises


# Environment-driven installation: workers and subprocesses inherit the
# chaos plan with the environment, no plumbing required.  ``install``
# validates, so a malformed REPRO_FAULTS fails fast at import.
install(os.environ.get("REPRO_FAULTS"))
