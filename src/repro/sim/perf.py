"""Performance model: phases × protection scheme × DRAM → execution time.

Mirrors the paper's performance evaluator (Fig. 11): for each phase the
accelerator either computes or waits for memory, with double buffering
overlapping the two, so phase time = max(compute, memory).  Memory time
prices the protection scheme's expanded traffic on the DRAM model and
accounts for the Enc/IV engine: a pipelined AES/MAC datapath provisioned
at ``crypto_efficiency`` of peak DRAM bandwidth, so protected data pays a
small throughput tax even when its metadata traffic is negligible — the
residual few-percent overhead the paper reports for MGX.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import ConfigError
from repro.core.access import AccessBatch, Phase
from repro.core.schemes import NoProtection, ProtectionScheme, ProtectionTraffic
from repro.dram.model import DramModel


@dataclass(frozen=True)
class PerfConfig:
    """Clocking and crypto-engine provisioning of the evaluation."""

    accel_freq_hz: float
    #: Enc/IV engine throughput as a fraction of peak DRAM bandwidth.
    #: 1.0 disables the effect (NP always bypasses the engine).
    crypto_efficiency: float = 0.97

    def __post_init__(self) -> None:
        if self.accel_freq_hz <= 0:
            raise ConfigError("accelerator frequency must be positive")
        if not 0.5 <= self.crypto_efficiency <= 1.0:
            raise ConfigError(
                f"crypto_efficiency must be in [0.5, 1], got {self.crypto_efficiency}"
            )


@dataclass
class PhaseResult:
    """Timing decomposition of one phase (accelerator cycles)."""

    name: str
    compute_cycles: float
    memory_cycles: float

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles >= self.compute_cycles


@dataclass
class SimResult:
    """Outcome of running one workload under one protection scheme."""

    scheme: str
    total_cycles: float
    traffic: ProtectionTraffic
    phase_results: list[PhaseResult] = field(default_factory=list)

    @property
    def total_traffic_bytes(self) -> int:
        return self.traffic.total_bytes

    @property
    def memory_bound_fraction(self) -> float:
        if not self.phase_results:
            return 0.0
        bound = sum(1 for p in self.phase_results if p.memory_bound)
        return bound / len(self.phase_results)

    def normalized_to(self, baseline: "SimResult") -> float:
        """Normalized execution time relative to ``baseline`` (usually NP)."""
        if baseline.total_cycles <= 0:
            raise ConfigError("baseline has non-positive cycles")
        return self.total_cycles / baseline.total_cycles

    def traffic_increase_over(self, baseline: "SimResult") -> float:
        if baseline.total_traffic_bytes <= 0:
            raise ConfigError("baseline has no traffic")
        return self.total_traffic_bytes / baseline.total_traffic_bytes


class PerformanceModel:
    """Evaluates a phase list under one scheme on one memory system."""

    def __init__(self, dram: DramModel, perf: PerfConfig) -> None:
        self.dram = dram
        self.perf = perf
        #: accelerator cycles per DRAM-controller cycle
        self._clock_ratio = perf.accel_freq_hz / dram.config.timing.clock_hz

    def _memory_cycles(self, traffic: ProtectionTraffic, protected: bool) -> float:
        """Accelerator-clock cycles for one phase's DRAM traffic."""
        dram_cycles = self.dram.cycles_for(traffic.to_profile())
        cycles = dram_cycles * self._clock_ratio
        if protected and self.perf.crypto_efficiency < 1.0:
            crypto_rate = (
                self.dram.config.sequential_bytes_per_cycle
                * self.perf.crypto_efficiency
            )
            crypto_cycles = traffic.data_bytes / crypto_rate * self._clock_ratio
            cycles = max(cycles, crypto_cycles)
        return cycles

    def run(self, phases: Iterable[Phase], scheme: ProtectionScheme,
            keep_phase_results: bool = False,
            batches: Iterable[AccessBatch] | None = None) -> SimResult:
        """Execute the trace under ``scheme``; returns timing and traffic.

        ``batches`` optionally supplies precomputed structure-of-arrays
        views of the phases (one per phase, same order), letting a sweep
        convert the trace once and share the columns across schemes.

        ``phases`` (and ``batches``) may be any iterables, including
        generators: each phase is priced through the scheme's
        :class:`~repro.core.schemes.base.PricingSession` as it arrives
        and then dropped, so a chunk-iterable trace far larger than
        memory runs in bounded space — byte-identical to the list form,
        since a session over the stream *is* ``price_trace``.
        """
        if (batches is not None and isinstance(phases, list)
                and isinstance(batches, list)
                and len(batches) != len(phases)):
            raise ConfigError(
                f"{len(batches)} batches supplied for {len(phases)} phases"
            )
        scheme.reset()
        protected = not isinstance(scheme, NoProtection)
        total = ProtectionTraffic()
        total_cycles = 0.0
        phase_results: list[PhaseResult] = []
        # Whole-trace pricing: stateful cached schemes stream every
        # phase through their reuse-distance engine in one session,
        # which is byte-identical to per-phase pricing but amortizes the
        # LRU state handling across the trace.
        session = None
        if batches is not None:
            session = scheme.pricing_session()
            pairs = zip(phases, batches)
        elif scheme.vectorizes:
            session = scheme.pricing_session()
            pairs = ((p, AccessBatch.from_phase(p)) for p in phases)
        else:
            # Stateful per-access schemes walk accesses anyway; skip the
            # structure-of-arrays conversion they would discard.
            pairs = ((p, None) for p in phases)
        for phase, batch in pairs:
            if session is not None:
                traffic = session.price(batch)
            else:
                traffic = ProtectionTraffic()
                for access in phase.accesses:
                    traffic.merge(scheme.process(access))
            memory_cycles = self._memory_cycles(traffic, protected)
            total_cycles += max(phase.compute_cycles, memory_cycles)
            total.merge(traffic)
            if keep_phase_results:
                phase_results.append(
                    PhaseResult(phase.name, phase.compute_cycles, memory_cycles)
                )
        if session is not None:
            session.close()
        tail = scheme.finish()
        total.merge(tail)
        total_cycles += self._memory_cycles(tail, protected)
        return SimResult(
            scheme=scheme.name,
            total_cycles=total_cycles,
            traffic=total,
            phase_results=phase_results,
        )
