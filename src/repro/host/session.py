"""The full §II provisioning workflow, end to end.

1. The user sends a session request with a fresh nonce and a DH public
   value.
2. The device completes the DH exchange, clears its state, derives the
   session keys (channel key + the memory-protection key pair), and
   returns an attestation quote binding device, firmware, kernel hash,
   nonce and DH transcript.
3. The user verifies the quote against the manufacturer CA, derives the
   same keys, and ships the kernel and input data over the secure
   channel.
4. The device decrypts them with the channel key and re-encrypts them
   into protected DRAM with the memory-encryption key, ready to execute.

Everything here is functional: the DH is real, the GCM records are real,
and the protected memory is a :class:`MgxFunctionalEngine` over a
:class:`BackingStore` an attacker can reach.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, SecurityError
from repro.common.units import round_up
from repro.core.functional import MgxFunctionalEngine
from repro.core.vngen import DnnVnState
from repro.crypto.keys import SessionKeys, _hkdf_expand
from repro.host.attestation import AttestationQuote, ManufacturerCa, measurement, sign_quote
from repro.host.channel import SecureChannel
from repro.host.dh import DhParty
from repro.mem.backing import BackingStore


@dataclass
class SecureAcceleratorDevice:
    """The device side: identity, firmware, protected memory."""

    device_id: bytes
    firmware: bytes
    ca: ManufacturerCa
    protected_bytes: int = 1 << 20
    mac_granularity: int = 512
    store: BackingStore = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._sk_accel = self.ca.device_key(self.device_id)
        if self.store is None:
            self.store = BackingStore(2 * self.protected_bytes)
        self.engine: MgxFunctionalEngine | None = None
        self.vn_state: DnnVnState | None = None
        self._channel: SecureChannel | None = None
        self._loaded: dict[str, tuple[int, int]] = {}
        self._cursor = 0

    # -- step 2: session establishment + attestation -----------------------
    def open_session(self, user_nonce: bytes, user_dh_public: int,
                     kernel_hash: bytes) -> tuple[int, AttestationQuote]:
        device_dh = DhParty(self._sk_accel + user_nonce)
        shared = device_dh.shared_secret(user_dh_public)
        transcript = hashlib.sha256(
            user_dh_public.to_bytes(256, "big") + device_dh.public.to_bytes(256, "big")
        ).digest()
        self._install_keys(shared, transcript)
        quote = sign_quote(
            self._sk_accel,
            self.device_id,
            measurement(self.firmware),
            kernel_hash,
            user_nonce,
            transcript,
        )
        return device_dh.public, quote

    def _install_keys(self, shared: bytes, transcript: bytes) -> None:
        # Fresh internal state for the new session (§II: "clear its
        # internal state, set a pair of new symmetric keys ...").
        keys = SessionKeys.derive(shared, transcript)
        channel_key = _hkdf_expand(shared + transcript, b"mgx-channel", 16)
        self.engine = MgxFunctionalEngine(
            keys, self.store, data_bytes=self.protected_bytes,
            mac_granularity=self.mac_granularity,
        )
        self.vn_state = DnnVnState()
        self._channel = SecureChannel(channel_key, direction=1)
        self._loaded.clear()
        self._cursor = 0

    # -- step 4: receive data into protected memory -------------------------
    def receive_payload(self, name: str, record: tuple[int, bytes, bytes]) -> None:
        """Decrypt a channel record and place it in protected DRAM."""
        if self.engine is None or self._channel is None or self.vn_state is None:
            raise ConfigError("no open session")
        sequence, ciphertext, tag = record
        plaintext = self._channel.receive(sequence, ciphertext, tag,
                                          aad=name.encode())
        padded = round_up(max(1, len(plaintext)), self.mac_granularity)
        address = self._cursor
        self._cursor += padded
        vn = self.vn_state.ingest_features(name)
        self.engine.write(address, plaintext.ljust(padded, b"\x00"), vn)
        self._loaded[name] = (address, len(plaintext))

    def read_protected(self, name: str) -> bytes:
        """What the kernel sees when it loads the tensor on-chip."""
        if self.engine is None or self.vn_state is None:
            raise ConfigError("no open session")
        address, length = self._loaded[name]
        padded = round_up(max(1, length), self.mac_granularity)
        return self.engine.read(address, padded, self.vn_state.read_features(name))[:length]


@dataclass
class UserSession:
    """The user side: verifies attestation, drives the channel."""

    ca: ManufacturerCa
    expected_firmware: bytes
    kernel: bytes
    nonce: bytes = b"user-nonce-0001"

    def connect(self, device: SecureAcceleratorDevice) -> None:
        user_dh = DhParty(self.nonce + b"user-entropy")
        device_public, quote = device.open_session(
            self.nonce, user_dh.public, measurement(self.kernel)
        )
        # Verify the quote: genuine device, expected firmware, our kernel,
        # our nonce, and the DH transcript we actually ran.
        self.ca.verify(quote)
        transcript = hashlib.sha256(
            user_dh.public.to_bytes(256, "big") + device_public.to_bytes(256, "big")
        ).digest()
        if quote.firmware_hash != measurement(self.expected_firmware):
            raise SecurityError("attested firmware does not match expectation")
        if quote.kernel_hash != measurement(self.kernel):
            raise SecurityError("attested kernel does not match what we sent")
        if quote.user_nonce != self.nonce:
            raise SecurityError("stale attestation (nonce mismatch)")
        if quote.dh_transcript_hash != transcript:
            raise SecurityError("attestation does not cover this key exchange")
        shared = user_dh.shared_secret(device_public)
        channel_key = _hkdf_expand(shared + transcript, b"mgx-channel", 16)
        self._channel = SecureChannel(channel_key, direction=0)

    def send(self, name: str, payload: bytes) -> tuple[int, bytes, bytes]:
        return self._channel.send(payload, aad=name.encode())
