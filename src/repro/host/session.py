"""The full §II provisioning workflow, end to end.

1. The user sends a session request with a fresh nonce and a DH public
   value.
2. The device completes the DH exchange, clears its state, derives the
   session keys (channel key + the memory-protection key pair), and
   returns an attestation quote binding device, firmware, kernel hash,
   nonce and DH transcript.
3. The user verifies the quote against the manufacturer CA, derives the
   same keys, and ships the kernel and input data over the secure
   channel.
4. The device decrypts them with the channel key and re-encrypts them
   into protected DRAM with the memory-encryption key, ready to execute.

Everything here is functional: the DH is real, the GCM records are real,
and the protected memory is a :class:`MgxFunctionalEngine` over a
:class:`BackingStore` an attacker can reach.

The per-session state lives in :class:`DeviceSession`, so a device can
hold **many concurrent attested sessions** — one per tenant of the
serving front-end (:mod:`repro.serve`) — each with its own channel key,
memory-protection keys and protected store.  Key isolation is
end-to-end: no tenant can verify (or forge) another tenant's records,
because the channel keys derive from independent DH exchanges.  Session
nonces are single-use per device; replaying one raises
:class:`~repro.common.errors.ReplayError` before any keys are derived.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, ReplayError, SecurityError
from repro.common.units import round_up
from repro.core.functional import MgxFunctionalEngine
from repro.core.vngen import DnnVnState
from repro.crypto.keys import SessionKeys, _hkdf_expand
from repro.host.attestation import AttestationQuote, ManufacturerCa, measurement, sign_quote
from repro.host.channel import SecureChannel
from repro.host.dh import DhParty
from repro.mem.backing import BackingStore


def dh_transcript(user_public: int, device_public: int) -> bytes:
    """Hash binding both DH public values, in exchange order."""
    return hashlib.sha256(
        user_public.to_bytes(256, "big") + device_public.to_bytes(256, "big")
    ).digest()


def derive_channel_key(shared: bytes, transcript: bytes) -> bytes:
    """The record-channel key both sides derive from the DH exchange."""
    return _hkdf_expand(shared + transcript, b"mgx-channel", 16)


def verify_session_quote(ca: ManufacturerCa, quote: AttestationQuote, *,
                         expected_firmware: bytes, kernel: bytes,
                         nonce: bytes, transcript: bytes) -> None:
    """Full user-side quote validation; raises :class:`SecurityError`.

    Checks, in order: genuine signature under the manufacturer CA, the
    expected firmware measurement, the kernel we actually sent, our
    freshness nonce, and the DH transcript of *this* key exchange.
    """
    ca.verify(quote)
    if quote.firmware_hash != measurement(expected_firmware):
        raise SecurityError("attested firmware does not match expectation")
    if quote.kernel_hash != measurement(kernel):
        raise SecurityError("attested kernel does not match what we sent")
    if quote.user_nonce != nonce:
        raise SecurityError("stale attestation (nonce mismatch)")
    if quote.dh_transcript_hash != transcript:
        raise SecurityError("attestation does not cover this key exchange")


@dataclass
class DeviceSession:
    """One attested session's device-side state.

    Everything a session owns is private to it: the channel key (and
    with it the record sequence state), the memory-protection keys, the
    VN state, and the protected store region.  A device holds one of
    these per connected tenant; dropping the object ends the session.
    """

    engine: MgxFunctionalEngine
    vn_state: DnnVnState
    channel: SecureChannel
    store: BackingStore
    protected_bytes: int
    mac_granularity: int
    _loaded: dict[str, tuple[int, int]] = field(default_factory=dict)
    _cursor: int = 0

    # -- secure channel ----------------------------------------------------
    def receive(self, record: tuple[int, bytes, bytes], aad: bytes = b"") -> bytes:
        """Decrypt one host→device channel record (replay-protected)."""
        sequence, ciphertext, tag = record
        return self.channel.receive(sequence, ciphertext, tag, aad=aad)

    def send(self, payload: bytes, aad: bytes = b"") -> tuple[int, bytes, bytes]:
        """Seal one device→host record under this session's channel key.

        The GCM tag *is* the response MAC: only the tenant holding this
        session's channel key can verify it, so results sealed here are
        unverifiable (and unforgeable) for every other tenant.
        """
        return self.channel.send(payload, aad=aad)

    # -- protected memory --------------------------------------------------
    def receive_payload(self, name: str, record: tuple[int, bytes, bytes]) -> None:
        """Decrypt a channel record and place it in protected DRAM."""
        plaintext = self.receive(record, aad=name.encode())
        padded = round_up(max(1, len(plaintext)), self.mac_granularity)
        address = self._cursor
        self._cursor += padded
        vn = self.vn_state.ingest_features(name)
        self.engine.write(address, plaintext.ljust(padded, b"\x00"), vn)
        self._loaded[name] = (address, len(plaintext))

    def read_protected(self, name: str) -> bytes:
        """What the kernel sees when it loads the tensor on-chip."""
        address, length = self._loaded[name]
        padded = round_up(max(1, length), self.mac_granularity)
        return self.engine.read(address, padded,
                                self.vn_state.read_features(name))[:length]


@dataclass
class SecureAcceleratorDevice:
    """The device side: identity, firmware, protected memory."""

    device_id: bytes
    firmware: bytes
    ca: ManufacturerCa
    protected_bytes: int = 1 << 20
    mac_granularity: int = 512
    store: BackingStore = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._sk_accel = self.ca.device_key(self.device_id)
        if self.store is None:
            self.store = BackingStore(2 * self.protected_bytes)
        self._session: DeviceSession | None = None
        self._seen_nonces: set[bytes] = set()

    # -- step 2: session establishment + attestation -----------------------
    def _establish(self, user_nonce: bytes, user_dh_public: int,
                   kernel_hash: bytes,
                   store: BackingStore) -> tuple[int, AttestationQuote,
                                                 DeviceSession]:
        """DH + key derivation + quote for one new session over ``store``.

        Session nonces are single-use for the device's lifetime: the
        device DH seed (and with it every session key) is a function of
        the nonce, so accepting a replay would re-derive a previous
        tenant's keys for whoever replays the handshake.
        """
        if user_nonce in self._seen_nonces:
            raise ReplayError("session nonce replayed: open_session nonces "
                              "are single-use per device")
        device_dh = DhParty(self._sk_accel + user_nonce)
        shared = device_dh.shared_secret(user_dh_public)
        self._seen_nonces.add(user_nonce)
        transcript = dh_transcript(user_dh_public, device_dh.public)
        # Fresh state for the new session (§II: "clear its internal
        # state, set a pair of new symmetric keys ...").
        keys = SessionKeys.derive(shared, transcript)
        session = DeviceSession(
            engine=MgxFunctionalEngine(
                keys, store, data_bytes=self.protected_bytes,
                mac_granularity=self.mac_granularity,
            ),
            vn_state=DnnVnState(),
            channel=SecureChannel(derive_channel_key(shared, transcript),
                                  direction=1),
            store=store,
            protected_bytes=self.protected_bytes,
            mac_granularity=self.mac_granularity,
        )
        quote = sign_quote(
            self._sk_accel,
            self.device_id,
            measurement(self.firmware),
            kernel_hash,
            user_nonce,
            transcript,
        )
        return device_dh.public, quote, session

    def open_session(self, user_nonce: bytes, user_dh_public: int,
                     kernel_hash: bytes) -> tuple[int, AttestationQuote]:
        """The single-session API: the new session owns the device store."""
        public, quote, session = self._establish(user_nonce, user_dh_public,
                                                 kernel_hash, self.store)
        self._session = session
        return public, quote

    def open_tenant_session(self, user_nonce: bytes, user_dh_public: int,
                            kernel_hash: bytes,
                            ) -> tuple[int, AttestationQuote, DeviceSession]:
        """One of many concurrent sessions, over its own protected store.

        Unlike :meth:`open_session` this does not displace any existing
        session: each tenant gets an isolated :class:`DeviceSession`
        whose keys and protected memory are theirs alone.
        """
        store = BackingStore(2 * self.protected_bytes)
        return self._establish(user_nonce, user_dh_public, kernel_hash, store)

    # -- single-session back-compat surface --------------------------------
    @property
    def session(self) -> DeviceSession | None:
        """The session opened by :meth:`open_session` (``None`` before)."""
        return self._session

    def _require_session(self) -> DeviceSession:
        if self._session is None:
            raise ConfigError("no open session")
        return self._session

    # -- step 4: receive data into protected memory -------------------------
    def receive_payload(self, name: str, record: tuple[int, bytes, bytes]) -> None:
        """Decrypt a channel record and place it in protected DRAM."""
        self._require_session().receive_payload(name, record)

    def read_protected(self, name: str) -> bytes:
        """What the kernel sees when it loads the tensor on-chip."""
        return self._require_session().read_protected(name)


@dataclass
class UserSession:
    """The user side: verifies attestation, drives the channel."""

    ca: ManufacturerCa
    expected_firmware: bytes
    kernel: bytes
    nonce: bytes = b"user-nonce-0001"

    def connect(self, device: SecureAcceleratorDevice) -> None:
        user_dh = DhParty(self.nonce + b"user-entropy")
        device_public, quote = device.open_session(
            self.nonce, user_dh.public, measurement(self.kernel)
        )
        # Verify the quote: genuine device, expected firmware, our kernel,
        # our nonce, and the DH transcript we actually ran.
        transcript = dh_transcript(user_dh.public, device_public)
        verify_session_quote(self.ca, quote,
                             expected_firmware=self.expected_firmware,
                             kernel=self.kernel, nonce=self.nonce,
                             transcript=transcript)
        shared = user_dh.shared_secret(device_public)
        self._channel = SecureChannel(derive_channel_key(shared, transcript),
                                      direction=0)

    def send(self, name: str, payload: bytes) -> tuple[int, bytes, bytes]:
        return self._channel.send(payload, aad=name.encode())
