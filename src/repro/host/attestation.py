"""Remote attestation of the secure accelerator (§II).

The device holds a manufacturer-embedded private key (SK_Accel); a user
obtains the matching verification capability through a certificate
authority (PKI "as in Intel SGX or TPMs").  An attestation quote binds:

* the device identity,
* the firmware/configuration hash,
* the hash of the application kernel to be executed,
* the user's freshness nonce and the DH public values of the session,

so a user who verifies the quote knows *which* kernel will run on *which*
device with *these* session keys.  Signatures are modelled as HMAC under
SK_Accel with the CA re-deriving the key from the device identity — the
deployment-grade swap to asymmetric signatures changes no interfaces.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.common.errors import SecurityError


def measurement(data: bytes) -> bytes:
    """SHA-256 measurement used for firmware and kernel hashes."""
    return hashlib.sha256(data).digest()


@dataclass(frozen=True)
class AttestationQuote:
    """A signed statement of the device's identity and loaded code."""

    device_id: bytes
    firmware_hash: bytes
    kernel_hash: bytes
    user_nonce: bytes
    dh_transcript_hash: bytes
    signature: bytes

    def body(self) -> bytes:
        return b"|".join(
            (
                self.device_id,
                self.firmware_hash,
                self.kernel_hash,
                self.user_nonce,
                self.dh_transcript_hash,
            )
        )


class ManufacturerCa:
    """Stand-in certificate authority: provisions and verifies device keys."""

    def __init__(self, root_secret: bytes) -> None:
        self._root = bytes(root_secret)

    def device_key(self, device_id: bytes) -> bytes:
        """SK_Accel for a device (embedded at manufacturing time)."""
        return hmac.new(self._root, b"device|" + device_id, hashlib.sha256).digest()

    def verify(self, quote: AttestationQuote) -> None:
        """Raises :class:`SecurityError` unless the quote is genuine."""
        expected = hmac.new(
            self.device_key(quote.device_id), quote.body(), hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, quote.signature):
            raise SecurityError(
                "attestation verification failed: forged quote or unknown device"
            )


def sign_quote(
    sk_accel: bytes,
    device_id: bytes,
    firmware_hash: bytes,
    kernel_hash: bytes,
    user_nonce: bytes,
    dh_transcript_hash: bytes,
) -> AttestationQuote:
    """Produce the device-side quote."""
    quote = AttestationQuote(
        device_id=device_id,
        firmware_hash=firmware_hash,
        kernel_hash=kernel_hash,
        user_nonce=user_nonce,
        dh_transcript_hash=dh_transcript_hash,
        signature=b"",
    )
    signature = hmac.new(sk_accel, quote.body(), hashlib.sha256).digest()
    return AttestationQuote(
        device_id=device_id,
        firmware_hash=firmware_hash,
        kernel_hash=kernel_hash,
        user_nonce=user_nonce,
        dh_transcript_hash=dh_transcript_hash,
        signature=signature,
    )
