"""Encrypted, authenticated, replay-protected host↔accelerator channel.

After the DHE exchange both sides hold a channel key; messages flow as
AES-GCM records with direction-separated, monotonically increasing
sequence numbers in the IV — the "secure (encrypted and authenticated)
communication channel" of §II that user data and kernels traverse.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, ReplayError
from repro.crypto.gcm import AesGcm


class SecureChannel:
    """One endpoint of the record channel.

    ``direction`` 0 is host→device traffic, 1 is device→host; each
    endpoint sends with its own direction and receives the other's.
    """

    def __init__(self, channel_key: bytes, direction: int) -> None:
        if direction not in (0, 1):
            raise ConfigError("direction must be 0 or 1")
        self._gcm = AesGcm(channel_key)
        self._direction = direction
        self._send_seq = 0
        self._recv_seq = 0

    def _iv(self, direction: int, sequence: int) -> bytes:
        return direction.to_bytes(4, "big") + sequence.to_bytes(8, "big")

    def send(self, plaintext: bytes, aad: bytes = b"") -> tuple[int, bytes, bytes]:
        """Returns the record (sequence, ciphertext, tag)."""
        sequence = self._send_seq
        self._send_seq += 1
        ciphertext, tag = self._gcm.encrypt(
            self._iv(self._direction, sequence), plaintext, aad
        )
        return sequence, ciphertext, tag

    def receive(self, sequence: int, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> bytes:
        """Verify ordering and authenticity; decrypt.

        Out-of-order or repeated sequence numbers raise
        :class:`ReplayError` before any crypto runs.
        """
        if sequence != self._recv_seq:
            raise ReplayError(
                f"channel record out of order: got seq {sequence}, "
                f"expected {self._recv_seq}"
            )
        plaintext = self._gcm.decrypt(
            self._iv(1 - self._direction, sequence), ciphertext, tag, aad
        )
        self._recv_seq += 1
        return plaintext
