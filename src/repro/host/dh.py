"""Finite-field Diffie-Hellman for the accelerator key exchange (§II).

The paper's secure accelerator "needs to support a secure key-exchange
protocol (DHE)" to establish session keys with a remote user or TEE.
This is a real DH over the RFC 3526 2048-bit MODP group (group 14) —
small code, actual security properties — used by
:mod:`repro.host.session` to derive the memory-protection session keys.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.errors import ConfigError

#: RFC 3526, group 14: 2048-bit MODP prime with generator 2.
MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
MODP_2048_G = 2


class DhParty:
    """One side of an ephemeral Diffie-Hellman exchange."""

    def __init__(self, seed: int | bytes) -> None:
        # Deterministic private keys keep the tests reproducible; a real
        # device uses its TRNG here.
        if isinstance(seed, bytes):
            seed = int.from_bytes(hashlib.sha256(seed).digest(), "big")
        rng = np.random.default_rng(seed % (2**63))
        self._private = int.from_bytes(rng.bytes(32), "big") | 1
        if not 1 < self._private < MODP_2048_P - 1:
            raise ConfigError("degenerate private key")
        self.public = pow(MODP_2048_G, self._private, MODP_2048_P)

    def shared_secret(self, peer_public: int) -> bytes:
        """The agreed secret, hashed to 32 bytes for key derivation."""
        if not 1 < peer_public < MODP_2048_P - 1:
            raise ConfigError("peer public value out of range")
        secret = pow(peer_public, self._private, MODP_2048_P)
        return hashlib.sha256(secret.to_bytes(256, "big")).digest()
