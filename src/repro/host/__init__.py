"""Host-side workflow: DHE key exchange, attestation, secure channel (§II)."""

from repro.host.attestation import (
    AttestationQuote,
    ManufacturerCa,
    measurement,
    sign_quote,
)
from repro.host.channel import SecureChannel
from repro.host.dh import MODP_2048_G, MODP_2048_P, DhParty
from repro.host.session import (
    DeviceSession,
    SecureAcceleratorDevice,
    UserSession,
    derive_channel_key,
    dh_transcript,
    verify_session_quote,
)

__all__ = [
    "AttestationQuote",
    "ManufacturerCa",
    "measurement",
    "sign_quote",
    "SecureChannel",
    "MODP_2048_G",
    "MODP_2048_P",
    "DhParty",
    "DeviceSession",
    "SecureAcceleratorDevice",
    "UserSession",
    "derive_channel_key",
    "dh_transcript",
    "verify_session_quote",
]
