"""Frame-level H.264 decoder model with MGX memory protection (§VII-A).

The decoder keeps a small pool of frame buffers in off-chip memory: one
receives the frame being decoded, others hold reference frames.  Each
output frame is written exactly once per buffer location (macroblock rows
stream out); reference frames are read-only.  The VN for every frame
access is ``CTR_IN ‖ display_number`` — regenerated, never stored — via
:class:`~repro.core.vngen.FrameVnState`:

* write frame F        → VN = CTR_IN ‖ F
* P frame reading its anchor  → VN = CTR_IN ‖ (F − k) for the anchor's number
* B frame reading both anchors → VNs for F−j and F+k

Produces both a *trace* (phases for the timing schemes, and the Fig. 19
access-pattern record) and, optionally, *functional* decode over the MGX
engine — real bytes, real encryption — used by the tests to prove the VN
scheme decrypts correctly under out-of-order decode and buffer reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.common.units import GIB, MHZ
from repro.core.access import AccessKind, DataClass, MemAccess, Phase
from repro.core.functional import MgxFunctionalEngine
from repro.core.vngen import FrameVnState
from repro.mem.layout import AddressSpace
from repro.video.gop import GopStructure


@dataclass(frozen=True)
class DecoderConfig:
    """Frame geometry and machine parameters of the decoder model."""

    width: int = 1920
    height: int = 1080
    bytes_per_pixel: int = 1  # luma-equivalent payload per pixel (NV12 ~1.5)
    frame_buffers: int = 3
    freq_hz: float = 450 * MHZ
    #: Average compressed bits per pixel of the input stream.
    bitstream_bits_per_pixel: float = 0.8
    protected_bytes: int = 1 * GIB

    def cache_key(self) -> tuple:
        """Stable primitive tuple for content-addressed artifact keys.

        Fields are spelled out (never ``astuple``, so field order cannot
        silently change the key) and floats are encoded with
        :meth:`float.hex` (so the key never depends on float ``repr``).
        """
        return (
            "h264", self.width, self.height, self.bytes_per_pixel,
            self.frame_buffers, self.freq_hz.hex(),
            self.bitstream_bits_per_pixel.hex(), self.protected_bytes,
        )

    @property
    def frame_bytes(self) -> int:
        return self.width * self.height * self.bytes_per_pixel

    @property
    def bitstream_bytes_per_frame(self) -> int:
        return int(self.width * self.height * self.bitstream_bits_per_pixel / 8)


@dataclass(frozen=True)
class AccessRecord:
    """One point of the Fig. 19 scatter: who touched which buffer when."""

    step: int
    display_number: int
    frame_type: str
    buffer_index: int
    kind: str  # "write" or "read"
    vn: int


@dataclass
class DecodeTrace:
    """Phases + the Fig. 19 access pattern + buffer bookkeeping."""

    phases: list[Phase]
    records: list[AccessRecord]
    vn_state: FrameVnState
    address_space: AddressSpace
    buffer_of_frame: dict[int, int] = field(default_factory=dict)

    def writes_per_buffer_step(self) -> dict[tuple[int, int], int]:
        """(buffer, step) → write count; the write-once invariant says
        every value is exactly 1 (verified in tests)."""
        counts: dict[tuple[int, int], int] = {}
        for r in self.records:
            if r.kind == "write":
                key = (r.buffer_index, r.step)
                counts[key] = counts.get(key, 0) + 1
        return counts


class H264Decoder:
    """Generates decode traces (and optional functional decode) for a GOP."""

    def __init__(self, gop: GopStructure, config: DecoderConfig | None = None) -> None:
        self.gop = gop
        self.config = config or DecoderConfig()
        if self.config.frame_buffers < 3:
            raise ConfigError("need at least 3 frame buffers (decode + 2 refs)")
        self._space = AddressSpace(size=self.config.protected_bytes)
        self._buffers = [
            self._space.alloc(f"framebuf{i}", self.config.frame_bytes, kind="frame")
            for i in range(self.config.frame_buffers)
        ]
        self._bitstream = self._space.alloc(
            "bitstream",
            max(64, self.config.bitstream_bytes_per_frame * gop.n_frames),
            kind="bitstream",
        )

    # ------------------------------------------------------------------
    def decode_trace(self) -> DecodeTrace:
        """Trace one pass over the GOP in decode order."""
        config = self.config
        vn_state = FrameVnState()
        records: list[AccessRecord] = []
        phases: list[Phase] = []
        buffer_of: dict[int, int] = {}
        #: display numbers currently resident, in allocation order
        resident: list[int] = []

        decode_list = self.gop.decode_order()
        for step, frame in enumerate(decode_list):
            # Protect both future references and the frame's own inputs —
            # the output streams out while prediction still reads them.
            still_needed = {
                ref for later in decode_list[step + 1 :] for ref in later.references
            } | set(frame.references)
            accesses: list[MemAccess] = []
            # 1. Bitstream chunk for this frame (already CTR-encrypted by
            #    the sender; VN here is the stream offset counter).
            accesses.append(
                MemAccess(
                    self._bitstream.base
                    + frame.display_number * config.bitstream_bytes_per_frame,
                    max(64, config.bitstream_bytes_per_frame),
                    AccessKind.READ,
                    DataClass.BITSTREAM,
                    vn=vn_state.frame_vn(frame.display_number),
                )
            )
            # 2. Reference frame reads, VN regenerated from the reference's
            #    display number (CTR_IN ‖ F±k).
            for ref in frame.references:
                if ref not in buffer_of:
                    raise ConfigError(
                        f"frame {frame.display_number} needs reference {ref} "
                        "which is no longer resident"
                    )
                region = self._buffers[buffer_of[ref]]
                vn = vn_state.frame_vn(ref)
                accesses.append(
                    MemAccess(region.base, config.frame_bytes, AccessKind.READ,
                              DataClass.FRAME, vn=vn)
                )
                records.append(
                    AccessRecord(step, ref, self.gop.frame(ref).frame_type.value,
                                 buffer_of[ref], "read", vn)
                )
            # 3. Output frame written once into a free buffer.
            buffer_index = self._allocate_buffer(frame.display_number, still_needed,
                                                 buffer_of, resident)
            region = self._buffers[buffer_index]
            vn = vn_state.frame_vn(frame.display_number)
            accesses.append(
                MemAccess(region.base, config.frame_bytes, AccessKind.WRITE,
                          DataClass.FRAME, vn=vn)
            )
            records.append(
                AccessRecord(step, frame.display_number, frame.frame_type.value,
                             buffer_index, "write", vn)
            )
            # Decode compute: ~2 cycles/pixel for a hardware decoder.
            compute = 2.0 * config.width * config.height
            phases.append(
                Phase(name=f"decode:{frame.frame_type.value}{frame.display_number}",
                      compute_cycles=compute, accesses=accesses)
            )
        return DecodeTrace(phases=phases, records=records, vn_state=vn_state,
                           address_space=self._space, buffer_of_frame=buffer_of)

    def _allocate_buffer(self, display_number: int, still_needed: set[int],
                         buffer_of: dict[int, int], resident: list[int]) -> int:
        """Pick a buffer for the new frame, evicting the oldest non-reference.

        ``still_needed`` holds display numbers referenced by frames not
        yet decoded; those buffers are protected from eviction.  A GOP
        one B-frame deep is always feasible with 3 buffers.
        """
        in_use = {buffer_of[f] for f in resident if f in buffer_of}
        free = [i for i in range(len(self._buffers)) if i not in in_use]
        if free:
            index = free[0]
        else:
            for old in list(resident):
                if old not in still_needed:
                    index = buffer_of[old]
                    resident.remove(old)
                    break
            else:
                raise ConfigError("no evictable frame buffer; GOP needs more buffers")
        buffer_of[display_number] = index
        resident.append(display_number)
        return index

    # ------------------------------------------------------------------
    def functional_decode(self, engine: MgxFunctionalEngine, seed: int = 0,
                          frame_bytes: int = 4096) -> bool:
        """Really encrypt/decrypt a scaled-down decode through ``engine``.

        Frames are ``frame_bytes`` of deterministic pseudo-random payload;
        each decode step writes its frame once with VN = CTR_IN ‖ F and
        re-reads its references with their regenerated VNs, asserting the
        decrypted bytes match what was written.  Returns True when every
        reference read round-trips exactly.
        """
        rng = np.random.default_rng(seed)
        vn_state = FrameVnState()
        payload: dict[int, bytes] = {}
        buffer_of: dict[int, int] = {}
        resident: list[int] = []
        decode_list = self.gop.decode_order()
        for step, frame in enumerate(decode_list):
            # Protect both future references and the frame's own inputs —
            # the output streams out while prediction still reads them.
            still_needed = {
                ref for later in decode_list[step + 1 :] for ref in later.references
            } | set(frame.references)
            for ref in frame.references:
                got = engine.read(buffer_of[ref] * frame_bytes, frame_bytes,
                                  vn_state.frame_vn(ref))
                if got != payload[ref]:
                    return False
            index = self._allocate_buffer(frame.display_number, still_needed,
                                          buffer_of, resident)
            data = rng.integers(0, 256, size=frame_bytes, dtype=np.uint8).tobytes()
            engine.write(index * frame_bytes, data, vn_state.frame_vn(frame.display_number))
            payload[frame.display_number] = data
            buffer_of[frame.display_number] = index
        return True
