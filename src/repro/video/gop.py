"""H.264 GOP structure: frame types, display vs decode order, references.

B frames reference a *later* anchor, so they are decoded after it:
display order ``I B P B I…`` becomes decode order ``I P B I B…``
(Fig. 18).  This module models that reordering and each frame's
reference set, which determines the read pattern of the inter-prediction
unit (Fig. 19) and hence the VNs it must regenerate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigError


class FrameType(enum.Enum):
    I = "I"
    P = "P"
    B = "B"


@dataclass(frozen=True)
class FrameInfo:
    """One frame of the sequence, identified by its display number."""

    display_number: int
    frame_type: FrameType
    #: Display numbers of the frames this one predicts from.
    references: tuple[int, ...]


class GopStructure:
    """Parses a pattern like ``"IBPB"`` into frames with references.

    The pattern repeats to cover ``n_frames``.  Reference rules (Main
    profile, one reference each direction, as in the paper's decoder):

    * I — none.
    * P — the previous anchor (I or P) in display order.
    * B — the previous anchor and the next anchor.
    """

    def __init__(self, pattern: str, n_frames: int) -> None:
        if not pattern or any(c not in "IBP" for c in pattern):
            raise ConfigError(f"pattern must be non-empty over I/B/P, got {pattern!r}")
        if pattern[0] != "I":
            raise ConfigError("pattern must start with an I frame")
        if n_frames < 1:
            raise ConfigError(f"n_frames must be >= 1, got {n_frames}")
        self.pattern = pattern
        self.n_frames = n_frames
        types = [FrameType(pattern[i % len(pattern)]) for i in range(n_frames)]
        # The final frames cannot be B without a following anchor; demote
        # trailing Bs to P so every reference exists.
        for i in range(n_frames - 1, -1, -1):
            if types[i] is FrameType.B:
                if not any(t is not FrameType.B for t in types[i + 1 :]):
                    types[i] = FrameType.P
            else:
                break
        self.frames = [self._frame_info(i, types) for i in range(n_frames)]

    @staticmethod
    def _prev_anchor(i: int, types: list[FrameType]) -> int | None:
        for j in range(i - 1, -1, -1):
            if types[j] is not FrameType.B:
                return j
        return None

    @staticmethod
    def _next_anchor(i: int, types: list[FrameType]) -> int | None:
        for j in range(i + 1, len(types)):
            if types[j] is not FrameType.B:
                return j
        return None

    def _frame_info(self, i: int, types: list[FrameType]) -> FrameInfo:
        frame_type = types[i]
        if frame_type is FrameType.I:
            refs: tuple[int, ...] = ()
        elif frame_type is FrameType.P:
            prev = self._prev_anchor(i, types)
            refs = (prev,) if prev is not None else ()
        else:
            prev = self._prev_anchor(i, types)
            nxt = self._next_anchor(i, types)
            if prev is None or nxt is None:
                raise ConfigError(f"B frame {i} lacks an anchor")
            refs = (prev, nxt)
        return FrameInfo(display_number=i, frame_type=frame_type, references=refs)

    def decode_order(self) -> list[FrameInfo]:
        """Frames in the order the decoder processes them (Fig. 18).

        Anchors decode at their display position; each B frame decodes
        immediately after its future anchor.
        """
        order: list[FrameInfo] = []
        pending_b: list[FrameInfo] = []
        for frame in self.frames:
            if frame.frame_type is FrameType.B:
                pending_b.append(frame)
            else:
                order.append(frame)
                # Bs waiting on this anchor follow it immediately.
                ready = [b for b in pending_b if max(b.references) == frame.display_number]
                order.extend(ready)
                pending_b = [b for b in pending_b if b not in ready]
        order.extend(pending_b)  # trailing Bs (defensive; demotion avoids this)
        return order

    def frame(self, display_number: int) -> FrameInfo:
        return self.frames[display_number]
