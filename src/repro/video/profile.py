"""Pure config → profile entry point for the H.264 functional pipeline.

Fig. 19 is assembled from three computations over one GOP: the decode
trace (the access-pattern rows of the figure), the pattern invariants
(write-once per frame, monotonic VNs) and a real AES-CTR+MAC decode
round-trip through :class:`~repro.core.functional.MgxFunctionalEngine`.
This module packages all three as a pure function of hashable
configuration returning JSON-primitive data, so the scheduler can treat
the whole per-GOP profile as a content-addressed artifact — a warm
cache restores the figure without re-running the decoder or the crypto.
"""

from __future__ import annotations

from repro.common.units import KIB
from repro.core.access import AccessKind
from repro.core.functional import MgxFunctionalEngine
from repro.crypto.keys import SessionKeys
from repro.mem.backing import BackingStore
from repro.video.decoder import DecoderConfig, H264Decoder
from repro.video.gop import GopStructure

#: Fixed parameters of the scaled-down functional decode (part of the
#: profile's content identity; bump the key constants together).
FUNCTIONAL_DATA_BYTES = 64 * KIB
FUNCTIONAL_MAC_GRANULARITY = 512


def decode_profile(
    pattern: str,
    n_frames: int,
    functional_frames: int,
    config: DecoderConfig | None = None,
) -> dict:
    """Decode one GOP and profile its access pattern and traffic.

    Deterministic in its arguments and JSON-primitive in its values —
    the contract that lets per-GOP profiles live in the shared artifact
    cache.  ``records`` are the Fig. 19 rows in decode order; the
    invariants and the functional round-trip verdict are what the paper
    argues in §VII-A.
    """
    config = config or DecoderConfig()
    decoder = H264Decoder(GopStructure(pattern, n_frames), config)
    trace = decoder.decode_trace()

    records = [
        {
            "step": record.step,
            "frame": record.display_number,
            "type": record.frame_type,
            "buffer": record.buffer_index,
            "kind": record.kind,
            "vn": record.vn,
        }
        for record in trace.records
    ]

    # Invariant 1: one write per (buffer, step) — non-overlapping writes.
    writes = trace.writes_per_buffer_step()
    write_once = all(count == 1 for count in writes.values())
    # Invariant 2: VNs strictly increase per buffer across writes.
    per_buffer: dict[int, list[int]] = {}
    for record in trace.records:
        if record.kind == "write":
            per_buffer.setdefault(record.buffer_index, []).append(record.vn)
    vn_monotonic = all(
        all(a < b for a, b in zip(vns, vns[1:])) for vns in per_buffer.values()
    )
    # Invariant 3: functional decode round-trips through real AES-CTR+MAC.
    keys = SessionKeys.derive(b"fig19-root", b"fig19-session")
    store = BackingStore(1 << 20)
    engine = MgxFunctionalEngine(
        keys, store, data_bytes=FUNCTIONAL_DATA_BYTES,
        mac_granularity=FUNCTIONAL_MAC_GRANULARITY,
    )
    functional_ok = H264Decoder(
        GopStructure(pattern, functional_frames), config
    ).functional_decode(engine)

    read_bytes = write_bytes = 0
    for phase in trace.phases:
        for access in phase.accesses:
            if access.kind is AccessKind.READ:
                read_bytes += access.size
            else:
                write_bytes += access.size

    return {
        "pattern": pattern,
        "n_frames": n_frames,
        "functional_frames": functional_frames,
        "frame_bytes": config.frame_bytes,
        "records": records,
        "write_once_per_frame": bool(write_once),
        "vn_monotonic_per_buffer": bool(vn_monotonic),
        "functional_roundtrip": bool(functional_ok),
        "traffic": {
            "read_bytes": read_bytes,
            "write_bytes": write_bytes,
            "bitstream_bytes_per_frame": config.bitstream_bytes_per_frame,
        },
    }
