"""H.264 video decoding substrate (§VII-A case study, Figs. 17–19)."""

from repro.video.decoder import (
    AccessRecord,
    DecodeTrace,
    DecoderConfig,
    H264Decoder,
)
from repro.video.gop import FrameInfo, FrameType, GopStructure
from repro.video.profile import decode_profile

__all__ = [
    "AccessRecord",
    "DecodeTrace",
    "DecoderConfig",
    "H264Decoder",
    "FrameInfo",
    "FrameType",
    "GopStructure",
    "decode_profile",
]
