"""AES-GCM authenticated encryption (NIST SP 800-38D).

The paper's CHaiDNN retrofit adds AES-GCM cores for memory protection
(§VI-C), and the host↔accelerator channel (§II) needs an AEAD for user
data and kernels in flight.  This composes the in-repo AES, CTR and
GHASH primitives into the standard GCM construction with a 96-bit IV.
Verified against the classic NIST/McGrew-Viega test vectors in
``tests/test_crypto_gcm.py``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, IntegrityError
from repro.crypto.aes import AES
from repro.crypto.ctr import xor_bytes
from repro.crypto.ghash import Ghash
from repro.crypto.mac import constant_time_equal


class AesGcm:
    """AES-GCM with 96-bit IVs and full 128-bit tags."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self._ghash = Ghash(self._aes.encrypt_block(bytes(16)))

    @staticmethod
    def _check_iv(iv: bytes) -> None:
        if len(iv) != 12:
            raise ConfigError(f"GCM IV must be 12 bytes, got {len(iv)}")

    def _j0(self, iv: bytes) -> int:
        return (int.from_bytes(iv, "big") << 32) | 1

    def _ctr_stream(self, j0: int, nbytes: int) -> bytes:
        out = bytearray()
        counter = j0
        while len(out) < nbytes:
            counter = (counter & ~0xFFFFFFFF) | ((counter + 1) & 0xFFFFFFFF)
            out.extend(self._aes.encrypt_block(counter.to_bytes(16, "big")))
        return bytes(out[:nbytes])

    def _ghash_tagged(self, aad: bytes, ciphertext: bytes) -> bytes:
        """GHASH over padded AAD ‖ padded ciphertext ‖ length block."""
        def pad(data: bytes) -> bytes:
            rem = len(data) % 16
            return data + bytes(16 - rem) if rem else data

        body = pad(aad) + pad(ciphertext)
        lengths = ((len(aad) * 8) << 64 | (len(ciphertext) * 8)).to_bytes(16, "big")
        # Reuse the raw polynomial evaluation: digest() appends its own
        # length block, so evaluate manually here.
        from repro.crypto.ghash import gf128_mul

        y = 0
        h = int.from_bytes(self._aes.encrypt_block(bytes(16)), "big")
        for offset in range(0, len(body), 16):
            y = gf128_mul(y ^ int.from_bytes(body[offset : offset + 16], "big"), h)
        y = gf128_mul(y ^ int.from_bytes(lengths, "big"), h)
        return y.to_bytes(16, "big")

    def encrypt(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> tuple[bytes, bytes]:
        """Returns (ciphertext, 16-byte tag)."""
        self._check_iv(iv)
        j0 = self._j0(iv)
        ciphertext = xor_bytes(plaintext, self._ctr_stream(j0, len(plaintext)))
        digest = self._ghash_tagged(aad, ciphertext)
        tag = xor_bytes(self._aes.encrypt_block(j0.to_bytes(16, "big")), digest)
        return ciphertext, tag

    def decrypt(self, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        """Verify then decrypt; raises :class:`IntegrityError` on mismatch."""
        self._check_iv(iv)
        j0 = self._j0(iv)
        digest = self._ghash_tagged(aad, ciphertext)
        expected = xor_bytes(self._aes.encrypt_block(j0.to_bytes(16, "big")), digest)
        if not constant_time_equal(expected, tag):
            raise IntegrityError("GCM tag mismatch: message was tampered with")
        return xor_bytes(ciphertext, self._ctr_stream(j0, len(ciphertext)))
