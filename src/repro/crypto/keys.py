"""Session key management for the secure accelerator (§II).

A secure-accelerator session starts with the device clearing internal
state and deriving fresh symmetric keys for memory encryption and
integrity verification.  The real device holds a manufacturer-embedded
private key (SK_Accel) and runs a DHE key exchange with the user; here we
model the outcome of that protocol — a :class:`SessionKeys` bundle derived
deterministically from a root secret and a session nonce via HKDF-like
expansion — which is all the memory-protection engines need.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.common.errors import ConfigError


def _hkdf_expand(secret: bytes, info: bytes, length: int) -> bytes:
    """Single-extract HKDF expansion (RFC 5869 with salt = zeros)."""
    prk = hmac.new(bytes(32), secret, hashlib.sha256).digest()
    out = b""
    block = b""
    counter = 1
    while len(out) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        out += block
        counter += 1
    return out[:length]


@dataclass(frozen=True)
class SessionKeys:
    """Per-session symmetric keys for the memory protection unit."""

    encryption_key: bytes
    integrity_key: bytes
    session_id: int

    @classmethod
    def derive(cls, root_secret: bytes, session_nonce: bytes, session_id: int = 0) -> "SessionKeys":
        """Derive the encryption and integrity keys for one session.

        Separate labels guarantee the two keys are independent even though
        they share a root secret, mirroring the paper's "pair of new
        symmetric keys for encryption and integrity verification".
        """
        if not root_secret or not session_nonce:
            raise ConfigError("root secret and session nonce must be non-empty")
        material = _hkdf_expand(root_secret + session_nonce, b"mgx-session", 32)
        return cls(
            encryption_key=_hkdf_expand(material, b"mgx-enc", 16),
            integrity_key=_hkdf_expand(material, b"mgx-mac", 16),
            session_id=session_id,
        )

    def rotate(self) -> "SessionKeys":
        """Fresh keys for re-encryption after a VN overflow (§IV-C)."""
        return SessionKeys.derive(
            self.encryption_key + self.integrity_key,
            self.session_id.to_bytes(8, "big"),
            self.session_id + 1,
        )
