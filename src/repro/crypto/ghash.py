"""GHASH: the universal hash over GF(2^128) used by AES-GCM.

The paper's case study (§VI-C) adds AES-GCM cores for both memory
encryption and integrity verification.  GHASH is the authentication half
of GCM: a polynomial evaluation over GF(2^128) keyed by ``H = AES_K(0)``.

The field is GF(2^128) with the GCM reduction polynomial
``x^128 + x^7 + x^2 + x + 1`` and GCM's reflected bit order: bit 0 of byte
0 is the coefficient of x^0.  We implement the standard right-shift
multiplication algorithm from NIST SP 800-38D.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

# GCM's "R" constant: the reduction polynomial's low terms, reflected.
_R = 0xE1000000000000000000000000000000


def gf128_mul(x: int, y: int) -> int:
    """Multiply two field elements in GCM bit order (MSB-first integers)."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class Ghash:
    """Incremental GHASH computation keyed by subkey ``H``.

    ``digest(data)`` processes the data in 16-byte blocks (zero padded)
    followed by a length block, matching GCM's handling of a message with
    no AAD.
    """

    def __init__(self, h_subkey: bytes) -> None:
        if len(h_subkey) != 16:
            raise ConfigError(f"GHASH subkey must be 16 bytes, got {len(h_subkey)}")
        self._h = int.from_bytes(h_subkey, "big")

    def digest(self, data: bytes) -> bytes:
        """GHASH of ``data`` (treated as ciphertext, no AAD)."""
        y = 0
        for offset in range(0, len(data), 16):
            chunk = data[offset : offset + 16]
            if len(chunk) < 16:
                chunk = chunk + bytes(16 - len(chunk))
            y = gf128_mul(y ^ int.from_bytes(chunk, "big"), self._h)
        # Length block: 64-bit AAD bit length (0) || 64-bit data bit length.
        length_block = (len(data) * 8).to_bytes(16, "big")
        y = gf128_mul(y ^ int.from_bytes(length_block, "big"), self._h)
        return y.to_bytes(16, "big")
