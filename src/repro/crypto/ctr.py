"""AES counter-mode (CTR) keystream generation.

Counter-mode encryption hides AES latency by encrypting a *counter block*
instead of the data: ``ciphertext = plaintext XOR AES_K(counter)``.  The
counter block in secure-memory designs is the concatenation of the
physical address and a version number (VN); see
:mod:`repro.core.counters` for how MGX lays those bits out.

This module only deals with the keystream mechanics: given a 16-byte
counter block for the *first* AES block of a region, produce the keystream
for an arbitrary number of bytes, incrementing the per-16-byte lane index
in the low bits.  The same function both encrypts and decrypts.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.crypto.aes import AES


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ConfigError(f"xor_bytes length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


class CtrMode:
    """Counter-mode keystream generator bound to one AES key.

    The 16-byte counter block supplied by the caller encodes everything
    that must be unique per encryption (address, version number, block
    type).  Within a multi-block region the final byte-lane counter is
    advanced by the AES-block index so that every 16-byte lane of the
    region sees a distinct counter, exactly as a hardware engine enumerates
    lanes of a burst.
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def keystream(self, counter_block: bytes, nbytes: int) -> bytes:
        """Generate ``nbytes`` of keystream starting at ``counter_block``."""
        if len(counter_block) != 16:
            raise ConfigError(f"counter block must be 16 bytes, got {len(counter_block)}")
        if nbytes < 0:
            raise ConfigError(f"nbytes must be non-negative, got {nbytes}")
        base = int.from_bytes(counter_block, "big")
        out = bytearray()
        lane = 0
        while len(out) < nbytes:
            block = ((base + lane) & ((1 << 128) - 1)).to_bytes(16, "big")
            out.extend(self._aes.encrypt_block(block))
            lane += 1
        return bytes(out[:nbytes])

    def transform(self, counter_block: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with the keystream)."""
        return xor_bytes(data, self.keystream(counter_block, len(data)))
