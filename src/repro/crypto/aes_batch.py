"""Vectorized AES for bulk counter-mode keystream generation.

The scalar implementation in :mod:`repro.crypto.aes` is the reference;
this module evaluates the same cipher over an ``(N, 16)`` batch of blocks
with numpy table lookups, making the *functional* protection engine fast
enough to encrypt megabytes in tests and examples.  Equivalence with the
scalar cipher is asserted property-style in the test-suite.

Only encryption is provided — counter mode never runs the inverse cipher.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.crypto.aes import SBOX, _expand_key, _gf_mul, _ROUNDS

_SBOX_NP = np.frombuffer(SBOX, dtype=np.uint8)

# GF(2^8) multiply-by-2 and multiply-by-3 lookup tables for MixColumns.
_MUL2 = np.array([_gf_mul(x, 2) for x in range(256)], dtype=np.uint8)
_MUL3 = np.array([_gf_mul(x, 3) for x in range(256)], dtype=np.uint8)

# ShiftRows permutation for the column-major state layout (state[4c + r]).
_SHIFT = np.array([0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11], dtype=np.intp)

# MixColumns source indices: for each output byte, the four state bytes of
# its column in rotated order, so the transform is pure gathers + XORs.
_COL = np.arange(16).reshape(4, 4)  # _COL[c] = indices of column c


class AesBatch:
    """AES encryption over batches of 16-byte blocks."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in _ROUNDS:
            raise ConfigError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.rounds = _ROUNDS[len(key)]
        self._round_keys = [
            np.array(rk, dtype=np.uint8) for rk in _expand_key(bytes(key))
        ]

    @staticmethod
    def _mix_columns(state: np.ndarray) -> np.ndarray:
        out = np.empty_like(state)
        for c in range(4):
            a0 = state[:, 4 * c + 0]
            a1 = state[:, 4 * c + 1]
            a2 = state[:, 4 * c + 2]
            a3 = state[:, 4 * c + 3]
            out[:, 4 * c + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[:, 4 * c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[:, 4 * c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[:, 4 * c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return out

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an ``(N, 16)`` uint8 array of blocks."""
        if blocks.ndim != 2 or blocks.shape[1] != 16 or blocks.dtype != np.uint8:
            raise ConfigError("blocks must be an (N, 16) uint8 array")
        state = blocks ^ self._round_keys[0]
        for r in range(1, self.rounds):
            state = _SBOX_NP[state]
            state = state[:, _SHIFT]
            state = self._mix_columns(state)
            state ^= self._round_keys[r]
        state = _SBOX_NP[state]
        state = state[:, _SHIFT]
        state ^= self._round_keys[self.rounds]
        return state


def ctr_keystream(key: bytes, counter_blocks: np.ndarray) -> np.ndarray:
    """Keystream bytes for an ``(N, 16)`` array of counter blocks."""
    return AesBatch(key).encrypt_blocks(counter_blocks)
