"""AES block cipher (FIPS-197) implemented from scratch.

The MGX hardware uses pipelined AES cores for counter-mode encryption and
GCM-style authentication.  This module provides the functional equivalent:
a table-driven AES-128/192/256 implementation operating on 16-byte blocks.
Only block encryption is required by counter mode (decryption XORs the same
keystream), but the inverse cipher is included for completeness and is
exercised by the round-trip tests against the FIPS-197 known-answer
vectors.

Performance note: this is a clarity-first implementation (a few µs per
block in CPython).  The timing simulators never call it — they model the
AES pipeline analytically — so only the functional engine and the security
tests pay this cost.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

# ---------------------------------------------------------------------------
# S-box generation.  Rather than embedding the 256-entry table we derive it
# from the multiplicative inverse in GF(2^8) followed by the affine map, and
# verify spot values in the unit tests.
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial 0x11B."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Full GF(2^8) multiplication used by MixColumns and S-box setup."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via brute force (256 * 256 once at import).
    inverse = [0] * 256
    for a in range(1, 256):
        for b in range(1, 256):
            if _gf_mul(a, b) == 1:
                inverse[a] = b
                break
    sbox = bytearray(256)
    for value in range(256):
        x = inverse[value]
        # Affine transform: y = x ^ rotl(x,1) ^ rotl(x,2) ^ rotl(x,3) ^ rotl(x,4) ^ 0x63
        y = x
        for shift in (1, 2, 3, 4):
            y ^= ((x << shift) | (x >> (8 - shift))) & 0xFF
        sbox[value] = y ^ 0x63
    inv_sbox = bytearray(256)
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

#: Rounds per key size in bytes.
_ROUNDS = {16: 10, 24: 12, 32: 14}


def _expand_key(key: bytes) -> list[list[int]]:
    """Key schedule returning one 16-byte round key per round (as lists)."""
    nk = len(key) // 4
    rounds = _ROUNDS[len(key)]
    words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        word = list(words[i - 1])
        if i % nk == 0:
            word = word[1:] + word[:1]
            word = [SBOX[b] for b in word]
            word[0] ^= _RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            word = [SBOX[b] for b in word]
        words.append([words[i - nk][j] ^ word[j] for j in range(4)])
    round_keys = []
    for r in range(rounds + 1):
        rk: list[int] = []
        for w in words[4 * r : 4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


def _sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


# State layout: column-major as in FIPS-197; state[4*c + r] is row r, col c.

_SHIFT_MAP = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT_MAP = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]


def _shift_rows(state: list[int]) -> list[int]:
    return [state[_SHIFT_MAP[i]] for i in range(16)]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[_INV_SHIFT_MAP[i]] for i in range(16)]


def _mix_columns(state: list[int]) -> None:
    for c in range(4):
        a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = _gf_mul(a0, 2) ^ _gf_mul(a1, 3) ^ a2 ^ a3
        state[4 * c + 1] = a0 ^ _gf_mul(a1, 2) ^ _gf_mul(a2, 3) ^ a3
        state[4 * c + 2] = a0 ^ a1 ^ _gf_mul(a2, 2) ^ _gf_mul(a3, 3)
        state[4 * c + 3] = _gf_mul(a0, 3) ^ a1 ^ a2 ^ _gf_mul(a3, 2)


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(4):
        a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = _gf_mul(a0, 14) ^ _gf_mul(a1, 11) ^ _gf_mul(a2, 13) ^ _gf_mul(a3, 9)
        state[4 * c + 1] = _gf_mul(a0, 9) ^ _gf_mul(a1, 14) ^ _gf_mul(a2, 11) ^ _gf_mul(a3, 13)
        state[4 * c + 2] = _gf_mul(a0, 13) ^ _gf_mul(a1, 9) ^ _gf_mul(a2, 14) ^ _gf_mul(a3, 11)
        state[4 * c + 3] = _gf_mul(a0, 11) ^ _gf_mul(a1, 13) ^ _gf_mul(a2, 9) ^ _gf_mul(a3, 14)


def _add_round_key(state: list[int], rk: list[int]) -> None:
    for i in range(16):
        state[i] ^= rk[i]


class AES:
    """AES block cipher with a fixed key.

    >>> AES(bytes(16)).encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in _ROUNDS:
            raise ConfigError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = _ROUNDS[len(key)]
        self._round_keys = _expand_key(self.key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise ConfigError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            _sub_bytes(state)
            state = _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[r])
        _sub_bytes(state)
        state = _shift_rows(state)
        _add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block (inverse cipher)."""
        if len(block) != 16:
            raise ConfigError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[r])
            _inv_mix_columns(state)
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
