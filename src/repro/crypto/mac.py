"""Message authentication codes for integrity verification.

Both the baseline and MGX compute ``MAC = H_K(V || PA || VN)`` over the
*ciphertext* V, the physical address PA and the version number VN
(§III-A).  Two interchangeable engines are provided:

* :class:`GcmMac` — GHASH-then-encrypt construction mirroring the AES-GCM
  cores the paper proposes for hardware (§VI-C).  The GHASH of the
  ciphertext is encrypted with a per-(address, VN) counter block, making
  the tag depend on all three inputs.
* :class:`HmacSha256Mac` — a software-friendly engine (stdlib ``hmac``)
  used where test speed matters; identical interface and truncation.

Tags are truncated to ``tag_bits`` (56 in the Intel-MEE baseline, 64 in
MGX) exactly as the hardware stores truncated MACs.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Protocol

from repro.common.errors import ConfigError
from repro.crypto.aes import AES
from repro.crypto.ctr import xor_bytes
from repro.crypto.ghash import Ghash


class MacEngine(Protocol):
    """Interface shared by the MAC constructions."""

    tag_bytes: int

    def tag(self, ciphertext: bytes, address: int, version: int) -> bytes:
        """Compute the truncated tag binding data, address and VN."""
        ...


def _check_tag_bits(tag_bits: int) -> int:
    if tag_bits % 8 != 0 or not 32 <= tag_bits <= 128:
        raise ConfigError(f"tag_bits must be a multiple of 8 in [32,128], got {tag_bits}")
    return tag_bits // 8


class GcmMac:
    """GCM-style MAC: ``E_K(J(addr, vn)) XOR GHASH_H(ciphertext)``.

    ``H = AES_K(0^128)`` as in GCM; the pre-counter block J encodes the
    address and version number, so a relocated or replayed block produces
    a different tag.
    """

    def __init__(self, key: bytes, tag_bits: int = 64) -> None:
        self.tag_bytes = _check_tag_bits(tag_bits)
        self._aes = AES(key)
        self._ghash = Ghash(self._aes.encrypt_block(bytes(16)))

    def tag(self, ciphertext: bytes, address: int, version: int) -> bytes:
        digest = self._ghash.digest(ciphertext)
        j0 = ((address & ((1 << 64) - 1)) << 64 | (version & ((1 << 64) - 1))).to_bytes(16, "big")
        full = xor_bytes(self._aes.encrypt_block(j0), digest)
        return full[: self.tag_bytes]


class HmacSha256Mac:
    """HMAC-SHA256 based MAC with the same (data, addr, vn) binding."""

    def __init__(self, key: bytes, tag_bits: int = 64) -> None:
        if not key:
            raise ConfigError("HMAC key must be non-empty")
        self.tag_bytes = _check_tag_bits(tag_bits)
        self._key = bytes(key)

    def tag(self, ciphertext: bytes, address: int, version: int) -> bytes:
        msg = (
            ciphertext
            + (address & ((1 << 64) - 1)).to_bytes(8, "big")
            + (version & ((1 << 64) - 1)).to_bytes(8, "big")
        )
        return hmac.new(self._key, msg, hashlib.sha256).digest()[: self.tag_bytes]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Constant-time comparison for tag checks."""
    return hmac.compare_digest(a, b)
