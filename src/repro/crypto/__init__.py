"""Cryptographic substrate: AES, CTR mode, GHASH, MACs, session keys.

Everything is implemented from scratch (AES per FIPS-197, GHASH per NIST
SP 800-38D) except SHA-256, which comes from the standard library.  The
timing simulators never invoke these routines — they model crypto engine
latency analytically — but the functional protection engine
(:mod:`repro.core.functional`) uses them to demonstrate end-to-end
confidentiality and integrity on real bytes.
"""

from repro.crypto.aes import AES
from repro.crypto.aes_batch import AesBatch, ctr_keystream
from repro.crypto.ctr import CtrMode, xor_bytes
from repro.crypto.gcm import AesGcm
from repro.crypto.ghash import Ghash, gf128_mul
from repro.crypto.keys import SessionKeys
from repro.crypto.mac import GcmMac, HmacSha256Mac, MacEngine, constant_time_equal

__all__ = [
    "AES",
    "AesBatch",
    "ctr_keystream",
    "CtrMode",
    "xor_bytes",
    "AesGcm",
    "Ghash",
    "gf128_mul",
    "SessionKeys",
    "GcmMac",
    "HmacSha256Mac",
    "MacEngine",
    "constant_time_equal",
]
