"""Static and dynamic pruning under MGX (§VII-B, Fig. 20).

The worry the paper addresses: dynamic pruning makes the set of memory
accesses input-dependent — does on-chip VN generation still work?  The
answer (and what this module demonstrates on real arrays): *skipping*
accesses never breaks CTR-mode safety.  All tiles of a layer's output
share one VN_F; only unpruned tiles are written, and later reads of those
tiles use the same shared VN_F.  A VN that is skipped is simply never
consumed.

Provided here:

* compression formats used by sparse accelerators — CSR, CSC and
  run-length compression (RLC) of feature maps — with exact round-trips;
* a dynamic channel-gating policy (threshold on channel saliency, similar
  to [48]) and a static magnitude filter pruner;
* :class:`PrunedTileWriter` — the Fig. 20 write/read pattern against the
  functional MGX engine: one shared VN, a subset of tile slots touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.core.functional import MgxFunctionalEngine

# ---------------------------------------------------------------------------
# Compression formats (pixel-level sparsity)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CsrFeatures:
    """CSR compression of a 2-D feature map (rows × cols)."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    @classmethod
    def compress(cls, dense: np.ndarray) -> "CsrFeatures":
        if dense.ndim != 2:
            raise ConfigError(f"CSR expects a 2-D map, got shape {dense.shape}")
        mask = dense != 0
        counts = mask.sum(axis=1)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(dense.shape, indptr, cols.astype(np.int64), dense[rows, cols])

    def decompress(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.values.dtype)
        for r in range(self.shape[0]):
            cols = self.indices[self.indptr[r] : self.indptr[r + 1]]
            out[r, cols] = self.values[self.indptr[r] : self.indptr[r + 1]]
        return out

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes


@dataclass(frozen=True)
class CscFeatures:
    """CSC compression (EIE-style, column-major)."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    @classmethod
    def compress(cls, dense: np.ndarray) -> "CscFeatures":
        csr = CsrFeatures.compress(np.ascontiguousarray(dense.T))
        return cls(dense.shape, csr.indptr, csr.indices, csr.values)

    def decompress(self) -> np.ndarray:
        transposed = CsrFeatures(
            (self.shape[1], self.shape[0]), self.indptr, self.indices, self.values
        ).decompress()
        return np.ascontiguousarray(transposed.T)

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes


@dataclass(frozen=True)
class RlcFeatures:
    """Run-length compression of the zero runs (Cnvlutin-style).

    Encoded as (zero_run_length, value) pairs over the flattened map.
    """

    shape: tuple[int, ...]
    runs: np.ndarray    # zero-run length preceding each stored value
    values: np.ndarray
    trailing_zeros: int

    _MAX_RUN = 255

    @classmethod
    def compress(cls, dense: np.ndarray) -> "RlcFeatures":
        flat = dense.reshape(-1)
        runs: list[int] = []
        values: list = []
        current_run = 0
        for value in flat:
            if value == 0 and current_run < cls._MAX_RUN:
                current_run += 1
                continue
            runs.append(current_run)
            values.append(value)
            current_run = 0
        return cls(
            dense.shape,
            np.asarray(runs, dtype=np.int64),
            np.asarray(values, dtype=flat.dtype),
            trailing_zeros=current_run,
        )

    def decompress(self) -> np.ndarray:
        out: list = []
        for run, value in zip(self.runs, self.values):
            out.extend([0] * int(run))
            out.append(value)
        out.extend([0] * self.trailing_zeros)
        return np.asarray(out, dtype=self.values.dtype).reshape(self.shape)

    @property
    def nbytes(self) -> int:
        return len(self.values) * (1 + self.values.dtype.itemsize) + 1


# ---------------------------------------------------------------------------
# Pruning policies
# ---------------------------------------------------------------------------


def static_filter_prune(weights: np.ndarray, keep_ratio: float) -> np.ndarray:
    """Magnitude-based filter pruning: zero the smallest-L1 output filters.

    ``weights`` has shape (out_channels, ...); returns a pruned copy.
    Statically pruned networks are "simply a different network" to the
    secure accelerator (§VII-B).
    """
    if not 0.0 < keep_ratio <= 1.0:
        raise ConfigError(f"keep_ratio must be in (0, 1], got {keep_ratio}")
    saliency = np.abs(weights).reshape(weights.shape[0], -1).sum(axis=1)
    keep = max(1, int(round(keep_ratio * weights.shape[0])))
    threshold_index = np.argsort(saliency)[: weights.shape[0] - keep]
    pruned = weights.copy()
    pruned[threshold_index] = 0
    return pruned


def dynamic_channel_gate(features: np.ndarray, keep_ratio: float) -> np.ndarray:
    """Input-dependent channel gating: keep the most salient channels.

    ``features`` has shape (channels, h, w).  Returns the boolean keep
    mask — which channels this *particular input* writes to DRAM.
    """
    if features.ndim != 3:
        raise ConfigError(f"expected (c, h, w) features, got {features.shape}")
    if not 0.0 < keep_ratio <= 1.0:
        raise ConfigError(f"keep_ratio must be in (0, 1], got {keep_ratio}")
    saliency = np.abs(features).reshape(features.shape[0], -1).mean(axis=1)
    keep = max(1, int(round(keep_ratio * features.shape[0])))
    mask = np.zeros(features.shape[0], dtype=bool)
    mask[np.argsort(saliency)[::-1][:keep]] = True
    return mask


# ---------------------------------------------------------------------------
# Fig. 20: shared-VN tile writes through the functional MGX engine
# ---------------------------------------------------------------------------


class PrunedTileWriter:
    """Writes/reads a layer's output tiles with one shared VN_F (Fig. 20).

    The layer output is an array of fixed-size tiles at consecutive
    granule-aligned slots.  ``write_tiles`` stores only the unpruned
    subset under a single VN; ``read_tiles`` gathers the same subset with
    the same VN.  Pruned slots are never touched — their (address, VN)
    counter values are simply skipped, which is safe because CTR mode
    only forbids *reuse*, not gaps.
    """

    def __init__(self, engine: MgxFunctionalEngine, base_address: int,
                 tile_bytes: int, n_tiles: int) -> None:
        if tile_bytes % engine.mac_granularity != 0:
            raise ConfigError(
                "tile size must be a multiple of the engine's MAC granularity"
            )
        self.engine = engine
        self.base_address = base_address
        self.tile_bytes = tile_bytes
        self.n_tiles = n_tiles

    def _slot(self, index: int) -> int:
        if not 0 <= index < self.n_tiles:
            raise ConfigError(f"tile index {index} out of range")
        return self.base_address + index * self.tile_bytes

    def write_tiles(self, tiles: dict[int, bytes], vn: int) -> None:
        """Store the unpruned tiles (index → payload) under one shared VN."""
        for index, payload in tiles.items():
            if len(payload) != self.tile_bytes:
                raise ConfigError(
                    f"tile {index} has {len(payload)} bytes, expected {self.tile_bytes}"
                )
            self.engine.write(self._slot(index), payload, vn)

    def read_tiles(self, indices: list[int], vn: int) -> dict[int, bytes]:
        """Read back a subset of the unpruned tiles with the shared VN."""
        return {
            index: self.engine.read(self._slot(index), self.tile_bytes, vn)
            for index in indices
        }
