"""Model zoo: the six benchmark networks of the paper's DNN evaluation.

AlexNet, VGG16, GoogLeNet, ResNet-50 (image classification), BERT-base
(language pretraining) and DLRM (personalized recommendation), §VI-A.
Each builder returns a :class:`~repro.dnn.layers.DnnModel` whose layer
graph carries the real published shapes, so the trace generator's traffic
and the systolic model's cycle counts reflect the actual networks.

Pooling/activation layers that accelerators fuse into the producing layer
are omitted unless they change DRAM-resident feature sizes (pooling does,
ReLU does not — §VI-C notes activations are merged to avoid DRAM traffic).
"""

from __future__ import annotations

from repro.dnn.layers import (
    ConcatLayer,
    ConvLayer,
    DeconvLayer,
    DenseLayer,
    DnnModel,
    EltwiseAddLayer,
    EmbeddingLayer,
    MatmulLayer,
    PoolLayer,
)


def _conv(model: DnnModel, name: str, src: str, in_c: int, out_c: int, k: int,
          stride: int, pad: int, h: int, w: int, groups: int = 1) -> tuple[str, int, int]:
    layer = ConvLayer(
        name=name, inputs=(src,), in_channels=in_c, out_channels=out_c,
        kernel=k, stride=stride, padding=pad, in_h=h, in_w=w, groups=groups,
    )
    model.add(layer)
    return name, layer.out_h, layer.out_w


def _pool(model: DnnModel, name: str, src: str, channels: int, h: int, w: int,
          k: int, stride: int) -> tuple[str, int, int]:
    layer = PoolLayer(
        name=name, inputs=(src,), channels=channels, in_h=h, in_w=w,
        kernel=k, stride=stride,
    )
    model.add(layer)
    return name, layer.out_h, layer.out_w


def alexnet() -> DnnModel:
    """AlexNet (single-tower variant), 227×227×3 input."""
    m = DnnModel("AlexNet", input_bytes=3 * 227 * 227)
    t, h, w = _conv(m, "conv1", "input", 3, 96, 11, 4, 0, 227, 227)
    t, h, w = _pool(m, "pool1", t, 96, h, w, 3, 2)
    t, h, w = _conv(m, "conv2", t, 96, 256, 5, 1, 2, h, w)
    t, h, w = _pool(m, "pool2", t, 256, h, w, 3, 2)
    t, h, w = _conv(m, "conv3", t, 256, 384, 3, 1, 1, h, w)
    t, h, w = _conv(m, "conv4", t, 384, 384, 3, 1, 1, h, w)
    t, h, w = _conv(m, "conv5", t, 384, 256, 3, 1, 1, h, w)
    t, h, w = _pool(m, "pool5", t, 256, h, w, 3, 2)
    m.add(DenseLayer(name="fc6", inputs=(t,), in_features=256 * h * w, out_features=4096))
    m.add(DenseLayer(name="fc7", inputs=("fc6",), in_features=4096, out_features=4096))
    m.add(DenseLayer(name="fc8", inputs=("fc7",), in_features=4096, out_features=1000))
    return m


_VGG_PLAN = [
    (64, 2), (128, 2), (256, 3), (512, 3), (512, 3),
]


def vgg16() -> DnnModel:
    """VGG-16, 224×224×3 input: 13 conv + 3 dense layers."""
    m = DnnModel("VGG", input_bytes=3 * 224 * 224)
    t, h, w = "input", 224, 224
    in_c = 3
    index = 0
    for block, (out_c, repeats) in enumerate(_VGG_PLAN, start=1):
        for r in range(repeats):
            index += 1
            t, h, w = _conv(m, f"conv{block}_{r + 1}", t, in_c, out_c, 3, 1, 1, h, w)
            in_c = out_c
        t, h, w = _pool(m, f"pool{block}", t, out_c, h, w, 2, 2)
    m.add(DenseLayer(name="fc1", inputs=(t,), in_features=512 * h * w, out_features=4096))
    m.add(DenseLayer(name="fc2", inputs=("fc1",), in_features=4096, out_features=4096))
    m.add(DenseLayer(name="fc3", inputs=("fc2",), in_features=4096, out_features=1000))
    return m


# GoogLeNet inception parameters: (1x1, 3x3red, 3x3, 5x5red, 5x5, pool_proj)
_INCEPTION = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(m: DnnModel, tag: str, src: str, in_c: int, h: int, w: int) -> tuple[str, int]:
    c1, r3, c3, r5, c5, pp = _INCEPTION[tag]
    _conv(m, f"inc{tag}_1x1", src, in_c, c1, 1, 1, 0, h, w)
    _conv(m, f"inc{tag}_3x3r", src, in_c, r3, 1, 1, 0, h, w)
    _conv(m, f"inc{tag}_3x3", f"inc{tag}_3x3r", r3, c3, 3, 1, 1, h, w)
    _conv(m, f"inc{tag}_5x5r", src, in_c, r5, 1, 1, 0, h, w)
    _conv(m, f"inc{tag}_5x5", f"inc{tag}_5x5r", r5, c5, 5, 1, 2, h, w)
    _conv(m, f"inc{tag}_pp", src, in_c, pp, 1, 1, 0, h, w)
    out_c = c1 + c3 + c5 + pp
    m.add(
        ConcatLayer(
            name=f"inc{tag}_out",
            inputs=(f"inc{tag}_1x1", f"inc{tag}_3x3", f"inc{tag}_5x5", f"inc{tag}_pp"),
            elements=out_c * h * w,
        )
    )
    return f"inc{tag}_out", out_c


def googlenet() -> DnnModel:
    """GoogLeNet (Inception v1), 224×224×3 input."""
    m = DnnModel("GoogleNet", input_bytes=3 * 224 * 224)
    t, h, w = _conv(m, "conv1", "input", 3, 64, 7, 2, 3, 224, 224)
    t, h, w = _pool(m, "pool1", t, 64, h, w, 3, 2)
    t, h, w = _conv(m, "conv2r", t, 64, 64, 1, 1, 0, h, w)
    t, h, w = _conv(m, "conv2", t, 64, 192, 3, 1, 1, h, w)
    t, h, w = _pool(m, "pool2", t, 192, h, w, 3, 2)
    c = 192
    t, c = _inception(m, "3a", t, c, h, w)
    t, c = _inception(m, "3b", t, c, h, w)
    t, h, w = _pool(m, "pool3", t, c, h, w, 3, 2)
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        t, c = _inception(m, tag, t, c, h, w)
    t, h, w = _pool(m, "pool4", t, c, h, w, 3, 2)
    for tag in ("5a", "5b"):
        t, c = _inception(m, tag, t, c, h, w)
    t, h, w = _pool(m, "pool5", t, c, h, w, 7, 1)
    m.add(DenseLayer(name="fc", inputs=(t,), in_features=c, out_features=1000))
    return m


# ResNet-50 stage plan: (blocks, mid_channels, out_channels, first_stride)
_RESNET50_PLAN = [
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
]


def resnet50() -> DnnModel:
    """ResNet-50, 224×224×3 input, bottleneck residual blocks."""
    m = DnnModel("ResNet", input_bytes=3 * 224 * 224)
    t, h, w = _conv(m, "conv1", "input", 3, 64, 7, 2, 3, 224, 224)
    t, h, w = _pool(m, "pool1", t, 64, h, w, 3, 2)
    in_c = 64
    for stage, (blocks, mid_c, out_c, first_stride) in enumerate(_RESNET50_PLAN, start=2):
        for b in range(blocks):
            stride = first_stride if b == 0 else 1
            tag = f"s{stage}b{b + 1}"
            skip_src = t
            t1, h1, w1 = _conv(m, f"{tag}_c1", t, in_c, mid_c, 1, stride, 0, h, w)
            t2, h2, w2 = _conv(m, f"{tag}_c2", t1, mid_c, mid_c, 3, 1, 1, h1, w1)
            t3, h3, w3 = _conv(m, f"{tag}_c3", t2, mid_c, out_c, 1, 1, 0, h2, w2)
            if b == 0:
                skip_src, _, _ = _conv(
                    m, f"{tag}_proj", skip_src, in_c, out_c, 1, stride, 0, h, w
                )
            m.add(
                EltwiseAddLayer(
                    name=f"{tag}_add", inputs=(t3, skip_src), elements=out_c * h3 * w3
                )
            )
            t, h, w = f"{tag}_add", h3, w3
            in_c = out_c
    t, h, w = _pool(m, "gap", t, in_c, h, w, h, 1)
    m.add(DenseLayer(name="fc", inputs=(t,), in_features=in_c, out_features=1000))
    return m


def bert_base(seq_len: int = 512, hidden: int = 768, layers: int = 12,
              heads: int = 12, ffn_mult: int = 4) -> DnnModel:
    """BERT-base encoder stack as dense GEMMs (Transformer encoder, §VI-A)."""
    m = DnnModel("BERT", input_bytes=seq_len * hidden)
    head_dim = hidden // heads
    t = "input"
    for i in range(layers):
        tag = f"l{i}"
        for proj in ("q", "k", "v"):
            m.add(
                DenseLayer(
                    name=f"{tag}_{proj}", inputs=(t,), in_features=hidden,
                    out_features=hidden, rows=seq_len,
                )
            )
        m.add(
            MatmulLayer(
                name=f"{tag}_scores", inputs=(f"{tag}_q", f"{tag}_k"),
                m=seq_len, k=head_dim, n=seq_len, batch=heads,
            )
        )
        m.add(
            MatmulLayer(
                name=f"{tag}_ctx", inputs=(f"{tag}_scores", f"{tag}_v"),
                m=seq_len, k=seq_len, n=head_dim, batch=heads,
            )
        )
        m.add(
            DenseLayer(
                name=f"{tag}_out", inputs=(f"{tag}_ctx",), in_features=hidden,
                out_features=hidden, rows=seq_len,
            )
        )
        m.add(
            EltwiseAddLayer(
                name=f"{tag}_res1", inputs=(f"{tag}_out", t), elements=seq_len * hidden
            )
        )
        m.add(
            DenseLayer(
                name=f"{tag}_ffn1", inputs=(f"{tag}_res1",), in_features=hidden,
                out_features=hidden * ffn_mult, rows=seq_len,
            )
        )
        m.add(
            DenseLayer(
                name=f"{tag}_ffn2", inputs=(f"{tag}_ffn1",),
                in_features=hidden * ffn_mult, out_features=hidden, rows=seq_len,
            )
        )
        m.add(
            EltwiseAddLayer(
                name=f"{tag}_res2", inputs=(f"{tag}_ffn2", f"{tag}_res1"),
                elements=seq_len * hidden,
            )
        )
        t = f"{tag}_res2"
    return m


def dlrm(batch: int = 256, tables: int = 26, rows_per_table: int = 400_000,
         embedding_dim: int = 128, lookups_per_table: int = 2) -> DnnModel:
    """DLRM: embedding gathers + bottom/top MLPs (§VI-A).

    The table geometry is scaled down from production sizes (documented in
    DESIGN.md); what matters for the protection study is that gathers are
    scattered row-granularity reads while the MLPs stream — which this
    preserves.  128 fp32 dims → 512-byte rows.
    """
    m = DnnModel("DLRM", input_bytes=batch * 13 * 4)
    m.add(
        DenseLayer(name="bot1", inputs=("input",), in_features=13, out_features=512,
                   rows=batch, dtype_bytes=4)
    )
    m.add(
        DenseLayer(name="bot2", inputs=("bot1",), in_features=512, out_features=256,
                   rows=batch, dtype_bytes=4)
    )
    m.add(
        DenseLayer(name="bot3", inputs=("bot2",), in_features=256,
                   out_features=embedding_dim, rows=batch, dtype_bytes=4)
    )
    m.add(
        EmbeddingLayer(
            name="emb", inputs=("input",), tables=tables, rows=rows_per_table,
            dim=embedding_dim, lookups_per_table=lookups_per_table, batch=batch,
            dtype_bytes=4,
        )
    )
    # Pairwise feature interaction: dot products of (tables + 1) vectors.
    # Its operands (the gathered rows and bot3's output) are consumed
    # directly from on-chip buffers — no DRAM reads — so ``inputs`` is
    # empty; only the interaction output is spilled for the top MLP.
    interact_features = (tables + 1) * tables // 2 + embedding_dim
    m.add(
        MatmulLayer(
            name="interact", inputs=(), m=tables + 1,
            k=embedding_dim, n=tables + 1, batch=batch, dtype_bytes=4,
        )
    )
    m.add(
        DenseLayer(name="top1", inputs=("interact",), in_features=interact_features,
                   out_features=512, rows=batch, dtype_bytes=4)
    )
    m.add(
        DenseLayer(name="top2", inputs=("top1",), in_features=512, out_features=256,
                   rows=batch, dtype_bytes=4)
    )
    m.add(
        DenseLayer(name="top3", inputs=("top2",), in_features=256, out_features=1,
                   rows=batch, dtype_bytes=4)
    )
    return m


# MobileNet-v1 plan: (kind, out_channels, stride) after the stem.
_MOBILENET_PLAN = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
]


def mobilenet_v1() -> DnnModel:
    """MobileNet-v1: depthwise-separable convolutions (beyond the paper's
    benchmark set; exercises the grouped-convolution path end to end)."""
    m = DnnModel("MobileNet", input_bytes=3 * 224 * 224)
    t, h, w = _conv(m, "stem", "input", 3, 32, 3, 2, 1, 224, 224)
    in_c = 32
    for i, (out_c, stride) in enumerate(_MOBILENET_PLAN, start=1):
        t, h, w = _conv(m, f"dw{i}", t, in_c, in_c, 3, stride, 1, h, w,
                        groups=in_c)
        t, h, w = _conv(m, f"pw{i}", t, in_c, out_c, 1, 1, 0, h, w)
        in_c = out_c
    t, h, w = _pool(m, "gap", t, in_c, h, w, h, 1)
    m.add(DenseLayer(name="fc", inputs=(t,), in_features=in_c, out_features=1000))
    return m


def segnet_toy(classes: int = 21) -> DnnModel:
    """A small encoder-decoder segmentation network (extension model).

    Exercises the Deconvolution path end to end — the third CHaiDNN
    operation (§VI-C) — with a realistic upsample-by-2 decoder.
    """
    m = DnnModel("SegNet", input_bytes=3 * 224 * 224)
    t, h, w = _conv(m, "enc1", "input", 3, 32, 3, 2, 1, 224, 224)
    t, h, w = _conv(m, "enc2", t, 32, 64, 3, 2, 1, h, w)
    t, h, w = _conv(m, "enc3", t, 64, 128, 3, 2, 1, h, w)
    for i, (in_c, out_c) in enumerate(((128, 64), (64, 32), (32, 16)), start=1):
        layer = DeconvLayer(
            name=f"dec{i}", inputs=(t,), in_channels=in_c, out_channels=out_c,
            kernel=2, stride=2, in_h=h, in_w=w,
        )
        m.add(layer)
        t, h, w = f"dec{i}", layer.out_h, layer.out_w
    _conv(m, "head", t, 16, classes, 1, 1, 0, h, w)
    return m


#: Inference benchmark suite of Fig. 12(a)/13(a).
INFERENCE_MODELS = ("VGG", "AlexNet", "GoogleNet", "ResNet", "BERT", "DLRM")
#: Training benchmark suite of Fig. 12(b)/13(b) (no DLRM, as in the paper).
TRAINING_MODELS = ("VGG", "AlexNet", "GoogleNet", "ResNet", "BERT")

_BUILDERS = {
    "AlexNet": alexnet,
    "VGG": vgg16,
    "GoogleNet": googlenet,
    "ResNet": resnet50,
    "BERT": bert_base,
    "DLRM": dlrm,
    "MobileNet": mobilenet_v1,
    "SegNet": segnet_toy,
}


def build_model(name: str) -> DnnModel:
    """Build a benchmark model by its paper name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise ValueError(f"unknown model {name!r}; known: {sorted(_BUILDERS)}") from None
