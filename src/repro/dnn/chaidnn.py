"""CHaiDNN retrofit case study (§VI-C).

CHaiDNN is Xilinx's HLS DNN accelerator with a three-operation interface
— Convolution, Deconvolution, Pooling — plus fused activations, so
"a deep neural network like AlexNet can be expressed in less than 20
instructions".  The paper retrofits MGX with:

* a microcontroller that treats each instruction as a layer, assigns one
  VN to all output features of that instruction, and keeps the VN table
  in its SRAM (plus two counters: weights and inputs), and
* AES-GCM cores sized to the accelerator's memory bandwidth.

This module compiles our model zoo down to the CHaiDNN instruction set,
models the microcontroller's VN table, and estimates the retrofit's
hardware budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.core.counters import VnSpace, tag_vn
from repro.dnn.layers import (
    ConcatLayer,
    ConvLayer,
    DeconvLayer,
    DenseLayer,
    DnnModel,
    EltwiseAddLayer,
    EmbeddingLayer,
    MatmulLayer,
    PoolLayer,
)


class ChaiOp(enum.Enum):
    """CHaiDNN's high-level instruction set."""

    CONVOLUTION = "Convolution"
    DECONVOLUTION = "Deconvolution"
    POOLING = "Pooling"


@dataclass(frozen=True)
class ChaiInstruction:
    """One accelerator instruction: an op plus its tensor footprint."""

    index: int
    op: ChaiOp
    source_layer: str
    weight_bytes: int
    input_bytes: int
    output_bytes: int


def compile_model(model: DnnModel) -> list[ChaiInstruction]:
    """Lower a layer graph to CHaiDNN instructions.

    Convolutions and dense layers (1×1 convolutions over a flattened
    input, the standard CHaiDNN trick) become ``Convolution``; pooling
    becomes ``Pooling``; element-wise adds and concats fuse into the
    preceding instruction (CHaiDNN merges activations and simple
    element-wise ops to avoid DRAM round trips).  Unsupported layers
    (embeddings, raw matmuls) are rejected — CHaiDNN is a CNN engine.
    """
    instructions: list[ChaiInstruction] = []
    for layer in model.layers:
        if isinstance(layer, (EmbeddingLayer, MatmulLayer)):
            raise ConfigError(
                f"layer {layer.name!r}: {type(layer).__name__} is not "
                "expressible in CHaiDNN's instruction set"
            )
        if isinstance(layer, (EltwiseAddLayer, ConcatLayer)):
            continue  # fused with the producer instruction
        if isinstance(layer, (ConvLayer, DenseLayer)):
            op = ChaiOp.CONVOLUTION
        elif isinstance(layer, DeconvLayer):
            op = ChaiOp.DECONVOLUTION
        elif isinstance(layer, PoolLayer):
            op = ChaiOp.POOLING
        else:
            raise ConfigError(f"layer {layer.name!r}: unsupported kind")
        instructions.append(
            ChaiInstruction(
                index=len(instructions),
                op=op,
                source_layer=layer.name,
                weight_bytes=layer.weight_bytes,
                input_bytes=layer.ifmap_bytes,
                output_bytes=layer.ofmap_bytes,
            )
        )
    return instructions


class ChaiMicrocontroller:
    """The §VI-C microcontroller: per-instruction VN table in SRAM.

    Each instruction's output features share one VN; two counters cover
    the weights and the external inputs.  ``vn_for_output`` is called
    when an instruction executes (write side); ``vn_for_input`` regenerates
    the producer's VN on the read side.
    """

    def __init__(self, instructions: list[ChaiInstruction]) -> None:
        if not instructions:
            raise ConfigError("empty instruction stream")
        self.instructions = instructions
        self._table: dict[int, int] = {}
        self._max_vn = 0
        self._weight_counter = 1
        self._input_counter = 1
        #: instruction index by producing layer name, for input lookup
        self._producer = {inst.source_layer: inst.index for inst in instructions}

    # -- execution-time VN management ------------------------------------
    def vn_for_output(self, instruction_index: int) -> int:
        if not 0 <= instruction_index < len(self.instructions):
            raise ConfigError(f"instruction {instruction_index} out of range")
        self._max_vn += 1
        self._table[instruction_index] = self._max_vn
        return tag_vn(VnSpace.FEATURE, self._max_vn)

    def vn_for_input(self, producer_layer: str) -> int:
        if producer_layer == "input":
            return tag_vn(VnSpace.OTHER, self._input_counter)
        index = self._producer.get(producer_layer)
        if index is None or index not in self._table:
            raise ConfigError(f"no VN recorded for producer {producer_layer!r}")
        return tag_vn(VnSpace.FEATURE, self._table[index])

    def vn_for_weights(self) -> int:
        return tag_vn(VnSpace.WEIGHT, self._weight_counter)

    def new_input(self) -> None:
        self._input_counter += 1

    def update_weights(self) -> None:
        self._weight_counter += 1

    # -- hardware budget ---------------------------------------------------
    @property
    def vn_table_bytes(self) -> int:
        """8 B per instruction plus the two counters (§VI-C VN table)."""
        return len(self.instructions) * 8 + 16

    def run_network(self) -> dict[str, int]:
        """Assign VNs for one full inference pass; returns layer → VN."""
        assigned = {}
        for inst in self.instructions:
            assigned[inst.source_layer] = self.vn_for_output(inst.index)
        return assigned


@dataclass(frozen=True)
class RetrofitBudget:
    """Hardware added to CHaiDNN for MGX protection."""

    aes_gcm_cores: int
    vn_table_bytes: int
    instruction_count: int
    #: fraction of the accelerator's LUT budget the retrofit costs,
    #: using the multi-gigabit GCM core figure from [31] (§VI-C).
    relative_area_estimate: float


def retrofit_budget(model: DnnModel, peak_bandwidth_gbs: float = 19.2,
                    gcm_core_gbs: float = 4.0) -> RetrofitBudget:
    """Estimate the MGX retrofit for running ``model`` on CHaiDNN.

    One AES-GCM core sustains ~4 GB/s [31]; cores are provisioned to
    cover the DDR bandwidth.  The paper's conclusion — "the overhead of
    adding microcontroller and AES-GCM cores is expected to be modest" —
    corresponds to the small relative-area figure here.
    """
    instructions = compile_model(model)
    controller = ChaiMicrocontroller(instructions)
    cores = max(1, int(-(-peak_bandwidth_gbs // gcm_core_gbs)))
    # A GCM core is ≈ 10 K LUTs [31]; CHaiDNN-class designs use ≈ 200 K.
    area = (cores * 10_000 + 5_000) / 200_000
    return RetrofitBudget(
        aes_gcm_cores=cores,
        vn_table_bytes=controller.vn_table_bytes,
        instruction_count=len(instructions),
        relative_area_estimate=area,
    )
