"""DNN trace generation: model + machine → phases of compute and DRAM traffic.

This plays the role SCALE-Sim plays in the paper's toolflow (Fig. 11a):
walk the layer graph in schedule order, decide tiling, and emit one
:class:`~repro.core.access.Phase` per layer holding its compute cycles
and its block transfers.  Every access carries the data class and the
version number the on-chip kernel would supply (from
:class:`~repro.core.vngen.DnnVnState`), so the same trace drives the
timing schemes, the VN-correctness tests and the functional engine.

Inference (§IV-C): features of each layer get a fresh VN_F; multi-pass
(tiled) outputs read back partial sums with the current VN and write with
the incremented one — exactly Algorithm 7(b).

Training (§IV-C): forward is inference with features kept; backward walks
the graph in reverse, reading saved features and incoming gradients and
writing gradients with VN_G.  The optimizer's weight update is *not*
emitted, matching the paper's SCALE-Sim setup ("the weight update during
training is not emulated").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.core.access import AccessKind, DataClass, MemAccess, Phase
from repro.core.vngen import DnnVnState
from repro.dnn.accelerator import DnnAcceleratorConfig
from repro.dnn.layers import (
    ConcatLayer,
    DnnModel,
    EltwiseAddLayer,
    EmbeddingLayer,
    Layer,
    PoolLayer,
)
from repro.dnn.tiling import plan_gemm
from repro.mem.layout import AddressSpace


@dataclass
class DnnTrace:
    """The generated execution trace plus its bookkeeping side-products."""

    phases: list[Phase]
    vn_state: DnnVnState
    address_space: AddressSpace

    @property
    def total_compute_cycles(self) -> float:
        return sum(p.compute_cycles for p in self.phases)

    @property
    def total_bytes(self) -> int:
        return sum(p.total_bytes() for p in self.phases)


class DnnTraceGenerator:
    """Generates inference / training traces for one model on one machine."""

    def __init__(self, model: DnnModel, config: DnnAcceleratorConfig,
                 batch: int = 1) -> None:
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        self.model = model
        self.config = config
        self.batch = batch
        self._space = AddressSpace(size=config.protected_bytes)
        self._tensor_bytes: dict[str, int] = {"input": model.input_bytes * batch}
        self._space.alloc("feat:input", max(64, model.input_bytes * batch), kind="feature")
        for layer in model.layers:
            self._tensor_bytes[layer.name] = layer.ofmap_bytes * batch
            if isinstance(layer, EmbeddingLayer):
                self._space.alloc(f"emb:{layer.name}", layer.total_table_bytes,
                                  kind="embedding")
            if layer.weight_bytes:
                self._space.alloc(f"w:{layer.name}", layer.weight_bytes, kind="weight")
            self._space.alloc(f"feat:{layer.name}", max(64, layer.ofmap_bytes * batch),
                              kind="feature")

    # ------------------------------------------------------------------
    @property
    def address_space(self) -> AddressSpace:
        return self._space

    def _region(self, name: str):
        return self._space.region(name)

    def _feature_read(self, tensor: str, vn: int) -> MemAccess:
        region = self._region(f"feat:{tensor}")
        return MemAccess(region.base, max(64, self._tensor_bytes[tensor]),
                         AccessKind.READ, DataClass.FEATURE, vn=vn)

    # ------------------------------------------------------------------
    def inference(self) -> DnnTrace:
        """Forward-pass trace for one batch."""
        vn_state = DnnVnState()
        phases = list(self.iter_inference(vn_state))
        return DnnTrace(phases=phases, vn_state=vn_state, address_space=self._space)

    def training_step(self) -> DnnTrace:
        """One training iteration: forward (features saved) + backward."""
        vn_state = DnnVnState()
        phases = list(self.iter_training_step(vn_state))
        return DnnTrace(phases=phases, vn_state=vn_state, address_space=self._space)

    def iter_inference(self, vn_state: DnnVnState | None = None):
        """Generator form of :meth:`inference`: one phase at a time.

        Yields the exact phases :meth:`inference` would list — streaming
        consumers (``StreamingTrace``) price each phase as it is built,
        so the trace never materializes as a whole.
        """
        if vn_state is None:
            vn_state = DnnVnState()
        vn_state.ingest_features("input")
        for layer in self.model.layers:
            yield self._forward_phase(layer, vn_state)

    def iter_training_step(self, vn_state: DnnVnState | None = None):
        """Generator form of :meth:`training_step` (see `iter_inference`)."""
        if vn_state is None:
            vn_state = DnnVnState()
        vn_state.ingest_features("input")
        for layer in self.model.layers:
            yield self._forward_phase(layer, vn_state)
        # Loss gradient seeds the backward pass at the last layer's output.
        last = self.model.layers[-1]
        vn_state.write_gradients(last.name)
        for layer in reversed(self.model.layers):
            phase = self._backward_phase(layer, vn_state)
            if phase is not None:
                yield phase

    # ------------------------------------------------------------------
    def _forward_phase(self, layer: Layer, vn_state: DnnVnState) -> Phase:
        accesses: list[MemAccess] = []
        config = self.config

        if isinstance(layer, EmbeddingLayer):
            return self._embedding_phase(layer, vn_state)

        # -- input features --------------------------------------------------
        for tensor in layer.inputs:
            accesses.append(self._feature_read(tensor, vn_state.read_features(tensor)))

        gemms = self._batched_gemms(layer)
        decision = None
        if gemms and layer.weight_bytes:
            decision = plan_gemm(
                gemms[0], config.array, config.ifmap_sram, config.filter_sram,
                config.ofmap_sram, layer.dtype_bytes,
            )
            # Re-streamed inputs (tiling) read the same tensors again with
            # the same VN — reads never consume VNs (§III-C).
            extra_passes = decision.ifmap_passes - 1
            for _ in range(extra_passes):
                for tensor in layer.inputs:
                    accesses.append(
                        self._feature_read(tensor, vn_state.read_features(tensor))
                    )

        # -- weights ---------------------------------------------------------
        if layer.weight_bytes:
            region = self._region(f"w:{layer.name}")
            weight_passes = decision.weight_passes if decision else 1
            for _ in range(weight_passes):
                accesses.append(
                    MemAccess(region.base, layer.weight_bytes, AccessKind.READ,
                              DataClass.WEIGHT, vn=vn_state.read_weights())
                )

        # -- output features (possibly multi-pass, Fig. 7) -------------------
        out_region = self._region(f"feat:{layer.name}")
        out_bytes = max(64, self._tensor_bytes[layer.name])
        ofmap_passes = decision.ofmap_passes if decision else 1
        for pass_index in range(ofmap_passes):
            if pass_index > 0:
                accesses.append(
                    MemAccess(out_region.base, out_bytes, AccessKind.READ,
                              DataClass.FEATURE, vn=vn_state.read_features(layer.name))
                )
            accesses.append(
                MemAccess(out_region.base, out_bytes, AccessKind.WRITE,
                          DataClass.FEATURE, vn=vn_state.write_features(layer.name))
            )

        return Phase(
            name=f"fwd:{layer.name}",
            compute_cycles=self._forward_cycles(layer, gemms),
            accesses=accesses,
        )

    def _embedding_phase(self, layer: EmbeddingLayer, vn_state: DnnVnState) -> Phase:
        """DLRM gather: scattered row reads + a streaming output write."""
        region = self._region(f"emb:{layer.name}")
        # The embedding layer carries its own batch (DLRM models embed it),
        # so the generator batch is not applied again here.
        gathered = layer.total_lookups * layer.row_bytes
        accesses = [
            MemAccess(region.base, gathered, AccessKind.READ, DataClass.EMBEDDING,
                      sequential=False, vn=vn_state.read_weights(),
                      burst_bytes=layer.row_bytes,
                      spread_bytes=layer.total_table_bytes)
        ]
        vn_state.write_features(layer.name)  # rows land in on-chip buffers
        if self._tensor_bytes[layer.name]:
            out_region = self._region(f"feat:{layer.name}")
            accesses.append(
                MemAccess(out_region.base, self._tensor_bytes[layer.name],
                          AccessKind.WRITE, DataClass.FEATURE,
                          vn=vn_state.read_features(layer.name))
            )
        move_cycles = self.config.array.movement_cycles(gathered)
        return Phase(name=f"fwd:{layer.name}", compute_cycles=move_cycles,
                     accesses=accesses)

    def _backward_phase(self, layer: Layer, vn_state: DnnVnState) -> Phase | None:
        """Backward pass of one layer (None for layers with no backward work)."""
        if isinstance(layer, EmbeddingLayer):
            # Embedding backward is a scatter of sparse gradient rows.
            out_region = self._region(f"feat:{layer.name}")
            grad_bytes = max(64, self._tensor_bytes[layer.name])
            accesses = [
                MemAccess(out_region.base, grad_bytes, AccessKind.READ,
                          DataClass.GRADIENT, vn=vn_state.read_gradients(layer.name)),
            ]
            return Phase(name=f"bwd:{layer.name}",
                         compute_cycles=self.config.array.movement_cycles(grad_bytes),
                         accesses=accesses)

        accesses: list[MemAccess] = []
        # Incoming gradient g_y (written when this layer's consumers ran,
        # or the loss seed for the last layer).
        out_region = self._region(f"feat:{layer.name}")
        out_bytes = max(64, self._tensor_bytes[layer.name])
        accesses.append(
            MemAccess(out_region.base, out_bytes, AccessKind.READ, DataClass.GRADIENT,
                      vn=vn_state.read_gradients(layer.name))
        )

        gemms = self._batched_gemms(layer)
        if gemms and layer.weight_bytes:
            # g_x needs W, g_w needs x: read both operands.
            w_region = self._region(f"w:{layer.name}")
            accesses.append(
                MemAccess(w_region.base, layer.weight_bytes, AccessKind.READ,
                          DataClass.WEIGHT, vn=vn_state.read_weights())
            )
        if gemms:
            for tensor in layer.inputs:
                accesses.append(
                    self._feature_read(tensor, vn_state.read_features(tensor))
                )
            # Gradient of the weights, streamed out once (§VI-A: the
            # optimizer's in-place update is not emulated).
            if layer.weight_bytes:
                w_region = self._region(f"w:{layer.name}")
                accesses.append(
                    MemAccess(w_region.base, layer.weight_bytes, AccessKind.WRITE,
                              DataClass.GRADIENT,
                              vn=vn_state.write_gradients(f"{layer.name}.w"))
                )

        # Gradient flowing to each producer tensor.
        for tensor in layer.inputs:
            if tensor == "input":
                continue  # no gradient w.r.t. external input
            region = self._region(f"feat:{tensor}")
            accesses.append(
                MemAccess(region.base, max(64, self._tensor_bytes[tensor]),
                          AccessKind.WRITE, DataClass.GRADIENT,
                          vn=vn_state.write_gradients(tensor))
            )

        # Backward GEMM cycles: the batch multiplies total MAC work; the dW
        # GEMM grows along K rather than M, so we scale cycles uniformly
        # instead of reshaping each GEMM (a documented approximation).
        backward_gemms = layer.backward_gemms
        cycles = self.batch * sum(
            self.config.array.gemm_cycles(g) for g in backward_gemms
        )
        if not backward_gemms:
            cycles = self.config.array.movement_cycles(sum(a.size for a in accesses))
        return Phase(name=f"bwd:{layer.name}", compute_cycles=cycles, accesses=accesses)

    # ------------------------------------------------------------------
    def _batched_gemms(self, layer: Layer):
        """Forward GEMMs with the batch dimension folded into M."""
        gemms = layer.gemms()
        if self.batch == 1 or not gemms:
            return gemms
        return [type(g)(m=g.m * self.batch, k=g.k, n=g.n) for g in gemms]

    def _forward_cycles(self, layer: Layer, gemms) -> float:
        if gemms:
            return sum(self.config.array.gemm_cycles(g) for g in gemms)
        if isinstance(layer, (PoolLayer, EltwiseAddLayer, ConcatLayer)):
            return self.config.array.movement_cycles(
                (layer.ifmap_bytes + layer.ofmap_bytes) * self.batch
            )
        return 0.0
