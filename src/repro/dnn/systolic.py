"""Systolic-array timing model (SCALE-Sim analytical mode).

SCALE-Sim [Samajdar et al.] evaluates an R×C MAC array executing a GEMM
under a chosen dataflow by counting *folds*: the GEMM is partitioned into
array-sized chunks, each of which streams through the array with a fixed
fill/drain overhead.  Its analytical mode (which we implement) produces
the same cycle counts as its cycle-accurate mode for dense GEMMs.

Weight-stationary (the TPU-v1 dataflow, our default):
    the K×N weight panel is cut into ⌈K/R⌉·⌈N/C⌉ folds; each fold loads
    R rows of weights (R cycles), then streams the M activations through
    (M + R + C − 2 cycles of fill + compute + drain).

Output-stationary:
    the M×N output is cut into ⌈M/R⌉·⌈N/C⌉ folds; each fold accumulates
    over K (K + R + C − 2 cycles) with no weight preload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import ceil_div
from repro.dnn.layers import GemmShape


class Dataflow(enum.Enum):
    WEIGHT_STATIONARY = "ws"
    OUTPUT_STATIONARY = "os"


@dataclass(frozen=True)
class SystolicArray:
    """Geometry and clock of the MAC array."""

    rows: int
    cols: int
    freq_hz: float
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError("array dims must be positive")
        if self.freq_hz <= 0:
            raise ConfigError("array frequency must be positive")

    @property
    def pes(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def gemm_cycles(self, gemm: GemmShape) -> int:
        """Cycles to execute one GEMM on the array."""
        if self.dataflow is Dataflow.WEIGHT_STATIONARY:
            folds = ceil_div(gemm.k, self.rows) * ceil_div(gemm.n, self.cols)
            per_fold = self.rows + (gemm.m + self.rows + self.cols - 2)
        else:
            folds = ceil_div(gemm.m, self.rows) * ceil_div(gemm.n, self.cols)
            per_fold = gemm.k + self.rows + self.cols - 2
        return folds * per_fold

    def gemm_utilization(self, gemm: GemmShape) -> float:
        """Achieved MACs per PE-cycle (1.0 = perfectly packed)."""
        cycles = self.gemm_cycles(gemm)
        return gemm.macs / (cycles * self.pes) if cycles else 0.0

    def movement_cycles(self, nbytes: int, lanes_bytes_per_cycle: int = 256) -> int:
        """Cycles for a non-GEMM data-movement op (pool/concat/eltwise).

        Vector units move ``lanes_bytes_per_cycle`` per cycle — generous,
        because these ops are always DRAM-bound in practice.
        """
        return ceil_div(nbytes, lanes_bytes_per_cycle)
