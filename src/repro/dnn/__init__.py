"""DNN accelerator substrate: model zoo, systolic timing, trace generation.

Plays the role of SCALE-Sim in the paper's toolflow (Fig. 11a): the
published benchmark networks are lowered to GEMMs, timed on a
weight-stationary systolic array, tiled against the machine's SRAMs, and
emitted as phases of compute + tagged DRAM block transfers with the VNs
an MGX control processor would generate.
"""

from repro.dnn.accelerator import CLOUD, CONFIGS, EDGE, DnnAcceleratorConfig
from repro.dnn.chaidnn import (
    ChaiInstruction,
    ChaiMicrocontroller,
    ChaiOp,
    compile_model,
    retrofit_budget,
)
from repro.dnn.layers import (
    ConcatLayer,
    ConvLayer,
    DeconvLayer,
    DenseLayer,
    DnnModel,
    EltwiseAddLayer,
    EmbeddingLayer,
    GemmShape,
    Layer,
    MatmulLayer,
    PoolLayer,
)
from repro.dnn.models import (
    INFERENCE_MODELS,
    TRAINING_MODELS,
    alexnet,
    bert_base,
    build_model,
    dlrm,
    googlenet,
    mobilenet_v1,
    resnet50,
    segnet_toy,
    vgg16,
)
from repro.dnn.reference import conv2d_direct, conv2d_gemm, im2col
from repro.dnn.pruning import (
    CscFeatures,
    CsrFeatures,
    PrunedTileWriter,
    RlcFeatures,
    dynamic_channel_gate,
    static_filter_prune,
)
from repro.dnn.systolic import Dataflow, SystolicArray
from repro.dnn.tiling import TilingDecision, plan_gemm
from repro.dnn.tracegen import DnnTrace, DnnTraceGenerator

__all__ = [
    "CLOUD",
    "CONFIGS",
    "EDGE",
    "DnnAcceleratorConfig",
    "ChaiInstruction",
    "ChaiMicrocontroller",
    "ChaiOp",
    "compile_model",
    "retrofit_budget",
    "ConcatLayer",
    "ConvLayer",
    "DeconvLayer",
    "DenseLayer",
    "DnnModel",
    "EltwiseAddLayer",
    "EmbeddingLayer",
    "GemmShape",
    "Layer",
    "MatmulLayer",
    "PoolLayer",
    "INFERENCE_MODELS",
    "TRAINING_MODELS",
    "alexnet",
    "bert_base",
    "build_model",
    "dlrm",
    "googlenet",
    "mobilenet_v1",
    "resnet50",
    "segnet_toy",
    "vgg16",
    "conv2d_direct",
    "conv2d_gemm",
    "im2col",
    "CscFeatures",
    "CsrFeatures",
    "PrunedTileWriter",
    "RlcFeatures",
    "dynamic_channel_gate",
    "static_filter_prune",
    "Dataflow",
    "SystolicArray",
    "TilingDecision",
    "plan_gemm",
    "DnnTrace",
    "DnnTraceGenerator",
]
