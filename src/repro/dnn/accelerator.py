"""DNN accelerator configurations: the paper's Cloud and Edge machines.

Cloud models Google TPU-v1 (64 K PEs, 24 MB on-chip, 700 MHz, four 64-bit
DDR4-2400 channels); Edge models the Samsung mobile NPU (1 K PEs, 4.5 MB,
900 MHz, one channel) — §VI-A.  The protected memory is 16 GB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import GIB, MHZ, MIB
from repro.dnn.systolic import Dataflow, SystolicArray
from repro.dram.model import DramConfig


@dataclass(frozen=True)
class DnnAcceleratorConfig:
    """Array geometry, SRAM partitioning and memory system of one machine."""

    name: str
    array: SystolicArray
    ifmap_sram: int
    filter_sram: int
    ofmap_sram: int
    dram: DramConfig = field(default_factory=DramConfig)
    protected_bytes: int = 16 * GIB

    def __post_init__(self) -> None:
        if min(self.ifmap_sram, self.filter_sram, self.ofmap_sram) <= 0:
            raise ConfigError("SRAM partitions must be positive")

    @property
    def onchip_sram(self) -> int:
        return self.ifmap_sram + self.filter_sram + self.ofmap_sram

    @property
    def peak_macs_per_second(self) -> float:
        return self.array.pes * self.array.freq_hz


#: TPU-v1-like cloud configuration (§VI-A): 256×256 PEs @ 700 MHz, 24 MB
#: SRAM, four DDR4-2400 channels.
CLOUD = DnnAcceleratorConfig(
    name="Cloud",
    array=SystolicArray(rows=256, cols=256, freq_hz=700 * MHZ,
                        dataflow=Dataflow.WEIGHT_STATIONARY),
    ifmap_sram=8 * MIB,
    filter_sram=8 * MIB,
    ofmap_sram=8 * MIB,
    dram=DramConfig(channels=4),
)

#: Samsung-NPU-like edge configuration: 32×32 PEs @ 900 MHz, 4.5 MB SRAM,
#: one DDR4-2400 channel.
EDGE = DnnAcceleratorConfig(
    name="Edge",
    array=SystolicArray(rows=32, cols=32, freq_hz=900 * MHZ,
                        dataflow=Dataflow.WEIGHT_STATIONARY),
    ifmap_sram=int(1.5 * MIB),
    filter_sram=2 * MIB,
    ofmap_sram=1 * MIB,
    dram=DramConfig(channels=1),
)

CONFIGS = {"Cloud": CLOUD, "Edge": EDGE}
