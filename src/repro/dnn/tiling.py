"""SRAM tiling decisions: how often each operand crosses the DRAM pin.

Given a GEMM and the accelerator's buffer sizes, the scheduler decides a
loop order.  The decision determines three integers the trace generator
needs:

* ``ifmap_passes``  — how many times the full input feature map streams
  from DRAM (re-streamed once per weight tile when neither operand fits),
* ``weight_passes`` — how many times the weights stream (reloaded per
  output chunk when the compiler prefers that over spilling),
* ``ofmap_passes``  — how many times the output is *written* (> 1 means
  partial sums spill to DRAM and are read back, the Fig. 7 case where
  MGX increments VN_F within a layer).

The spill-vs-reload choice mirrors what a DNN compiler does: partial-sum
spilling costs ``(k_folds − 1) · 2 · ofmap``, weight reloading costs
``(m_chunks − 1) · weights`` — take the cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import ceil_div
from repro.dnn.layers import GemmShape
from repro.dnn.systolic import SystolicArray

#: Partial sums accumulate in 32-bit regardless of the streaming dtype.
ACCUMULATOR_BYTES = 4


@dataclass(frozen=True)
class TilingDecision:
    """Operand DRAM pass counts chosen by the scheduler."""

    ifmap_passes: int
    weight_passes: int
    ofmap_passes: int

    def __post_init__(self) -> None:
        if min(self.ifmap_passes, self.weight_passes, self.ofmap_passes) < 1:
            raise ConfigError(f"pass counts must be >= 1, got {self}")


def plan_gemm(
    gemm: GemmShape,
    array: SystolicArray,
    ifmap_sram: int,
    filter_sram: int,
    ofmap_sram: int,
    dtype_bytes: int = 1,
) -> TilingDecision:
    """Choose DRAM pass counts for one GEMM (see module docstring)."""
    weight_bytes = gemm.k * gemm.n * dtype_bytes
    ifmap_bytes = gemm.m * gemm.k * dtype_bytes
    ofmap_bytes = gemm.m * gemm.n * dtype_bytes

    weight_tiles = max(1, ceil_div(weight_bytes, filter_sram))
    if ifmap_bytes <= ifmap_sram or weight_tiles == 1:
        ifmap_passes = 1
    else:
        ifmap_passes = weight_tiles

    # Partial-sum working set under weight-stationary K-outer streaming:
    # all M rows of one column tile stay live across the K folds.
    col_tile = min(gemm.n, array.cols)
    k_folds = ceil_div(gemm.k, array.rows)
    working_set = gemm.m * col_tile * ACCUMULATOR_BYTES
    weight_passes = 1
    ofmap_passes = 1
    if k_folds > 1 and working_set > ofmap_sram:
        m_chunks = ceil_div(working_set, ofmap_sram)
        reload_cost = (m_chunks - 1) * weight_bytes
        spill_cost = (k_folds - 1) * 2 * ofmap_bytes
        if reload_cost <= spill_cost:
            weight_passes = m_chunks
        else:
            ofmap_passes = k_folds
    return TilingDecision(
        ifmap_passes=ifmap_passes,
        weight_passes=weight_passes,
        ofmap_passes=ofmap_passes,
    )
