"""DNN layer shape records and their lowering to GEMMs.

The accelerator model needs three things from every layer: how many bytes
of weights / input features / output features it moves, how it lowers to
a matrix multiplication for the systolic-array timing model, and which
tensors it consumes (for VN bookkeeping of residual fan-in).  Layers here
are *shape* records — no numerics — because the evaluation is trace
driven.  Functional DNN math lives with the pruning study
(:mod:`repro.dnn.pruning`), which operates on real arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class GemmShape:
    """An M×K @ K×N matrix multiply (the systolic array's native job)."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ConfigError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


@dataclass(frozen=True)
class Layer:
    """Base layer: a named node of the model DAG.

    ``inputs`` names the feature tensors this layer reads (outputs of
    earlier layers, or ``"input"``); the layer's own output tensor is its
    ``name``.  ``dtype_bytes`` is the element size the accelerator moves;
    the default (2, bf16) keeps the Cloud/Edge machines balanced between
    compute and bandwidth as the paper's setup prescribes (§VI-A).
    """

    name: str
    inputs: tuple[str, ...]
    dtype_bytes: int = 2

    # -- byte volumes (overridden per layer kind) ---------------------------
    @property
    def weight_bytes(self) -> int:
        return 0

    @property
    def ifmap_bytes(self) -> int:
        raise NotImplementedError

    @property
    def ofmap_bytes(self) -> int:
        raise NotImplementedError

    def gemms(self) -> list[GemmShape]:
        """GEMMs executed on the array for the forward pass (may be [])."""
        return []

    @property
    def backward_gemms(self) -> list[GemmShape]:
        """GEMMs for the backward pass (dX and dW), empty if not trainable."""
        return []


@dataclass(frozen=True)
class ConvLayer(Layer):
    """2-D convolution, lowered to GEMM by im2col.

    ``out_h/out_w`` derive from input geometry, kernel, stride, padding.
    """

    in_channels: int = 1
    out_channels: int = 1
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    in_h: int = 1
    in_w: int = 1
    groups: int = 1

    def __post_init__(self) -> None:
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ConfigError(f"{self.name}: channels not divisible by groups")
        if self.out_h <= 0 or self.out_w <= 0:
            raise ConfigError(f"{self.name}: non-positive output size")

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def weight_bytes(self) -> int:
        per_group = (self.in_channels // self.groups) * self.kernel * self.kernel
        return self.out_channels * per_group * self.dtype_bytes

    @property
    def ifmap_bytes(self) -> int:
        return self.in_channels * self.in_h * self.in_w * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.out_channels * self.out_h * self.out_w * self.dtype_bytes

    def gemms(self) -> list[GemmShape]:
        k = (self.in_channels // self.groups) * self.kernel * self.kernel
        per_group = GemmShape(
            m=self.out_h * self.out_w, k=k, n=self.out_channels // self.groups
        )
        return [per_group] * self.groups

    @property
    def backward_gemms(self) -> list[GemmShape]:
        # dX: (out spatial × out_c) @ (out_c × k) per group; dW: (k × spatial)
        # @ (spatial × out_c).  Same MAC volume as two forward GEMMs.
        forward = self.gemms()
        return [GemmShape(g.m, g.n, g.k) for g in forward] + [
            GemmShape(g.k, g.m, g.n) for g in forward
        ]


@dataclass(frozen=True)
class DeconvLayer(Layer):
    """Transposed (fractionally-strided) convolution — upsampling layers.

    CHaiDNN exposes Deconvolution as a first-class operation (§VI-C);
    segmentation-style networks interleave it with convolutions.  The
    GEMM lowering mirrors the gradient-of-conv view: per input pixel, a
    (k·k·out_c)-wide column is produced and scattered.
    """

    in_channels: int = 1
    out_channels: int = 1
    kernel: int = 2
    stride: int = 2
    padding: int = 0
    in_h: int = 1
    in_w: int = 1

    def __post_init__(self) -> None:
        if self.out_h <= 0 or self.out_w <= 0:
            raise ConfigError(f"{self.name}: non-positive output size")

    @property
    def out_h(self) -> int:
        return (self.in_h - 1) * self.stride - 2 * self.padding + self.kernel

    @property
    def out_w(self) -> int:
        return (self.in_w - 1) * self.stride - 2 * self.padding + self.kernel

    @property
    def weight_bytes(self) -> int:
        return self.in_channels * self.out_channels * self.kernel * self.kernel * (
            self.dtype_bytes
        )

    @property
    def ifmap_bytes(self) -> int:
        return self.in_channels * self.in_h * self.in_w * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.out_channels * self.out_h * self.out_w * self.dtype_bytes

    def gemms(self) -> list[GemmShape]:
        return [
            GemmShape(
                m=self.in_h * self.in_w,
                k=self.in_channels,
                n=self.out_channels * self.kernel * self.kernel,
            )
        ]

    @property
    def backward_gemms(self) -> list[GemmShape]:
        forward = self.gemms()
        return [GemmShape(g.m, g.n, g.k) for g in forward] + [
            GemmShape(g.k, g.m, g.n) for g in forward
        ]


@dataclass(frozen=True)
class DenseLayer(Layer):
    """Fully-connected layer: (batch·seq) × in_features × out_features."""

    in_features: int = 1
    out_features: int = 1
    rows: int = 1  # batch × sequence positions sharing the weights

    @property
    def weight_bytes(self) -> int:
        return self.in_features * self.out_features * self.dtype_bytes

    @property
    def ifmap_bytes(self) -> int:
        return self.rows * self.in_features * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.rows * self.out_features * self.dtype_bytes

    def gemms(self) -> list[GemmShape]:
        return [GemmShape(m=self.rows, k=self.in_features, n=self.out_features)]

    @property
    def backward_gemms(self) -> list[GemmShape]:
        return [
            GemmShape(self.rows, self.out_features, self.in_features),
            GemmShape(self.in_features, self.rows, self.out_features),
        ]


@dataclass(frozen=True)
class MatmulLayer(Layer):
    """Activation × activation matmul (attention scores / context).

    No weights; both operands are feature tensors.
    """

    m: int = 1
    k: int = 1
    n: int = 1
    batch: int = 1  # e.g. attention heads

    @property
    def ifmap_bytes(self) -> int:
        return self.batch * (self.m * self.k + self.k * self.n) * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.batch * self.m * self.n * self.dtype_bytes

    def gemms(self) -> list[GemmShape]:
        return [GemmShape(self.m, self.k, self.n)] * self.batch

    @property
    def backward_gemms(self) -> list[GemmShape]:
        return [GemmShape(self.m, self.n, self.k)] * self.batch + [
            GemmShape(self.k, self.m, self.n)
        ] * self.batch


@dataclass(frozen=True)
class PoolLayer(Layer):
    """Pooling: pure data movement, no GEMM, shrinks the feature map."""

    channels: int = 1
    in_h: int = 1
    in_w: int = 1
    kernel: int = 2
    stride: int = 2

    @property
    def out_h(self) -> int:
        return (self.in_h - self.kernel) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.in_w - self.kernel) // self.stride + 1

    @property
    def ifmap_bytes(self) -> int:
        return self.channels * self.in_h * self.in_w * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.channels * self.out_h * self.out_w * self.dtype_bytes


@dataclass(frozen=True)
class EltwiseAddLayer(Layer):
    """Residual addition: reads two feature tensors, writes their sum."""

    elements: int = 1

    @property
    def ifmap_bytes(self) -> int:
        return 2 * self.elements * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.elements * self.dtype_bytes


@dataclass(frozen=True)
class ConcatLayer(Layer):
    """Channel concatenation (GoogLeNet inception join): pure movement."""

    elements: int = 1

    @property
    def ifmap_bytes(self) -> int:
        return self.elements * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.elements * self.dtype_bytes


@dataclass(frozen=True)
class EmbeddingLayer(Layer):
    """Embedding-table gather (DLRM): scattered row reads.

    ``tables`` independent tables of ``rows`` rows × ``dim`` elements;
    each sample gathers ``lookups_per_table`` rows from each table.
    """

    tables: int = 1
    rows: int = 1
    dim: int = 1
    lookups_per_table: int = 1
    batch: int = 1
    element_bytes: int = 4
    #: Gathered rows usually feed the interaction on-chip; set True to
    #: spill them to DRAM instead (costing a write and a later read).
    spill_output: bool = False

    @property
    def row_bytes(self) -> int:
        return self.dim * self.element_bytes

    @property
    def table_bytes(self) -> int:
        return self.rows * self.row_bytes

    @property
    def total_table_bytes(self) -> int:
        return self.tables * self.table_bytes

    @property
    def total_lookups(self) -> int:
        return self.batch * self.tables * self.lookups_per_table

    @property
    def ifmap_bytes(self) -> int:
        """Bytes gathered from the tables for one batch."""
        return self.total_lookups * self.row_bytes

    @property
    def ofmap_bytes(self) -> int:
        if not self.spill_output:
            return 0
        return self.batch * self.tables * self.lookups_per_table * self.row_bytes


#: Layers whose outputs must be saved during training for the backward
#: pass (everything that produces features consumed by a GEMM).
TRAINABLE_KINDS = (ConvLayer, DenseLayer, MatmulLayer)


@dataclass
class DnnModel:
    """An ordered DAG of layers with a distinguished external input."""

    name: str
    layers: list[Layer] = field(default_factory=list)
    input_bytes: int = 0

    def add(self, layer: Layer) -> Layer:
        if any(l.name == layer.name for l in self.layers):
            raise ConfigError(f"duplicate layer name {layer.name!r} in {self.name}")
        self.layers.append(layer)
        return layer

    def layer(self, name: str) -> Layer:
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise ConfigError(f"no layer named {name!r} in {self.name}")

    @property
    def total_weight_bytes(self) -> int:
        return sum(l.weight_bytes for l in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(g.macs for l in self.layers for g in l.gemms())

    def consumers(self, tensor: str) -> list[Layer]:
        """Layers that read ``tensor`` (for VN lifetime management)."""
        return [l for l in self.layers if tensor in l.inputs]
