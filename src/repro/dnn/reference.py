"""Numerical reference kernels validating the GEMM lowerings.

The trace model *asserts* that a convolution is an
``(out_h·out_w) × (in_c·k·k) × out_c`` GEMM; this module proves it on
real arrays: a direct (nested-loop) convolution and an im2col-then-matmul
convolution must agree exactly, and the im2col matrix shapes must match
:class:`~repro.dnn.layers.GemmShape`.  The tests tie the two together so
the timing model's shape algebra is backed by numerics, not convention.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError


def _out_dim(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ConfigError("non-positive output dimension")
    return out


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Lower a (c, h, w) feature map to the (out_h·out_w, c·k·k) matrix."""
    if x.ndim != 3:
        raise ConfigError(f"expected (c, h, w) input, got shape {x.shape}")
    c, h, w = x.shape
    out_h = _out_dim(h, kernel, stride, padding)
    out_w = _out_dim(w, kernel, stride, padding)
    padded = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    columns = np.empty((out_h * out_w, c * kernel * kernel), dtype=x.dtype)
    row = 0
    for oy in range(out_h):
        for ox in range(out_w):
            patch = padded[
                :, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel
            ]
            columns[row] = patch.reshape(-1)
            row += 1
    return columns


def conv2d_direct(x: np.ndarray, weights: np.ndarray, stride: int = 1,
                  padding: int = 0) -> np.ndarray:
    """Nested-loop convolution: x (c,h,w) ⊛ weights (out_c,c,k,k)."""
    if weights.ndim != 4 or weights.shape[1] != x.shape[0]:
        raise ConfigError("weights must be (out_c, in_c, k, k) matching x")
    out_c, c, kernel, _ = weights.shape
    out_h = _out_dim(x.shape[1], kernel, stride, padding)
    out_w = _out_dim(x.shape[2], kernel, stride, padding)
    padded = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((out_c, out_h, out_w), dtype=np.result_type(x, weights))
    for oc in range(out_c):
        for oy in range(out_h):
            for ox in range(out_w):
                patch = padded[
                    :, oy * stride : oy * stride + kernel,
                    ox * stride : ox * stride + kernel,
                ]
                out[oc, oy, ox] = np.sum(patch * weights[oc])
    return out


def conv2d_gemm(x: np.ndarray, weights: np.ndarray, stride: int = 1,
                padding: int = 0) -> np.ndarray:
    """The accelerator's view: im2col then one GEMM, reshaped back."""
    out_c, c, kernel, _ = weights.shape
    out_h = _out_dim(x.shape[1], kernel, stride, padding)
    out_w = _out_dim(x.shape[2], kernel, stride, padding)
    columns = im2col(x, kernel, stride, padding)          # (M, K)
    weight_matrix = weights.reshape(out_c, -1).T           # (K, N)
    product = columns @ weight_matrix                      # (M, N)
    return product.T.reshape(out_c, out_h, out_w)
