"""Physical address-space layout for an accelerator session.

Accelerator kernels are statically compiled: the DNN compiler (or graph
runtime) performs static memory allocation, so every tensor / data
structure lives at a known physical offset for the lifetime of the kernel
(§IV-B step 1).  :class:`AddressSpace` models that static allocation — a
simple bump allocator handing out aligned, named regions — and is shared
by the trace generators (which emit accesses into regions) and the
protection engines (which map addresses back to regions for per-region
MAC granularity and VN lookup).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AddressError, ConfigError
from repro.common.units import round_up


@dataclass(frozen=True)
class Region:
    """A named, contiguous range of protected physical memory."""

    name: str
    base: int
    size: int
    #: Optional tag used by protection engines to pick MAC granularity
    #: (e.g. ``"embedding"`` keeps 64-B MACs while bulk tensors use 512 B).
    kind: str = "bulk"

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def offset_of(self, address: int) -> int:
        if not self.contains(address):
            raise AddressError(f"{address:#x} not in region {self.name}")
        return address - self.base


@dataclass
class AddressSpace:
    """Static bump allocator over the protected physical address space."""

    size: int
    alignment: int = 64
    _cursor: int = 0
    _regions: dict[str, Region] = field(default_factory=dict)
    _ordered: list[Region] = field(default_factory=list)

    def alloc(self, name: str, size: int, kind: str = "bulk") -> Region:
        """Allocate an aligned region; names must be unique."""
        if size <= 0:
            raise ConfigError(f"region {name!r} must have positive size, got {size}")
        if name in self._regions:
            raise ConfigError(f"region {name!r} already allocated")
        base = round_up(self._cursor, self.alignment)
        if base + size > self.size:
            raise AddressError(
                f"address space exhausted: need {size} bytes at {base:#x}, "
                f"capacity {self.size:#x}"
            )
        region = Region(name=name, base=base, size=size, kind=kind)
        self._cursor = base + size
        self._regions[name] = region
        self._ordered.append(region)
        return region

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise AddressError(f"no region named {name!r}") from None

    def find(self, address: int) -> Region:
        """Region containing ``address`` (binary search over sorted bases)."""
        lo, hi = 0, len(self._ordered) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self._ordered[mid]
            if address < region.base:
                hi = mid - 1
            elif address >= region.end:
                lo = mid + 1
            else:
                return region
        raise AddressError(f"address {address:#x} not in any region")

    def regions(self) -> list[Region]:
        return list(self._ordered)

    @property
    def used(self) -> int:
        return self._cursor
