"""Untrusted off-chip memory model: backing store, layout, attacker API."""

from repro.mem.attacker import Attacker, Snapshot
from repro.mem.backing import BackingStore
from repro.mem.layout import AddressSpace, Region

__all__ = ["Attacker", "Snapshot", "BackingStore", "AddressSpace", "Region"]
