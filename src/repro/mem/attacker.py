"""Adversary model: arbitrary manipulation of untrusted DRAM contents.

The paper's threat model (§II) gives the attacker full access to the
off-chip memory: they can read ciphertext, flip bits, move blocks around,
and — the attack that motivates Merkle trees — *replay* stale
(data, VN, MAC) triples captured earlier.  This module packages those
manipulations so the security test-suite can state each attack in one
line and assert that the protection engine detects it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.mem.backing import BackingStore


@dataclass(frozen=True)
class Snapshot:
    """A captured range of untrusted memory for later replay."""

    address: int
    data: bytes


class Attacker:
    """Convenience wrapper mutating a :class:`BackingStore` out-of-band."""

    def __init__(self, store: BackingStore) -> None:
        self._store = store

    # -- passive ----------------------------------------------------------
    def observe(self, address: int, length: int) -> bytes:
        """Read ciphertext (always allowed; confidentiality relies on AES)."""
        return self._store.read(address, length)

    def snapshot(self, address: int, length: int) -> Snapshot:
        """Capture a region for a later replay attack."""
        return Snapshot(address=address, data=self._store.read(address, length))

    # -- active -----------------------------------------------------------
    def flip_bit(self, address: int, bit: int = 0) -> None:
        """Flip one bit of one byte: the minimal corruption attack."""
        if not 0 <= bit < 8:
            raise ConfigError(f"bit index must be in [0,8), got {bit}")
        byte = self._store.read(address, 1)[0]
        self._store.write(address, bytes([byte ^ (1 << bit)]))

    def overwrite(self, address: int, data: bytes) -> None:
        """Replace a range with attacker-chosen bytes (substitution attack)."""
        self._store.write(address, data)

    def replay(self, snapshot: Snapshot) -> None:
        """Restore a stale snapshot in place (replay attack)."""
        self._store.write(snapshot.address, snapshot.data)

    def relocate(self, src: int, dst: int, length: int) -> None:
        """Copy a valid block to a different address (relocation attack)."""
        self._store.write(dst, self._store.read(src, length))

    def swap(self, addr_a: int, addr_b: int, length: int) -> None:
        """Exchange two equal-sized blocks (a two-sided relocation)."""
        a = self._store.read(addr_a, length)
        b = self._store.read(addr_b, length)
        self._store.write(addr_a, b)
        self._store.write(addr_b, a)

    def zero(self, address: int, length: int) -> None:
        """Blank a range (e.g. wiping MACs to probe failure handling)."""
        self._store.write(address, bytes(length))
