"""Byte-addressable model of the untrusted off-chip DRAM contents.

The functional protection engine reads and writes ciphertext and MACs
through this store; the attacker API (:mod:`repro.mem.attacker`) mutates
it behind the engine's back, which is exactly the adversary position in
the paper's threat model (§II): full read/write access to everything in
DRAM, no visibility into on-chip state.

The store is sparse (dict of fixed-size pages) so a 16-GB protected
address space costs memory only for what is touched.
"""

from __future__ import annotations

from repro.common.errors import AddressError, ConfigError

_PAGE_SIZE = 4096


class BackingStore:
    """Sparse byte store covering ``size`` bytes of physical address space."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigError(f"backing store size must be positive, got {size}")
        self.size = size
        self._pages: dict[int, bytearray] = {}

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size:
            raise AddressError(
                f"access [{address:#x}, {address + length:#x}) outside store of size {self.size:#x}"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes; untouched bytes read as zero."""
        self._check_range(address, length)
        out = bytearray(length)
        pos = 0
        while pos < length:
            page_no, offset = divmod(address + pos, _PAGE_SIZE)
            chunk = min(length - pos, _PAGE_SIZE - offset)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos : pos + chunk] = page[offset : offset + chunk]
            pos += chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check_range(address, len(data))
        pos = 0
        while pos < len(data):
            page_no, offset = divmod(address + pos, _PAGE_SIZE)
            chunk = min(len(data) - pos, _PAGE_SIZE - offset)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                self._pages[page_no] = page
            page[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk

    def touched_bytes(self) -> int:
        """Number of bytes in allocated pages (memory footprint proxy)."""
        return len(self._pages) * _PAGE_SIZE
