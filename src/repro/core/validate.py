"""Trace validation: check the VN discipline of any phase stream.

MGX's security rests on one kernel obligation (§III-D): *a VN value is
used at most once for a write to a given location, and every read uses
the VN of the most recent write covering it.*  Our built-in generators
are tested against this; users bringing their own traces (via
:mod:`repro.sim.tracefile` or a custom generator) can check theirs with
:func:`validate_trace` — the same discipline, as a library function.

The validator tracks (data-class-space, address-range) → last-write VN
at access granularity.  Overlapping partial writes are supported as long
as VNs move forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access import MemAccess, Phase
from repro.core.counters import space_for


@dataclass(frozen=True)
class TraceViolation:
    """One violation of the VN discipline."""

    phase: str
    access: MemAccess
    reason: str

    def __str__(self) -> str:
        return (f"{self.phase}: {self.access.kind.value} @"
                f"{self.access.address:#x}+{self.access.size}: {self.reason}")


@dataclass
class ValidationReport:
    """Outcome of validating one trace."""

    violations: list[TraceViolation] = field(default_factory=list)
    accesses_checked: int = 0
    writes_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (f"{self.accesses_checked} accesses "
                f"({self.writes_seen} writes): {status}")


def validate_trace(phases: list[Phase],
                   preloaded: dict[tuple[int, int], int] | None = None,
                   max_violations: int = 50) -> ValidationReport:
    """Check a phase stream against the MGX VN discipline.

    ``preloaded`` seeds the write log for data the host placed before
    execution (e.g. ``{(space_id, address): vn}`` for the external input
    and the weights); entries use the same keying as the internal log:
    the :class:`~repro.core.counters.VnSpace` value and the access's
    start address.

    Checks performed per access (accesses without a VN are skipped —
    they belong to scheme-managed baselines):

    * **writes** — the VN must be strictly greater than the last write
      VN for every overlapping range in the same space;
    * **reads** — the VN must equal the VN of the most recent write
      covering the range (or the preloaded value).
    """
    report = ValidationReport()
    #: (space, start, end) -> vn, kept as a flat list per space for
    #: overlap queries (traces have few distinct ranges per space).
    log: dict[int, list[tuple[int, int, int]]] = {}
    if preloaded:
        for (space, address), vn in preloaded.items():
            log.setdefault(space, []).append((address, address + 1, vn))

    def overlapping(space: int, start: int, end: int):
        return [
            entry for entry in log.get(space, [])
            if entry[0] < end and start < entry[1]
        ]

    for phase in phases:
        for access in phase.accesses:
            if access.vn is None:
                continue
            report.accesses_checked += 1
            space = int(space_for(access.data_class))
            start, end = access.address, access.end
            hits = overlapping(space, start, end)
            if access.is_write:
                report.writes_seen += 1
                stale = [h for h in hits if h[2] >= access.vn]
                if stale:
                    report.violations.append(TraceViolation(
                        phase.name, access,
                        f"write VN {access.vn:#x} does not exceed prior "
                        f"VN {max(h[2] for h in stale):#x} on an overlapping range",
                    ))
                # Replace overlapped entries with the new write.
                entries = [h for h in log.get(space, []) if not (
                    h[0] < end and start < h[1]
                )]
                entries.append((start, end, access.vn))
                log[space] = entries
            else:
                if not hits:
                    report.violations.append(TraceViolation(
                        phase.name, access,
                        "read of a range never written (seed `preloaded` "
                        "for host-initialized data)",
                    ))
                else:
                    wrong = [h for h in hits if h[2] != access.vn]
                    if wrong:
                        report.violations.append(TraceViolation(
                            phase.name, access,
                            f"read VN {access.vn:#x} != last write VN "
                            f"{wrong[0][2]:#x}",
                        ))
            if len(report.violations) >= max_violations:
                return report
    return report
