"""Functionally-correct memory protection over real bytes.

The timing engines in :mod:`repro.core.schemes` count traffic; the
engines here actually *do* the cryptography against an untrusted
:class:`~repro.mem.backing.BackingStore`, so the security properties the
paper argues for (§III-D) are demonstrated, not assumed:

* :class:`MgxFunctionalEngine` — the kernel (caller) supplies the VN for
  every read and write, exactly as MGX's control processor does.  Nothing
  but ciphertext and truncated MACs ever reaches the store.  Tampering,
  relocation, replay and wrong-VN reads all fail the MAC check; VN reuse
  on writes is refused up front by the :class:`UniquenessGuard`.
* :class:`BaselineFunctionalEngine` — the conventional scheme: per-block
  VNs live *in the store* (attackable!) and are protected by a real
  Merkle tree with an on-chip root.  The tests use it to show why the
  tree is necessary: replaying a consistent (data, MAC, VN) triple slips
  past the MAC but is caught by the tree.

Both engines share the AES-CTR construction of Fig. 2: the counter block
is ``lane_address ‖ VN`` per 16-byte lane, and the MAC binds
``(ciphertext, granule_address, VN)``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, IntegrityError, ReplayError
from repro.common.units import CACHE_BLOCK, ceil_div
from repro.core.counters import counter_block_array
from repro.core.merkle import FunctionalMerkleTree
from repro.core.vngen import UniquenessGuard
from repro.crypto.aes_batch import AesBatch
from repro.crypto.keys import SessionKeys
from repro.crypto.mac import HmacSha256Mac, constant_time_equal
from repro.mem.backing import BackingStore

_LANE = 16


def _keystream(aes: AesBatch, address: int, vn: int, nbytes: int) -> np.ndarray:
    """CTR keystream: one counter block per 16-byte lane at its address.

    All lane counters are built as one vectorized array (byte-identical
    to per-lane :func:`~repro.core.counters.counter_block` calls, pinned
    by the test-suite); this is the hot path of the functional engines.
    """
    lanes = ceil_div(nbytes, _LANE)
    counters = counter_block_array(address, vn, lanes, _LANE)
    return aes.encrypt_blocks(counters).reshape(-1)[:nbytes]


def _xor(data: bytes, keystream: np.ndarray) -> bytes:
    return (np.frombuffer(data, dtype=np.uint8) ^ keystream).tobytes()


class MgxFunctionalEngine:
    """MGX protection with caller-supplied version numbers.

    ``data_bytes`` is the size of the protected data region; MACs are
    stored (attackably) in the same backing store immediately above it.
    ``mac_granularity`` sets how many data bytes one MAC covers — the
    coarse-grained-MAC optimization.  Writes must cover whole granules
    (accelerator tiles are granule-aligned by construction).
    """

    def __init__(
        self,
        keys: SessionKeys,
        store: BackingStore,
        data_bytes: int,
        mac_granularity: int = 512,
        tag_bits: int = 64,
    ) -> None:
        if mac_granularity % _LANE != 0:
            raise ConfigError("MAC granularity must be a multiple of 16 bytes")
        if data_bytes <= 0:
            raise ConfigError("data_bytes must be positive")
        self.store = store
        self.data_bytes = data_bytes
        self.mac_granularity = mac_granularity
        self._aes = AesBatch(keys.encryption_key)
        self._mac = HmacSha256Mac(keys.integrity_key, tag_bits=tag_bits)
        self._mac_base = data_bytes
        self.guard = UniquenessGuard()
        if store.size < data_bytes + self._mac_table_bytes():
            raise ConfigError(
                "backing store too small for data plus MAC table: "
                f"need {data_bytes + self._mac_table_bytes()}, have {store.size}"
            )

    def _mac_table_bytes(self) -> int:
        return ceil_div(self.data_bytes, self.mac_granularity) * self._mac.tag_bytes

    def mac_address(self, granule_index: int) -> int:
        """Store address of the MAC slot for one granule (attacker-visible)."""
        return self._mac_base + granule_index * self._mac.tag_bytes

    def _check_span(self, address: int, size: int) -> tuple[int, int]:
        if address % self.mac_granularity != 0 or size % self.mac_granularity != 0:
            raise ConfigError(
                f"access [{address:#x}, +{size}) must be aligned to the "
                f"{self.mac_granularity}-byte MAC granularity"
            )
        if address + size > self.data_bytes:
            raise ConfigError("access beyond the protected data region")
        first = address // self.mac_granularity
        return first, first + size // self.mac_granularity

    # ------------------------------------------------------------------
    def write(self, address: int, plaintext: bytes, vn: int) -> None:
        """Encrypt and store ``plaintext`` with version number ``vn``."""
        first, last = self._check_span(address, len(plaintext))
        gran = self.mac_granularity
        for index in range(first, last):
            self.guard.register_write(index * gran, vn)
        ciphertext = _xor(plaintext, _keystream(self._aes, address, vn, len(plaintext)))
        self.store.write(address, ciphertext)
        for index in range(first, last):
            offset = (index - first) * gran
            tag = self._mac.tag(ciphertext[offset : offset + gran], index * gran, vn)
            self.store.write(self.mac_address(index), tag)

    def read(self, address: int, size: int, vn: int) -> bytes:
        """Verify and decrypt ``size`` bytes written with ``vn``.

        Raises :class:`IntegrityError` on any tamper/relocation, and the
        :class:`ReplayError` refinement when the stored bytes verify
        against an *older* VN for the same location (a replayed stale
        value rather than random corruption).
        """
        first, last = self._check_span(address, size)
        gran = self.mac_granularity
        ciphertext = self.store.read(address, size)
        for index in range(first, last):
            offset = (index - first) * gran
            chunk = ciphertext[offset : offset + gran]
            stored_tag = self.store.read(self.mac_address(index), self._mac.tag_bytes)
            expected = self._mac.tag(chunk, index * gran, vn)
            if not constant_time_equal(stored_tag, expected):
                self._diagnose_failure(chunk, stored_tag, index * gran, vn)
        return _xor(ciphertext, _keystream(self._aes, address, vn, size))

    def rekey(self, new_keys: SessionKeys, new_vn: int) -> "MgxFunctionalEngine":
        """Re-encrypt every written granule under fresh keys (§IV-C).

        This is the paper's remedy for VN overflow: "MGX requires the
        memory to be re-encrypted with a new key".  Each granule is read
        and verified under its *current* VN with the old keys, then
        rewritten under ``new_vn`` with the new keys.  Returns the new
        engine; the old one must be discarded.
        """
        fresh = MgxFunctionalEngine(
            new_keys, self.store, self.data_bytes,
            mac_granularity=self.mac_granularity,
            tag_bits=self._mac.tag_bytes * 8,
        )
        gran = self.mac_granularity
        for granule_address, vn in sorted(self.guard._last_vn.items()):
            plaintext = self.read(granule_address, gran, vn)
            fresh.write(granule_address, plaintext, new_vn)
        return fresh

    def _diagnose_failure(self, chunk: bytes, stored_tag: bytes, granule_address: int,
                          vn: int) -> None:
        """Distinguish replay from corruption for better diagnostics."""
        history = self.guard._history.get(granule_address, [])
        for old_vn in history:
            if old_vn != vn and constant_time_equal(
                stored_tag, self._mac.tag(chunk, granule_address, old_vn)
            ):
                raise ReplayError(
                    f"granule {granule_address:#x}: stored value authenticates "
                    f"under stale VN {old_vn:#x}, expected {vn:#x} — replay attack"
                )
        raise IntegrityError(
            f"granule {granule_address:#x}: MAC mismatch under VN {vn:#x} — "
            "data, MAC or location was tampered with"
        )


class BaselineFunctionalEngine:
    """Conventional protection: stored VNs + Merkle tree + 64-B granularity.

    The caller never supplies VNs — the engine increments a per-block VN
    on each write, stores it (plaintext, as in Intel MEE) in the backing
    store, and protects the VN lines with a :class:`FunctionalMerkleTree`
    whose root stays on-chip.  ``verify_vn_tree=False`` turns the tree
    check off, which the tests use to demonstrate the replay attack the
    tree exists to stop.
    """

    def __init__(
        self,
        keys: SessionKeys,
        store: BackingStore,
        data_bytes: int,
        tag_bits: int = 56,
        verify_vn_tree: bool = True,
    ) -> None:
        if data_bytes <= 0 or data_bytes % CACHE_BLOCK != 0:
            raise ConfigError("data_bytes must be a positive multiple of 64")
        self.store = store
        self.data_bytes = data_bytes
        self.verify_vn_tree = verify_vn_tree
        self._aes = AesBatch(keys.encryption_key)
        self._mac = HmacSha256Mac(keys.integrity_key, tag_bits=tag_bits)
        self._blocks = data_bytes // CACHE_BLOCK
        self._mac_base = data_bytes
        self._vn_base = self._mac_base + self._blocks * self._mac.tag_bytes
        self._vn_lines = ceil_div(self._blocks * 8, CACHE_BLOCK)
        self._tree = FunctionalMerkleTree(self._vn_lines)
        #: VN lines that have entered the tree; untouched lines hold the
        #: all-zero initial state and are vacuously fresh (their blocks
        #: have no MAC yet, so forged data still fails the MAC check).
        self._initialized_lines: set[int] = set()
        needed = self._vn_base + self._blocks * 8
        if store.size < needed:
            raise ConfigError(f"backing store too small: need {needed}, have {store.size}")

    # -- attacker-relevant addresses ---------------------------------------
    def mac_address(self, block_index: int) -> int:
        return self._mac_base + block_index * self._mac.tag_bytes

    def vn_address(self, block_index: int) -> int:
        return self._vn_base + block_index * 8

    # ------------------------------------------------------------------
    def _check_span(self, address: int, size: int) -> tuple[int, int]:
        if address % CACHE_BLOCK != 0 or size % CACHE_BLOCK != 0:
            raise ConfigError("baseline accesses must be 64-byte aligned")
        if address + size > self.data_bytes:
            raise ConfigError("access beyond the protected data region")
        first = address // CACHE_BLOCK
        return first, first + size // CACHE_BLOCK

    def _load_vn(self, block_index: int) -> int:
        """Read a stored VN, verifying its line against the Merkle root."""
        vn_bytes = self.store.read(self.vn_address(block_index), 8)
        line = (block_index * 8) // CACHE_BLOCK
        if self.verify_vn_tree and line in self._initialized_lines:
            line_data = self.store.read(self._vn_base + line * CACHE_BLOCK, CACHE_BLOCK)
            self._tree.verify(line, line_data, self._tree.root)
        return int.from_bytes(vn_bytes, "big")

    def _store_vn(self, block_index: int, vn: int) -> None:
        self.store.write(self.vn_address(block_index), vn.to_bytes(8, "big"))
        line = (block_index * 8) // CACHE_BLOCK
        line_data = self.store.read(self._vn_base + line * CACHE_BLOCK, CACHE_BLOCK)
        self._tree.update(line, line_data)
        self._initialized_lines.add(line)

    def write(self, address: int, plaintext: bytes) -> None:
        """Encrypt and store; VNs increment per 64-byte block automatically."""
        first, last = self._check_span(address, len(plaintext))
        for index in range(first, last):
            offset = (index - first) * CACHE_BLOCK
            block_addr = index * CACHE_BLOCK
            vn = self._load_vn(index) + 1
            chunk = plaintext[offset : offset + CACHE_BLOCK]
            ciphertext = _xor(chunk, _keystream(self._aes, block_addr, vn, CACHE_BLOCK))
            self.store.write(block_addr, ciphertext)
            self.store.write(
                self.mac_address(index), self._mac.tag(ciphertext, block_addr, vn)
            )
            self._store_vn(index, vn)

    def read(self, address: int, size: int) -> bytes:
        """Verify (MAC + VN tree) and decrypt."""
        first, last = self._check_span(address, size)
        out = bytearray()
        for index in range(first, last):
            block_addr = index * CACHE_BLOCK
            vn = self._load_vn(index)
            ciphertext = self.store.read(block_addr, CACHE_BLOCK)
            stored_tag = self.store.read(self.mac_address(index), self._mac.tag_bytes)
            expected = self._mac.tag(ciphertext, block_addr, vn)
            if not constant_time_equal(stored_tag, expected):
                raise IntegrityError(
                    f"block {index}: MAC mismatch under stored VN {vn:#x}"
                )
            out += _xor(ciphertext, _keystream(self._aes, block_addr, vn, CACHE_BLOCK))
        return bytes(out)
