"""Counter-block construction for AES-CTR memory encryption (Fig. 6).

The 128-bit counter fed to AES is ``address (64b) || version number
(64b)``.  MGX partitions the VN space by data class with tag bits in the
top of the VN field — features ``00``, weights ``01``, gradients ``10``
(Fig. 6), with ``11`` reserved for the other accelerator studies — so
that two different data classes can never collide on a counter value even
if their untagged VNs coincide.

Several kernels build VNs by concatenating sub-counters (layer number and
input count for DNNs; CTR_genome‖CTR_query for Darwin; CTR_IN‖frame for
H.264).  :func:`pack_fields` provides that concatenation with explicit
widths and overflow checking.
"""

from __future__ import annotations

import enum

from repro.common.errors import ConfigError, VnOverflowError
from repro.core.access import DataClass

#: Width of the version-number field in bits (paper §IV-C uses 64).
VN_BITS = 64
#: Bits reserved at the top of the VN for the data-class tag.
TAG_BITS = 2
#: Usable VN payload width.
VN_PAYLOAD_BITS = VN_BITS - TAG_BITS


class VnSpace(enum.IntEnum):
    """Counter-tag values per Fig. 6 (and one shared space for the rest)."""

    FEATURE = 0b00
    WEIGHT = 0b01
    GRADIENT = 0b10
    OTHER = 0b11


_DATA_CLASS_SPACE = {
    DataClass.FEATURE: VnSpace.FEATURE,
    DataClass.WEIGHT: VnSpace.WEIGHT,
    DataClass.GRADIENT: VnSpace.GRADIENT,
}


def space_for(data_class: DataClass) -> VnSpace:
    """VN space for a data class; non-DNN classes share ``OTHER``."""
    return _DATA_CLASS_SPACE.get(data_class, VnSpace.OTHER)


def tag_vn(space: VnSpace, payload: int) -> int:
    """Combine a tag and a payload into a full 64-bit VN."""
    if payload < 0:
        raise ConfigError(f"VN payload must be non-negative, got {payload}")
    if payload >= 1 << VN_PAYLOAD_BITS:
        raise VnOverflowError(
            f"VN payload {payload:#x} exceeds {VN_PAYLOAD_BITS} bits; "
            "region must be re-encrypted under a fresh key"
        )
    return (int(space) << VN_PAYLOAD_BITS) | payload


def untag_vn(vn: int) -> tuple[VnSpace, int]:
    """Split a full VN back into (space, payload)."""
    if not 0 <= vn < 1 << VN_BITS:
        raise ConfigError(f"VN must fit in {VN_BITS} bits, got {vn:#x}")
    return VnSpace(vn >> VN_PAYLOAD_BITS), vn & ((1 << VN_PAYLOAD_BITS) - 1)


def pack_fields(*fields: tuple[int, int]) -> int:
    """Concatenate ``(value, width_bits)`` fields MSB-first into one integer.

    Example: Darwin's VN is ``pack_fields((ctr_genome, 31), (ctr_query, 31))``;
    the H.264 VN is ``pack_fields((ctr_in, 31), (frame_number, 31))``.
    Total width must not exceed the VN payload.
    """
    total = 0
    value = 0
    for field_value, width in fields:
        if width <= 0:
            raise ConfigError(f"field width must be positive, got {width}")
        if not 0 <= field_value < 1 << width:
            raise VnOverflowError(
                f"field value {field_value} does not fit in {width} bits"
            )
        value = (value << width) | field_value
        total += width
    if total > VN_PAYLOAD_BITS:
        raise ConfigError(f"packed fields use {total} bits > {VN_PAYLOAD_BITS}")
    return value


def counter_block(address: int, vn: int) -> bytes:
    """The 16-byte AES-CTR counter block: 64-bit address ‖ 64-bit VN.

    ``address`` is the physical address of the 16-byte lane being
    encrypted; including it makes every lane's counter unique even when a
    whole tensor shares one VN (§III-D).
    """
    if not 0 <= address < 1 << 64:
        raise ConfigError(f"address must fit in 64 bits, got {address:#x}")
    if not 0 <= vn < 1 << VN_BITS:
        raise ConfigError(f"VN must fit in {VN_BITS} bits, got {vn:#x}")
    return (address << 64 | vn).to_bytes(16, "big")


def counter_block_array(address: int, vn: int, lanes: int,
                        stride: int = 16) -> "np.ndarray":
    """``(lanes, 16)`` uint8 array of counter blocks for consecutive lanes.

    Row ``i`` is byte-identical to ``counter_block(address + i * stride,
    vn)``; building all rows with one vectorized byte-decomposition is
    the hot path of bulk CTR keystream generation (one whole transfer's
    worth of counters in a single call instead of a per-lane Python
    loop).
    """
    import numpy as np

    if lanes <= 0:
        raise ConfigError(f"lanes must be positive, got {lanes}")
    if stride < 0:
        raise ConfigError(f"stride must be non-negative, got {stride}")
    last = address + (lanes - 1) * stride
    if not 0 <= address <= last < 1 << 64:
        raise ConfigError(
            f"lane addresses [{address:#x}, {last:#x}] must fit in 64 bits"
        )
    if not 0 <= vn < 1 << VN_BITS:
        raise ConfigError(f"VN must fit in {VN_BITS} bits, got {vn:#x}")
    blocks = np.empty((lanes, 16), dtype=np.uint8)
    addresses = np.uint64(address) + np.arange(lanes, dtype=np.uint64) * np.uint64(stride)
    shifts = np.arange(56, -8, -8, dtype=np.uint64)  # big-endian byte order
    blocks[:, :8] = (addresses[:, None] >> shifts[None, :]).astype(np.uint8)
    blocks[:, 8:] = np.frombuffer(vn.to_bytes(8, "big"), dtype=np.uint8)
    return blocks
