"""Reuse-distance LRU engine: one-pass columnar metadata-cache pricing.

The cached/tree protection schemes (BP, MGX_MAC) are order-dependent
through a small on-chip LRU cache of 64-byte metadata lines.  Replaying
every sequential run line-by-line in Python dominated the cold suite, so
this engine prices the *entire* metadata-line access stream of a trace
as NumPy columns in one pass per (trace, scheme).

The stream decomposes into *runs* of distinct ascending lines (the
stream buffer guarantees a sequential transfer touches each MAC/VN line
exactly once, in order).  For a run, the engine works at *stretch*
granularity instead of line granularity:

* membership of the run's lines is resolved in bulk against the
  resident set;
* a maximal stretch of misses whose evictions are all *clean* is priced
  with a handful of array operations — the victims are the next
  least-recently-used residents in recency (ring) order, because a
  reuse-free miss stretch through an LRU is a pure conveyor: insert at
  MRU, evict at LRU, and nothing in between can rescue a victim;
* the stretch is *split* exactly at the events that perturb the
  conveyor — a dirty eviction (whose write-back chain climbs the
  integrity tree, touching and possibly evicting further lines) and a
  resident line being touched (rescued to MRU) — which are handled
  event-by-event before bulk processing resumes.

The recency order lives in a tombstone ring: ``_lines``/``_dirty``
arrays indexed ``head..tail`` hold residents from LRU to MRU, a line's
slot is tombstoned (``_valid[slot] = False``) when the line is touched
again, and a dict maps resident lines to their current slot.  Bulk
appends and bulk evictions are array slices; the ring is compacted in
O(capacity) when it fills.  The observable state is exactly that of
:class:`~repro.core.metadata_cache.MetadataCache` (an ``OrderedDict``
per set), imported and exported losslessly, and the per-line semantics
— LRU, write-back, write-allocate, dirty-eviction chains — are pinned
state- and event-identical to :meth:`MetadataCache.access` by the
Hypothesis models in ``tests/test_lru_engine.py`` and
``tests/test_metadata_cache.py``.

Set-associative configurations route every line to its set and take the
event-by-event path (the protection schemes only build fully-associative
caches; sets exist for the model-validation tests).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.errors import ConfigError
from repro.common.units import CACHE_BLOCK

_EMPTY = np.empty(0, dtype=np.int64)

#: Initial scalar-scratch size of an event category (doubles as needed).
_SCRATCH_MIN = 64


def dedup_ascending(values: np.ndarray) -> np.ndarray:
    """Drop adjacent duplicates of an already-ascending column."""
    if len(values) <= 1:
        return values
    keep = np.empty(len(values), dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def drain_chunks(chunks: list) -> np.ndarray:
    """Concatenate a plain chunk list (arrays and/or ints) and reset it.

    The walk-level miss sinks (``run_misses`` lists) still collect a mix
    of scalar chain events and bulk array slices; this keeps the old
    scalar-batching drain for them.
    """
    if not chunks:
        return np.empty(0, dtype=np.int64)
    if len(chunks) == 1 and isinstance(chunks[0], np.ndarray):
        only = chunks[0]
        chunks.clear()
        return only.astype(np.int64, copy=False)
    arrays: list[np.ndarray] = []
    scalars: list[int] = []
    for chunk in chunks:
        if isinstance(chunk, np.ndarray):
            if scalars:
                arrays.append(np.array(scalars, dtype=np.int64))
                scalars = []
            arrays.append(chunk)
        else:
            scalars.append(chunk)
    if scalars:
        arrays.append(np.array(scalars, dtype=np.int64))
    chunks.clear()
    if len(arrays) == 1:
        return arrays[0].astype(np.int64, copy=False)
    return np.concatenate(arrays)


class _EventChunks:
    """One event category: array chunks plus a growable scalar scratch.

    Chain events arrive one line at a time; instead of boxing each into
    a Python list and re-boxing on every drain, scalars land in a
    preallocated int64 scratch buffer (doubled when full) that is cut
    into a chunk only when an array chunk arrives or the category
    drains.
    """

    __slots__ = ("_chunks", "_scratch", "_fill")

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._scratch = np.empty(_SCRATCH_MIN, dtype=np.int64)
        self._fill = 0

    def push(self, value: int) -> None:
        """Append one scalar event."""
        fill = self._fill
        scratch = self._scratch
        if fill == len(scratch):
            grown = np.empty(2 * len(scratch), dtype=np.int64)
            grown[:fill] = scratch
            self._scratch = scratch = grown
        scratch[fill] = value
        self._fill = fill + 1

    def append(self, array: np.ndarray) -> None:
        """Append one bulk chunk (keeps order relative to scalars)."""
        if self._fill:
            self._cut_scratch()
        self._chunks.append(array)

    def _cut_scratch(self) -> None:
        self._chunks.append(self._scratch[:self._fill].copy())
        self._fill = 0

    def __bool__(self) -> bool:
        return self._fill > 0 or bool(self._chunks)

    def __len__(self) -> int:
        return self._fill + sum(len(chunk) for chunk in self._chunks)

    def drain(self) -> np.ndarray:
        """Concatenate everything into one int64 array and reset."""
        if self._fill:
            self._cut_scratch()
        chunks = self._chunks
        if not chunks:
            return np.empty(0, dtype=np.int64)
        self._chunks = []
        if len(chunks) == 1:
            return chunks[0].astype(np.int64, copy=False)
        return np.concatenate(chunks)


class EventSink:
    """Collects the engine's cache events as chunks of line addresses.

    Events arrive either as NumPy slices (bulk stretches, via
    ``append``) or as Python scalars (chain steps, via ``push``); each
    category keeps arrival order.  ``drain_*`` concatenates a category
    into one int64 array and resets it, which is how the pricing layer
    routes a whole batch's events with a few vectorized operations
    instead of one Python call per event.

    Categories mirror :class:`~repro.core.metadata_cache.SegmentProbe`:

    ``misses``
        probed lines that were not resident (fetched with the stream);
    ``writebacks``
        dirty lines evicted by the stream or its chains (scattered);
    ``parent_misses``
        tree ancestors that missed while a write-back chain updated the
        parents of evicted dirty lines (scattered).

    Integrity-tree walk misses need no category of their own: the walk
    probes tree-node lines through the same stream path, so its misses
    land in ``misses`` and route by address.
    """

    __slots__ = ("misses", "writebacks", "parent_misses",
                 "hits", "miss_count", "writeback_count")

    def __init__(self) -> None:
        self.misses = _EventChunks()
        self.writebacks = _EventChunks()
        self.parent_misses = _EventChunks()
        #: Aggregate counters feeding the cache's hit/miss/writeback stats.
        self.hits = 0
        self.miss_count = 0
        self.writeback_count = 0

    #: Kept for the walk-level plain chunk lists (``run_misses``).
    _drain = staticmethod(drain_chunks)

    def drain_misses(self) -> np.ndarray:
        return self.misses.drain()

    def drain_writebacks(self) -> np.ndarray:
        return self.writebacks.drain()

    def drain_parent_misses(self) -> np.ndarray:
        return self.parent_misses.drain()


class _RunContext:
    """Pending-line tracker for one run.

    ``resident[k]`` predicts whether run position ``k`` will hit.  The
    prediction changes while the run streams: an eviction of a
    not-yet-touched run line *demotes* it (it will miss), and a chain
    that inserts a run line *promotes* it (it will hit).  ``pending``
    counts upcoming hits so pure-miss runs skip the rescheduling scans.
    """

    __slots__ = ("lines", "resident", "pending", "position", "promoted",
                 "_first", "_last", "_index")

    def __init__(self, lines: np.ndarray, resident: np.ndarray) -> None:
        self.lines = lines
        self.resident = resident
        self.pending = int(resident.sum())
        self.position = 0
        self.promoted = False
        self._first = int(lines[0])
        self._last = int(lines[-1])
        self._index: dict[int, int] | None = None

    def _position_of(self, line: int) -> int | None:
        if self._index is None:
            self._index = {int(l): i for i, l in enumerate(self.lines.tolist())}
        return self._index.get(line)

    def demote(self, line: int) -> None:
        if line < self._first or line > self._last:
            return
        position = self._position_of(line)
        if position is not None and position >= self.position \
                and self.resident[position]:
            self.resident[position] = False
            self.pending -= 1

    def demote_array(self, lines: np.ndarray) -> None:
        if self.pending == 0 or len(lines) == 0:
            return
        in_range = lines[(lines >= self._first) & (lines <= self._last)]
        for line in in_range.tolist():
            self.demote(line)

    def promote(self, line: int) -> None:
        if line < self._first or line > self._last:
            return
        position = self._position_of(line)
        if position is not None and position > self.position \
                and not self.resident[position]:
            self.resident[position] = True
            self.pending += 1
            self.promoted = True


class LruEngine:
    """Exact LRU over columnar line streams (see module docstring).

    Parameters mirror :class:`~repro.core.metadata_cache.MetadataCache`:
    ``capacity_lines`` resident 64-byte lines, optionally organized into
    ``ways``-associative sets, with ``parent_of`` giving the integrity-
    tree parent of a line address (``None`` for MAC lines and the top
    stored level).
    """

    backend_name = "python"

    #: Ring slack beyond capacity before a compaction pass.
    _RING_SLACK = 8192
    #: Runs at most this long take the scalar walk — the bulk paths'
    #: fixed setup costs more than a few exact per-line events.
    _SCALAR_RUN = 24

    def __init__(self, capacity_lines: int, line_bytes: int = CACHE_BLOCK,
                 ways: int | None = None,
                 parent_of: Callable[[int], int | None] | None = None,
                 parent_of_vec: "Callable[[np.ndarray], np.ndarray] | None" = None,
                 ) -> None:
        if capacity_lines <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_lines}")
        if ways is not None and (ways <= 0 or capacity_lines % ways != 0):
            raise ConfigError(f"ways ({ways}) must divide {capacity_lines}")
        self.capacity_lines = capacity_lines
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = 1 if ways is None else capacity_lines // ways
        self.set_capacity = capacity_lines if ways is None else ways
        self.parent_of = parent_of
        #: Optional vectorized ``parent_of`` over a line column, with -1
        #: for "no parent"; used to resolve a whole victim window's tree
        #: parents in one call.
        self.parent_of_vec = parent_of_vec
        self._parent_memo: dict[int, int | None] = {}
        self._last_victim: int | None = None
        self._last_evicted: int | None = None
        size = self.set_capacity + self._RING_SLACK
        #: per set: tombstone ring of resident lines, LRU..MRU order.
        self._lines = [np.zeros(size, dtype=np.int64) for _ in range(self.n_sets)]
        self._dirty = [np.zeros(size, dtype=bool) for _ in range(self.n_sets)]
        self._valid = [np.zeros(size, dtype=bool) for _ in range(self.n_sets)]
        self._head = [0] * self.n_sets
        self._tail = [0] * self.n_sets
        #: Bumped by every compaction: cached ring-slot indices (the
        #: miss-stretch victim window) are only valid within one epoch.
        self._epoch = 0
        #: per set: resident line -> current ring slot.
        self._slot: list[dict[int, int]] = [{} for _ in range(self.n_sets)]

    # -- state import/export -------------------------------------------
    def load_state(self, sets: list) -> None:
        """Adopt a cache's per-set ``{line: dirty}`` contents, LRU first."""
        if len(sets) != self.n_sets:
            raise ConfigError(
                f"{len(sets)} sets supplied for a {self.n_sets}-set engine"
            )
        for index, lines in enumerate(sets):
            buf_lines = self._lines[index]
            buf_dirty = self._dirty[index]
            valid = self._valid[index]
            valid[:] = False
            slot = self._slot[index] = {}
            position = 0
            for line, dirty in lines.items():
                buf_lines[position] = line
                buf_dirty[position] = dirty
                valid[position] = True
                slot[line] = position
                position += 1
            self._head[index] = 0
            self._tail[index] = position

    def export_state(self) -> list[list[tuple[int, bool]]]:
        """Per-set ``(line, dirty)`` pairs in recency order (LRU first)."""
        out: list[list[tuple[int, bool]]] = []
        for index in range(self.n_sets):
            window = slice(self._head[index], self._tail[index])
            mask = self._valid[index][window]
            lines = self._lines[index][window][mask]
            dirty = self._dirty[index][window][mask]
            out.append([(int(l), bool(d)) for l, d in zip(lines, dirty)])
        return out

    def flush(self) -> np.ndarray:
        """Evict everything; returns dirty line addresses in recency order."""
        dirty_lines: list[np.ndarray] = []
        for index in range(self.n_sets):
            window = slice(self._head[index], self._tail[index])
            mask = self._valid[index][window] & self._dirty[index][window]
            dirty_lines.append(self._lines[index][window][mask].copy())
            self._valid[index][window] = False
            self._head[index] = self._tail[index] = 0
            self._slot[index].clear()
        return dirty_lines[0] if self.n_sets == 1 else np.concatenate(dirty_lines)

    def __len__(self) -> int:
        return sum(len(slot) for slot in self._slot)

    def contains(self, line: int) -> bool:
        return line in self._slot[self._set_of(line)]

    # -- internals ------------------------------------------------------
    def _set_of(self, line: int) -> int:
        if self.n_sets == 1:
            return 0
        return (line // self.line_bytes) % self.n_sets

    def _parent(self, line: int) -> int | None:
        if self.parent_of is None:
            return None
        parent = self._parent_memo.get(line, -1)
        if parent == -1:
            parent = self.parent_of(line)
            self._parent_memo[line] = parent
        return parent

    def _parents_of(self, lines: np.ndarray, flags: np.ndarray) -> list:
        """Tree parents (-1 for none) of a victim window's dirty entries.

        Only dirty victims ever need their parent (clean evictions do
        not chain), so clean positions stay at -1.
        """
        n = len(lines)
        if self.parent_of is None or not flags.any():
            return [-1] * n
        parents = np.full(n, -1, dtype=np.int64)
        index = np.nonzero(flags)[0]
        if self.parent_of_vec is not None:
            parents[index] = self.parent_of_vec(lines[index])
        else:
            dirty_lines = lines[index].tolist()
            resolved = [self._parent(line) for line in dirty_lines]
            parents[index] = [-1 if p is None else p for p in resolved]
        return parents.tolist()

    def _compact(self, index: int) -> None:
        """Squeeze tombstones out of a set's ring (O(capacity))."""
        self._epoch += 1
        window = slice(self._head[index], self._tail[index])
        mask = self._valid[index][window]
        lines = self._lines[index][window][mask].copy()
        dirty = self._dirty[index][window][mask].copy()
        n = len(lines)
        self._lines[index][:n] = lines
        self._dirty[index][:n] = dirty
        self._valid[index][:] = False
        self._valid[index][:n] = True
        self._head[index] = 0
        self._tail[index] = n
        slot = self._slot[index]
        for position, line in enumerate(lines.tolist()):
            slot[line] = position

    def _room(self, index: int, needed: int) -> None:
        if self._tail[index] + needed > len(self._lines[index]):
            self._compact(index)

    # -- scalar core (single accesses, chains, set-associative path) ----
    def _touch(self, index: int, line: int, dirty: bool) -> bool:
        """One ``MetadataCache.access`` without chain following.

        Returns True on hit.  On a miss the line is allocated; if that
        evicted a dirty victim it is left in ``_last_victim`` for the
        caller to chain on (``None`` otherwise).
        """
        slot = self._slot[index]
        position = slot.get(line)
        if position is not None:
            was_dirty = bool(self._dirty[index][position])
            self._valid[index][position] = False
            self._room(index, 1)
            tail = self._tail[index]
            self._lines[index][tail] = line
            self._dirty[index][tail] = dirty or was_dirty
            self._valid[index][tail] = True
            slot[line] = tail
            self._tail[index] = tail + 1
            self._last_victim = None
            self._last_evicted = None
            return True
        victim = None
        evicted = None
        if len(slot) >= self.set_capacity:
            head = self._head[index]
            valid = self._valid[index]
            while not valid[head]:
                head += 1
            victim_line = int(self._lines[index][head])
            evicted = victim_line
            if self._dirty[index][head]:
                victim = victim_line
            valid[head] = False
            self._head[index] = head + 1
            del slot[victim_line]
        self._room(index, 1)
        tail = self._tail[index]
        self._lines[index][tail] = line
        self._dirty[index][tail] = dirty
        self._valid[index][tail] = True
        slot[line] = tail
        self._tail[index] = tail + 1
        self._last_victim = victim
        self._last_evicted = evicted
        return False

    def access(self, line: int, dirty: bool, sink: EventSink,
               miss_sink: list | None = None,
               context: _RunContext | None = None) -> bool:
        """One access with chain following; returns True on hit."""
        if self._touch(self._set_of(line), line, dirty):
            sink.hits += 1
            return True
        sink.miss_count += 1
        sink.misses.push(line)
        if miss_sink is not None:
            miss_sink.append(line)
        if context is not None and self._last_evicted is not None:
            context.demote(self._last_evicted)
        victim = self._last_victim
        if victim is not None:
            self._chain(victim, sink, context)
        return False

    def _chain(self, victim: int, sink: EventSink,
               context: _RunContext | None) -> None:
        """Write back ``victim`` and update its ancestors, iteratively.

        Mirrors ``MetadataCache._follow_chain``: each evicted dirty line
        is written back and its parent accessed dirty, which can itself
        miss and evict — the chain runs to completion before the stream
        resumes.  ``context`` lets a chain that evicts (or inserts) a
        not-yet-touched run line re-schedule it.
        """
        while True:
            sink.writebacks.push(victim)
            sink.writeback_count += 1
            parent = self._parent(victim)
            if parent is None:
                return
            hit = self._touch(self._set_of(parent), parent, True)
            if context is not None:
                context.promote(parent)
            if hit:
                sink.hits += 1
                return
            sink.miss_count += 1
            sink.parent_misses.push(parent)
            if context is not None and self._last_evicted is not None:
                context.demote(self._last_evicted)
            victim = self._last_victim
            if victim is None:
                return

    # -- bulk run processing --------------------------------------------
    def probe_lines(self, lines: np.ndarray, dirty: bool, sink: EventSink,
                    miss_sink: list | None = None) -> None:
        """Touch ``lines`` (distinct, ascending) in order, chains included.

        Semantically identical to one :meth:`MetadataCache.access` per
        line with every dirty eviction's write-back chain followed
        before the next line.  Misses are appended to ``sink.misses``
        (and ``miss_sink`` when given — the integrity-tree walk collects
        a run's miss list there without re-scanning the sink).
        """
        n = len(lines)
        if n == 0:
            return
        if self.n_sets != 1 or n <= self._SCALAR_RUN:
            # Set-associative, or too short for the bulk machinery to
            # pay for itself (integrity-tree walks are mostly a handful
            # of parent nodes): exact event-by-event walk.
            for line in lines.tolist():
                self.access(line, dirty, sink, miss_sink)
            return
        slot = self._slot[0]
        line_list = lines.tolist()
        resident = np.fromiter(map(slot.__contains__, line_list), bool, n)
        if resident.all():
            self._bulk_touch_resident(lines, line_list, dirty, sink)
            return
        context = _RunContext(lines, resident)
        while context.position < n:
            position = context.position
            if resident[position]:
                if self.access(line_list[position], dirty, sink, miss_sink,
                               context):
                    context.pending -= 1
                context.position = position + 1
                continue
            # Maximal stretch of predicted misses [position, stop).
            if context.pending == 0:
                stop = n
            else:
                rest = resident[position:]
                stop = position + int(np.argmax(rest)) if rest.any() else n
                if stop == position:  # defensive; pending said otherwise
                    stop = position + 1
            self._miss_stretch(line_list, lines, stop, dirty, sink,
                               miss_sink, context)

    def _miss_stretch(self, line_list: list, lines: np.ndarray, stop: int,
                      dirty: bool, sink: EventSink, miss_sink: list | None,
                      context: _RunContext) -> None:
        """Process the whole miss stretch [context.position, stop).

        The conveyor's upcoming victims are scanned from the ring *once*
        (per exhaustion); maximal streaks of clean evictions are bulk
        priced, and each dirty blocker is handled as one scalar event —
        its write-back chain tombstones whatever residents it touches,
        which the victim window detects by skipping stale slots, so no
        rescanning is needed until the window runs out.
        """
        slot = self._slot[0]
        valid = self._valid[0]
        window: np.ndarray = _EMPTY
        window_lines: np.ndarray = _EMPTY
        window_dirty: list = []
        window_parent: list = []
        dirty_idx: list = []
        cursor = 0
        dpos = 0
        epoch = self._epoch
        while context.position < stop:
            start = context.position
            free = self.set_capacity - len(slot)
            count = stop - start
            if epoch != self._epoch:
                # A compaction moved every resident: the cached window's
                # ring-slot indices are meaningless — rescan.
                window = _EMPTY
                cursor = 0
                epoch = self._epoch
            if count <= free:
                self._bulk_insert(line_list, lines, start, stop, dirty, sink,
                                  miss_sink)
                context.position = stop
                return
            if cursor >= len(window):
                # (Re)scan the upcoming victims in ring order, with
                # their dirty bits and tree parents resolved in bulk.
                head, tail = self._head[0], self._tail[0]
                window = np.nonzero(valid[head:tail])[0][:count - free] + head
                window_lines = self._lines[0][window]
                flags = self._dirty[0][window]
                window_dirty = flags.tolist()
                dirty_idx = np.nonzero(flags)[0].tolist()
                window_parent = self._parents_of(window_lines, flags)
                cursor = 0
                dpos = 0
            # The next still-valid dirty blocker at or after the cursor.
            while dpos < len(dirty_idx) and (
                dirty_idx[dpos] < cursor or not valid[window[dirty_idx[dpos]]]
            ):
                dpos += 1
            blocker = dirty_idx[dpos] if dpos < len(dirty_idx) else len(window)
            # Clean conveyor prefix: everything up to the blocker that
            # is still valid (chains may have rescued entries since the
            # scan — rescued slots are tombstoned and drop out here).
            candidates = window[cursor:blocker]
            candidates = candidates[valid[candidates]]
            bulk_inserts = min(count, free + len(candidates))
            if bulk_inserts > 0:
                evict_count = max(0, bulk_inserts - free)
                if evict_count:
                    evicted = candidates[:evict_count]
                    evicted_lines = self._lines[0][evicted]
                    valid[evicted] = False
                    self._head[0] = int(evicted[-1]) + 1
                    for line in evicted_lines.tolist():
                        del slot[line]
                    context.demote_array(evicted_lines)
                self._bulk_insert(line_list, lines, start,
                                  start + bulk_inserts, dirty, sink, miss_sink)
                context.position = start + bulk_inserts
                cursor = blocker
                if context.position == stop:
                    return
                if blocker >= len(window) or epoch != self._epoch:
                    # Window exhausted — or the insert compacted the
                    # ring, invalidating every cached slot index.
                    continue
                start = context.position
                count = stop - start
            elif blocker >= len(window):
                # Nothing clean left and no blocker: every remaining
                # window entry went stale — force a rescan.
                cursor = len(window)
                continue
            cursor = blocker
            # A dirty-victim streak blocks the conveyor.  Consecutive
            # dirty victims overwhelmingly share integrity-tree parents
            # group-wise (the tree is ``arity``-ary and victims pop in
            # line order); when every group's parent is already resident
            # each write-back just re-touches it — no chain events — so
            # the whole streak prices in bulk, event-order exact.
            limit = min(len(window), cursor + count)
            streak_end = cursor
            while (streak_end < limit and window_dirty[streak_end]
                   and valid[window[streak_end]]):
                streak_end += 1
            # Split the streak into same-parent groups and validate that
            # each parent is resident *outside* the streak (a parent
            # inside it would be rescued mid-stream); truncate at the
            # first group that needs the event-by-event machinery.
            groups: list = []
            seen: set = set()
            last_slot = int(window[streak_end - 1])
            index = cursor
            while index < streak_end:
                parent = window_parent[index]
                group_end = index + 1
                while (group_end < streak_end
                       and window_parent[group_end] == parent):
                    group_end += 1
                if parent != -1:
                    parent_slot = slot.get(parent)
                    if (parent_slot is None or parent in seen
                            or parent_slot <= last_slot):
                        streak_end = index
                        break
                    seen.add(parent)
                groups.append((index, group_end, parent))
                index = group_end
            if not groups:
                # First group already needs the slow path: one eviction
                # event-by-event, chain and all.
                self.access(line_list[start], dirty, sink, miss_sink,
                            context)
                context.position = start + 1
                if context.promoted:
                    # The chain inserted a line this stretch had
                    # scheduled as a miss — hand back to re-clip.
                    context.promoted = False
                    return
                continue
            size = streak_end - cursor
            popped = window[cursor:streak_end]
            popped_lines = self._lines[0][popped]
            valid[popped] = False
            self._head[0] = int(popped[-1]) + 1
            for line in popped_lines.tolist():
                del slot[line]
            context.demote_array(popped_lines)
            sink.writebacks.append(popped_lines)
            sink.writeback_count += size
            self._streak_insert(line_list, lines, start, size, dirty, groups,
                                cursor, sink, miss_sink)
            context.position = start + size
            cursor = streak_end

    def _streak_insert(self, line_list: list, lines: np.ndarray, start: int,
                       size: int, dirty: bool, groups: list, cursor: int,
                       sink: EventSink, miss_sink: list | None) -> None:
        """Insert a dirty streak's misses with parents spliced in.

        The reference interleave is ``insert line, write back victim,
        touch parent`` per line; its net ring effect is each group's
        lines in order with the group's (re-touched, now dirty) parent
        right after them.  The whole streak appends in two masked array
        writes, and every parent re-touch is a guaranteed hit — exactly
        ``group size`` hits per parented group, no chain events.
        """
        parents = [(group_end - cursor, parent)
                   for _, group_end, parent in groups if parent != -1]
        total = size + len(parents)
        self._room(0, total)
        slot = self._slot[0]
        tail = self._tail[0]
        chunk = lines[start:start + size]
        lines_buf = self._lines[0][tail:tail + total]
        dirty_buf = self._dirty[0][tail:tail + total]
        if parents:
            mask = np.ones(total, dtype=bool)
            spliced = []
            for order, (end_offset, parent) in enumerate(parents):
                position = end_offset + order
                mask[position] = False
                spliced.append((position, parent))
            lines_buf[mask] = chunk
            dirty_buf[mask] = dirty
            for position, parent in spliced:
                old = slot[parent]
                self._valid[0][old] = False
                lines_buf[position] = parent
                dirty_buf[position] = True
                slot[parent] = tail + position
        else:
            lines_buf[:] = chunk
            dirty_buf[:] = dirty
        self._valid[0][tail:tail + total] = True
        self._tail[0] = tail + total
        hits = 0
        position = tail
        offset = start
        for group_start, group_end, parent in groups:
            members = group_end - group_start
            slot.update(zip(line_list[offset:offset + members],
                            range(position, position + members)))
            offset += members
            position += members
            if parent != -1:
                position += 1
                hits += members
        sink.miss_count += size
        sink.misses.append(chunk)
        if miss_sink is not None:
            miss_sink.append(chunk)
        sink.hits += hits

    def _bulk_insert(self, line_list: list, lines: np.ndarray, start: int,
                     stop: int, dirty: bool, sink: EventSink,
                     miss_sink: list | None) -> None:
        """Append lines [start, stop) as misses (no evictions needed)."""
        count = stop - start
        if count <= 0:
            return
        self._room(0, count)
        tail = self._tail[0]
        chunk = lines[start:stop]
        self._lines[0][tail:tail + count] = chunk
        self._dirty[0][tail:tail + count] = dirty
        self._valid[0][tail:tail + count] = True
        self._tail[0] = tail + count
        self._slot[0].update(zip(line_list[start:stop], range(tail, tail + count)))
        sink.miss_count += count
        sink.misses.append(chunk)
        if miss_sink is not None:
            miss_sink.append(chunk)

    def _bulk_touch_resident(self, lines: np.ndarray, line_list: list,
                             dirty: bool, sink: EventSink) -> None:
        """Every line resident: pure recency (and dirty-bit) refresh."""
        n = len(lines)
        self._room(0, n)
        slot = self._slot[0]
        old = np.fromiter(map(slot.__getitem__, line_list), np.int64, n)
        tail = self._tail[0]
        if dirty:
            self._dirty[0][tail:tail + n] = True
        else:
            self._dirty[0][tail:tail + n] = self._dirty[0][old]
        self._valid[0][old] = False
        self._lines[0][tail:tail + n] = lines
        self._valid[0][tail:tail + n] = True
        for offset, line in enumerate(line_list):
            slot[line] = tail + offset
        self._tail[0] = tail + n
        sink.hits += n

    def probe_range(self, base_line: int, n_lines: int, dirty: bool,
                    sink: EventSink, miss_sink: list | None = None) -> None:
        """Touch ``n_lines`` consecutive lines starting at ``base_line``."""
        lines = base_line + self.line_bytes * np.arange(n_lines, dtype=np.int64)
        self.probe_lines(lines, dirty, sink, miss_sink)

    # -- whole-walk and run-batch entry points --------------------------
    def _parent_wave(self, lines: np.ndarray) -> np.ndarray:
        """Deduped stored parents of an ascending node-address column.

        The parent mapping is monotone within a tree level, so adjacent
        deduplication of the ascending input equals global dedup — one
        wave is exactly one level's unique touched parents.
        """
        if self.parent_of_vec is not None:
            parents = self.parent_of_vec(lines)
        elif self.parent_of is None:
            return _EMPTY
        else:
            resolved = [self._parent(line) for line in lines.tolist()]
            parents = np.array([-1 if p is None else p for p in resolved],
                               dtype=np.int64)
        parents = parents[parents != -1]
        return dedup_ascending(parents)

    def walk_tree(self, seed_lines: np.ndarray, sink: EventSink,
                  flood: bool = False) -> None:
        """Climb the integrity tree from missed leaves in one call.

        ``seed_lines`` are the node addresses (distinct, ascending) that
        missed at the level below.  Each wave probes the deduped stored
        parents of the previous wave's *misses* clean, so the walk stops
        at the first fully-cached level and terminates at the top stored
        level (whose parent is the on-chip root) — event- and
        state-identical to one ``probe_lines`` call per level over the
        missed nodes' unique parents.

        ``flood=True`` is the closed form for a flood-adjacent run
        (caller-checked: the resident set is exactly the run's clean
        tail below the tree region): no level probe can hit, chain, or
        stop early, so the waves are pure parent arithmetic and the
        whole walk is one bulk :meth:`flood_clean` replace.
        """
        wave = self._parent_wave(seed_lines)
        if flood:
            chunks: list[np.ndarray] = []
            while len(wave):
                chunks.append(wave)
                wave = self._parent_wave(wave)
            if chunks:
                self.flood_clean(np.concatenate(chunks), sink)
            return
        while len(wave):
            level_misses: list = []
            self.probe_lines(wave, False, sink, level_misses)
            if not level_misses:
                return
            wave = self._parent_wave(drain_chunks(level_misses))

    def probe_run_batch(self, mac_first: np.ndarray, mac_count: np.ndarray,
                        vn_first: np.ndarray, vn_count: np.ndarray,
                        dirty: np.ndarray, walk: np.ndarray,
                        sink: EventSink) -> None:
        """Price a column of fused MAC/VN runs, tree walks included.

        Row ``k`` describes one sequential access: ``mac_count[k]``
        consecutive MAC lines from address ``mac_first[k]`` fused with
        ``vn_count[k]`` consecutive VN lines from ``vn_first[k]`` into
        one ascending run (the VN region sits above the MAC region),
        probed dirty when ``dirty[k]``; when ``walk[k]``, the run's
        missed VN lines then climb the tree via :meth:`walk_tree`.
        Event- and state-identical to probing run by run in row order.
        """
        line_bytes = self.line_bytes
        capacity = self.capacity_lines
        fully = self.n_sets == 1
        mac_first_l = mac_first.tolist()
        mac_count_l = mac_count.tolist()
        vn_first_l = vn_first.tolist()
        vn_count_l = vn_count.tolist()
        dirty_l = np.asarray(dirty, dtype=bool).tolist()
        walk_l = np.asarray(walk, dtype=bool).tolist()
        for k in range(len(mac_count_l)):
            mac_lines = mac_count_l[k]
            vn_lines = vn_count_l[k]
            run_dirty = dirty_l[k]
            if not vn_lines:
                if mac_lines:
                    self.probe_range(mac_first_l[k], mac_lines, run_dirty,
                                     sink)
                continue
            run_misses: list | None = [] if walk_l[k] else None
            n_run = mac_lines + vn_lines
            writebacks_before = sink.writeback_count
            if mac_lines:
                lines = np.empty(n_run, dtype=np.int64)
                first_line = mac_first_l[k]
                lines[:mac_lines] = np.arange(
                    first_line, first_line + mac_lines * line_bytes,
                    line_bytes, dtype=np.int64,
                )
                first_line = vn_first_l[k]
                lines[mac_lines:] = np.arange(
                    first_line, first_line + vn_lines * line_bytes,
                    line_bytes, dtype=np.int64,
                )
                self.probe_lines(lines, run_dirty, sink, run_misses)
            else:
                self.probe_range(vn_first_l[k], vn_lines, run_dirty, sink,
                                 run_misses)
            if run_misses:
                miss_lines = drain_chunks(run_misses)
                # Flood-adjacent guard: a clean cache-sized (or larger)
                # run that missed everywhere and chained nowhere has
                # displaced the whole resident set with clean run lines
                # below the tree region, so the walk's outcome is
                # closed-form (every level misses in full).
                flood = (
                    not run_dirty
                    and fully
                    and n_run >= capacity
                    and sink.writeback_count == writebacks_before
                    and len(miss_lines) == n_run
                )
                seeds = miss_lines[miss_lines >= vn_first_l[k]]
                if len(seeds):
                    self.walk_tree(seeds, sink, flood=flood)

    # -- closed-form flood paths ----------------------------------------
    def clean_walk_ready(self, floor_address: int) -> bool:
        """Whether a clean ascending probe of distinct lines at or above
        ``floor_address`` is guaranteed an all-miss clean conveyor.

        True exactly when the set is fully associative, holds no dirty
        line, and holds nothing at or above ``floor_address`` — then
        every such probe misses, every eviction is clean, and no chain
        can fire, which is :meth:`flood_clean`'s precondition.
        """
        if self.n_sets != 1:
            return False
        window = slice(self._head[0], self._tail[0])
        valid = self._valid[0][window]
        if self._dirty[0][window][valid].any():
            return False
        lines = self._lines[0][window][valid]
        return not bool((lines >= floor_address).any())

    def flood_clean(self, lines: np.ndarray, sink: EventSink,
                    miss_sink: list | None = None) -> None:
        """Closed-form all-miss clean probe: one bulk ring replacement.

        Preconditions (caller-checked, see :meth:`clean_walk_ready`):
        fully associative, no resident line dirty, and none of ``lines``
        (distinct, ascending) resident.  Under them the probe is a pure
        conveyor — every line misses and every eviction is clean — so
        the per-line machinery of :meth:`probe_lines` collapses to a
        bulk LRU-window eviction plus one bulk append, event- and
        state-identical to probing line by line.
        """
        n = len(lines)
        if n == 0:
            return
        slot = self._slot[0]
        cap = self.set_capacity
        if n >= cap:
            # The stream displaces everything, itself included: only the
            # last ``cap`` lines survive the conveyor.
            window = slice(self._head[0], self._tail[0])
            self._valid[0][window] = False
            slot.clear()
            self._epoch += 1
            chunk = lines[n - cap:]
            self._lines[0][:cap] = chunk
            self._dirty[0][:cap] = False
            self._valid[0][:cap] = True
            self._head[0] = 0
            self._tail[0] = cap
            slot.update(zip(chunk.tolist(), range(cap)))
        else:
            evict = len(slot) + n - cap
            if evict > 0:
                head, tail = self._head[0], self._tail[0]
                window = np.nonzero(self._valid[0][head:tail])[0][:evict] + head
                for line in self._lines[0][window].tolist():
                    del slot[line]
                self._valid[0][window] = False
                self._head[0] = int(window[-1]) + 1
            self._room(0, n)
            tail = self._tail[0]
            self._lines[0][tail:tail + n] = lines
            self._dirty[0][tail:tail + n] = False
            self._valid[0][tail:tail + n] = True
            slot.update(zip(lines.tolist(), range(tail, tail + n)))
            self._tail[0] = tail + n
        sink.miss_count += n
        sink.misses.append(lines)
        if miss_sink is not None:
            miss_sink.append(lines)
