/* Native LRU-engine backend: the scalar core of repro.core.lru_engine
 * compiled to machine code.
 *
 * State layout matches the Python engine's tombstone ring: per set, a
 * `ring_lines`/`ring_dirty`/`ring_valid` window [head, tail) holds the
 * residents in recency order (LRU first), a touched line's old slot is
 * tombstoned, and the ring is compacted in place when it fills.  The
 * resident-line -> slot map is an open-addressing hash table (linear
 * probing, tombstone deletion) sized at >= 4x the set capacity.
 *
 * All state lives in NumPy arrays owned by the Python wrapper
 * (repro.core.lru_native); this library only mutates them, so the
 * wrapper can inspect rings directly and the engine needs no allocator.
 *
 * The header array `hdr` (int64) carries configuration and counters:
 *   [0] n_sets  [1] set_capacity  [2] line_bytes  [3] ring_size
 *   [4] table_size (power of two, per set)
 *   [5] hits  [6] miss_count  [7] writeback_count
 *   [8] pending chain victim (NIL when no chain is suspended)
 *
 * The integrity-tree parent function is a flat region table `geom`:
 *   geom[0] = n_regions, then 4 int64 per region:
 *   [base, end, parent_base, arity]
 * parent(addr) = parent_base + ((addr - base) / line_bytes / arity)
 *                * line_bytes  for the first region with base <= addr
 *                < end, NIL otherwise.  This encodes exactly
 *   CounterModeProtection._parent_of (MAC region and the top stored
 *   level fall in no region).
 *
 * lru_probe processes a run of distinct ascending lines with write-back
 * chains followed in place, appending events to three caller-owned
 * buffers.  It returns the index of the first unprocessed line: when the
 * buffers fill mid-run the call pauses (between accesses, or mid-chain
 * with the pending victim parked in hdr[8]) so the wrapper can drain and
 * resume with bounded memory.
 *
 * lru_probe_range is lru_probe over `n` consecutive lines from `base`
 * (no line array crosses the boundary).  lru_walk climbs the whole
 * integrity tree from a wave of missed nodes in one call: each wave
 * probes the deduped parents of the previous wave's misses clean, so
 * the walk stops at the first fully-cached level.  lru_runs prices a
 * whole column of fused MAC/VN runs — per row, the MAC range, the VN
 * range (collecting its misses as walk seeds), then the walk — with
 * the same pause/resume protocol; all cursor state lives in
 * caller-owned state arrays so a paused call resumes exactly where it
 * left off.
 */

#include <stdint.h>

#define NIL (-1)
#define EMPTY (-1)
#define TOMB (-2)

typedef struct {
    int64_t n_sets, setcap, line_bytes, rsize, tsize;
    int64_t *heads, *tails, *counts, *useds;
    int64_t *ring_lines;
    uint8_t *ring_dirty, *ring_valid;
    int64_t *keys, *vals;
    const int64_t *geom;
} Eng;

static inline int64_t set_of(const Eng *g, int64_t line) {
    if (g->n_sets == 1)
        return 0;
    return (line / g->line_bytes) % g->n_sets;
}

static inline int64_t parent_of(const Eng *g, int64_t addr) {
    if (!g->geom)
        return NIL;
    int64_t n = g->geom[0];
    const int64_t *r = g->geom + 1;
    for (int64_t i = 0; i < n; i++, r += 4) {
        if (addr >= r[0] && addr < r[1])
            return r[2] + ((addr - r[0]) / g->line_bytes / r[3]) * g->line_bytes;
    }
    return NIL;
}

/* -- hash table: line address -> ring slot ---------------------------- */

static inline int64_t hslot(int64_t key, int64_t mask) {
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return (int64_t)(h & (uint64_t)mask);
}

static int64_t hfind(const int64_t *keys, int64_t tsize, int64_t key) {
    int64_t mask = tsize - 1, i = hslot(key, mask);
    for (;;) {
        int64_t k = keys[i];
        if (k == key)
            return i;
        if (k == EMPTY)
            return -1;
        i = (i + 1) & mask;
    }
}

/* Insert a key known to be absent (callers look up first). */
static void hinsert(int64_t *keys, int64_t *vals, int64_t tsize,
                    int64_t *used, int64_t key, int64_t val) {
    int64_t mask = tsize - 1, i = hslot(key, mask);
    for (;;) {
        int64_t k = keys[i];
        if (k == EMPTY) {
            keys[i] = key;
            vals[i] = val;
            (*used)++;
            return;
        }
        if (k == TOMB) {
            keys[i] = key;
            vals[i] = val;
            return;
        }
        i = (i + 1) & mask;
    }
}

static void hdelete(int64_t *keys, int64_t tsize, int64_t key) {
    int64_t mask = tsize - 1, i = hslot(key, mask);
    for (;;) {
        int64_t k = keys[i];
        if (k == key) {
            keys[i] = TOMB;
            return;
        }
        if (k == EMPTY)
            return;
        i = (i + 1) & mask;
    }
}

/* Rebuild a set's table from the ring when tombstones crowd it. */
static void rebuild(Eng *g, int64_t s) {
    int64_t *keys = g->keys + s * g->tsize;
    int64_t *vals = g->vals + s * g->tsize;
    int64_t *L = g->ring_lines + s * g->rsize;
    uint8_t *V = g->ring_valid + s * g->rsize;
    for (int64_t i = 0; i < g->tsize; i++)
        keys[i] = EMPTY;
    g->useds[s] = 0;
    for (int64_t i = g->heads[s]; i < g->tails[s]; i++) {
        if (V[i])
            hinsert(keys, vals, g->tsize, &g->useds[s], L[i], i);
    }
}

/* Squeeze tombstones out of a set's ring (O(capacity)). */
static void compact(Eng *g, int64_t s) {
    int64_t *L = g->ring_lines + s * g->rsize;
    uint8_t *D = g->ring_dirty + s * g->rsize;
    uint8_t *V = g->ring_valid + s * g->rsize;
    int64_t w = 0;
    for (int64_t i = g->heads[s]; i < g->tails[s]; i++) {
        if (V[i]) {
            L[w] = L[i];
            D[w] = D[i];
            w++;
        }
    }
    for (int64_t i = 0; i < w; i++)
        V[i] = 1;
    for (int64_t i = w; i < g->tails[s]; i++)
        V[i] = 0;
    g->heads[s] = 0;
    g->tails[s] = w;
    int64_t *keys = g->keys + s * g->tsize;
    int64_t *vals = g->vals + s * g->tsize;
    for (int64_t i = 0; i < w; i++)
        vals[hfind(keys, g->tsize, L[i])] = i;
}

/* -- scalar core ------------------------------------------------------ */

/* One MetadataCache.access without chain following.  Returns 1 on hit.
 * On a miss the line is allocated; `*victim` gets the dirty victim line
 * (NIL otherwise) and `*evicted` whatever line left the set. */
static int touch(Eng *g, int64_t s, int64_t line, int dirty,
                 int64_t *victim, int64_t *evicted) {
    int64_t *keys = g->keys + s * g->tsize;
    int64_t *vals = g->vals + s * g->tsize;
    int64_t *L = g->ring_lines + s * g->rsize;
    uint8_t *D = g->ring_dirty + s * g->rsize;
    uint8_t *V = g->ring_valid + s * g->rsize;
    int64_t hidx = hfind(keys, g->tsize, line);
    if (hidx >= 0) {
        int64_t pos = vals[hidx];
        int was_dirty = D[pos];
        V[pos] = 0;
        if (g->tails[s] + 1 > g->rsize)
            compact(g, s); /* keys untouched: hidx stays valid */
        int64_t t = g->tails[s];
        L[t] = line;
        D[t] = (uint8_t)(dirty | was_dirty);
        V[t] = 1;
        vals[hidx] = t;
        g->tails[s] = t + 1;
        *victim = NIL;
        *evicted = NIL;
        return 1;
    }
    int64_t vic = NIL, ev = NIL;
    if (g->counts[s] >= g->setcap) {
        int64_t h = g->heads[s];
        while (!V[h])
            h++;
        int64_t vline = L[h];
        ev = vline;
        if (D[h])
            vic = vline;
        V[h] = 0;
        g->heads[s] = h + 1;
        hdelete(keys, g->tsize, vline);
        g->counts[s]--;
    }
    if ((g->useds[s] + 1) * 4 > g->tsize * 3)
        rebuild(g, s);
    if (g->tails[s] + 1 > g->rsize)
        compact(g, s);
    int64_t t = g->tails[s];
    L[t] = line;
    D[t] = (uint8_t)dirty;
    V[t] = 1;
    hinsert(keys, vals, g->tsize, &g->useds[s], line, t);
    g->tails[s] = t + 1;
    g->counts[s]++;
    *victim = vic;
    *evicted = ev;
    return 0;
}

/* Write back `victim` and update its ancestors (LruEngine._chain).
 * Returns 1 when pausing for full event buffers (victim parked in
 * hdr[8]), 0 when the chain ran to completion. */
static int chain(Eng *g, int64_t *hdr, int64_t victim, int64_t *wb_out,
                 int64_t *pm_out, int64_t *fills, int64_t ev_cap) {
    for (;;) {
        if (fills[1] >= ev_cap || fills[2] >= ev_cap) {
            hdr[8] = victim;
            return 1;
        }
        wb_out[fills[1]++] = victim;
        hdr[7]++;
        int64_t parent = parent_of(g, victim);
        if (parent == NIL)
            return 0;
        int64_t v, e;
        if (touch(g, set_of(g, parent), parent, 1, &v, &e)) {
            hdr[5]++;
            return 0;
        }
        hdr[6]++;
        pm_out[fills[2]++] = parent;
        if (v == NIL)
            return 0;
        victim = v;
    }
}

/* One step of the whole-tree walk (shared by lru_walk and lru_runs).
 *
 * `ws` is the walk cursor: [0] index into the current wave, [1] wave
 * length, [2] entries pushed into `next` so far, [3] seeded flag.
 * While unseeded, `wave[0..wn)` holds the missed nodes of the level
 * below (ascending, distinct) and is replaced by their deduped stored
 * parents without probing — the walk starts one level up.  Each wave
 * entry is then probed clean; a miss emits an event and pushes its
 * parent (adjacent-dedup suffices: misses are an ascending subsequence
 * and the parent mapping is monotone within a level).  When a wave
 * drains, `next` becomes the wave; an empty `next` means some level
 * fully hit (or the top stored level was reached) and the walk is done.
 * Returns 1 on completion, 0 when pausing for full event buffers (a
 * mid-chain victim parks in hdr[8] as usual). */
static int walk_tick(Eng *g, int64_t *hdr, int64_t *wave, int64_t *next,
                     int64_t *ws, int64_t *miss_out, int64_t *wb_out,
                     int64_t *pm_out, int64_t *fills, int64_t ev_cap) {
    int64_t i = ws[0], wn = ws[1], nn = ws[2];
    if (!ws[3]) {
        nn = 0;
        for (int64_t k = 0; k < wn; k++) {
            int64_t p = parent_of(g, wave[k]);
            if (p != NIL && (nn == 0 || next[nn - 1] != p))
                next[nn++] = p;
        }
        for (int64_t k = 0; k < nn; k++)
            wave[k] = next[k];
        wn = nn;
        nn = 0;
        i = 0;
        ws[3] = 1;
    }
    for (;;) {
        while (i < wn) {
            if (fills[0] >= ev_cap || fills[1] >= ev_cap ||
                fills[2] >= ev_cap) {
                ws[0] = i;
                ws[1] = wn;
                ws[2] = nn;
                return 0;
            }
            int64_t line = wave[i];
            int64_t v, e;
            if (touch(g, set_of(g, line), line, 0, &v, &e)) {
                hdr[5]++;
                i++;
                continue;
            }
            hdr[6]++;
            miss_out[fills[0]++] = line;
            int64_t p = parent_of(g, line);
            if (p != NIL && (nn == 0 || next[nn - 1] != p))
                next[nn++] = p;
            i++;
            if (v != NIL &&
                chain(g, hdr, v, wb_out, pm_out, fills, ev_cap)) {
                ws[0] = i;
                ws[1] = wn;
                ws[2] = nn;
                return 0;
            }
        }
        if (nn == 0)
            return 1;
        for (int64_t k = 0; k < nn; k++)
            wave[k] = next[k];
        wn = nn;
        nn = 0;
        i = 0;
    }
}

static Eng make_eng(int64_t *hdr, int64_t *heads, int64_t *tails,
                    int64_t *counts, int64_t *useds, int64_t *ring_lines,
                    uint8_t *ring_dirty, uint8_t *ring_valid, int64_t *keys,
                    int64_t *vals, const int64_t *geom) {
    Eng g;
    g.n_sets = hdr[0];
    g.setcap = hdr[1];
    g.line_bytes = hdr[2];
    g.rsize = hdr[3];
    g.tsize = hdr[4];
    g.heads = heads;
    g.tails = tails;
    g.counts = counts;
    g.useds = useds;
    g.ring_lines = ring_lines;
    g.ring_dirty = ring_dirty;
    g.ring_valid = ring_valid;
    g.keys = keys;
    g.vals = vals;
    g.geom = (geom && geom[0] > 0) ? geom : 0;
    return g;
}

#define ENG_ARGS                                                              \
    int64_t *hdr, int64_t *heads, int64_t *tails, int64_t *counts,            \
        int64_t *useds, int64_t *ring_lines, uint8_t *ring_dirty,             \
        uint8_t *ring_valid, int64_t *keys, int64_t *vals,                    \
        const int64_t *geom
#define ENG_VALS hdr, heads, tails, counts, useds, ring_lines, ring_dirty,    \
        ring_valid, keys, vals, geom

/* -- entry points ----------------------------------------------------- */

int64_t lru_probe(ENG_ARGS, const int64_t *run, int64_t n, int64_t start,
                  int64_t dirty, int64_t *miss_out, int64_t *wb_out,
                  int64_t *pm_out, int64_t *fills, int64_t ev_cap) {
    Eng g = make_eng(ENG_VALS);
    int64_t i = start;
    int64_t pending = hdr[8];
    hdr[8] = NIL;
    if (pending != NIL) {
        if (chain(&g, hdr, pending, wb_out, pm_out, fills, ev_cap))
            return i;
    }
    for (; i < n; i++) {
        if (fills[0] >= ev_cap || fills[1] >= ev_cap || fills[2] >= ev_cap)
            return i;
        int64_t line = run[i];
        int64_t v, e;
        if (touch(&g, set_of(&g, line), line, (int)dirty, &v, &e)) {
            hdr[5]++;
            continue;
        }
        hdr[6]++;
        miss_out[fills[0]++] = line;
        if (v != NIL) {
            if (chain(&g, hdr, v, wb_out, pm_out, fills, ev_cap))
                return i + 1;
        }
    }
    return n;
}

/* lru_probe over `n` consecutive lines from `base` (stride line_bytes).
 * Same contract: returns the first unprocessed index, pausing on full
 * event buffers with any mid-chain victim parked in hdr[8]. */
int64_t lru_probe_range(ENG_ARGS, int64_t base, int64_t n, int64_t start,
                        int64_t dirty, int64_t *miss_out, int64_t *wb_out,
                        int64_t *pm_out, int64_t *fills, int64_t ev_cap) {
    Eng g = make_eng(ENG_VALS);
    int64_t i = start;
    int64_t pending = hdr[8];
    hdr[8] = NIL;
    if (pending != NIL) {
        if (chain(&g, hdr, pending, wb_out, pm_out, fills, ev_cap))
            return i;
    }
    for (; i < n; i++) {
        if (fills[0] >= ev_cap || fills[1] >= ev_cap || fills[2] >= ev_cap)
            return i;
        int64_t line = base + i * g.line_bytes;
        int64_t v, e;
        if (touch(&g, set_of(&g, line), line, (int)dirty, &v, &e)) {
            hdr[5]++;
            continue;
        }
        hdr[6]++;
        miss_out[fills[0]++] = line;
        if (v != NIL) {
            if (chain(&g, hdr, v, wb_out, pm_out, fills, ev_cap))
                return i + 1;
        }
    }
    return n;
}

/* Whole-tree walk from a wave of missed nodes (see walk_tick).  The
 * caller seeds `wave[0..wstate[1])` with the missed node addresses and
 * zeroes the rest of `wstate`; `wave`/`next` must each hold at least
 * that many entries (waves only shrink).  Returns 1 on completion, 0
 * when pausing for full event buffers. */
int64_t lru_walk(ENG_ARGS, int64_t *wave, int64_t *next, int64_t *wstate,
                 int64_t *miss_out, int64_t *wb_out, int64_t *pm_out,
                 int64_t *fills, int64_t ev_cap) {
    Eng g = make_eng(ENG_VALS);
    int64_t pending = hdr[8];
    hdr[8] = NIL;
    if (pending != NIL) {
        if (chain(&g, hdr, pending, wb_out, pm_out, fills, ev_cap))
            return 0;
    }
    return walk_tick(&g, hdr, wave, next, wstate, miss_out, wb_out, pm_out,
                     fills, ev_cap);
}

/* Price a column of fused MAC/VN runs in one call.  Row r probes
 * mac_n[r] consecutive lines from mac_first[r], then vn_n[r] from
 * vn_first[r] (dirty per dirtyf[r]); when walkf[r], the VN range's
 * misses seed the integrity-tree walk that follows the row.  `rstate`
 * is the resume cursor: [0] row, [1] phase (0 MAC range, 1 VN range,
 * 2 walk), [2] index within the range, [3..6] the walk cursor
 * (walk_tick's `ws`; [4] doubles as the seed count while the VN range
 * streams).  Returns 1 when every row is priced, 0 when pausing. */
int64_t lru_runs(ENG_ARGS, const int64_t *mac_first, const int64_t *mac_n,
                 const int64_t *vn_first, const int64_t *vn_n,
                 const uint8_t *dirtyf, const uint8_t *walkf,
                 int64_t n_runs, int64_t *wave, int64_t *next,
                 int64_t *rstate, int64_t *miss_out, int64_t *wb_out,
                 int64_t *pm_out, int64_t *fills, int64_t ev_cap) {
    Eng g = make_eng(ENG_VALS);
    int64_t pending = hdr[8];
    hdr[8] = NIL;
    if (pending != NIL) {
        if (chain(&g, hdr, pending, wb_out, pm_out, fills, ev_cap))
            return 0;
    }
    int64_t r = rstate[0], phase = rstate[1], j = rstate[2];
    for (; r < n_runs; r++, phase = 0, j = 0) {
        int dirty = (int)dirtyf[r];
        if (phase == 0) {
            int64_t cnt = mac_n[r], base = mac_first[r];
            for (; j < cnt; j++) {
                if (fills[0] >= ev_cap || fills[1] >= ev_cap ||
                    fills[2] >= ev_cap) {
                    rstate[0] = r;
                    rstate[1] = 0;
                    rstate[2] = j;
                    return 0;
                }
                int64_t line = base + j * g.line_bytes;
                int64_t v, e;
                if (touch(&g, set_of(&g, line), line, dirty, &v, &e)) {
                    hdr[5]++;
                    continue;
                }
                hdr[6]++;
                miss_out[fills[0]++] = line;
                if (v != NIL &&
                    chain(&g, hdr, v, wb_out, pm_out, fills, ev_cap)) {
                    rstate[0] = r;
                    rstate[1] = 0;
                    rstate[2] = j + 1;
                    return 0;
                }
            }
            phase = 1;
            j = 0;
        }
        if (phase == 1) {
            int64_t cnt = vn_n[r], base = vn_first[r];
            int collect = (int)walkf[r];
            for (; j < cnt; j++) {
                if (fills[0] >= ev_cap || fills[1] >= ev_cap ||
                    fills[2] >= ev_cap) {
                    rstate[0] = r;
                    rstate[1] = 1;
                    rstate[2] = j;
                    return 0;
                }
                int64_t line = base + j * g.line_bytes;
                int64_t v, e;
                if (touch(&g, set_of(&g, line), line, dirty, &v, &e)) {
                    hdr[5]++;
                    continue;
                }
                hdr[6]++;
                miss_out[fills[0]++] = line;
                if (collect)
                    wave[rstate[4]++] = line; /* ascending walk seeds */
                if (v != NIL &&
                    chain(&g, hdr, v, wb_out, pm_out, fills, ev_cap)) {
                    rstate[0] = r;
                    rstate[1] = 1;
                    rstate[2] = j + 1;
                    return 0;
                }
            }
            phase = 2;
            rstate[3] = rstate[5] = rstate[6] = 0; /* fresh walk cursor */
        }
        /* phase == 2: the walk (resumable via rstate[3..6]). */
        if (walkf[r] && rstate[4] > 0) {
            if (!walk_tick(&g, hdr, wave, next, rstate + 3, miss_out,
                           wb_out, pm_out, fills, ev_cap)) {
                rstate[0] = r;
                rstate[1] = 2;
                rstate[2] = 0;
                return 0;
            }
        }
        rstate[3] = rstate[4] = rstate[5] = rstate[6] = 0;
    }
    rstate[0] = n_runs;
    return 1;
}

void lru_reset(ENG_ARGS) {
    Eng g = make_eng(ENG_VALS);
    for (int64_t s = 0; s < g.n_sets; s++) {
        g.heads[s] = g.tails[s] = g.counts[s] = g.useds[s] = 0;
        int64_t *k = g.keys + s * g.tsize;
        for (int64_t i = 0; i < g.tsize; i++)
            k[i] = EMPTY;
    }
    int64_t total = g.n_sets * g.rsize;
    for (int64_t i = 0; i < total; i++)
        g.ring_valid[i] = 0;
    hdr[8] = NIL;
}

/* Adopt per-set contents, LRU first: set s holds lines[offsets[s] ..
 * offsets[s+1]).  Trusted to fit (<= set capacity per set). */
void lru_load(ENG_ARGS, const int64_t *lines, const uint8_t *dirty,
              const int64_t *offsets) {
    lru_reset(ENG_VALS);
    Eng g = make_eng(ENG_VALS);
    for (int64_t s = 0; s < g.n_sets; s++) {
        int64_t *L = g.ring_lines + s * g.rsize;
        uint8_t *D = g.ring_dirty + s * g.rsize;
        uint8_t *V = g.ring_valid + s * g.rsize;
        int64_t *keys = g.keys + s * g.tsize;
        int64_t *vals = g.vals + s * g.tsize;
        int64_t pos = 0;
        for (int64_t i = offsets[s]; i < offsets[s + 1]; i++, pos++) {
            L[pos] = lines[i];
            D[pos] = dirty[i];
            V[pos] = 1;
            hinsert(keys, vals, g.tsize, &g.useds[s], lines[i], pos);
        }
        g.tails[s] = pos;
        g.counts[s] = pos;
    }
}

/* Evict everything; writes dirty lines (recency order, set-major) to
 * `out` and returns how many. */
int64_t lru_flush(ENG_ARGS, int64_t *out) {
    Eng g = make_eng(ENG_VALS);
    int64_t k = 0;
    for (int64_t s = 0; s < g.n_sets; s++) {
        int64_t *L = g.ring_lines + s * g.rsize;
        uint8_t *D = g.ring_dirty + s * g.rsize;
        uint8_t *V = g.ring_valid + s * g.rsize;
        for (int64_t i = g.heads[s]; i < g.tails[s]; i++) {
            if (V[i] && D[i])
                out[k++] = L[i];
        }
    }
    lru_reset(ENG_VALS);
    return k;
}

/* Per-set (line, dirty) contents in recency order, concatenated
 * set-major; set_counts[s] gets set s's resident count.  Returns the
 * total. */
int64_t lru_export(ENG_ARGS, int64_t *out_lines, uint8_t *out_dirty,
                   int64_t *set_counts) {
    Eng g = make_eng(ENG_VALS);
    int64_t k = 0;
    for (int64_t s = 0; s < g.n_sets; s++) {
        int64_t *L = g.ring_lines + s * g.rsize;
        uint8_t *D = g.ring_dirty + s * g.rsize;
        uint8_t *V = g.ring_valid + s * g.rsize;
        int64_t start = k;
        for (int64_t i = g.heads[s]; i < g.tails[s]; i++) {
            if (V[i]) {
                out_lines[k] = L[i];
                out_dirty[k] = D[i];
                k++;
            }
        }
        set_counts[s] = k - start;
    }
    return k;
}

int64_t lru_contains(ENG_ARGS, int64_t line) {
    Eng g = make_eng(ENG_VALS);
    int64_t s = set_of(&g, line);
    return hfind(g.keys + s * g.tsize, g.tsize, line) >= 0;
}
