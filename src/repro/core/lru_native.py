"""ctypes wrapper around the compiled LRU engine (``_lru_native.c``).

:class:`NativeLruEngine` exposes the same surface as
:class:`~repro.core.lru_engine.LruEngine` — ``load_state`` /
``export_state`` / ``flush`` / ``probe_lines`` / ``probe_range`` plus
the ``flood_clean`` / ``clean_walk_ready`` closed-form hooks — but the
per-line work (touches, evictions, write-back chains) runs inside the
shared library.  All state lives in NumPy arrays owned here and passed
to C as raw pointers, so state import/export and the closed-form guards
stay vectorized Python while the hot loop is machine code.

Event delivery is chunked: C appends misses / writebacks / parent
misses to three fixed buffers and *pauses* (returning the resume index,
parking a mid-flight chain victim in the header) whenever one fills;
the wrapper drains each pause's chunks into the
:class:`~repro.core.lru_engine.EventSink` and resumes, so arbitrarily
long runs price in bounded memory with event order preserved exactly.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.units import CACHE_BLOCK
from repro.core.engine_backend import TreeGeometry, native_library
from repro.core.lru_engine import EventSink

_NIL = -1
#: Header slots (mirrors the layout comment in ``_lru_native.c``).
_H_HITS, _H_MISSES, _H_WRITEBACKS, _H_PENDING = 5, 6, 7, 8


def _pow2_at_least(n: int) -> int:
    size = 16
    while size < n:
        size *= 2
    return size


class NativeLruEngine:
    """Exact LRU over line streams, scalar core compiled to native code."""

    backend_name = "native"

    #: Ring slack beyond capacity before an in-place compaction.
    _RING_SLACK = 8192

    def __init__(self, capacity_lines: int, line_bytes: int = CACHE_BLOCK,
                 ways: int | None = None,
                 geometry: TreeGeometry | None = None) -> None:
        if capacity_lines <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_lines}")
        if ways is not None and (ways <= 0 or capacity_lines % ways != 0):
            raise ConfigError(f"ways ({ways}) must divide {capacity_lines}")
        self._lib = native_library()
        self.capacity_lines = capacity_lines
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = 1 if ways is None else capacity_lines // ways
        self.set_capacity = capacity_lines if ways is None else ways
        self.geometry = geometry
        slack = self._RING_SLACK if self.n_sets == 1 else max(
            64, self._RING_SLACK // self.n_sets
        )
        ring = self.set_capacity + slack
        table = _pow2_at_least(4 * self.set_capacity)
        self._hdr = np.array(
            [self.n_sets, self.set_capacity, line_bytes, ring, table,
             0, 0, 0, _NIL],
            dtype=np.int64,
        )
        self._heads = np.zeros(self.n_sets, dtype=np.int64)
        self._tails = np.zeros(self.n_sets, dtype=np.int64)
        self._counts = np.zeros(self.n_sets, dtype=np.int64)
        self._useds = np.zeros(self.n_sets, dtype=np.int64)
        self._ring_lines = np.zeros(self.n_sets * ring, dtype=np.int64)
        self._ring_dirty = np.zeros(self.n_sets * ring, dtype=np.uint8)
        self._ring_valid = np.zeros(self.n_sets * ring, dtype=np.uint8)
        self._keys = np.full(self.n_sets * table, _NIL, dtype=np.int64)
        self._vals = np.zeros(self.n_sets * table, dtype=np.int64)
        geom = geometry.encode() if geometry is not None else np.zeros(
            1, dtype=np.int64
        )
        self._geom = np.ascontiguousarray(geom, dtype=np.int64)
        self._state_args = tuple(
            int(a.ctypes.data)
            for a in (self._hdr, self._heads, self._tails, self._counts,
                      self._useds, self._ring_lines, self._ring_dirty,
                      self._ring_valid, self._keys, self._vals, self._geom)
        )
        cap = max(16384, 2 * self.set_capacity + 1024)
        self._ev_cap = cap
        self._miss_buf = np.empty(cap, dtype=np.int64)
        self._wb_buf = np.empty(cap, dtype=np.int64)
        self._pm_buf = np.empty(cap, dtype=np.int64)
        self._fills = np.zeros(3, dtype=np.int64)
        self._ev_args = (int(self._miss_buf.ctypes.data),
                         int(self._wb_buf.ctypes.data),
                         int(self._pm_buf.ctypes.data),
                         int(self._fills.ctypes.data))
        #: Bound methods/constants hoisted out of the probe hot path —
        #: per-call attribute traffic is measurable on cold suite runs.
        self._probe = self._lib.lru_probe
        self._probe_range = self._lib.lru_probe_range
        self._walk = self._lib.lru_walk
        self._runs = self._lib.lru_runs
        #: Walk scratch (wave/next buffers), grown on demand; waves only
        #: ever shrink, so "holds the seeds" bounds the whole walk.
        self._wave_buf = np.empty(0, dtype=np.int64)
        self._next_buf = np.empty(0, dtype=np.int64)
        self._wstate = np.zeros(4, dtype=np.int64)
        self._rstate = np.zeros(8, dtype=np.int64)

    # -- state import/export -------------------------------------------
    def load_state(self, sets: list) -> None:
        """Adopt a cache's per-set ``{line: dirty}`` contents, LRU first."""
        if len(sets) != self.n_sets:
            raise ConfigError(
                f"{len(sets)} sets supplied for a {self.n_sets}-set engine"
            )
        offsets = np.zeros(self.n_sets + 1, dtype=np.int64)
        chunks_l: list[np.ndarray] = []
        chunks_d: list[np.ndarray] = []
        total = 0
        for index, lines in enumerate(sets):
            n = len(lines)
            chunks_l.append(np.fromiter(lines.keys(), np.int64, n))
            chunks_d.append(np.fromiter(lines.values(), np.uint8, n))
            total += n
            offsets[index + 1] = total
        flat_l = np.concatenate(chunks_l) if total else np.empty(0, np.int64)
        flat_d = np.concatenate(chunks_d) if total else np.empty(0, np.uint8)
        flat_l = np.ascontiguousarray(flat_l, dtype=np.int64)
        flat_d = np.ascontiguousarray(flat_d, dtype=np.uint8)
        self._lib.lru_load(*self._state_args, int(flat_l.ctypes.data),
                           int(flat_d.ctypes.data), int(offsets.ctypes.data))

    def export_state(self) -> list[list[tuple[int, bool]]]:
        """Per-set ``(line, dirty)`` pairs in recency order (LRU first)."""
        cap = self.capacity_lines
        out_lines = np.empty(cap, dtype=np.int64)
        out_dirty = np.empty(cap, dtype=np.uint8)
        set_counts = np.empty(self.n_sets, dtype=np.int64)
        self._lib.lru_export(*self._state_args, int(out_lines.ctypes.data),
                             int(out_dirty.ctypes.data),
                             int(set_counts.ctypes.data))
        out: list[list[tuple[int, bool]]] = []
        start = 0
        for index in range(self.n_sets):
            stop = start + int(set_counts[index])
            out.append([(int(line), bool(dirty)) for line, dirty in
                        zip(out_lines[start:stop], out_dirty[start:stop])])
            start = stop
        return out

    def flush(self) -> np.ndarray:
        """Evict everything; returns dirty line addresses in recency order."""
        out = np.empty(self.capacity_lines, dtype=np.int64)
        count = int(self._lib.lru_flush(*self._state_args,
                                        int(out.ctypes.data)))
        return out[:count].copy()

    def __len__(self) -> int:
        return int(self._counts.sum())

    def contains(self, line: int) -> bool:
        return bool(self._lib.lru_contains(*self._state_args, int(line)))

    # -- probing --------------------------------------------------------
    def _drain_events(self, sink: EventSink,
                      miss_sink: list | None = None) -> None:
        """Copy one pause's event chunks out of the C buffers."""
        n_miss, n_wb, n_pm = self._fills.tolist()
        if n_miss:
            chunk = self._miss_buf[:n_miss].copy()
            sink.misses.append(chunk)
            if miss_sink is not None:
                miss_sink.append(chunk)
        if n_wb:
            sink.writebacks.append(self._wb_buf[:n_wb].copy())
        if n_pm:
            sink.parent_misses.append(self._pm_buf[:n_pm].copy())

    def _apply_counts(self, sink: EventSink, before: list) -> None:
        """Fold the header counters' delta since ``before`` into the sink."""
        hits1, misses1, writebacks1 = self._hdr[_H_HITS:_H_PENDING].tolist()
        sink.hits += hits1 - before[0]
        sink.miss_count += misses1 - before[1]
        sink.writeback_count += writebacks1 - before[2]

    def _ensure_scratch(self, n: int) -> None:
        if len(self._wave_buf) < n:
            size = _pow2_at_least(n)
            self._wave_buf = np.empty(size, dtype=np.int64)
            self._next_buf = np.empty(size, dtype=np.int64)

    def probe_lines(self, lines: np.ndarray, dirty: bool, sink: EventSink,
                    miss_sink: list | None = None) -> None:
        """Touch ``lines`` (distinct, ascending) in order, chains included.

        Event- and state-identical to the Python engine's
        :meth:`~repro.core.lru_engine.LruEngine.probe_lines`.
        """
        n = len(lines)
        if n == 0:
            return
        run = np.ascontiguousarray(lines, dtype=np.int64)
        hdr = self._hdr
        before = hdr[_H_HITS:_H_PENDING].tolist()
        fills = self._fills
        probe = self._probe
        run_args = self._state_args + (run.ctypes.data, n)
        tail_args = self._ev_args + (self._ev_cap,)
        dirty_flag = 1 if dirty else 0
        index = 0
        while True:
            fills[:] = 0
            index = probe(*run_args, index, dirty_flag, *tail_args)
            self._drain_events(sink, miss_sink)
            if index >= n and hdr[_H_PENDING] == _NIL:
                break
        self._apply_counts(sink, before)

    def probe_range(self, base_line: int, n_lines: int, dirty: bool,
                    sink: EventSink, miss_sink: list | None = None) -> None:
        """Touch ``n_lines`` consecutive lines starting at ``base_line``.

        Runs entirely inside the library (``lru_probe_range``): no line
        array is materialized on either side of the boundary.
        """
        if n_lines <= 0:
            return
        hdr = self._hdr
        before = hdr[_H_HITS:_H_PENDING].tolist()
        fills = self._fills
        probe = self._probe_range
        run_args = self._state_args + (int(base_line), int(n_lines))
        tail_args = self._ev_args + (self._ev_cap,)
        dirty_flag = 1 if dirty else 0
        index = 0
        while True:
            fills[:] = 0
            index = probe(*run_args, index, dirty_flag, *tail_args)
            self._drain_events(sink, miss_sink)
            if index >= n_lines and hdr[_H_PENDING] == _NIL:
                break
        self._apply_counts(sink, before)

    # -- whole-walk and run-batch entry points --------------------------
    def walk_tree(self, seed_lines: np.ndarray, sink: EventSink,
                  flood: bool = False) -> None:
        """Climb the integrity tree from missed leaves in one call.

        Event- and state-identical to the Python engine's
        :meth:`~repro.core.lru_engine.LruEngine.walk_tree`; ``flood``
        needs no special path here — the compiled per-level probe *is*
        the bulk replace — so both flavours share ``lru_walk``.
        """
        n = len(seed_lines)
        if n == 0:
            return
        self._ensure_scratch(n)
        wave = self._wave_buf
        wave[:n] = seed_lines
        wstate = self._wstate
        wstate[:] = 0
        wstate[1] = n
        hdr = self._hdr
        before = hdr[_H_HITS:_H_PENDING].tolist()
        fills = self._fills
        walk = self._walk
        walk_args = self._state_args + (
            wave.ctypes.data, self._next_buf.ctypes.data, wstate.ctypes.data,
        )
        tail_args = self._ev_args + (self._ev_cap,)
        while True:
            fills[:] = 0
            done = walk(*walk_args, *tail_args)
            self._drain_events(sink)
            if done:
                break
        self._apply_counts(sink, before)

    def probe_run_batch(self, mac_first: np.ndarray, mac_count: np.ndarray,
                        vn_first: np.ndarray, vn_count: np.ndarray,
                        dirty: np.ndarray, walk: np.ndarray,
                        sink: EventSink) -> None:
        """Price a column of fused MAC/VN runs, tree walks included.

        One ``lru_runs`` call per batch (plus pause/resume round trips):
        the run columns cross the boundary once, and every probe, chain
        and walk of every row happens inside the library.  Event- and
        state-identical to the Python engine's ``probe_run_batch``.
        """
        n_runs = len(mac_count)
        if n_runs == 0:
            return
        mac_first = np.ascontiguousarray(mac_first, dtype=np.int64)
        mac_count = np.ascontiguousarray(mac_count, dtype=np.int64)
        vn_first = np.ascontiguousarray(vn_first, dtype=np.int64)
        vn_count = np.ascontiguousarray(vn_count, dtype=np.int64)
        dirty8 = np.ascontiguousarray(dirty, dtype=np.uint8)
        walk8 = np.ascontiguousarray(walk, dtype=np.uint8)
        self._ensure_scratch(max(1, int(vn_count.max())))
        rstate = self._rstate
        rstate[:] = 0
        hdr = self._hdr
        before = hdr[_H_HITS:_H_PENDING].tolist()
        fills = self._fills
        runs = self._runs
        run_args = self._state_args + (
            mac_first.ctypes.data, mac_count.ctypes.data,
            vn_first.ctypes.data, vn_count.ctypes.data,
            dirty8.ctypes.data, walk8.ctypes.data, n_runs,
            self._wave_buf.ctypes.data, self._next_buf.ctypes.data,
            rstate.ctypes.data,
        )
        tail_args = self._ev_args + (self._ev_cap,)
        while True:
            fills[:] = 0
            done = runs(*run_args, *tail_args)
            self._drain_events(sink)
            if done:
                break
        self._apply_counts(sink, before)

    # -- closed-form hooks ----------------------------------------------
    def clean_walk_ready(self, floor_address: int) -> bool:
        """Whether an ascending clean probe of lines ``>= floor_address``
        is guaranteed an all-miss clean conveyor (see the Python engine)."""
        if self.n_sets != 1:
            return False
        head, tail = int(self._heads[0]), int(self._tails[0])
        valid = self._ring_valid[head:tail].view(bool)
        if self._ring_dirty[head:tail][valid].any():
            return False
        lines = self._ring_lines[head:tail][valid]
        return not bool((lines >= floor_address).any())

    def flood_clean(self, lines: np.ndarray, sink: EventSink,
                    miss_sink: list | None = None) -> None:
        """All-miss clean conveyor (preconditions as the Python engine).

        The compiled probe loop *is* the bulk replace here — per line it
        costs one hash probe and one ring append — so the closed form
        shares the exact code path the equivalence tests pin.
        """
        self.probe_lines(lines, False, sink, miss_sink)
