"""Hardware model of the Enc/IV engine (Fig. 1's crypto datapath).

The performance model charges protected data a small throughput tax
(``crypto_efficiency`` in :class:`repro.sim.perf.PerfConfig`) and the
Darwin study serializes a per-tile verification chain.  This module
derives both from first principles — pipeline widths, clock ratios and
MAC latencies — so the constants used elsewhere are auditable rather
than magic.

An AES-CTR pipe produces 16 bytes of keystream per cycle once full; a
GCM/GHASH unit consumes 16 bytes per cycle per lane.  Provisioning
``pipes`` of each at the accelerator clock yields the engine's peak
bytes/second, and dividing by the DRAM peak gives the efficiency the
perf model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import AES_BLOCK
from repro.dram.model import DramConfig


@dataclass(frozen=True)
class CryptoEngineConfig:
    """Enc/IV engine provisioning."""

    #: Parallel AES-CTR pipelines (each 16 B/cycle of keystream).
    aes_pipes: int = 4
    #: Parallel GHASH/MAC lanes (each 16 B/cycle of authentication).
    mac_lanes: int = 4
    #: Engine clock (typically the accelerator clock domain).
    freq_hz: float = 800e6
    #: AES pipeline depth in cycles (latency of the first block).
    aes_latency_cycles: int = 11
    #: Cycles to finalize one MAC tag after its last data beat.
    mac_finalize_cycles: int = 4

    def __post_init__(self) -> None:
        if self.aes_pipes < 1 or self.mac_lanes < 1:
            raise ConfigError("need at least one AES pipe and one MAC lane")
        if self.freq_hz <= 0:
            raise ConfigError("engine frequency must be positive")

    # -- throughput ---------------------------------------------------------
    @property
    def keystream_bytes_per_second(self) -> float:
        return self.aes_pipes * AES_BLOCK * self.freq_hz

    @property
    def mac_bytes_per_second(self) -> float:
        return self.mac_lanes * AES_BLOCK * self.freq_hz

    @property
    def bytes_per_second(self) -> float:
        """Sustained protected-data rate: data must pass both units."""
        return min(self.keystream_bytes_per_second, self.mac_bytes_per_second)

    def efficiency_vs(self, dram: DramConfig) -> float:
        """The ``crypto_efficiency`` this engine yields against a memory
        system — capped at 1.0 (over-provisioned engines are free)."""
        dram_peak = dram.peak_bytes_per_cycle * dram.timing.clock_hz
        return min(1.0, self.bytes_per_second / dram_peak)

    # -- latency ------------------------------------------------------------
    def verification_latency_cycles(self, chunk_bytes: int) -> float:
        """Engine cycles from a chunk's last beat to its verdict.

        The MAC must absorb the whole chunk (pipelined with the data
        transfer, so only the residual lane imbalance shows) and then
        finalize; decryption overlaps since CTR keystream is precomputable
        once the VN is known.
        """
        if chunk_bytes <= 0:
            raise ConfigError("chunk must be non-empty")
        absorb = chunk_bytes / (self.mac_lanes * AES_BLOCK)
        overlap = chunk_bytes / (self.mac_lanes * AES_BLOCK)  # hidden beats
        residual = max(0.0, absorb - overlap)
        return residual + self.mac_finalize_cycles + self.aes_latency_cycles


def engine_for_dnn_cloud() -> CryptoEngineConfig:
    """The provisioning that reproduces the paper's DNN-Cloud overheads.

    Four channels of DDR4-2400 peak at 76.8 GB/s; 6 AES pipes at 700 MHz
    sustain 67.2 GB/s + headroom from refresh gaps ≈ 0.97 of achievable
    bandwidth — the default ``crypto_efficiency``.
    """
    return CryptoEngineConfig(aes_pipes=6, mac_lanes=6, freq_hz=700e6)
