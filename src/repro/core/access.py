"""The memory-access vocabulary shared by accelerators and protection schemes.

Accelerators move data between on-chip buffers and DRAM in *block
transfers* much larger than a cache line (a weight tile, a feature-map
tile, a chunk of adjacency list).  A :class:`MemAccess` describes one such
transfer: where, how much, read or write, which class of data it carries
(which selects the VN space per Fig. 6 and the MAC granularity), and
whether the transfer streams contiguously or gathers scattered blocks.

A :class:`Phase` bundles the accesses of one schedulable unit of work (a
DNN layer tile pass, one tile-column of an SpMV, one GACT tile) together
with the compute cycles the functional units spend on it.  The
performance model overlaps compute and memory per phase (double
buffering), which is how the paper's simulators combine SCALE-Sim /
RTL timing with Ramulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.common.errors import ConfigError


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class DataClass(enum.Enum):
    """What the bytes are, which determines VN space and MAC granularity.

    The first three mirror Fig. 6's counter tag bits for DNNs; the rest
    cover the graph, genome and video case studies plus a generic bulk
    class.
    """

    FEATURE = "feature"
    WEIGHT = "weight"
    GRADIENT = "gradient"
    ADJACENCY = "adjacency"
    VECTOR = "vector"
    EMBEDDING = "embedding"
    SEQUENCE = "sequence"
    TRACEBACK = "traceback"
    FRAME = "frame"
    BITSTREAM = "bitstream"
    BULK = "bulk"


#: Stable enumeration order backing the integer codes of :class:`AccessBatch`.
DATA_CLASSES: tuple["DataClass", ...] = tuple(DataClass)
_CLASS_CODE = {dc: code for code, dc in enumerate(DATA_CLASSES)}


@dataclass(frozen=True)
class MemAccess:
    """One block transfer between on-chip memory and DRAM."""

    address: int
    size: int
    kind: AccessKind
    data_class: DataClass = DataClass.BULK
    #: True when the transfer streams a contiguous range; False when it
    #: gathers/scatters isolated blocks (embedding lookups, SpMSpV reads).
    sequential: bool = True
    #: Version number supplied by the kernel on the control processor.
    #: Timing schemes ignore it; the functional engine requires it for
    #: MGX-style protection.  ``None`` means "scheme-managed" (baseline).
    vn: int | None = None
    #: For gathered (non-sequential) transfers: the contiguous burst size
    #: of each element of the gather (e.g. one embedding row).  ``None``
    #: defaults to one 64-byte block.
    burst_bytes: int | None = None
    #: For gathered transfers: the size of the region the bursts are
    #: spread across (e.g. the whole embedding table).  Determines how
    #: deep into the integrity tree a stored-VN scheme must walk.  May be
    #: smaller than ``size`` when rows are re-read (hot embedding rows).
    #: ``None`` defaults to the access size.
    spread_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigError(f"address must be non-negative, got {self.address}")
        if self.size <= 0:
            raise ConfigError(f"size must be positive, got {self.size}")
        if self.burst_bytes is not None and self.burst_bytes <= 0:
            raise ConfigError(f"burst_bytes must be positive, got {self.burst_bytes}")
        if self.spread_bytes is not None:
            if self.spread_bytes < (self.burst_bytes or 1):
                raise ConfigError("spread_bytes must cover at least one burst")

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE

    @property
    def end(self) -> int:
        return self.address + self.size


def read(address: int, size: int, data_class: DataClass = DataClass.BULK,
         sequential: bool = True, vn: int | None = None,
         burst_bytes: int | None = None, spread_bytes: int | None = None) -> MemAccess:
    """Shorthand constructor for a read access."""
    return MemAccess(address, size, AccessKind.READ, data_class, sequential, vn,
                     burst_bytes, spread_bytes)


def write(address: int, size: int, data_class: DataClass = DataClass.BULK,
          sequential: bool = True, vn: int | None = None,
          burst_bytes: int | None = None, spread_bytes: int | None = None) -> MemAccess:
    """Shorthand constructor for a write access."""
    return MemAccess(address, size, AccessKind.WRITE, data_class, sequential, vn,
                     burst_bytes, spread_bytes)


@dataclass
class Phase:
    """One schedulable unit: compute cycles + the DRAM transfers it needs."""

    name: str
    compute_cycles: float
    accesses: list[MemAccess] = field(default_factory=list)

    def read_bytes(self) -> int:
        return sum(a.size for a in self.accesses if not a.is_write)

    def write_bytes(self) -> int:
        return sum(a.size for a in self.accesses if a.is_write)

    def total_bytes(self) -> int:
        return sum(a.size for a in self.accesses)


class LazyAccessList(list):
    """A phase's access list, materialized from its column batch on demand.

    Warm loads of columnar (v3) trace spills rebuild phases directly
    from read-only column views; ``vectorizes=True`` schemes price the
    columns and never look at individual accesses, so the ``MemAccess``
    objects are constructed only if something actually reads the list —
    the per-access fallback path, JSON re-encoding, or the losslessness
    tests.  ``len()`` is answered from the batch without materializing.
    Mutation materializes first, so ordering is always preserved.
    """

    __slots__ = ("_batch",)

    def __init__(self, batch: "AccessBatch") -> None:
        super().__init__()
        self._batch: AccessBatch | None = batch

    def _materialize(self) -> None:
        batch, self._batch = self._batch, None
        if batch is not None:
            self.extend(batch.to_accesses(reconstruct=True))
            # The batch's object form now exists; share it so
            # ``to_accesses()`` never reconstructs a second copy.
            batch.source = self

    def __len__(self) -> int:
        if self._batch is not None:
            return len(self._batch)
        return list.__len__(self)

    def __reduce__(self):
        # Pickle as a plain list: the lazy view is a load-time
        # optimization, not part of the trace's identity.
        return (list, (), None, iter(self))


def _lazy_reader(name):
    def method(self, *args, **kwargs):
        self._materialize()
        return getattr(list, name)(self, *args, **kwargs)

    method.__name__ = name
    return method


for _name in ("__iter__", "__getitem__", "__eq__", "__ne__", "__contains__",
              "__reversed__", "__repr__", "index", "count", "copy",
              "__add__", "__mul__", "append", "extend", "insert", "remove",
              "pop", "sort", "reverse", "__setitem__", "__delitem__",
              "__iadd__", "__imul__"):
    setattr(LazyAccessList, _name, _lazy_reader(_name))
del _name


def lazy_phase(name: str, compute_cycles: float, batch: "AccessBatch") -> Phase:
    """A phase over ``batch`` whose access objects build only on demand."""
    return Phase(name=name, compute_cycles=compute_cycles,
                 accesses=LazyAccessList(batch))


@dataclass
class AccessBatch:
    """Structure-of-arrays view of a sequence of :class:`MemAccess`.

    Generators keep emitting ``MemAccess`` objects; consumers that price
    whole traces (the protection schemes' ``price_batch`` fast path)
    operate on these parallel columns instead of walking objects one at
    a time.  The conversion is lossless: ``to_accesses()`` returns the
    original objects when the batch was built from them, and
    reconstructs field-identical ones otherwise.

    Encoding of optional fields: ``vn`` is a ``uint64`` column (tagged
    VNs use the full 64 bits) paired with a ``vn_present`` mask for
    "scheme-managed" (``None``) entries; ``burst_bytes`` and
    ``spread_bytes`` use ``0`` for "default" (``None``) — a sentinel
    outside their legal (positive) value range.
    """

    address: np.ndarray
    size: np.ndarray
    is_write: np.ndarray
    data_class: np.ndarray  # integer codes into :data:`DATA_CLASSES`
    sequential: np.ndarray
    vn: np.ndarray
    vn_present: np.ndarray
    burst_bytes: np.ndarray
    spread_bytes: np.ndarray
    #: The objects the batch was built from, kept so the stateful
    #: per-access fallback never pays an object-reconstruction cost.
    source: list[MemAccess] | None = None

    def __len__(self) -> int:
        return len(self.address)

    def __getstate__(self):
        # Schemes memoize derived pricing columns on the batch; they are
        # cheap to recompute and must not bloat pickled trace caches.
        state = self.__dict__.copy()
        state.pop("_columns_memo", None)
        return state

    @property
    def end(self) -> np.ndarray:
        return self.address + self.size

    @property
    def total_data_bytes(self) -> int:
        return int(self.size.sum()) if len(self) else 0

    @classmethod
    def from_accesses(cls, accesses: Sequence[MemAccess]) -> "AccessBatch":
        n = len(accesses)
        return cls(
            address=np.fromiter((a.address for a in accesses), np.int64, n),
            size=np.fromiter((a.size for a in accesses), np.int64, n),
            is_write=np.fromiter((a.is_write for a in accesses), np.bool_, n),
            data_class=np.fromiter(
                (_CLASS_CODE[a.data_class] for a in accesses), np.int64, n
            ),
            sequential=np.fromiter((a.sequential for a in accesses), np.bool_, n),
            vn=np.fromiter(
                (0 if a.vn is None else a.vn for a in accesses), np.uint64, n
            ),
            vn_present=np.fromiter(
                (a.vn is not None for a in accesses), np.bool_, n
            ),
            burst_bytes=np.fromiter(
                (a.burst_bytes or 0 for a in accesses), np.int64, n
            ),
            spread_bytes=np.fromiter(
                (a.spread_bytes or 0 for a in accesses), np.int64, n
            ),
            source=list(accesses),
        )

    @classmethod
    def from_phase(cls, phase: Phase) -> "AccessBatch":
        return cls.from_accesses(phase.accesses)

    def to_accesses(self, reconstruct: bool = False) -> list[MemAccess]:
        """The batch as objects; ``reconstruct`` forces a rebuild from the
        columns (exercised by the losslessness tests)."""
        if self.source is not None and not reconstruct:
            return self.source
        return [
            MemAccess(
                address=int(self.address[i]),
                size=int(self.size[i]),
                kind=AccessKind.WRITE if self.is_write[i] else AccessKind.READ,
                data_class=DATA_CLASSES[int(self.data_class[i])],
                sequential=bool(self.sequential[i]),
                vn=int(self.vn[i]) if self.vn_present[i] else None,
                burst_bytes=None if self.burst_bytes[i] == 0 else int(self.burst_bytes[i]),
                spread_bytes=None if self.spread_bytes[i] == 0 else int(self.spread_bytes[i]),
            )
            for i in range(len(self))
        ]
