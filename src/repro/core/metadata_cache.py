"""On-chip metadata cache for the baseline protection scheme.

The baseline (Intel-MEE-like) engine keeps recently used VN lines, MAC
lines and integrity-tree nodes in a small on-chip cache — 32 KB in the
paper's configuration — with LRU replacement, write-back and
write-allocate policies (§VI-A).  MGX deliberately has no such cache.

The model is a plain LRU over 64-byte line addresses.  ``access`` returns
whether the line hit and, on a miss that evicts a dirty line, the address
that must be written back.  The protection engine translates those
outcomes into DRAM traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigError
from repro.common.stats import StatsGroup
from repro.common.units import CACHE_BLOCK


@dataclass(frozen=True)
class CacheOutcome:
    """Result of one cache access."""

    hit: bool
    writeback_address: int | None = None


@dataclass
class SegmentProbe:
    """Result of probing a run of consecutive metadata lines.

    The three lists carry the line addresses of every event the probe
    produced, in the order the per-line walk would have produced them:

    ``misses``
        lines of the probed segment that were not resident (each costs
        one line fetch);
    ``writebacks``
        dirty lines evicted while the segment streamed through — both
        direct victims and lines evicted further down a writeback chain;
    ``parent_misses``
        ancestor lines that missed while a writeback chain updated the
        parents of evicted dirty lines (integrity-tree traffic).
    """

    misses: list[int] = field(default_factory=list)
    writebacks: list[int] = field(default_factory=list)
    parent_misses: list[int] = field(default_factory=list)


class MetadataCache:
    """Write-back, write-allocate cache of 64-byte metadata lines.

    Fully-associative LRU by default (``ways=None``); pass ``ways`` for a
    set-associative organization with LRU within each set — closer to
    what an MEE implements in hardware.  The protection engine treats
    both identically.
    """

    def __init__(self, capacity_bytes: int = 32 * 1024, line_bytes: int = CACHE_BLOCK,
                 ways: int | None = None) -> None:
        if capacity_bytes <= 0 or capacity_bytes % line_bytes != 0:
            raise ConfigError(
                f"cache capacity {capacity_bytes} must be a positive multiple "
                f"of the line size {line_bytes}"
            )
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        if ways is not None:
            if ways <= 0 or self.capacity_lines % ways != 0:
                raise ConfigError(
                    f"ways ({ways}) must divide the line capacity "
                    f"({self.capacity_lines})"
                )
        self.ways = ways
        self._n_sets = 1 if ways is None else self.capacity_lines // ways
        #: per set: line_address -> dirty flag; ordering is recency.
        self._sets: list["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self._n_sets)
        ]
        self.stats = StatsGroup("metadata_cache")
        #: Segment probes answered by the closed-form resident fast path
        #: (diagnostic only; not part of the hit/miss stats contract).
        self.fast_probes = 0

    def _align(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        index = (line // self.line_bytes) % self._n_sets
        return self._sets[index]

    def _set_capacity(self) -> int:
        return self.capacity_lines if self.ways is None else self.ways

    def access(self, address: int, dirty: bool = False) -> CacheOutcome:
        """Touch the line containing ``address``; allocate on miss.

        ``dirty`` marks the line modified (a VN increment or MAC update);
        dirty lines cost a writeback when evicted.
        """
        line = self._align(address)
        lines = self._set_of(line)
        if line in lines:
            lines[line] = lines[line] or dirty
            lines.move_to_end(line)
            self.stats.add("hits")
            return CacheOutcome(hit=True)

        self.stats.add("misses")
        writeback = None
        if len(lines) >= self._set_capacity():
            victim, victim_dirty = lines.popitem(last=False)
            if victim_dirty:
                writeback = victim
                self.stats.add("writebacks")
        lines[line] = dirty
        return CacheOutcome(hit=False, writeback_address=writeback)

    def probe_segment(
        self,
        base_address: int,
        n_lines: int,
        *,
        dirty: bool = False,
        parent_of: Callable[[int], int | None] | None = None,
    ) -> SegmentProbe:
        """Touch ``n_lines`` consecutive lines starting at ``base_address``.

        Semantically identical to calling :meth:`access` once per line in
        ascending address order and following every dirty eviction's
        writeback chain (the parent of an evicted dirty line is obtained
        from ``parent_of`` and accessed dirty, which can itself evict —
        the chain is followed before the next segment line is touched).
        The per-line bookkeeping is inlined, so a segment probe is the
        fast path the batched pricing of cached/tree schemes builds on:
        one call per sequential run instead of one :class:`CacheOutcome`
        per line.
        """
        probe = SegmentProbe()
        line = self._align(base_address)
        if self._probe_resident_fast_path(line, n_lines, dirty):
            return probe
        hits = 0
        fully_associative = self.ways is None
        if fully_associative:
            lines = self._sets[0]
        capacity = self._set_capacity()
        for _ in range(n_lines):
            if not fully_associative:
                lines = self._set_of(line)
            if line in lines:
                if dirty:
                    lines[line] = True
                lines.move_to_end(line)
                hits += 1
            else:
                probe.misses.append(line)
                victim = None
                if len(lines) >= capacity:
                    victim, victim_dirty = lines.popitem(last=False)
                    if not victim_dirty:
                        victim = None
                # Allocate before the writeback chain runs: the per-line
                # walk inserts inside access() and chains afterwards, and
                # the chain's parent allocations must see this line.
                lines[line] = dirty
                if victim is not None:
                    self.stats.add("writebacks")
                    self._follow_chain(victim, parent_of, probe)
            line += self.line_bytes
        if hits:
            self.stats.add("hits", hits)
        if probe.misses:
            self.stats.add("misses", len(probe.misses))
        return probe

    def _probe_resident_fast_path(self, line: int, n_lines: int,
                                  dirty: bool) -> bool:
        """Closed-form probe of a segment that sits entirely in the hot set.

        When every line of the segment is already resident, the general
        walk degenerates: no misses, no evictions, no writeback chains —
        the only state change is recency (each line moves to MRU in
        ascending order) and the dirty bits.  This is the common case for
        metadata segments smaller than the cache's hot-set size that are
        re-touched every iteration (e.g. a DNN layer's VN lines), so it
        is handled here without the per-line miss/eviction bookkeeping.
        Returns False (leaving the cache untouched) when any line is
        absent; the caller then runs the general walk.
        """
        if n_lines > self.capacity_lines:
            return False
        segment = range(line, line + n_lines * self.line_bytes, self.line_bytes)
        if not all(l in self._set_of(l) for l in segment):
            return False
        for l in segment:
            lines = self._set_of(l)
            if dirty:
                lines[l] = True
            lines.move_to_end(l)
        self.stats.add("hits", n_lines)
        self.fast_probes += 1
        return True

    def _follow_chain(
        self,
        victim: int,
        parent_of: Callable[[int], int | None] | None,
        probe: SegmentProbe,
    ) -> None:
        """Write back ``victim`` and update its ancestors, iteratively."""
        queue = [victim]
        while queue:
            address = queue.pop()
            probe.writebacks.append(address)
            parent = parent_of(address) if parent_of is not None else None
            if parent is None:
                continue
            outcome = self.access(parent, dirty=True)
            if not outcome.hit:
                probe.parent_misses.append(parent)
            if outcome.writeback_address is not None:
                queue.append(outcome.writeback_address)

    def contains(self, address: int) -> bool:
        """Non-mutating lookup (no recency update); used by tests."""
        line = self._align(address)
        return line in self._set_of(line)

    def contents(self) -> list["OrderedDict[int, bool]"]:
        """The per-set ``{line: dirty}`` maps, recency-ordered (LRU first).

        This is the state the reuse-distance engine loads before pricing
        a trace; treat it as read-only.
        """
        return self._sets

    def set_contents(self, sets: list) -> None:
        """Replace the cache contents (stats untouched).

        ``sets`` holds one ``(line, dirty)`` sequence per set in recency
        order — the engine's exported state after a priced trace.
        """
        if len(sets) != self._n_sets:
            raise ConfigError(
                f"{len(sets)} sets supplied for a {self._n_sets}-set cache"
            )
        self._sets = [OrderedDict(pairs) for pairs in sets]

    def flush(self) -> list[int]:
        """Evict everything, returning dirty line addresses (end of run)."""
        dirty = [
            line for lines in self._sets for line, d in lines.items() if d
        ]
        for lines in self._sets:
            lines.clear()
        self.stats.add("writebacks", len(dirty))
        return dirty

    @property
    def hit_rate(self) -> float:
        total = self.stats.get("hits") + self.stats.get("misses")
        return self.stats.get("hits") / total if total else 0.0

    def __len__(self) -> int:
        return sum(len(lines) for lines in self._sets)
