"""On-chip metadata cache for the baseline protection scheme.

The baseline (Intel-MEE-like) engine keeps recently used VN lines, MAC
lines and integrity-tree nodes in a small on-chip cache — 32 KB in the
paper's configuration — with LRU replacement, write-back and
write-allocate policies (§VI-A).  MGX deliberately has no such cache.

The model is a plain LRU over 64-byte line addresses.  ``access`` returns
whether the line hit and, on a miss that evicts a dirty line, the address
that must be written back.  The protection engine translates those
outcomes into DRAM traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.stats import StatsGroup
from repro.common.units import CACHE_BLOCK


@dataclass(frozen=True)
class CacheOutcome:
    """Result of one cache access."""

    hit: bool
    writeback_address: int | None = None


class MetadataCache:
    """Write-back, write-allocate cache of 64-byte metadata lines.

    Fully-associative LRU by default (``ways=None``); pass ``ways`` for a
    set-associative organization with LRU within each set — closer to
    what an MEE implements in hardware.  The protection engine treats
    both identically.
    """

    def __init__(self, capacity_bytes: int = 32 * 1024, line_bytes: int = CACHE_BLOCK,
                 ways: int | None = None) -> None:
        if capacity_bytes <= 0 or capacity_bytes % line_bytes != 0:
            raise ConfigError(
                f"cache capacity {capacity_bytes} must be a positive multiple "
                f"of the line size {line_bytes}"
            )
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        if ways is not None:
            if ways <= 0 or self.capacity_lines % ways != 0:
                raise ConfigError(
                    f"ways ({ways}) must divide the line capacity "
                    f"({self.capacity_lines})"
                )
        self.ways = ways
        self._n_sets = 1 if ways is None else self.capacity_lines // ways
        #: per set: line_address -> dirty flag; ordering is recency.
        self._sets: list["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self._n_sets)
        ]
        self.stats = StatsGroup("metadata_cache")

    def _align(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        index = (line // self.line_bytes) % self._n_sets
        return self._sets[index]

    def _set_capacity(self) -> int:
        return self.capacity_lines if self.ways is None else self.ways

    def access(self, address: int, dirty: bool = False) -> CacheOutcome:
        """Touch the line containing ``address``; allocate on miss.

        ``dirty`` marks the line modified (a VN increment or MAC update);
        dirty lines cost a writeback when evicted.
        """
        line = self._align(address)
        lines = self._set_of(line)
        if line in lines:
            lines[line] = lines[line] or dirty
            lines.move_to_end(line)
            self.stats.add("hits")
            return CacheOutcome(hit=True)

        self.stats.add("misses")
        writeback = None
        if len(lines) >= self._set_capacity():
            victim, victim_dirty = lines.popitem(last=False)
            if victim_dirty:
                writeback = victim
                self.stats.add("writebacks")
        lines[line] = dirty
        return CacheOutcome(hit=False, writeback_address=writeback)

    def contains(self, address: int) -> bool:
        """Non-mutating lookup (no recency update); used by tests."""
        line = self._align(address)
        return line in self._set_of(line)

    def flush(self) -> list[int]:
        """Evict everything, returning dirty line addresses (end of run)."""
        dirty = [
            line for lines in self._sets for line, d in lines.items() if d
        ]
        for lines in self._sets:
            lines.clear()
        self.stats.add("writebacks", len(dirty))
        return dirty

    @property
    def hit_rate(self) -> float:
        total = self.stats.get("hits") + self.stats.get("misses")
        return self.stats.get("hits") / total if total else 0.0

    def __len__(self) -> int:
        return sum(len(lines) for lines in self._sets)
