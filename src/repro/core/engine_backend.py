"""Pricing-engine backend selection: pure-Python vs compiled native.

The reuse-distance LRU engine has two interchangeable implementations:

* ``python`` — :class:`~repro.core.lru_engine.LruEngine`, the Hypothesis-
  pinned reference (bulk conveyor stretches over NumPy columns);
* ``native`` — :class:`~repro.core.lru_native.NativeLruEngine`, the same
  scalar semantics compiled from ``_lru_native.c`` at first use and
  loaded through :mod:`ctypes` (no third-party build dependency).

``REPRO_ENGINE`` selects the backend: ``auto`` (default) prefers native
and falls back to Python when no C compiler is available, ``python`` /
``native`` force one.  Forcing ``native`` without a working compiler is
a :class:`~repro.common.errors.ConfigError`; ``auto`` never fails.

Every backend is event- and state-identical to
:meth:`~repro.core.metadata_cache.MetadataCache.access` — the pricing-
equivalence chain in ROADMAP "Architecture invariants" extends to each
of them, pinned by the backend-parametrized Hypothesis models in
``tests/test_lru_engine.py``.

The native backend cannot call back into Python for the integrity-tree
parent function, so tree-aware consumers describe their metadata layout
as a :class:`TreeGeometry` — a flat table of ``(base, end, parent_base,
arity)`` regions that both backends (and the C code) evaluate
identically.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigError
from repro.common.units import CACHE_BLOCK

BACKENDS = ("auto", "python", "native")

_SOURCE = Path(__file__).with_name("_lru_native.c")

#: Lazily resolved: ``None`` until the first availability probe, then a
#: ctypes library handle or ``False`` (with the reason in ``_load_error``).
_lib: object | None = None
_load_error: str | None = None


@dataclass(frozen=True)
class TreeGeometry:
    """Region table describing a metadata layout's parent function.

    Each region ``(base, end, parent_base, arity)`` maps addresses in
    ``[base, end)`` to ``parent_base + ((addr - base) // line_bytes //
    arity) * line_bytes``; addresses in no region (MAC lines, the top
    stored tree level) have no parent.  This is exactly the shape of
    ``CounterModeProtection._parent_of``, evaluated identically by the
    Python fallback here and the C backend's ``parent_of``.
    """

    regions: tuple[tuple[int, int, int, int], ...] = ()
    line_bytes: int = CACHE_BLOCK

    def parent_of(self, address: int) -> int | None:
        for base, end, parent_base, arity in self.regions:
            if base <= address < end:
                return (parent_base
                        + ((address - base) // self.line_bytes // arity)
                        * self.line_bytes)
        return None

    def encode(self) -> np.ndarray:
        """Flat int64 form consumed by the C backend."""
        flat = [len(self.regions)]
        for region in self.regions:
            flat.extend(region)
        return np.array(flat, dtype=np.int64)


def requested_backend() -> str:
    """The ``REPRO_ENGINE`` request (validated; default ``auto``)."""
    name = os.environ.get("REPRO_ENGINE", "auto").strip().lower() or "auto"
    if name not in BACKENDS:
        raise ConfigError(
            f"REPRO_ENGINE must be one of {BACKENDS}, got {name!r}"
        )
    return name


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_dir() -> Path:
    root = os.environ.get("REPRO_NATIVE_CACHE")
    if root:
        return Path(root)
    return Path(tempfile.gettempdir()) / "repro-native"


def _compile_library() -> Path:
    """Compile ``_lru_native.c`` into a content-addressed shared object."""
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    build_dir = _build_dir()
    target = build_dir / f"lru_native-{digest}.so"
    if target.exists():
        return target
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    build_dir.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(f".tmp.{os.getpid()}.so")
    command = [compiler, "-O2", "-shared", "-fPIC", "-o", str(tmp),
               str(_SOURCE)]
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"native engine build failed: {proc.stderr.strip()[:500]}"
        )
    os.replace(tmp, target)  # atomic: concurrent builders race safely
    return target


def _declare(lib) -> None:
    import ctypes

    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    state = [p] * 11  # hdr..geom, see ENG_ARGS in _lru_native.c
    events = [p, p, p, p, i64]  # miss/wb/pm buffers, fills, capacity
    lib.lru_probe.argtypes = state + [p, i64, i64, i64] + events
    lib.lru_probe.restype = i64
    lib.lru_probe_range.argtypes = state + [i64, i64, i64, i64] + events
    lib.lru_probe_range.restype = i64
    lib.lru_walk.argtypes = state + [p, p, p] + events
    lib.lru_walk.restype = i64
    lib.lru_runs.argtypes = state + [p, p, p, p, p, p, i64, p, p, p] + events
    lib.lru_runs.restype = i64
    lib.lru_reset.argtypes = state
    lib.lru_reset.restype = None
    lib.lru_load.argtypes = state + [p, p, p]
    lib.lru_load.restype = None
    lib.lru_flush.argtypes = state + [p]
    lib.lru_flush.restype = i64
    lib.lru_export.argtypes = state + [p, p, p]
    lib.lru_export.restype = i64
    lib.lru_contains.argtypes = state + [i64]
    lib.lru_contains.restype = i64


def _load_library():
    """Compile (or reuse) the cached ``.so`` and bind its symbols.

    A corrupted or truncated artifact in the content-addressed cache —
    a crashed writer, a bad disk, a stale CI cache entry — fails to
    ``CDLL`` (or lacks a declared symbol); that single bad file must
    not disable the backend, so it is deleted and rebuilt from source
    once before giving up.
    """
    import ctypes

    target = _compile_library()
    try:
        lib = ctypes.CDLL(str(target))
        _declare(lib)
        return lib
    except (OSError, AttributeError):
        try:
            os.unlink(target)
        except OSError:
            pass
        lib = ctypes.CDLL(str(_compile_library()))
        _declare(lib)
        return lib


def native_library():
    """The loaded native library (compiled on first use).

    Raises :class:`RuntimeError` with the build failure when the native
    backend cannot be provided; use :func:`native_available` to probe.
    """
    global _lib, _load_error
    if _lib is not None:
        if _lib is False:
            raise RuntimeError(_load_error or "native engine unavailable")
        return _lib
    try:
        lib = _load_library()
    except (RuntimeError, OSError, AttributeError) as exc:
        _lib = False
        _load_error = str(exc)
        raise RuntimeError(_load_error) from exc
    _lib = lib
    return lib


def native_available() -> bool:
    try:
        native_library()
    except RuntimeError:
        return False
    return True


def native_error() -> str | None:
    """Why the native backend is unavailable (``None`` when it loads)."""
    if native_available():
        return None
    return _load_error


#: Set when an ``auto`` session demoted itself to the python backend
#: after a native-engine fault; holds the reason.  The demotion prints
#: exactly one warning and is sticky for the session: an engine that
#: faulted once should not be retried per-workload mid-suite (the
#: python backend is byte-identical, so tables are unaffected).
_demotion_reason: str | None = None


def demote_to_python(reason: str) -> None:
    """Demote this session's ``auto`` backend resolution to python."""
    global _demotion_reason
    if _demotion_reason is None:
        print(f"repro: native engine faulted ({reason}); using the python "
              "backend for the rest of this session", file=sys.stderr)
    _demotion_reason = reason


def demotion_reason() -> str | None:
    """Why this session demoted to python (``None``: not demoted)."""
    return _demotion_reason


def clear_demotion() -> None:
    """Undo a session demotion (tests and explicit re-probes)."""
    global _demotion_reason
    _demotion_reason = None


def resolve_backend(name: str | None = None) -> str:
    """Resolve a request (default: ``REPRO_ENGINE``) to python/native."""
    name = requested_backend() if name is None else name
    if name == "python":
        return "python"
    if name == "native":
        if not native_available():
            raise ConfigError(
                f"REPRO_ENGINE=native but the native engine is unavailable: "
                f"{native_error()}"
            )
        return "native"
    if _demotion_reason is not None:
        return "python"  # degraded mode: the session saw native fault
    return "native" if native_available() else "python"


def active_backend() -> str:
    """The backend :func:`create_engine` would pick right now.

    Surfaced in ``TraceCache.stats()`` / ``cache stats`` and the bench
    JSON so every priced table records which engine produced it.
    """
    try:
        return resolve_backend()
    except ConfigError:
        return "python"


def create_engine(capacity_lines: int, line_bytes: int = CACHE_BLOCK,
                  ways: int | None = None,
                  geometry: TreeGeometry | None = None,
                  parent_of=None, parent_of_vec=None,
                  backend: str | None = None):
    """Build an LRU engine on the selected backend.

    ``geometry`` is the backend-portable parent description; callers may
    additionally pass ``parent_of``/``parent_of_vec`` callables, which
    the Python backend prefers (they can memoize against the caller's
    tables).  A callable parent *without* a geometry pins the engine to
    the Python backend — the C code cannot call back into Python.
    """
    resolved = resolve_backend(backend)
    if resolved == "native" and (geometry is not None or parent_of is None):
        # Imported lazily: core must stay importable without repro.sim
        # (the sim package imports core during its own init).
        from repro.sim import faults

        try:
            faults.maybe_fault("native_call", f"engine-{capacity_lines}")
            from repro.core.lru_native import NativeLruEngine

            return NativeLruEngine(capacity_lines, line_bytes=line_bytes,
                                   ways=ways, geometry=geometry)
        except (faults.FaultInjected, RuntimeError, OSError) as exc:
            request = requested_backend() if backend is None else backend
            if request == "native":
                raise  # forced native: degraded mode is not an answer
            # auto: demote the whole session once — the python backend
            # is byte-identical, so only speed degrades, never tables.
            demote_to_python(f"{type(exc).__name__}: {exc}")
    from repro.core.lru_engine import LruEngine

    if parent_of is None and geometry is not None:
        parent_of = geometry.parent_of
    return LruEngine(capacity_lines, line_bytes=line_bytes, ways=ways,
                     parent_of=parent_of, parent_of_vec=parent_of_vec)
