"""Memory-protection timing engines: baseline (BP), MGX and its ablations.

This package replaces the former ``repro/core/schemes.py`` monolith; the
public names are unchanged, so ``from repro.core.schemes import ...``
keeps working for every existing caller.

Layout:

* :mod:`~repro.core.schemes.base` — :class:`ProtectionScheme` interface
  (per-access ``process`` + batched ``price_batch``),
  :class:`ProtectionTraffic` accounting, :class:`NoProtection`.
* :mod:`~repro.core.schemes.counter_mode` — the configurable
  :class:`CounterModeProtection` engine covering BP / MGX / MGX_VN /
  MGX_MAC, with a vectorized ``price_batch`` fast path for the stateless
  on-chip-VN configurations.
* :mod:`~repro.core.schemes.factory` — ``make_*`` constructors and
  :func:`scheme_suite`.
* :mod:`~repro.core.schemes.tnpu` — the TNPU-like comparison point.
"""

from repro.core.schemes.base import (
    ENTRY_BYTES,
    NoProtection,
    ProtectionScheme,
    ProtectionTraffic,
)
from repro.core.schemes.counter_mode import (
    FINE_MAC_POLICY,
    MGX_MAC_POLICY,
    CounterModeProtection,
    MacPolicy,
)
from repro.core.schemes.factory import (
    make_baseline,
    make_mgx,
    make_mgx_mac,
    make_mgx_vn,
    scheme_suite,
)
from repro.core.schemes.tnpu import make_tnpu_like

__all__ = [
    "ENTRY_BYTES",
    "FINE_MAC_POLICY",
    "MGX_MAC_POLICY",
    "CounterModeProtection",
    "MacPolicy",
    "NoProtection",
    "ProtectionScheme",
    "ProtectionTraffic",
    "make_baseline",
    "make_mgx",
    "make_mgx_mac",
    "make_mgx_vn",
    "make_tnpu_like",
    "scheme_suite",
]
